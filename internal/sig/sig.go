// Package sig implements the memory-resident signature pre-filter tier:
// compact per-video and per-triplet bit signatures built by quantizing
// triplet centers onto a coarse per-dimension grid, consulted before the
// exact sphere-intersection math. A signature mismatch is a proof — not a
// heuristic — that two triplet spheres are disjoint, so a pruned
// candidate contributes exactly zero shared frames and skipping it cannot
// change any returned result (see DESIGN.md §14 for the full argument).
//
// Quantization grid. Each dimension is cut into Cells half-open cells of
// width w = CellWidth(ε): cell(x) = clamp(floor(x/w), 0, Cells-1). A
// signature is Cells bitplanes of ⌈dim/64⌉ words each; bit d of plane c
// means "some folded-in center occupies cell c in dimension d". A single
// center yields a point signature (exactly one bit per dimension); a
// video's signature is the bitwise OR of its triplets' point signatures
// plus the maximum triplet radius. At dim 64 a signature is Cells·64 =
// 256 bits plus one float — the memory-resident tier costs ~40 bytes per
// triplet.
//
// Pruning bound. Let g_d be the cell distance in dimension d between a
// query center's cell and the nearest occupied cell of a target
// signature. Whenever g_d ≥ 2, the clamped grid still guarantees
// |q_d - t_d| > (g_d - 1)·w (the two points are separated by g_d - 1
// whole cells), so the squared Euclidean distance is at least
// w²·Σ(g_d-1)² = w²·GapScore. If that lower bound exceeds
// (R_q + R_t + margin)², the spheres cannot intersect and the pair is
// safe to skip. The margin absorbs the one source of floating-point
// slack — rounding inside floor(x/w) — which is bounded by a few ulps,
// ten orders of magnitude below 1e-9 at these scales.
package sig

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// Cells is the number of quantization cells per dimension. The SWAR gap
// kernel below is written for exactly 4 planes.
const Cells = 4

// margin is added to the radius sum before comparing against the grid
// distance bound, so floating-point rounding in cell assignment can
// never turn a true intersection into a prune.
const margin = 1e-9

// maxWords bounds the decoded signature width against hostile input:
// 4096 words cover 262144 dimensions, far beyond any real corpus.
const maxWords = 4096

// CellWidth returns the grid cell width for summarization threshold ε.
// ε/3 places typical triplet radii (a fraction of ε) within one or two
// cells, which is what gives the gap bound its discriminating power; it
// depends only on ε, never on the data, so every shard of a database
// derives the identical grid.
func CellWidth(epsilon float64) float64 { return epsilon / 3 }

// Words returns the number of 64-bit words per bitplane for dim
// dimensions.
func Words(dim int) int { return (dim + 63) / 64 }

// Signature is a quantized center set: Cells bitplanes over the
// dimensions plus the largest radius folded in. The zero Signature is
// not usable; construct with New, FromTriplet, or FromSummary.
type Signature struct {
	// Planes[c] has bit d set when a folded-in center occupies cell c in
	// dimension d. All planes share one word count.
	Planes [Cells][]uint64
	// MaxRadius is the largest radius folded in via Add.
	MaxRadius float64
}

// New returns an empty signature sized for dim dimensions.
func New(dim int) *Signature {
	var s Signature
	w := Words(dim)
	for c := range s.Planes {
		s.Planes[c] = make([]uint64, w)
	}
	return &s
}

// Words returns the per-plane word count.
func (s *Signature) Words() int { return len(s.Planes[0]) }

// cellOf quantizes one coordinate onto the clamped grid.
func cellOf(v, w float64) int {
	c := int(math.Floor(v / w))
	if c < 0 {
		c = 0
	}
	if c >= Cells {
		c = Cells - 1
	}
	return c
}

// Add folds one center and its radius into the signature. w is the grid
// width from CellWidth; pos must fit the dimensionality the signature
// was sized for.
func (s *Signature) Add(pos vec.Vector, radius, w float64) {
	for d, v := range pos {
		s.Planes[cellOf(v, w)][d/64] |= 1 << (uint(d) % 64)
	}
	if radius > s.MaxRadius {
		s.MaxRadius = radius
	}
}

// FromTriplet builds the point signature of a single center: exactly one
// bit per dimension, MaxRadius = radius.
func FromTriplet(pos vec.Vector, radius, w float64) *Signature {
	s := New(len(pos))
	s.Add(pos, radius, w)
	return s
}

// FromSummary builds a video's signature: the union of its triplets'
// point signatures plus the maximum triplet radius. Summaries with no
// triplets yield an all-zero signature that prunes nothing.
func FromSummary(sum *core.Summary, dim int, w float64) *Signature {
	s := New(dim)
	for i := range sum.Triplets {
		t := &sum.Triplets[i]
		s.Add(t.Position, t.Radius, w)
	}
	return s
}

// GapScore returns Σ_d (g_d - 1)² over dimensions where the cell gap
// g_d ≥ 2, where g_d is the distance from q's occupied cell to the
// nearest occupied cell of t in dimension d. q must be a point signature
// (one occupied cell per dimension); t may be any signature. Signatures
// of different widths score 0 (no pruning) rather than reading out of
// bounds. A dimension in which t has no occupied cell at all scores as
// maximally distant, so the bound is only meaningful against signatures
// that folded in at least one center — Add sets a bit in every
// dimension per center, and empty signatures belong to videos with no
// records to prune.
//
// The kernel is branch-free SWAR over the four planes: gap2 collects
// dimensions at cell distance ≥ 2, gap3 those at distance 3 (the maximum
// on a 4-cell grid), so the per-word contribution is
// popcount(gap2 \ gap3) + 4·popcount(gap3).
func GapScore(q, t *Signature) int {
	words := q.Words()
	if words != t.Words() {
		return 0
	}
	score := 0
	for wd := 0; wd < words; wd++ {
		p0, p1, p2, p3 := t.Planes[0][wd], t.Planes[1][wd], t.Planes[2][wd], t.Planes[3][wd]
		q0, q1, q2, q3 := q.Planes[0][wd], q.Planes[1][wd], q.Planes[2][wd], q.Planes[3][wd]
		// A query bit in cell c is at gap ≥ 2 when cells c-1..c+1 are all
		// empty in t, and at gap 3 when cells c-2..c+2 are all empty.
		gap2 := (q0 & ^(p0 | p1)) | (q1 & ^(p0 | p1 | p2)) | (q2 & ^(p1 | p2 | p3)) | (q3 & ^(p2 | p3))
		gap3 := (q0 & ^(p0 | p1 | p2)) | (q3 & ^(p1 | p2 | p3))
		score += bits.OnesCount64(gap2&^gap3) + 4*bits.OnesCount64(gap3)
	}
	return score
}

// Prune reports whether a gap score proves two spheres disjoint:
// w²·score > (radiusSum + margin)², where radiusSum is the sum of the
// two sphere radii. A true return guarantees the exact center distance
// exceeds the radius sum, i.e. the intersection volume — and therefore
// the shared-frame estimate — is exactly zero.
func Prune(score int, radiusSum, w float64) bool {
	th := (radiusSum + margin) / w
	return float64(score) > th*th
}

// EncodedSize returns the byte length of an encoded signature with the
// given per-plane word count.
func EncodedSize(words int) int { return 4 + 8 + Cells*8*words }

// Encode serializes the signature: words u32 | maxRadius f64 | planes
// (Cells × words × u64), little-endian throughout. dst must be exactly
// EncodedSize(s.Words()) bytes.
func (s *Signature) Encode(dst []byte) error {
	words := s.Words()
	if len(dst) != EncodedSize(words) {
		return fmt.Errorf("sig: encode buffer %d bytes, want %d", len(dst), EncodedSize(words))
	}
	binary.LittleEndian.PutUint32(dst[0:], uint32(words))
	binary.LittleEndian.PutUint64(dst[4:], math.Float64bits(s.MaxRadius))
	off := 12
	for c := range s.Planes {
		for _, w := range s.Planes[c] {
			binary.LittleEndian.PutUint64(dst[off:], w)
			off += 8
		}
	}
	return nil
}

// Decode parses an encoded signature, validating against hostile input:
// the word count must be in (0, maxWords], the buffer length must match
// it exactly, and the radius must be finite and non-negative. The byte
// cost of a decode is bounded before any allocation.
func Decode(src []byte) (*Signature, error) {
	if len(src) < 12 {
		return nil, fmt.Errorf("sig: %d bytes, want at least 12", len(src))
	}
	words := binary.LittleEndian.Uint32(src[0:])
	if words == 0 || words > maxWords {
		return nil, fmt.Errorf("sig: word count %d out of range (0, %d]", words, maxWords)
	}
	if len(src) != EncodedSize(int(words)) {
		return nil, fmt.Errorf("sig: %d bytes, want %d for %d words", len(src), EncodedSize(int(words)), words)
	}
	r := math.Float64frombits(binary.LittleEndian.Uint64(src[4:]))
	if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return nil, fmt.Errorf("sig: max radius %v not finite and non-negative", r)
	}
	var s Signature
	s.MaxRadius = r
	off := 12
	for c := range s.Planes {
		s.Planes[c] = make([]uint64, words)
		for i := range s.Planes[c] {
			s.Planes[c][i] = binary.LittleEndian.Uint64(src[off:])
			off += 8
		}
	}
	return &s, nil
}

// ReadFrom decodes one signature from a stream: it reads the fixed
// header, bounds the word count before allocating, then reads exactly
// the remaining payload. Validation is identical to Decode.
func ReadFrom(r io.Reader) (*Signature, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	words := binary.LittleEndian.Uint32(hdr[0:])
	if words == 0 || words > maxWords {
		return nil, fmt.Errorf("sig: word count %d out of range (0, %d]", words, maxWords)
	}
	buf := make([]byte, EncodedSize(int(words)))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[12:]); err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Equal reports whether two signatures are identical (same width, same
// planes, same max radius down to the float bits).
func Equal(a, b *Signature) bool {
	if a.Words() != b.Words() {
		return false
	}
	if math.Float64bits(a.MaxRadius) != math.Float64bits(b.MaxRadius) {
		return false
	}
	for c := range a.Planes {
		for i := range a.Planes[c] {
			if a.Planes[c][i] != b.Planes[c][i] {
				return false
			}
		}
	}
	return true
}
