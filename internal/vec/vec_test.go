package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{3, 4}, 5},
		{Vector{1, 1, 1}, Vector{1, 1, 1}, 0},
		{Vector{-1}, Vector{1}, 2},
		{Vector{}, Vector{}, 0},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist(Vector{1, 2}, Vector{1})
}

func TestDotAndNorm(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm(Vector{3, 4}); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{10, 20}
	if got := Add(a, b); !Equal(got, Vector{11, 22}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, Vector{9, 18}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 3); !Equal(got, Vector{3, 6}) {
		t.Errorf("Scale = %v", got)
	}
	c := Clone(a)
	AddInPlace(c, b)
	if !Equal(c, Vector{11, 22}) {
		t.Errorf("AddInPlace = %v", c)
	}
	if !Equal(a, Vector{1, 2}) {
		t.Errorf("Clone did not isolate: a = %v", a)
	}
	d := Clone(a)
	AXPY(d, 2, b)
	if !Equal(d, Vector{21, 42}) {
		t.Errorf("AXPY = %v", d)
	}
}

func TestNormalize(t *testing.T) {
	a := Vector{3, 4}
	if !Normalize(a) {
		t.Fatal("Normalize reported zero vector")
	}
	if math.Abs(Norm(a)-1) > 1e-12 {
		t.Errorf("norm after Normalize = %v", Norm(a))
	}
	z := Vector{0, 0}
	if Normalize(z) {
		t.Error("Normalize of zero vector should report false")
	}
}

func TestMean(t *testing.T) {
	pts := []Vector{{0, 0}, {2, 4}, {4, 8}}
	if got := Mean(pts); !ApproxEqual(got, Vector{2, 4}, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(nil)
}

func TestSumKahan(t *testing.T) {
	// A sum that loses precision with naive accumulation.
	a := make(Vector, 0, 10001)
	a = append(a, 1e16)
	for i := 0; i < 10000; i++ {
		a = append(a, 1)
	}
	if got := Sum(a); got != 1e16+10000 {
		t.Errorf("Sum = %v, want %v", got, 1e16+10000)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax(Vector{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Vector{1, 2, 3}) {
		t.Error("finite vector reported not finite")
	}
	if IsFinite(Vector{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if IsFinite(Vector{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// Property: Dist satisfies the metric axioms (identity, symmetry, triangle
// inequality) on random vectors.
func TestDistMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(64)
		a, b, c := randVec(r, n), randVec(r, n), randVec(r, n)
		dab, dba := Dist(a, b), Dist(b, a)
		if dab != dba {
			return false
		}
		if Dist(a, a) != 0 {
			return false
		}
		// Triangle inequality with a small tolerance for float rounding.
		return Dist(a, c) <= dab+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: |key(a) - key(b)| <= Dist(a,b) for any reference point — the
// triangle-inequality fact the one-dimensional transformation relies on.
func TestDistLowerBoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(64)
		a, b, ref := randVec(r, n), randVec(r, n), randVec(r, n)
		lhs := math.Abs(Dist(a, ref) - Dist(b, ref))
		if lhs > Dist(a, b)+1e-9 {
			t.Fatalf("lower bound violated: %v > %v", lhs, Dist(a, b))
		}
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a, b := randVec(r, 16), randVec(r, 16)
		if d := Dist(a, b); math.Abs(d*d-Dist2(a, b)) > 1e-9*(1+d*d) {
			t.Fatalf("Dist2 inconsistent: %v vs %v", d*d, Dist2(a, b))
		}
	}
}
