package pager

import (
	"errors"
	"path/filepath"
	"testing"
)

// pagerContract runs the behaviour shared by every Pager implementation.
func pagerContract(t *testing.T, p Pager) {
	t.Helper()
	id0, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	id1, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if id0 == id1 {
		t.Fatal("Alloc returned duplicate ids")
	}
	if p.NumPages() != 2 {
		t.Fatalf("NumPages = %d", p.NumPages())
	}

	var w Page
	copy(w[:], "hello page zero")
	w[PageSize-1] = 0xAB
	if err := p.Write(id0, &w); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var r Page
	if err := p.Read(id0, &r); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if r != w {
		t.Fatal("read back different content")
	}
	// Fresh page must be zeroed.
	if err := p.Read(id1, &r); err != nil {
		t.Fatalf("Read fresh: %v", err)
	}
	if r != (Page{}) {
		t.Fatal("fresh page not zeroed")
	}
	// Out-of-range access errors.
	if err := p.Read(99, &r); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("out-of-range read error = %v", err)
	}
	if err := p.Write(99, &w); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("out-of-range write error = %v", err)
	}
}

func TestMemContract(t *testing.T) {
	p := NewMem()
	defer p.Close()
	pagerContract(t, p)
	s := p.Stats()
	if s.Reads < 2 || s.Writes < 1 || s.Allocs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestMemClosed(t *testing.T) {
	p := NewMem()
	id, _ := p.Alloc()
	p.Close()
	var pg Page
	if err := p.Read(id, &pg); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
}

func TestFileContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pagerContract(t, p)
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Alloc()
	var w Page
	copy(w[:], "persisted")
	if err := p.Write(id, &w); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d", p2.NumPages())
	}
	var r Page
	if err := p2.Read(id, &r); err != nil {
		t.Fatal(err)
	}
	if r != w {
		t.Fatal("persistence lost page content")
	}
}

func TestFileRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Truncate to a non-page-multiple size.
	if err := truncate(path, PageSize/2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("expected error for misaligned file")
	}
}

func TestCacheHitAvoidsPhysicalRead(t *testing.T) {
	mem := NewMem()
	c := NewCache(mem, 4)
	defer c.Close()
	id, _ := c.Alloc()
	var w Page
	w[0] = 7
	if err := c.Write(id, &w); err != nil {
		t.Fatal(err)
	}
	before := mem.Stats().Reads
	var r Page
	for i := 0; i < 10; i++ {
		if err := c.Read(id, &r); err != nil {
			t.Fatal(err)
		}
	}
	if r[0] != 7 {
		t.Fatal("cache returned wrong content")
	}
	if mem.Stats().Reads != before {
		t.Fatalf("cache hits caused %d physical reads", mem.Stats().Reads-before)
	}
	acc, hits, rate := c.HitRate()
	if acc != 10 || hits != 10 || rate != 1 {
		t.Fatalf("hit rate = %d/%d (%v)", hits, acc, rate)
	}
}

func TestCacheEviction(t *testing.T) {
	mem := NewMem()
	c := NewCache(mem, 2)
	defer c.Close()
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = c.Alloc()
		var p Page
		p[0] = byte(i)
		if err := c.Write(ids[i], &p); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: the first page must have been evicted; reading it is a
	// physical read.
	before := mem.Stats().Reads
	var p Page
	if err := c.Read(ids[0], &p); err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 {
		t.Fatal("wrong content after eviction")
	}
	if mem.Stats().Reads != before+1 {
		t.Fatalf("expected one physical read, got %d", mem.Stats().Reads-before)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	mem := NewMem()
	c := NewCache(mem, 2)
	id, _ := c.Alloc()
	var w Page
	w[5] = 42
	if err := c.Write(id, &w); err != nil {
		t.Fatal(err)
	}
	// Bypass the cache: the underlying page must already hold the data.
	var r Page
	if err := mem.Read(id, &r); err != nil {
		t.Fatal(err)
	}
	if r[5] != 42 {
		t.Fatal("write did not reach underlying pager")
	}
}

func TestFaultyReadFailEvery(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, 1)
	f.ReadFailEvery = 3
	id, _ := f.Alloc()
	var p Page
	fails := 0
	for i := 0; i < 9; i++ {
		if err := f.Read(id, &p); errors.Is(err, ErrInjected) {
			fails++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if fails != 3 {
		t.Fatalf("expected 3 injected failures, got %d", fails)
	}
}

func TestFaultyCorruptReads(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, 2)
	f.ReadFailEvery = 1
	f.CorruptReads = true
	id, _ := f.Alloc()
	var w Page
	copy(w[:], "precious data")
	if err := f.Write(id, &w); err != nil {
		t.Fatal(err)
	}
	var r Page
	if err := f.Read(id, &r); err != nil {
		t.Fatalf("corrupting read should not error: %v", err)
	}
	if r == w {
		t.Fatal("page was not corrupted")
	}
}

func TestFaultyWriteFail(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, 3)
	f.WriteFailEvery = 2
	id, _ := f.Alloc()
	var p Page
	if err := f.Write(id, &p); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := f.Write(id, &p); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should fail: %v", err)
	}
}
