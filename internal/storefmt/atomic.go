package storefmt

import (
	"bufio"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"vitri/internal/core"
	"vitri/internal/vfs"
)

// WriteFileAtomic writes a file so the previous contents of path are
// never damaged, whatever the crash point:
//
//  1. write to path+".tmp" (created fresh),
//  2. fsync the temp file — its data is durable before any name changes,
//  3. rename over path — readers see old-complete or new-complete, never
//     a mix,
//  4. fsync the parent directory — the rename itself is durable.
//
// A crash before step 3 leaves path untouched; a crash between 3 and 4
// leaves either the old or the new file, both complete. The temp file is
// removed on error, best-effort.
//
// Large files are additionally synced every syncEvery bytes while being
// written. Step 2's final fsync would otherwise flush the whole file's
// dirty pages at once, and on a journaling filesystem a concurrent
// fsync — the WAL commit of a mutation acknowledged while a checkpoint
// writes its snapshot — can be made to wait behind that entire backlog.
// Incremental syncs bound the backlog, which bounds the mutation's tail
// latency; files smaller than syncEvery never hit the threshold and pay
// nothing extra.
func WriteFileAtomic(fsys vfs.FS, path string, write func(io.Writer) error) error {
	return WriteFileAtomicGated(fsys, path, nil, write)
}

// A SyncGate serializes this writer's storage syncs against a
// foreground commit stream — every fsync-like operation (file creation,
// chunk and final syncs, rename, directory sync) runs inside gate(fn).
// vitri's checkpoint passes the journal writer's WithSyncSlot so
// snapshot syncs and WAL commits never run concurrently: on one
// journaling filesystem they would serialize anyway, but through the
// filesystem journal's commit batching, stalling acknowledged-mutation
// fsyncs for tens of milliseconds. With the gate, a WAL commit waits at
// most one syncEvery-sized chunk. A nil gate syncs directly.
type SyncGate func(func() error) error

// WriteFileAtomicGated is WriteFileAtomic with every storage sync
// routed through gate (when non-nil).
func WriteFileAtomicGated(fsys vfs.FS, path string, gate SyncGate, write func(io.Writer) error) (err error) {
	if gate == nil {
		gate = func(fn func() error) error { return fn() }
	}
	tmp := path + ".tmp"
	var f vfs.File
	if err = gate(func() (oerr error) {
		f, oerr = fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		return oerr
	}); err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			//lint:ignore droppederr cleanup on the error path; the original error is what matters
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(&chunkSyncWriter{f: f, gate: gate})
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = gate(f.Sync); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	//lint:ignore syncbeforerename the temp file is fsynced above via gate(f.Sync); the analyzer cannot see the Sync through the gate's method-value indirection
	if err = gate(func() error { return fsys.Rename(tmp, path) }); err != nil {
		return err
	}
	return gate(func() error { return fsys.SyncDir(filepath.Dir(path)) })
}

// syncEvery is WriteFileAtomic's incremental-sync interval: at most
// this many bytes are ever dirty at once while a large file is written,
// and at most this many bytes of flushing ever stand between a gated
// foreground fsync and the device.
const syncEvery = 64 << 10

// chunkSyncWriter counts bytes through to the file and fsyncs each time
// syncEvery of them accumulate since the last sync.
type chunkSyncWriter struct {
	f       vfs.File
	gate    SyncGate
	pending int
}

func (w *chunkSyncWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.pending += n
	if err == nil && w.pending >= syncEvery {
		w.pending = 0
		err = w.gate(w.f.Sync)
	}
	return n, err
}

// WriteSnapshotFile writes snap via the atomic discipline in the format
// snap.Version names (Version2 or Version3).
func WriteSnapshotFile(fsys vfs.FS, path string, snap *Snapshot) error {
	return WriteSnapshotFileGated(fsys, path, snap, nil)
}

// WriteSnapshotFileGated is WriteSnapshotFile with the storage syncs
// routed through gate — the checkpoint's variant, see SyncGate.
func WriteSnapshotFileGated(fsys vfs.FS, path string, snap *Snapshot, gate SyncGate) error {
	return WriteFileAtomicGated(fsys, path, gate, func(w io.Writer) error {
		if snap.Version == Version3 {
			return EncodeV3(w, snap)
		}
		return EncodeV2(w, snap)
	})
}

// ReadSnapshotFile reads a store of any version. A missing file reports
// fs.ErrNotExist (callers treat it as an empty store).
func ReadSnapshotFile(fsys vfs.FS, path string) (*Snapshot, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(bufio.NewReader(f))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// IsNotExist reports whether err is a missing-file error from any FS.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// SortSummaries orders summaries by video id in place — the canonical
// order snapshots are written in, which is what makes two stores of the
// same logical contents byte-identical.
func SortSummaries(sums []core.Summary) {
	sort.Slice(sums, func(i, j int) bool { return sums[i].VideoID < sums[j].VideoID })
}
