package vitri

import (
	"bytes"
	"testing"
)

// Differential suite for the signature pre-filter tier and the quantized
// leaf encoding. Both are pure accelerations: the tier skips candidates
// only when the grid bound PROVES zero shared frames, and quantized
// float32 leaves feed the same exact float64 catalog triplets into the
// similarity fold. So every configuration of the two knobs must return
// bit-identical rankings — compared by Float64bits, not a tolerance —
// and the only permitted difference is the SimilarityOps/SignatureSkips
// split in SearchStats.

// prefilterCorpusDB builds one engine configuration over the shared
// corpus.
func prefilterCorpusDB(t *testing.T, videos []Video, noSig, unquantized bool) *DB {
	t.Helper()
	db := New(Options{Epsilon: 0.3, Seed: 7, DisablePreFilter: noSig, UnquantizedPages: unquantized})
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if err := db.forceBuild(); err != nil {
		t.Fatalf("forceBuild: %v", err)
	}
	return db
}

// TestPreFilterEquivalence is the tier's core differential test: default
// engine (signatures on, quantized leaves) against all three degraded
// configurations, on the same corpus and query set, both query modes.
// Asserts:
//
//   - rankings are bit-identical across all four configurations;
//   - Candidates is identical (the gate sits after candidate counting);
//   - the accounting invariant SimilarityOps_on + SignatureSkips_on ==
//     SimilarityOps_off — every pruned candidate is exactly one exact
//     evaluation saved, none vanish untallied;
//   - the tier actually fires (SignatureSkips > 0 over the query set) so
//     the equivalence claim is not vacuous;
//   - disabled configurations report zero skips.
func TestPreFilterEquivalence(t *testing.T) {
	videos := ingestCorpus(88, 48)
	queries := equivQueries(8)
	dflt := prefilterCorpusDB(t, videos, false, false)
	noSig := prefilterCorpusDB(t, videos, true, false)
	noQuant := prefilterCorpusDB(t, videos, false, true)
	noBoth := prefilterCorpusDB(t, videos, true, true)

	totalSkips := 0
	for qi := range queries {
		for _, mode := range []QueryMode{Naive, Composed} {
			wantRes, wantStats, err := noBoth.SearchSummary(&queries[qi], 10, mode)
			if err != nil {
				t.Fatalf("baseline search: %v", err)
			}
			if wantStats.SignatureSkips != 0 {
				t.Fatalf("baseline reports %d signature skips", wantStats.SignatureSkips)
			}
			for _, cfg := range []struct {
				name string
				db   *DB
				sigs bool
			}{
				{"default", dflt, true},
				{"prefilter-off", noSig, false},
				{"unquantized", noQuant, true},
			} {
				gotRes, gotStats, err := cfg.db.SearchSummary(&queries[qi], 10, mode)
				if err != nil {
					t.Fatalf("%s search: %v", cfg.name, err)
				}
				if !matchesIdentical(gotRes, wantRes) {
					t.Fatalf("%s query %d mode %v: ranking diverges from exact baseline", cfg.name, qi, mode)
				}
				if gotStats.Candidates != wantStats.Candidates {
					t.Fatalf("%s query %d mode %v: Candidates = %d, baseline %d",
						cfg.name, qi, mode, gotStats.Candidates, wantStats.Candidates)
				}
				if got := gotStats.SimilarityOps + gotStats.SignatureSkips; got != wantStats.SimilarityOps {
					t.Fatalf("%s query %d mode %v: ops(%d) + skips(%d) = %d, want baseline ops %d",
						cfg.name, qi, mode, gotStats.SimilarityOps, gotStats.SignatureSkips, got, wantStats.SimilarityOps)
				}
				if !cfg.sigs && gotStats.SignatureSkips != 0 {
					t.Fatalf("%s query %d mode %v: %d skips with the tier disabled", cfg.name, qi, mode, gotStats.SignatureSkips)
				}
				if cfg.name == "default" {
					totalSkips += gotStats.SignatureSkips
				}
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("signature tier never pruned a candidate over the whole query set; the equivalence test is vacuous")
	}
}

// TestPreFilterEquivalenceAfterChurn drives the incremental paths —
// post-build inserts and removes — through tier-on and tier-off engines
// and requires they stay bit-identical. Signatures are maintained
// incrementally on Add/Remove, so this is the test that would catch a
// stale-signature bug (a signature surviving its video's removal, or a
// new video searched before its signature exists).
func TestPreFilterEquivalenceAfterChurn(t *testing.T) {
	videos := ingestCorpus(89, 36)
	queries := equivQueries(5)
	on := New(Options{Epsilon: 0.3, Seed: 7})
	off := New(Options{Epsilon: 0.3, Seed: 7, DisablePreFilter: true, UnquantizedPages: true})
	for _, db := range []*DB{on, off} {
		equivApply(t, db, videos)
	}
	if got, want := storeBytes(t, on), storeBytes(t, off); !bytes.Equal(got, want) {
		t.Fatal("tier-on and tier-off contents diverge after churn")
	}
	for qi := range queries {
		for _, mode := range []QueryMode{Naive, Composed} {
			wantRes, wantStats, err := off.SearchSummary(&queries[qi], 10, mode)
			if err != nil {
				t.Fatalf("tier-off search: %v", err)
			}
			gotRes, gotStats, err := on.SearchSummary(&queries[qi], 10, mode)
			if err != nil {
				t.Fatalf("tier-on search: %v", err)
			}
			if !matchesIdentical(gotRes, wantRes) {
				t.Fatalf("query %d mode %v: churned engines disagree on the ranking", qi, mode)
			}
			if gotStats.Candidates != wantStats.Candidates ||
				gotStats.SimilarityOps+gotStats.SignatureSkips != wantStats.SimilarityOps {
				t.Fatalf("query %d mode %v: accounting broke after churn: on %+v, off %+v",
					qi, mode, gotStats, wantStats)
			}
		}
	}
}
