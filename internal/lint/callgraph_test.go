package lint

import (
	"go/types"
	"testing"
)

// loadFixtureGraph loads the fixture module and builds the shared call
// graph once per test.
func loadFixtureGraph(t *testing.T) (*Module, *CallGraph) {
	t.Helper()
	mod, err := LoadModule(fixtureRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	return mod, BuildCallGraph(mod)
}

// lookupFunc finds a function in the graph by its display name.
func lookupFunc(t *testing.T, g *CallGraph, display string) *FuncInfo {
	t.Helper()
	for _, fi := range g.Order {
		if funcDisplay(fi.Fn) == display {
			return fi
		}
	}
	t.Fatalf("function %s not in call graph", display)
	return nil
}

// TestCallGraphInterfaceDispatch checks that a module-declared interface
// method resolves to its module implementations — the link that makes
// the cyclea/cycleb cross-package cycle visible.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	mod, g := loadFixtureGraph(t)
	var notify *types.Func
	for _, pkg := range mod.Pkgs {
		if pkg.Path != "fixture/cyclea" {
			continue
		}
		iface := pkg.Pkg.Scope().Lookup("Notifier").Type().Underlying().(*types.Interface)
		notify = iface.ExplicitMethod(0)
	}
	if notify == nil {
		t.Fatal("cyclea.Notifier.Notify not found")
	}
	targets := g.Targets(notify)
	if len(targets) != 1 || funcDisplay(targets[0]) != "cycleb.Peer.Notify" {
		names := make([]string, len(targets))
		for i, fn := range targets {
			names[i] = funcDisplay(fn)
		}
		t.Fatalf("Targets(Notifier.Notify) = %v, want [cycleb.Peer.Notify]", names)
	}
	// A concrete function with a body resolves to itself.
	wn := lookupFunc(t, g, "cyclea.Registry.WithNotifier")
	if self := g.Targets(wn.Fn); len(self) != 1 || self[0] != wn.Fn {
		t.Fatalf("Targets(concrete) should be the function itself")
	}
}

// TestCallGraphExternal checks the escape analysis behind entry-lock
// inference: exported functions are external (callable from anywhere),
// unexported functions whose address is never taken are not.
func TestCallGraphExternal(t *testing.T) {
	_, g := loadFixtureGraph(t)
	if !lookupFunc(t, g, "atomix.Gauge.Set").External {
		t.Errorf("exported Gauge.Set should be External")
	}
	if lookupFunc(t, g, "atomix.Gauge.setLocked").External {
		t.Errorf("unexported, non-escaping Gauge.setLocked should not be External")
	}
}

// TestCallGraphOrder checks the traversal order is topological over
// package imports, so callee summaries exist before their callers'.
func TestCallGraphOrder(t *testing.T) {
	_, g := loadFixtureGraph(t)
	pos := make(map[string]int)
	for i, fi := range g.Order {
		pos[funcDisplay(fi.Fn)] = i
	}
	if pos["cyclea.Registry.Poke"] > pos["cycleb.Peer.WithRegistry"] {
		t.Errorf("cyclea (imported) should precede cycleb in traversal order")
	}
}

// TestLockFactsSummaries checks the interprocedural summaries the
// analyzers consume: transitive may-acquire with witness chains,
// may-fsync through helpers, and entry-lock inference for *Locked
// helpers.
func TestLockFactsSummaries(t *testing.T) {
	mod, g := loadFixtureGraph(t)
	facts := buildLockFacts(mod, g)

	// WithRegistry transitively acquires Registry.mu through Poke.
	wr := lookupFunc(t, g, "cycleb.Peer.WithRegistry")
	found := false
	for cls := range facts.fns[wr.Fn].mayAcquire {
		if facts.classDisplay(cls) == "cyclea.Registry.mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("WithRegistry should transitively acquire cyclea.Registry.mu")
	}

	// SyncViaHelper reaches an fsync through flush.
	sv := lookupFunc(t, g, "lockio.DB.SyncViaHelper")
	if facts.fns[sv.Fn].maySync == nil {
		t.Errorf("SyncViaHelper should have a transitive fsync witness")
	}

	// setLocked's entry set proves every caller holds g.mu exclusively.
	sl := lookupFunc(t, g, "atomix.Gauge.setLocked")
	entry := facts.fns[sl.Fn].entryMust
	if len(entry) != 1 {
		t.Fatalf("setLocked entryMust has %d locks, want 1", len(entry))
	}
	for cls, mode := range entry {
		if facts.classDisplay(cls) != "atomix.Gauge.mu" || mode != 2 {
			t.Errorf("setLocked entryMust = {%s: %d}, want {atomix.Gauge.mu: 2}", facts.classDisplay(cls), mode)
		}
	}
}
