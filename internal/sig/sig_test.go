package sig

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// TestPruneConservative is the tier's load-bearing property: whenever
// Prune says a pair of spheres is disjoint, the exact geometry must
// agree — center distance beyond the radius sum and zero shared frames.
// Exercised over random sphere pairs at several dimensionalities and
// scales, including coordinates outside the grid (negative, beyond the
// clamp) and near-touching pairs.
func TestPruneConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	eps := 0.3
	w := CellWidth(eps)
	pruned, evaluated := 0, 0
	for _, dim := range []int{1, 3, 8, 64, 100} {
		for trial := 0; trial < 3000; trial++ {
			a := randCenter(rng, dim)
			b := randCenter(rng, dim)
			// Half the trials pull b close to a so near-boundary pairs are
			// represented, not just far-apart ones.
			if trial%2 == 0 {
				for d := range b {
					b[d] = a[d] + (rng.Float64()-0.5)*4*w
				}
			}
			ra := 0.001 + rng.Float64()*eps/2
			rb := 0.001 + rng.Float64()*eps/2
			sa := FromTriplet(a, ra, w)
			sb := FromTriplet(b, rb, w)
			evaluated++
			if !Prune(GapScore(sa, sb), ra+rb, w) {
				continue
			}
			pruned++
			if d := vec.Dist(a, b); d <= ra+rb {
				t.Fatalf("dim %d trial %d: pruned but centers %.6f apart with radius sum %.6f", dim, trial, d, ra+rb)
			}
			ta := core.NewViTri(a, ra, 3)
			tb := core.NewViTri(b, rb, 3)
			if shared := core.SharedFrames(&ta, &tb); shared != 0 {
				t.Fatalf("dim %d trial %d: pruned but SharedFrames = %v", dim, trial, shared)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no pair was ever pruned — the gate is inert and the test proved nothing")
	}
	t.Logf("pruned %d of %d pairs", pruned, evaluated)
}

// randCenter draws coordinates in [-0.5, 1.5): mostly inside the unit
// histogram space the grid is tuned for, with a fringe outside the
// clamped cells.
func randCenter(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for d := range v {
		v[d] = rng.Float64()*2 - 0.5
	}
	return v
}

// TestVideoGateImpliesTripletGate: a video-level prune (union planes,
// max radius) must imply the per-triplet prune for every triplet it
// absorbed — the two-tier gate's short-circuit relies on it.
func TestVideoGateImpliesTripletGate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eps := 0.3
	w := CellWidth(eps)
	for trial := 0; trial < 2000; trial++ {
		dim := 1 + rng.Intn(80)
		n := 1 + rng.Intn(6)
		video := New(dim)
		trips := make([]*Signature, n)
		radii := make([]float64, n)
		for i := 0; i < n; i++ {
			c := randCenter(rng, dim)
			radii[i] = 0.001 + rng.Float64()*eps/2
			trips[i] = FromTriplet(c, radii[i], w)
			video.Add(c, radii[i], w)
		}
		q := FromTriplet(randCenter(rng, dim), 0.001+rng.Float64()*eps/2, w)
		if !Prune(GapScore(q, video), q.MaxRadius+video.MaxRadius, w) {
			continue
		}
		for i := 0; i < n; i++ {
			if !Prune(GapScore(q, trips[i]), q.MaxRadius+radii[i], w) {
				t.Fatalf("trial %d: video gate pruned but triplet %d survives", trial, i)
			}
		}
	}
}

// TestGapScoreBruteForce checks the SWAR kernel against a scalar
// reference over random occupancy patterns.
func TestGapScoreBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(130)
		q := New(dim)
		target := New(dim)
		qCell := make([]int, dim)
		occupied := make([][]bool, dim)
		for d := 0; d < dim; d++ {
			qCell[d] = rng.Intn(Cells)
			q.Planes[qCell[d]][d/64] |= 1 << (uint(d) % 64)
			occupied[d] = make([]bool, Cells)
			for c := 0; c < Cells; c++ {
				if rng.Intn(3) == 0 {
					occupied[d][c] = true
					target.Planes[c][d/64] |= 1 << (uint(d) % 64)
				}
			}
		}
		want := 0
		for d := 0; d < dim; d++ {
			any := false
			g := Cells
			for c := 0; c < Cells; c++ {
				if !occupied[d][c] {
					continue
				}
				any = true
				if diff := abs(c - qCell[d]); diff < g {
					g = diff
				}
			}
			if !any {
				// A dimension with no occupied cell scores as maximally
				// distant from the query's cell (gap 3 from the edge cells,
				// gap 2 from the middle ones) — see the GapScore contract.
				if qCell[d] == 0 || qCell[d] == Cells-1 {
					want += 4
				} else {
					want++
				}
				continue
			}
			if g >= 2 {
				want += (g - 1) * (g - 1)
			}
		}
		if got := GapScore(q, target); got != want {
			t.Fatalf("trial %d (dim %d): GapScore = %d, brute force = %d", trial, dim, got, want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestEncodeDecodeRoundTrip: the codec must preserve every plane bit and
// the radius float exactly, at widths that do and do not fill the last
// word.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 63, 64, 65, 128, 200} {
		s := New(dim)
		for c := range s.Planes {
			for i := range s.Planes[c] {
				s.Planes[c][i] = rng.Uint64()
			}
		}
		s.MaxRadius = rng.Float64()
		buf := make([]byte, EncodedSize(s.Words()))
		if err := s.Encode(buf); err != nil {
			t.Fatalf("dim %d: encode: %v", dim, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("dim %d: decode: %v", dim, err)
		}
		if !Equal(s, got) {
			t.Fatalf("dim %d: round trip lost data", dim)
		}
	}
}

// TestDecodeHostile: truncated, oversized, and non-finite inputs must
// error, never panic or decode to something plausible.
func TestDecodeHostile(t *testing.T) {
	valid := make([]byte, EncodedSize(1))
	if err := FromTriplet(vec.Vector{0.5}, 0.1, 0.1).Encode(valid); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      valid[:8],
		"truncated":  valid[:len(valid)-1],
		"padded":     append(append([]byte{}, valid...), 0),
		"zero words": {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"huge words": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0},
		"nan radius": {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"inf radius": {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"neg radius": {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf0, 0xbf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, src := range cases {
		if _, err := Decode(src); err == nil {
			t.Errorf("%s: decode accepted hostile input", name)
		}
	}
}

// TestCellWidthDataIndependent pins the property shard equivalence
// rests on: the grid is a pure function of ε.
func TestCellWidthDataIndependent(t *testing.T) {
	eps := 0.3
	if CellWidth(eps) != eps/3 {
		t.Fatalf("CellWidth(%v) = %v, want %v", eps, CellWidth(eps), eps/3)
	}
	if math.IsNaN(CellWidth(eps)) || CellWidth(eps) <= 0 {
		t.Fatal("cell width must be positive")
	}
}
