package dataset

import (
	"fmt"
	"math/rand"

	"vitri/internal/vec"
)

// Query is a near-duplicate probe derived from a corpus video: the paper
// evaluates 50NN retrieval of queries whose true matches are known.
type Query struct {
	ID       int
	SourceID int // the corpus video the query was derived from
	Frames   []vec.Vector
}

// PerturbConfig controls how queries are distorted relative to their
// source video, modelling re-encoding artifacts in feature space.
type PerturbConfig struct {
	// Noise is the per-bin gaussian jitter (histograms are renormalized).
	Noise float64
	// DropFraction removes this fraction of frames from the front/back
	// (temporal crop), split evenly.
	DropFraction float64
	// MassShift moves this fraction of histogram mass from each bin to
	// its neighbour, approximating a brightness/hue shift.
	MassShift float64
}

// DefaultPerturb is a mild re-encode: visible noise, slight trim.
var DefaultPerturb = PerturbConfig{Noise: 0.003, DropFraction: 0.1, MassShift: 0.02}

// MakeQueries derives n queries from distinct randomly chosen corpus
// videos. IDs are assigned from baseID upward.
func MakeQueries(c *Corpus, n int, cfg PerturbConfig, baseID int, seed int64) ([]Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: query count %d", n)
	}
	if n > len(c.Videos) {
		return nil, fmt.Errorf("dataset: %d queries requested from %d videos", n, len(c.Videos))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(c.Videos))[:n]
	out := make([]Query, n)
	for i, vi := range perm {
		src := &c.Videos[vi]
		out[i] = Query{
			ID:       baseID + i,
			SourceID: src.ID,
			Frames:   PerturbFrames(src.Frames, cfg, rng),
		}
	}
	return out, nil
}

// PerturbFrames applies the configured distortions to a frame sequence.
func PerturbFrames(frames []vec.Vector, cfg PerturbConfig, rng *rand.Rand) []vec.Vector {
	// Temporal crop.
	drop := int(float64(len(frames)) * cfg.DropFraction / 2)
	lo, hi := drop, len(frames)-drop
	if hi <= lo {
		lo, hi = 0, len(frames)
	}
	out := make([]vec.Vector, 0, hi-lo)
	for _, f := range frames[lo:hi] {
		p := vec.Clone(f)
		if cfg.MassShift > 0 {
			shifted := make(vec.Vector, len(p))
			for i, v := range p {
				move := v * cfg.MassShift
				shifted[i] += v - move
				shifted[(i+1)%len(p)] += move
			}
			p = shifted
		}
		if cfg.Noise > 0 {
			for i := range p {
				p[i] += rng.NormFloat64() * cfg.Noise
				if p[i] < 0 {
					p[i] = 0
				}
			}
		}
		if s := vec.Sum(p); s > 0 {
			vec.ScaleInPlace(p, 1/s)
		}
		out = append(out, p)
	}
	return out
}
