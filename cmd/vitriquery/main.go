// Command vitriquery loads a corpus written by vitrigen, builds a ViTri
// database over it, and runs KNN queries.
//
// Queries are given as corpus video ids on the command line (or with
// -random N, as N random corpus videos). For each query it prints the
// top-k matches with estimated similarities and the query's I/O cost.
//
// -mode selects the workload: "video" (default) searches each query
// video's whole summary; "image" probes the query video's middle frame
// as a query-by-image; "temporal" re-ranks the candidates by shot order
// blended at -weight.
//
// Example:
//
//	vitrigen -scale 0.02 -o corpus.gob
//	vitriquery -corpus corpus.gob -k 10 -random 3
//	vitriquery -corpus corpus.gob -mode image 0 17
//	vitriquery -corpus corpus.gob -mode temporal -weight 0.7 0 17 42
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"vitri"
	"vitri/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "vitriquery: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command, separated from main so tests can drive it
// with fixed arguments and capture stdout. Output for a fixed corpus,
// seed and flag set is byte-for-byte deterministic.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vitriquery", flag.ContinueOnError)
	var (
		corpusPath = fs.String("corpus", "corpus.gob", "corpus file from vitrigen")
		epsilon    = fs.Float64("epsilon", 0.3, "frame similarity threshold")
		k          = fs.Int("k", 10, "number of results per query")
		random     = fs.Int("random", 0, "query this many random corpus videos")
		seed       = fs.Int64("seed", 1, "random seed")
		exact      = fs.Bool("exact", false, "also print the exact frame-level similarity of each match (slow)")
		stats      = fs.Bool("stats", false, "print index structure statistics")
		mode       = fs.String("mode", "video", "query workload: video, image (query video's middle frame) or temporal")
		weight     = fs.Float64("weight", 0.5, "temporal blend weight in [0, 1] (mode temporal)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "video", "image", "temporal":
	default:
		return fmt.Errorf("unknown -mode %q (want video, image or temporal)", *mode)
	}

	c, err := dataset.Load(*corpusPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "corpus: %d videos, %d frames, %d dims\n", len(c.Videos), c.FrameCount(), c.Dim)

	db := vitri.New(vitri.Options{Epsilon: *epsilon, Seed: *seed})
	byID := make(map[int][]vitri.Vector, len(c.Videos))
	for i := range c.Videos {
		v := &c.Videos[i]
		if err := db.Add(v.ID, v.Frames); err != nil {
			return fmt.Errorf("add video %d: %w", v.ID, err)
		}
		byID[v.ID] = v.Frames
	}
	fmt.Fprintf(stdout, "indexed %d videos as %d triplets\n", db.Len(), db.Triplets())
	if *stats {
		// The index builds lazily; force it so stats are meaningful.
		warm := vitri.Summarize(-1, c.Videos[0].Frames, *epsilon, *seed)
		if _, _, err := db.SearchSummary(&warm, 1, vitri.Composed); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		st, err := db.Stats()
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		fmt.Fprintf(stdout, "B+-tree: height %d, %d internal + %d leaf nodes, %.0f%% leaf fill\n",
			st.Height, st.InternalNodes, st.LeafNodes, st.LeafFill*100)
		if err := db.CheckIndex(); err != nil {
			return fmt.Errorf("integrity check failed: %w", err)
		}
		fmt.Fprintln(stdout, "integrity check: ok")
	}

	var queryIDs []int
	for _, arg := range fs.Args() {
		id, err := strconv.Atoi(arg)
		if err != nil {
			return fmt.Errorf("bad video id %q", arg)
		}
		queryIDs = append(queryIDs, id)
	}
	if *random > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for _, i := range rng.Perm(len(c.Videos))[:min(*random, len(c.Videos))] {
			queryIDs = append(queryIDs, c.Videos[i].ID)
		}
	}
	if len(queryIDs) == 0 {
		return fmt.Errorf("no queries: pass video ids or -random N")
	}

	for _, id := range queryIDs {
		frames, ok := byID[id]
		if !ok {
			return fmt.Errorf("video %d not in corpus", id)
		}
		switch *mode {
		case "image":
			// The query video's middle frame stands in for an external
			// still image probing the database.
			frame := frames[len(frames)/2]
			matches, stats, err := db.SearchImage(frame, *k, vitri.Composed)
			if err != nil {
				return fmt.Errorf("image query %d: %w", id, err)
			}
			fmt.Fprintf(stdout, "\nimage query video %d middle frame: %d matches, %d page reads, %d similarity ops, %d signature skips\n",
				id, len(matches), stats.PageReads, stats.SimilarityOps, stats.SignatureSkips)
			for rank, m := range matches {
				fmt.Fprintf(stdout, "  #%-2d video %-6d similarity %.4f\n", rank+1, m.VideoID, m.Similarity)
			}
		case "temporal":
			matches, stats, err := db.SearchTemporal(frames, *k, *weight, vitri.Composed)
			if err != nil {
				return fmt.Errorf("temporal query %d: %w", id, err)
			}
			fmt.Fprintf(stdout, "\ntemporal query video %d (%d frames, weight %.2f): %d matches, %d page reads, %d similarity ops, %d signature skips\n",
				id, len(frames), *weight, len(matches), stats.PageReads, stats.SimilarityOps, stats.SignatureSkips)
			for rank, m := range matches {
				fmt.Fprintf(stdout, "  #%-2d video %-6d score %.4f  bag %.4f  temporal %.4f\n",
					rank+1, m.VideoID, m.Score, m.Bag, m.Temporal)
			}
		default:
			q := vitri.Summarize(-1, frames, *epsilon, *seed)
			matches, stats, err := db.SearchSummary(&q, *k, vitri.Composed)
			if err != nil {
				return fmt.Errorf("query %d: %w", id, err)
			}
			fmt.Fprintf(stdout, "\nquery video %d (%d frames, %d triplets): %d matches, %d page reads, %d similarity ops, %d signature skips\n",
				id, len(frames), len(q.Triplets), len(matches), stats.PageReads, stats.SimilarityOps, stats.SignatureSkips)
			for rank, m := range matches {
				line := fmt.Sprintf("  #%-2d video %-6d similarity %.4f", rank+1, m.VideoID, m.Similarity)
				if *exact {
					line += fmt.Sprintf("  exact %.4f", vitri.ExactSimilarity(frames, byID[m.VideoID], *epsilon))
				}
				fmt.Fprintln(stdout, line)
			}
		}
	}
	return nil
}
