// Command vitriquery loads a corpus written by vitrigen, builds a ViTri
// database over it, and runs KNN queries.
//
// Queries are given as corpus video ids on the command line (or with
// -random N, as N random corpus videos). For each query it prints the
// top-k matches with estimated similarities and the query's I/O cost.
//
// Example:
//
//	vitrigen -scale 0.02 -o corpus.gob
//	vitriquery -corpus corpus.gob -k 10 -random 3
//	vitriquery -corpus corpus.gob 0 17 42
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"vitri"
	"vitri/internal/dataset"
)

func main() {
	var (
		corpusPath = flag.String("corpus", "corpus.gob", "corpus file from vitrigen")
		epsilon    = flag.Float64("epsilon", 0.3, "frame similarity threshold")
		k          = flag.Int("k", 10, "number of results per query")
		random     = flag.Int("random", 0, "query this many random corpus videos")
		seed       = flag.Int64("seed", 1, "random seed")
		exact      = flag.Bool("exact", false, "also print the exact frame-level similarity of each match (slow)")
		stats      = flag.Bool("stats", false, "print index structure statistics")
	)
	flag.Parse()

	c, err := dataset.Load(*corpusPath)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("corpus: %d videos, %d frames, %d dims\n", len(c.Videos), c.FrameCount(), c.Dim)

	db := vitri.New(vitri.Options{Epsilon: *epsilon, Seed: *seed})
	byID := make(map[int][]vitri.Vector, len(c.Videos))
	for i := range c.Videos {
		v := &c.Videos[i]
		if err := db.Add(v.ID, v.Frames); err != nil {
			fatalf("add video %d: %v", v.ID, err)
		}
		byID[v.ID] = v.Frames
	}
	fmt.Printf("indexed %d videos as %d triplets\n", db.Len(), db.Triplets())
	if *stats {
		// The index builds lazily; force it so stats are meaningful.
		warm := vitri.Summarize(-1, c.Videos[0].Frames, *epsilon, *seed)
		if _, _, err := db.SearchSummary(&warm, 1, vitri.Composed); err != nil {
			fatalf("warmup: %v", err)
		}
		st, err := db.Stats()
		if err != nil {
			fatalf("stats: %v", err)
		}
		fmt.Printf("B+-tree: height %d, %d internal + %d leaf nodes, %.0f%% leaf fill\n",
			st.Height, st.InternalNodes, st.LeafNodes, st.LeafFill*100)
		if err := db.CheckIndex(); err != nil {
			fatalf("integrity check failed: %v", err)
		}
		fmt.Println("integrity check: ok")
	}

	var queryIDs []int
	for _, arg := range flag.Args() {
		id, err := strconv.Atoi(arg)
		if err != nil {
			fatalf("bad video id %q", arg)
		}
		queryIDs = append(queryIDs, id)
	}
	if *random > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for _, i := range rng.Perm(len(c.Videos))[:min(*random, len(c.Videos))] {
			queryIDs = append(queryIDs, c.Videos[i].ID)
		}
	}
	if len(queryIDs) == 0 {
		fatalf("no queries: pass video ids or -random N")
	}

	for _, id := range queryIDs {
		frames, ok := byID[id]
		if !ok {
			fatalf("video %d not in corpus", id)
		}
		q := vitri.Summarize(-1, frames, *epsilon, *seed)
		matches, stats, err := db.SearchSummary(&q, *k, vitri.Composed)
		if err != nil {
			fatalf("query %d: %v", id, err)
		}
		fmt.Printf("\nquery video %d (%d frames, %d triplets): %d matches, %d page reads, %d similarity ops\n",
			id, len(frames), len(q.Triplets), len(matches), stats.PageReads, stats.SimilarityOps)
		for rank, m := range matches {
			line := fmt.Sprintf("  #%-2d video %-6d similarity %.4f", rank+1, m.VideoID, m.Similarity)
			if *exact {
				line += fmt.Sprintf("  exact %.4f", vitri.ExactSimilarity(frames, byID[m.VideoID], *epsilon))
			}
			fmt.Println(line)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitriquery: "+format+"\n", args...)
	os.Exit(1)
}
