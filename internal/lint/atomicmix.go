package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix enforces the module's field-synchronization discipline on
// the shared lock graph:
//
//   - a field whose address is ever passed to a sync/atomic operation
//     must never be read or written plainly — mixing the two loses the
//     atomicity both sides assume;
//   - a field annotated "// guarded by <mu>" may only be touched with
//     that mutex held: reads need at least RLock, writes and address-of
//     need the exclusive lock. The proof is interprocedural: a
//     *Locked-style helper inherits the locks every caller provably
//     holds at its entry (the engine's entryMust sets), and
//     constructors writing unpublished values are exempt;
//   - "// immutable" fields are written only before publication,
//     "// internally synchronized" fields carry their own discipline
//     (atomic counters, histograms with private locks);
//   - every struct in the durability and serving paths (the module
//     root, and packages named journal, server or pager) that carries a
//     mutex — or already has one annotated field — must annotate every
//     field that is not self-evidently safe (mutex, sync.*,
//     sync/atomic.* and channel fields are exempt), so the guarded-by
//     map stays complete as structs grow.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "no mixed atomic/plain field access; // guarded by <mu> fields only touched under their mutex; required annotations on mutex-carrying structs in durability and server paths",
	RunModule: runAtomicMix,
}

const (
	annGuarded = iota
	annImmutable
	annInternal
)

type fieldAnn struct {
	kind     int
	guardRaw string     // the annotation's spelling, for messages
	guard    *types.Var // resolved mutex field (annGuarded)
}

func runAtomicMix(mp *ModulePass) {
	anns := collectAnnotations(mp)
	mf := mp.Facts

	// Every field reached through sync/atomic anywhere in the module,
	// with a deterministic example position.
	atomicAt := make(map[*types.Var]token.Pos)
	for _, fi := range mp.Graph.Order {
		f := mf.fns[fi.Fn]
		for v, poss := range f.atomicFields {
			for _, p := range poss {
				if cur, ok := atomicAt[v]; !ok || p < cur {
					atomicAt[v] = p
				}
			}
		}
	}

	reported := make(map[token.Pos]bool)
	for _, fi := range mp.Graph.Order {
		f := mf.fns[fi.Fn]
		for i := range f.accesses {
			a := &f.accesses[i]
			if reported[a.pos] {
				continue
			}
			if at, ok := atomicAt[a.field]; ok {
				reported[a.pos] = true
				mp.Reportf(a.pos,
					"field %s is accessed through sync/atomic (e.g. at %s) but plainly here; every access must use sync/atomic",
					a.field.Name(), mf.shortPos(at))
				continue
			}
			ann := anns[a.field]
			if ann == nil || a.fresh || f.prePub {
				continue
			}
			switch ann.kind {
			case annInternal:
			case annImmutable:
				if a.write {
					reported[a.pos] = true
					mp.Reportf(a.pos,
						"field %s is annotated // immutable but written after publication", a.field.Name())
				}
			case annGuarded:
				if ann.guard == nil {
					continue // unresolvable guard already reported at the struct
				}
				eff := f.entryMust[ann.guard]
				if m, ok := a.must[ann.guard]; ok && m > eff {
					eff = m
				}
				need := 1
				if a.write {
					need = 2
				}
				if eff < need {
					reported[a.pos] = true
					if a.write {
						mp.Reportf(a.pos,
							"field %s is written without exclusively holding %s (// guarded by %s)",
							a.field.Name(), ann.guardRaw, ann.guardRaw)
					} else {
						mp.Reportf(a.pos,
							"field %s is read without holding %s (// guarded by %s)",
							a.field.Name(), ann.guardRaw, ann.guardRaw)
					}
				}
			}
		}
	}
}

// collectAnnotations parses // guarded by / immutable / internally
// synchronized field annotations module-wide, resolves guards, and
// enforces the annotation requirement on durability/serving structs.
func collectAnnotations(mp *ModulePass) map[*types.Var]*fieldAnn {
	anns := make(map[*types.Var]*fieldAnn)
	for _, pkg := range mp.Mod.Pkgs {
		required := pkg.RelDir == "" ||
			pkg.Name == "journal" || pkg.Name == "server" || pkg.Name == "pager"
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				checkStruct(mp, pkg, ts.Name.Name, st, required, anns)
				return true
			})
		}
	}
	return anns
}

func checkStruct(mp *ModulePass, pkg *Package, structName string, st *ast.StructType, required bool, anns map[*types.Var]*fieldAnn) {
	// First pass: the struct's own fields, for bare-guard resolution and
	// the mutex trigger.
	own := make(map[string]*types.Var)
	hasMutex := false
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			own[name.Name] = v
			if isMutexType(v.Type()) {
				hasMutex = true
			}
		}
	}
	// Second pass: parse and resolve annotations.
	hasAnn := false
	parsed := make(map[*types.Var]*fieldAnn)
	for _, field := range st.Fields.List {
		ann := parseFieldAnn(field)
		if ann == nil {
			continue
		}
		hasAnn = true
		if ann.kind == annGuarded {
			ann.guard = resolveGuard(pkg, own, ann.guardRaw)
			if ann.guard == nil {
				mp.Reportf(field.Pos(),
					"// guarded by %s does not resolve to a mutex field (use a field of this struct, or type.field within this package)",
					ann.guardRaw)
			}
		}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				anns[v] = ann
				parsed[v] = ann
			}
		}
	}
	if !required || (!hasMutex && !hasAnn) {
		return
	}
	// Annotation requirement: every field is a mutex, self-synchronizing
	// (sync.*, sync/atomic.*, chan), or annotated.
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if parsed[v] != nil || isMutexType(v.Type()) || isAutoSyncType(v.Type()) {
				continue
			}
			mp.Reportf(name.Pos(),
				"field %s of %s needs a concurrency annotation: // guarded by <mu>, // immutable, or // internally synchronized",
				name.Name, structName)
		}
	}
}

// parseFieldAnn reads a field's doc or trailing comment for one of the
// recognized markers.
func parseFieldAnn(field *ast.Field) *fieldAnn {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			lower := strings.ToLower(text)
			if idx := strings.Index(lower, "guarded by "); idx >= 0 {
				rest := strings.Fields(text[idx+len("guarded by "):])
				if len(rest) > 0 {
					return &fieldAnn{kind: annGuarded, guardRaw: strings.TrimRight(rest[0], ".,;)")}
				}
			}
			if strings.Contains(lower, "internally synchronized") {
				return &fieldAnn{kind: annInternal}
			}
			if strings.Contains(lower, "immutable") {
				return &fieldAnn{kind: annImmutable}
			}
		}
	}
	return nil
}

// resolveGuard maps a guard spelling to its mutex field: "mu" is a
// field of the same struct; "db.mu" finds a named type in the same
// package whose name matches the first component case-insensitively
// (the annotation uses the receiver spelling, the type its declared
// name) and takes its field.
func resolveGuard(pkg *Package, own map[string]*types.Var, raw string) *types.Var {
	parts := strings.Split(raw, ".")
	if len(parts) == 1 {
		if v := own[raw]; v != nil && isMutexType(v.Type()) {
			return v
		}
		return nil
	}
	if len(parts) != 2 {
		return nil
	}
	scope := pkg.Pkg.Scope()
	var match *types.Named
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		if !strings.EqualFold(name, parts[0]) {
			continue
		}
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				match = n
				break
			}
		}
	}
	if match == nil {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(match, true, pkg.Pkg, parts[1])
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || !isMutexType(v.Type()) {
		return nil
	}
	return v
}

// isMutexType reports sync.Mutex / sync.RWMutex (or pointers to them).
func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// isAutoSyncType reports types that synchronize themselves: anything
// from sync or sync/atomic, and channels.
func isAutoSyncType(t types.Type) bool {
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "sync", "sync/atomic":
			return true
		}
	}
	if t != nil {
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
	}
	return false
}
