package btree

import (
	"fmt"
	"math"

	"vitri/internal/pager"
)

// Cursor iterates leaf entries in key order without callbacks. A cursor
// holds a read lock on the tree for its lifetime: call Close when done.
// Mutating the tree while a cursor is open deadlocks by design (single
// process, RWMutex); cursors are for scans, not long-lived handles.
type Cursor struct {
	t      *Tree
	node   *node
	idx    int
	hi     float64
	st     *pager.ScanStats
	valid  bool
	closed bool
}

// Seek returns a cursor positioned at the first entry with key >= lo that
// will iterate up to key <= hi, without I/O attribution.
func (t *Tree) Seek(lo, hi float64) (*Cursor, error) { return t.SeekStats(lo, hi, nil) }

// SeekStats is Seek with per-scan I/O attribution: every page read the
// cursor performs, at seek time and while advancing, is counted in st.
func (t *Tree) SeekStats(lo, hi float64, st *pager.ScanStats) (*Cursor, error) {
	//lint:ignore lockorder the cursor deliberately holds the tree read lock across the successful return; Cursor.Close releases it
	t.mu.RLock()
	c := &Cursor{t: t, hi: hi, st: st}
	n, err := t.descendToLeaf(lo, st)
	if err != nil {
		t.mu.RUnlock()
		return nil, err
	}
	c.node = n
	c.idx = n.leafLowerBound(t.valSize, lo) - 1 // Next() advances first
	c.valid = true
	return c, nil
}

// Next advances to the next entry, reporting whether one exists within
// the cursor's range.
func (c *Cursor) Next() bool {
	if !c.valid || c.closed {
		return false
	}
	c.idx++
	for c.idx >= c.node.count() {
		next := c.node.link()
		if next == pager.InvalidPage {
			c.valid = false
			return false
		}
		n, err := c.t.readNodeTracked(next, c.st)
		if err != nil {
			c.valid = false
			return false
		}
		c.node = n
		c.idx = 0
	}
	if c.Key() > c.hi {
		c.valid = false
		return false
	}
	return true
}

// Key returns the current entry's key. Valid only after Next reported
// true.
func (c *Cursor) Key() float64 { return c.node.leafKey(c.idx, c.t.valSize) }

// Value returns the current entry's value. The slice aliases the cursor's
// internal page buffer and is invalidated by the next call to Next.
func (c *Cursor) Value() []byte { return c.node.leafVal(c.idx, c.t.valSize) }

// Close releases the cursor's read lock. Safe to call more than once.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.t.mu.RUnlock()
}

// TreeStats describes the tree's physical shape.
type TreeStats struct {
	Height        int
	InternalNodes int
	LeafNodes     int
	Entries       int64
	// LeafFill is the average leaf occupancy in [0, 1].
	LeafFill float64
}

// Stats walks the tree and returns its shape.
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TreeStats{Height: t.height, Entries: t.count}
	cap := leafCapacity(t.valSize)
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.isLeaf() {
			st.LeafNodes++
			st.LeafFill += float64(n.count()) / float64(cap)
			return nil
		}
		st.InternalNodes++
		if err := walk(n.link()); err != nil {
			return err
		}
		for i := 0; i < n.count(); i++ {
			if err := walk(n.internalChild(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return TreeStats{}, err
	}
	if st.LeafNodes > 0 {
		st.LeafFill /= float64(st.LeafNodes)
	}
	return st, nil
}

// Check verifies the tree's structural invariants: per-node key ordering,
// separator consistency (every key under a child lies within its
// separator bounds), the leaf sibling chain visiting every leaf in order,
// and the entry count. It returns the first violation found.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leaves []pager.PageID
	var total int64
	var walk func(id pager.PageID, lo, hi float64) error
	walk = func(id pager.PageID, lo, hi float64) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.isLeaf() {
			for i := 0; i < n.count(); i++ {
				k := n.leafKey(i, t.valSize)
				if k < lo || k > hi {
					return fmt.Errorf("btree: leaf %d key %v outside [%v, %v]", id, k, lo, hi)
				}
				if i > 0 && k < n.leafKey(i-1, t.valSize) {
					return fmt.Errorf("btree: leaf %d keys out of order at %d", id, i)
				}
			}
			leaves = append(leaves, id)
			total += int64(n.count())
			return nil
		}
		prev := lo
		for i := 0; i < n.count(); i++ {
			k := n.internalKey(i)
			if k < prev {
				return fmt.Errorf("btree: internal %d separators out of order at %d", id, i)
			}
			prev = k
		}
		// Child i covers [sep[i-1], sep[i]] (inclusive both sides:
		// duplicates may sit on either side of an equal separator).
		bound := func(i int) (float64, float64) {
			l, h := lo, hi
			if i > 0 {
				l = n.internalKey(i - 1)
			}
			if i < n.count() {
				h = n.internalKey(i)
			}
			return l, h
		}
		for i := 0; i <= n.count(); i++ {
			l, h := bound(i)
			if err := walk(n.childAt(i), l, h); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, math.Inf(-1), math.Inf(1)); err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("btree: %d entries found, metadata says %d", total, t.count)
	}
	// The sibling chain must visit exactly the leaves, in the same order.
	n, err := t.leftmostLeaf(nil)
	if err != nil {
		return err
	}
	for i := 0; ; i++ {
		if i >= len(leaves) {
			return fmt.Errorf("btree: sibling chain longer than tree (%d leaves)", len(leaves))
		}
		if n.id != leaves[i] {
			return fmt.Errorf("btree: sibling chain visits %d, tree order expects %d", n.id, leaves[i])
		}
		next := n.link()
		if next == pager.InvalidPage {
			if i != len(leaves)-1 {
				return fmt.Errorf("btree: sibling chain ends after %d of %d leaves", i+1, len(leaves))
			}
			return nil
		}
		if n, err = t.readNode(next); err != nil {
			return err
		}
	}
}
