// Quickstart: build a small video database, search it, inspect a summary.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vitri"
)

// makeVideo synthesizes a toy "video": a few shots, each a cloud of
// nearby frame vectors in [0,1]^16 (in a real system these would come
// from a feature extractor such as the 64-d RGB histograms in
// internal/feature).
func makeVideo(rng *rand.Rand, shots, framesPerShot int) []vitri.Vector {
	const dim = 16
	var frames []vitri.Vector
	for s := 0; s < shots; s++ {
		shot := make(vitri.Vector, dim)
		for j := range shot {
			shot[j] = 0.2 + 0.6*rng.Float64()
		}
		for f := 0; f < framesPerShot; f++ {
			frame := make(vitri.Vector, dim)
			for j := range frame {
				frame[j] = shot[j] + rng.NormFloat64()*0.02
			}
			frames = append(frames, frame)
		}
	}
	return frames
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// A database needs one parameter: the frame similarity threshold ε.
	db := vitri.New(vitri.Options{Epsilon: 0.3, Seed: 1})

	// Ingest 20 videos. Add summarizes each video into a handful of
	// Video Triplets and indexes them.
	videos := make([][]vitri.Vector, 20)
	for id := range videos {
		videos[id] = makeVideo(rng, 3, 30)
		if err := db.Add(id, videos[id]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("database: %d videos summarized into %d triplets\n", db.Len(), db.Triplets())

	// Query with a noisy copy of video 7 — a re-encoded duplicate.
	query := make([]vitri.Vector, len(videos[7]))
	for i, f := range videos[7] {
		q := make(vitri.Vector, len(f))
		for j := range f {
			q[j] = f[j] + rng.NormFloat64()*0.01
		}
		query[i] = q
	}
	matches, err := db.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop matches for a noisy copy of video 7:")
	for rank, m := range matches {
		fmt.Printf("  #%d  video %-3d similarity %.3f\n", rank+1, m.VideoID, m.Similarity)
	}

	// Summaries can also be used directly, without a database.
	a := vitri.Summarize(0, videos[0], 0.3, 1)
	b := vitri.Summarize(7, videos[7], 0.3, 1)
	fmt.Printf("\nvideo 0 summary: %d triplets over %d frames\n", len(a.Triplets), a.FrameCount)
	fmt.Printf("direct similarity video0 vs video7: %.4f\n", vitri.Similarity(&a, &b))
	fmt.Printf("exact frame-level similarity:       %.4f\n",
		vitri.ExactSimilarity(videos[0], videos[7], 0.3))
}
