package vitri

import (
	"math/rand"
	"testing"

	"vitri/internal/baseline"
	"vitri/internal/btree"
	"vitri/internal/core"
	"vitri/internal/dataset"
	"vitri/internal/experiments"
	"vitri/internal/geometry"
	"vitri/internal/index"
	"vitri/internal/metrics"
	"vitri/internal/pager"
	"vitri/internal/refpoint"
)

// The Benchmark*_{Table,Figure}* benches below regenerate the paper's
// evaluation artifacts (one per table/figure). They run the experiment
// each iteration and report the headline numbers with b.ReportMetric; the
// full text tables print with -v via b.Log. Sizes are scaled down from the
// paper so the whole suite finishes in minutes — cmd/vitribench reaches
// paper scale (-paper).

// benchConfig scales the experiments for benchmarking.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:         0.01,
		Queries:       5,
		K:             50,
		Epsilon:       0.3,
		Seed:          1,
		ViTriCounts:   []int{5000, 10000, 20000},
		Dims:          []int{8, 16, 32, 64},
		FixedViTris:   10000,
		InsertBatches: []int{5000, 5000, 5000, 2500},
		IndexQueries:  5,
	}
}

// logTables prints experiment output when -v is set.
func logTables(b *testing.B, tables []*metrics.Table) {
	b.Helper()
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

// cellF parses a numeric cell for metric reporting.
func cellF(b *testing.B, t *metrics.Table, row, col int) float64 {
	b.Helper()
	var v float64
	if _, err := fmtSscan(t.Rows[row][col], &v); err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable2DataStats(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	total := 0.0
	for r := range tables[0].Rows {
		total += cellF(b, tables[0], r, 2)
	}
	b.ReportMetric(total, "frames")
}

func BenchmarkTable3SummaryStats(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	b.ReportMetric(cellF(b, tables[0], 1, 1), "clusters@eps0.3")
}

func BenchmarkFigure14PrecisionVsEpsilon(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure14(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	b.ReportMetric(cellF(b, tables[0], 1, 1), "vitri-precision@0.3")
	b.ReportMetric(cellF(b, tables[0], 1, 2), "keyframe-precision@0.3")
}

func BenchmarkFigure15PrecisionVsK(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure15(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	b.ReportMetric(cellF(b, tables[0], 4, 1), "vitri-precision@K50")
}

func BenchmarkFigure16QueryComposition(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure16(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	last := len(tables[0].Rows) - 1
	b.ReportMetric(cellF(b, tables[0], last, 1), "naive-pages")
	b.ReportMetric(cellF(b, tables[0], last, 2), "composed-pages")
}

func BenchmarkFigure17NumViTris(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure17(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	last := len(tables[0].Rows) - 1
	b.ReportMetric(cellF(b, tables[0], last, 1), "seqscan-pages")
	b.ReportMetric(cellF(b, tables[0], last, 4), "optimal-pages")
}

func BenchmarkFigure18Dimensionality(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure18(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	last := len(tables[0].Rows) - 1
	b.ReportMetric(cellF(b, tables[0], last, 4), "optimal-pages@dim64")
}

func BenchmarkFigure19DynamicInsertion(b *testing.B) {
	cfg := benchConfig()
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Figure19(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTables(b, tables)
	last := len(tables[0].Rows) - 1
	b.ReportMetric(cellF(b, tables[0], last, 2), "dynamic-pages")
	b.ReportMetric(cellF(b, tables[0], last, 3), "oneoff-pages")
	b.ReportMetric(cellF(b, tables[0], last, 4), "drift-rad")
}

// --- ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblationRefpointOffset measures how far past the variance
// segment the optimal reference point should sit: query I/O as a function
// of the offset fraction.
func BenchmarkAblationRefpointOffset(b *testing.B) {
	sums, err := dataset.GenerateSummaries(dataset.DefaultSummaryConfig(10000, 1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	queries := make([]core.Summary, 5)
	for i := range queries {
		queries[i] = dataset.QuerySummary(&sums[rng.Intn(len(sums))], 10_000_000+i, 0.01, rng)
	}
	for _, off := range []float64{0.05, 0.25, 1.0, 4.0} {
		b.Run(fmtF("offset=%.2f", off), func(b *testing.B) {
			ix, err := index.Build(sums, index.Options{
				Epsilon: 0.3, RefKind: refpoint.Optimal, OffsetFraction: off,
			})
			if err != nil {
				b.Fatal(err)
			}
			var pages uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi := range queries {
					_, stats, err := ix.Search(&queries[qi], 50, index.Composed)
					if err != nil {
						b.Fatal(err)
					}
					pages += stats.PageReads
				}
			}
			b.ReportMetric(float64(pages)/float64(b.N*len(queries)), "pages/query")
		})
	}
}

// BenchmarkAblationCapVolume compares the paper's finite-series hypercap
// formula against the incomplete-beta form used in production.
func BenchmarkAblationCapVolume(b *testing.B) {
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geometry.CapVolumeSeries(64, 0.15, 1.1)
		}
	})
	b.Run("beta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geometry.CapVolume(64, 0.15, 1.1)
		}
	})
}

// BenchmarkAblationPageCache measures the effect of an LRU buffer pool on
// physical reads for repeated queries.
func BenchmarkAblationPageCache(b *testing.B) {
	sums, err := dataset.GenerateSummaries(dataset.DefaultSummaryConfig(8000, 3))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	q := dataset.QuerySummary(&sums[rng.Intn(len(sums))], 20_000_000, 0.01, rng)
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "lru-4096"
		}
		b.Run(name, func(b *testing.B) {
			newPager := func() pager.Pager { return pager.NewMem() }
			if cached {
				newPager = func() pager.Pager { return pager.NewCache(pager.NewMem(), 4096) }
			}
			ix, err := index.Build(sums, index.Options{Epsilon: 0.3, NewPager: newPager})
			if err != nil {
				b.Fatal(err)
			}
			ix.ResetPagerStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Search(&q, 50, index.Composed); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ix.PagerStats().Reads)/float64(b.N), "physreads/query")
		})
	}
}

// --- microbenchmarks on the core paths -----------------------------------

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	frames := make([]Vector, 750) // a 30s clip at 25fps
	for i := range frames {
		f := make(Vector, 64)
		f[rng.Intn(64)] = 1
		for j := 0; j < 8; j++ {
			f[rng.Intn(64)] += rng.Float64() * 0.2
		}
		frames[i] = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(0, frames, 0.3, int64(i))
	}
}

func BenchmarkSharedFrames(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	mk := func() core.ViTri {
		pos := make(Vector, 64)
		for j := 0; j < 8; j++ {
			pos[rng.Intn(64)] += rng.Float64()
		}
		return core.NewViTri(pos, 0.1+0.05*rng.Float64(), 40)
	}
	v1, v2 := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SharedFrames(&v1, &v2)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr, err := btree.Create(pager.NewMem(), 64)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(rng.Float64(), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	entries := make([]btree.Entry, 100000)
	val := make([]byte, 64)
	for i := range entries {
		entries[i] = btree.Entry{Key: rng.Float64(), Val: val}
	}
	sortEntries(entries)
	tr, err := btree.BulkLoad(pager.NewMem(), 64, entries, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tr.RangeScan(0.4, 0.41, func(float64, []byte) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// exactSimVideos builds the frame pair shared by the exact-similarity
// benchmarks: long enough that Y no longer fits in L1 when streamed per
// frame of X, which is the access pattern the blocked kernel fixes.
func exactSimVideos() (x, y []Vector) {
	rng := rand.New(rand.NewSource(9))
	mkVideo := func() []Vector {
		out := make([]Vector, 250)
		for i := range out {
			f := make(Vector, 64)
			for j := 0; j < 8; j++ {
				f[rng.Intn(64)] += rng.Float64()
			}
			out[i] = f
		}
		return out
	}
	return mkVideo(), mkVideo()
}

func BenchmarkExactSimilarityNaive(b *testing.B) {
	x, y := exactSimVideos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ExactSimilarityNaive(x, y, 0.3)
	}
}

func BenchmarkExactSimilarityBlocked(b *testing.B) {
	x, y := exactSimVideos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ExactSimilarity(x, y, 0.3)
	}
}

func BenchmarkIndexedSearch(b *testing.B) {
	sums, err := dataset.GenerateSummaries(dataset.DefaultSummaryConfig(20000, 10))
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Build(sums, index.Options{Epsilon: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	q := dataset.QuerySummary(&sums[rng.Intn(len(sums))], 30_000_000, 0.01, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(&q, 50, index.Composed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchParallelism compares sequential and pooled execution of
// one KNN query's disjoint range scans. Naive mode has one scan per query
// triplet and parallelizes well; composed mode often merges everything
// into a handful of intervals, which bounds its fan-out. Speedup requires
// GOMAXPROCS > 1; results are byte-identical at every width.
func BenchmarkSearchParallelism(b *testing.B) {
	sums, err := dataset.GenerateSummaries(dataset.DefaultSummaryConfig(20000, 10))
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Build(sums, index.Options{Epsilon: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	q := dataset.QuerySummary(&sums[rng.Intn(len(sums))], 30_000_000, 0.01, rng)
	for _, mode := range []index.Mode{index.Naive, index.Composed} {
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmtF("%s/par=%d", mode, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := ix.SearchParallel(&q, 50, mode, par); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAddBatch measures end-to-end batch ingest — parallel
// summarization plus the ordered single-lock merge — at several
// worker-pool widths. Speedup requires GOMAXPROCS > 1; the resulting
// database is byte-identical at every width (see TestAddBatchMatches-
// SequentialAdd).
func BenchmarkAddBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	videos := make([]Video, 32)
	for v := range videos {
		frames := make([]Vector, 200)
		for i := range frames {
			f := make(Vector, 64)
			f[rng.Intn(64)] = 1
			for j := 0; j < 8; j++ {
				f[rng.Intn(64)] += rng.Float64() * 0.2
			}
			frames[i] = f
		}
		videos[v] = Video{ID: v, Frames: frames}
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmtF("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := New(Options{Epsilon: 0.3, Seed: 1, IngestParallelism: par})
				itemErrs, err := db.AddBatch(videos)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range itemErrs {
					if e != nil {
						b.Fatal(e)
					}
				}
			}
			b.ReportMetric(float64(len(videos))*float64(b.N)/b.Elapsed().Seconds(), "videos/sec")
		})
	}
}

// BenchmarkSearchBatch compares a sequential query loop against the
// SearchBatch worker pool at several widths (throughput workload).
func BenchmarkSearchBatch(b *testing.B) {
	sums, err := dataset.GenerateSummaries(dataset.DefaultSummaryConfig(20000, 10))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	queries := make([]core.Summary, 16)
	for i := range queries {
		queries[i] = dataset.QuerySummary(&sums[rng.Intn(len(sums))], 30_000_000+i, 0.01, rng)
	}
	for _, par := range []int{1, 2, 4, 8} {
		ix, err := index.Build(sums, index.Options{Epsilon: 0.3, SearchParallelism: par})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmtF("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, item := range ix.SearchBatch(queries, 50, index.Composed) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
		})
	}
}
