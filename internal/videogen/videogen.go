// Package videogen synthesizes video at the pixel level: procedural
// scenes with shot structure (hard cuts), slow pans, moving sprites and
// sensor noise. It substitutes for the paper's proprietary TV-advertisement
// captures while exercising the identical downstream pipeline — raw frames
// go through internal/feature's histogram extraction exactly as recorded
// footage would.
//
// The visual model is simple but produces the statistics the indexing
// experiments depend on: frames within a shot are highly similar (compact
// clusters), shots differ sharply (multiple clusters per video), and the
// global color distribution is non-uniform and correlated.
package videogen

import (
	"fmt"
	"math/rand"

	"vitri/internal/feature"
)

// Config parameterizes a generator.
type Config struct {
	W, H int // frame size; the paper's captures are 192×144
	FPS  int // frames per second; the paper's PAL rate is 25
	Seed int64
}

// DefaultConfig matches the paper's capture parameters.
func DefaultConfig(seed int64) Config {
	return Config{W: 192, H: 144, FPS: 25, Seed: seed}
}

// Generator produces procedural videos deterministically from its seed.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// New returns a generator. Invalid configs panic: they are programmer
// errors, not data.
func New(cfg Config) *Generator {
	if cfg.W <= 0 || cfg.H <= 0 || cfg.FPS <= 0 {
		panic(fmt.Sprintf("videogen: invalid config %+v", cfg))
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// sprite is a moving colored rectangle.
type sprite struct {
	x, y, vx, vy float64
	w, h         int
	r, g, b      byte
}

// shot is one continuous scene: a two-color gradient background panning at
// a fixed velocity, plus sprites.
type shot struct {
	r1, g1, b1 byte // gradient start color
	r2, g2, b2 byte // gradient end color
	panSpeed   float64
	frames     int
	sprites    []sprite
}

// Video renders a video of the given duration in seconds, cut into
// approximately durationSec/avgShotSec shots.
func (g *Generator) Video(durationSec, avgShotSec float64) []*feature.Frame {
	total := int(durationSec * float64(g.cfg.FPS))
	if total < 1 {
		total = 1
	}
	avgShotFrames := int(avgShotSec * float64(g.cfg.FPS))
	if avgShotFrames < 1 {
		avgShotFrames = 1
	}
	var out []*feature.Frame
	for len(out) < total {
		s := g.newShot(avgShotFrames)
		remaining := total - len(out)
		if s.frames > remaining {
			s.frames = remaining
		}
		out = append(out, g.renderShot(&s)...)
	}
	return out
}

// newShot draws a random scene with a length jittered around avg.
func (g *Generator) newShot(avgFrames int) shot {
	n := avgFrames/2 + g.rng.Intn(avgFrames+1)
	if n < 1 {
		n = 1
	}
	s := shot{
		r1: byte(g.rng.Intn(256)), g1: byte(g.rng.Intn(256)), b1: byte(g.rng.Intn(256)),
		r2: byte(g.rng.Intn(256)), g2: byte(g.rng.Intn(256)), b2: byte(g.rng.Intn(256)),
		panSpeed: (g.rng.Float64() - 0.5) * 2,
		frames:   n,
	}
	for i, k := 0, 1+g.rng.Intn(3); i < k; i++ {
		s.sprites = append(s.sprites, sprite{
			x:  g.rng.Float64() * float64(g.cfg.W),
			y:  g.rng.Float64() * float64(g.cfg.H),
			vx: (g.rng.Float64() - 0.5) * 4,
			vy: (g.rng.Float64() - 0.5) * 4,
			w:  g.cfg.W/8 + g.rng.Intn(g.cfg.W/4),
			h:  g.cfg.H/8 + g.rng.Intn(g.cfg.H/4),
			r:  byte(g.rng.Intn(256)), g: byte(g.rng.Intn(256)), b: byte(g.rng.Intn(256)),
		})
	}
	return s
}

// renderShot rasterizes every frame of a shot.
func (g *Generator) renderShot(s *shot) []*feature.Frame {
	out := make([]*feature.Frame, s.frames)
	w, h := g.cfg.W, g.cfg.H
	sprites := make([]sprite, len(s.sprites))
	copy(sprites, s.sprites)
	for fi := 0; fi < s.frames; fi++ {
		f := feature.NewFrame(w, h)
		pan := s.panSpeed * float64(fi)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// Diagonal gradient with pan offset.
				t := (float64(x) + float64(y) + pan) / float64(w+h)
				t -= float64(int(t))
				if t < 0 {
					t++
				}
				i := (y*w + x) * 3
				f.Pix[i] = lerp(s.r1, s.r2, t)
				f.Pix[i+1] = lerp(s.g1, s.g2, t)
				f.Pix[i+2] = lerp(s.b1, s.b2, t)
			}
		}
		for si := range sprites {
			sp := &sprites[si]
			drawRect(f, int(sp.x), int(sp.y), sp.w, sp.h, sp.r, sp.g, sp.b)
			sp.x += sp.vx
			sp.y += sp.vy
			sp.x = wrap(sp.x, float64(w))
			sp.y = wrap(sp.y, float64(h))
		}
		g.addNoise(f, 6)
		out[fi] = f
	}
	return out
}

func lerp(a, b byte, t float64) byte {
	return byte(float64(a) + (float64(b)-float64(a))*t)
}

func wrap(v, max float64) float64 {
	for v < 0 {
		v += max
	}
	for v >= max {
		v -= max
	}
	return v
}

func drawRect(f *feature.Frame, x0, y0, w, h int, r, g, b byte) {
	for y := y0; y < y0+h && y < f.H; y++ {
		if y < 0 {
			continue
		}
		for x := x0; x < x0+w && x < f.W; x++ {
			if x < 0 {
				continue
			}
			f.Set(x, y, r, g, b)
		}
	}
}

// addNoise perturbs every pixel channel by ±amp uniform sensor noise.
func (g *Generator) addNoise(f *feature.Frame, amp int) {
	for i := range f.Pix {
		d := g.rng.Intn(2*amp+1) - amp
		v := int(f.Pix[i]) + d
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		f.Pix[i] = byte(v)
	}
}
