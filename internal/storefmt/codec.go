// Package storefmt defines the on-disk summary store formats and the
// write discipline that keeps them crash-safe.
//
// Three formats coexist:
//
//   - v1 ("VITRIDB1") is the legacy single-stream layout DB.Save has
//     always written: magic, version, epsilon, then the summary records.
//     It carries no checksums; a torn write is detectable only as a
//     decode error.
//   - v2 ("VITRIDB2") is the sectioned durable-store snapshot: every
//     section carries a CRC32C of its payload, followed by a sealed
//     footer holding a whole-file CRC32C and the total length. A v2 file
//     either decodes with every checksum intact or is rejected — there
//     is no silent partial read.
//   - v3 ("VITRIDB3") is v2 plus a signatures section carrying the
//     per-video pre-filter signatures (internal/sig), derived from the
//     summaries at encode time. The section is optional on read and
//     purely derived data — the float64 summaries remain authoritative.
//
// Decode sniffs the magic and reads any format, which is what makes
// migration transparent: a durable DB opened over a v1 or v2 snapshot
// loads it and writes v3 at its next checkpoint.
//
// Both formats share one per-summary record codec (EncodeSummary /
// DecodeSummary), which the delta journal also uses for its Add records,
// so a summary has exactly one byte representation everywhere.
//
// All decode paths treat input as hostile: length prefixes are bounded
// before they drive allocation, floats are checked finite, and invalid
// geometry (non-positive radius or count) is rejected before a ViTri is
// constructed — core.NewViTri panics on bad input, so validation must
// come first.
package storefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"vitri/internal/core"
	"vitri/internal/sig"
)

// Format magics. All are 8 bytes so the header shape is shared.
const (
	MagicV1 = "VITRIDB1"
	MagicV2 = "VITRIDB2"
	MagicV3 = "VITRIDB3"
)

// Version numbers stored after the magic.
const (
	Version1 = uint32(1)
	Version2 = uint32(2)
	Version3 = uint32(3)
)

// maxReasonable bounds untrusted counts (videos, triplets) — far above
// any real store, far below what could drive memory exhaustion when
// multiplied by the per-record minimum size.
const maxReasonable = 100_000_000

// Snapshot is a decoded store of any version.
type Snapshot struct {
	// Version is the format the bytes were in (Version1–Version3).
	Version uint32
	// Epsilon is the similarity threshold the summaries were built at.
	Epsilon float64
	// LastSeq is the journal sequence number folded into this snapshot;
	// recovery skips journal records with Seq <= LastSeq. Always 0 for
	// v1 files, which predate the journal.
	LastSeq uint64
	// Summaries is the store's contents.
	Summaries []core.Summary
	// Signatures holds the per-video pre-filter signatures from a v3
	// file's signatures section, keyed by video id. Nil for v1/v2 files
	// and for v3 files written without the section. Derived data: the
	// index rebuilds signatures from Summaries on load, so this exists
	// for verification and tooling, not correctness.
	Signatures map[int32]*sig.Signature
}

// EncodeSummary writes one summary record: video id, frame count,
// triplet count, then each triplet as (count, radius, dim, position).
func EncodeSummary(w io.Writer, s *core.Summary) error {
	if err := binWrite(w, uint32(s.VideoID)); err != nil {
		return err
	}
	if err := binWrite(w, uint32(s.FrameCount)); err != nil {
		return err
	}
	if err := binWrite(w, uint32(len(s.Triplets))); err != nil {
		return err
	}
	for t := range s.Triplets {
		tp := &s.Triplets[t]
		if err := binWrite(w, uint32(tp.Count)); err != nil {
			return err
		}
		if err := binWrite(w, math.Float64bits(tp.Radius)); err != nil {
			return err
		}
		if err := binWrite(w, uint32(len(tp.Position))); err != nil {
			return err
		}
		for _, v := range tp.Position {
			if err := binWrite(w, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeSummary reads one summary record, validating every field before
// constructing triplets (NewViTri panics on invalid geometry, so bad
// bytes must be rejected here).
func DecodeSummary(r io.Reader) (core.Summary, error) {
	var vid, frames, nt uint32
	if err := binRead(r, &vid); err != nil {
		return core.Summary{}, err
	}
	if err := binRead(r, &frames); err != nil {
		return core.Summary{}, err
	}
	if err := binRead(r, &nt); err != nil {
		return core.Summary{}, err
	}
	if nt > maxReasonable {
		return core.Summary{}, fmt.Errorf("implausible triplet count %d", nt)
	}
	s := core.Summary{VideoID: int(vid), FrameCount: int(frames), Triplets: make([]core.ViTri, 0, capHint(nt))}
	for t := uint32(0); t < nt; t++ {
		var cnt, dim uint32
		var radBits uint64
		if err := binRead(r, &cnt); err != nil {
			return core.Summary{}, err
		}
		if err := binRead(r, &radBits); err != nil {
			return core.Summary{}, err
		}
		if err := binRead(r, &dim); err != nil {
			return core.Summary{}, err
		}
		if dim == 0 || dim > 1<<20 {
			return core.Summary{}, fmt.Errorf("implausible dimensionality %d", dim)
		}
		pos := make([]float64, 0, capHint(dim))
		for d := uint32(0); d < dim; d++ {
			var bits uint64
			if err := binRead(r, &bits); err != nil {
				return core.Summary{}, err
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return core.Summary{}, fmt.Errorf("non-finite position coordinate in triplet %d", t)
			}
			pos = append(pos, v)
		}
		radius := math.Float64frombits(radBits)
		if !(radius > 0) || math.IsInf(radius, 0) || cnt == 0 {
			return core.Summary{}, fmt.Errorf("invalid triplet (radius %v, count %d)", radius, cnt)
		}
		s.Triplets = append(s.Triplets, core.NewViTri(pos, radius, int(cnt)))
	}
	return s, nil
}

// encodeSummaries writes a count-prefixed summary sequence.
func encodeSummaries(w io.Writer, sums []core.Summary) error {
	if err := binWrite(w, uint32(len(sums))); err != nil {
		return err
	}
	for i := range sums {
		if err := EncodeSummary(w, &sums[i]); err != nil {
			return err
		}
	}
	return nil
}

// decodeSummaries reads a count-prefixed summary sequence. Capacity
// hints are clamped: header counts are untrusted until the records
// behind them have actually been read, and a tiny header claiming 100M
// videos must not pre-allocate gigabytes.
func decodeSummaries(r io.Reader) ([]core.Summary, error) {
	var count uint32
	if err := binRead(r, &count); err != nil {
		return nil, err
	}
	if count > maxReasonable {
		return nil, fmt.Errorf("implausible video count %d", count)
	}
	sums := make([]core.Summary, 0, capHint(count))
	for i := uint32(0); i < count; i++ {
		s, err := DecodeSummary(r)
		if err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	return sums, nil
}

// validEpsilon rejects non-positive, infinite and NaN thresholds.
// !(eps > 0) rather than eps <= 0: NaN compares false both ways and must
// be rejected here, not fed to the summarizer.
func validEpsilon(eps float64) bool {
	return eps > 0 && !math.IsInf(eps, 0)
}

// EncodeV1 writes the legacy single-stream format.
func EncodeV1(w io.Writer, epsilon float64, sums []core.Summary) error {
	if _, err := io.WriteString(w, MagicV1); err != nil {
		return err
	}
	if err := binWrite(w, Version1); err != nil {
		return err
	}
	if err := binWrite(w, math.Float64bits(epsilon)); err != nil {
		return err
	}
	return encodeSummaries(w, sums)
}

// decodeV1Body reads everything after the v1 magic and version.
func decodeV1Body(r io.Reader) (*Snapshot, error) {
	var epsBits uint64
	if err := binRead(r, &epsBits); err != nil {
		return nil, err
	}
	eps := math.Float64frombits(epsBits)
	if !validEpsilon(eps) {
		return nil, fmt.Errorf("invalid stored epsilon %v", eps)
	}
	sums, err := decodeSummaries(r)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Version: Version1, Epsilon: eps, Summaries: sums}, nil
}

// Decode sniffs the magic and reads either format. v2 input is fully
// checksum-verified; any mismatch is an error.
func Decode(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(MagicV1))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	var version uint32
	if err := binRead(r, &version); err != nil {
		return nil, err
	}
	switch {
	case string(magic) == MagicV1:
		if version != Version1 {
			return nil, fmt.Errorf("unsupported v1 store version %d", version)
		}
		return decodeV1Body(r)
	case string(magic) == MagicV2:
		if version != Version2 {
			return nil, fmt.Errorf("unsupported v2 store version %d", version)
		}
		return decodeV2Body(r)
	case string(magic) == MagicV3:
		if version != Version3 {
			return nil, fmt.Errorf("unsupported v3 store version %d", version)
		}
		return decodeV3Body(r)
	}
	return nil, errors.New("not a vitri summary store")
}

func binWrite(w io.Writer, v interface{}) error { return binary.Write(w, binary.LittleEndian, v) }
func binRead(r io.Reader, v interface{}) error  { return binary.Read(r, binary.LittleEndian, v) }

// capHint bounds an untrusted length prefix to a sane preallocation.
func capHint(n uint32) int {
	const maxPrealloc = 4096
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}
