package lint

import "testing"

// TestSelfLint is the regression gate: the real tree must stay free of
// unsuppressed findings. Every intentional violation carries a
// //lint:ignore directive, which this test counts to ensure suppression
// keeps being exercised (and noticed when it drifts).
func TestSelfLint(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unsuppressed finding: %s", d)
	}
	if res.Suppressed == 0 {
		t.Error("expected the tree's documented //lint:ignore suppressions to be counted")
	}
}

// TestServerGoroutinesLint pins the audit of the server's drain and
// auto-checkpoint goroutines: the lifecycle and atomic-consistency
// analyzers verified them clean — every spawn is WaitGroup-joined or
// done-channel-cancelled, and every shared field's guard holds — so any
// finding (or new suppression) here is a regression.
func TestServerGoroutinesLint(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(root, []string{"./internal/server"}, []*Analyzer{GoroutineLife, AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("server goroutine/atomic finding: %s", d)
	}
	if res.Suppressed != 0 {
		t.Errorf("server lifecycle checks consumed %d suppressions, want 0", res.Suppressed)
	}
}
