package index

import (
	"errors"
	"fmt"
	"sort"

	"vitri/internal/core"
	"vitri/internal/refpoint"
)

// Mode selects the KNN range-processing strategy of §5.2.
type Mode int

const (
	// Naive issues one B+-tree range search per query triplet, re-reading
	// any leaf pages shared by overlapping ranges.
	Naive Mode = iota
	// Composed merges overlapping ranges first so every leaf page is
	// fetched at most once per query (query composition).
	Composed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Naive:
		return "naive"
	case Composed:
		return "composed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Result is one ranked video.
type Result struct {
	VideoID int
	// Similarity is the estimated §3.1 video similarity in [0, 1].
	Similarity float64
	// Shared is the un-normalized estimated shared-frame count.
	Shared float64
}

// SearchStats reports the work a query performed. PageReads counts
// physical page reads attributable to this search; SimilarityOps counts
// ViTri-pair similarity evaluations (the paper's CPU-cost proxy).
type SearchStats struct {
	Ranges        int
	Candidates    int
	SimilarityOps int
	PageReads     uint64
}

// queryTriplet is a prepared query-side triplet with its 1-D search
// ranges (one for single-reference mappers, up to one per partition for
// the iDistance mapper).
type queryTriplet struct {
	vt     *core.ViTri
	ranges []refpoint.KeyRange
}

// covers reports whether any of the triplet's ranges contains key.
func (qt *queryTriplet) covers(key float64) bool {
	for _, r := range qt.ranges {
		if key >= r.Lo && key <= r.Hi {
			return true
		}
	}
	return false
}

// videoScore accumulates per-video similarity evidence.
type videoScore struct {
	qSums  []float64         // per query triplet: Σ shared with this video
	dbSums map[int32]float64 // per db cluster ordinal: Σ shared
	dbCnts map[int32]int32   // db cluster ordinal -> |C|
}

// Search returns the top-k most similar videos to the summarized query.
// The query's own video id, if indexed, participates like any other video.
func (ix *Index) Search(q *core.Summary, k int, mode Mode) ([]Result, SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, errors.New("index: k must be positive")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var stats SearchStats
	if len(q.Triplets) == 0 {
		return nil, stats, nil
	}
	readsBefore := ix.pg.Stats().Reads

	qts := make([]queryTriplet, len(q.Triplets))
	for i := range q.Triplets {
		vt := &q.Triplets[i]
		if len(vt.Position) != ix.dim {
			return nil, stats, fmt.Errorf("index: query dimensionality %d, index is %d", len(vt.Position), ix.dim)
		}
		qts[i] = queryTriplet{
			vt:     vt,
			ranges: ix.tr.Ranges(vt.Position, vt.Radius+ix.opts.Epsilon/2),
		}
	}

	scores := make(map[int32]*videoScore)
	accumulate := func(qi int, rec *Record, shared float64) {
		vs := scores[rec.VideoID]
		if vs == nil {
			vs = &videoScore{
				qSums:  make([]float64, len(qts)),
				dbSums: make(map[int32]float64),
				dbCnts: make(map[int32]int32),
			}
			scores[rec.VideoID] = vs
		}
		vs.qSums[qi] += shared
		vs.dbSums[rec.ClusterN] += shared
		vs.dbCnts[rec.ClusterN] = rec.Count
	}

	var err error
	switch mode {
	case Naive:
		err = ix.searchNaive(qts, &stats, accumulate)
	case Composed:
		err = ix.searchComposed(qts, &stats, accumulate)
	default:
		err = fmt.Errorf("index: unknown mode %v", mode)
	}
	if err != nil {
		return nil, stats, err
	}
	stats.PageReads = ix.pg.Stats().Reads - readsBefore

	results := make([]Result, 0, len(scores))
	for vid, vs := range scores {
		info := ix.catalog[vid]
		var total float64
		for i, s := range vs.qSums {
			if c := float64(qts[i].vt.Count); s > c {
				s = c
			}
			total += s
		}
		for cn, s := range vs.dbSums {
			if c := float64(vs.dbCnts[cn]); s > c {
				s = c
			}
			total += s
		}
		if total <= 0 {
			continue
		}
		sim := total / float64(q.FrameCount+info.frameCount)
		if sim > 1 {
			sim = 1
		}
		results = append(results, Result{VideoID: int(vid), Similarity: sim, Shared: total})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].VideoID < results[j].VideoID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}

// searchNaive runs one range search per query triplet range.
func (ix *Index) searchNaive(qts []queryTriplet, stats *SearchStats, accumulate func(int, *Record, float64)) error {
	var rec Record
	for qi := range qts {
		qt := &qts[qi]
		for _, kr := range qt.ranges {
			stats.Ranges++
			err := ix.tree.RangeScan(kr.Lo, kr.Hi, func(_ float64, val []byte) bool {
				if DecodeRecord(val, ix.dim, &rec) != nil {
					return false
				}
				stats.Candidates++
				stats.SimilarityOps++
				trip := rec.Triplet()
				if shared := core.SharedFrames(qt.vt, &trip); shared > 0 {
					accumulate(qi, &rec, shared)
				}
				return true
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// interval is one composed 1-D search range with the query triplets whose
// ranges it absorbed.
type interval struct {
	lo, hi  float64
	members []int
}

// composeRanges merges overlapping per-triplet ranges (§5.2 query
// composition). Returned intervals are disjoint and sorted.
func composeRanges(qts []queryTriplet) []interval {
	var ivs []interval
	for i := range qts {
		for _, kr := range qts[i].ranges {
			ivs = append(ivs, interval{lo: kr.Lo, hi: kr.Hi, members: []int{i}})
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			last.members = append(last.members, iv.members...)
			continue
		}
		out = append(out, iv)
	}
	return out
}

// searchComposed merges ranges, then scans each merged range once; every
// candidate is evaluated against the member triplets whose own range
// covers its key.
func (ix *Index) searchComposed(qts []queryTriplet, stats *SearchStats, accumulate func(int, *Record, float64)) error {
	var rec Record
	for _, iv := range composeRanges(qts) {
		stats.Ranges++
		err := ix.tree.RangeScan(iv.lo, iv.hi, func(key float64, val []byte) bool {
			if DecodeRecord(val, ix.dim, &rec) != nil {
				return false
			}
			stats.Candidates++
			var trip core.ViTri
			haveTrip := false
			for _, qi := range iv.members {
				qt := &qts[qi]
				if !qt.covers(key) {
					continue
				}
				if !haveTrip {
					trip = rec.Triplet()
					haveTrip = true
				}
				stats.SimilarityOps++
				if shared := core.SharedFrames(qt.vt, &trip); shared > 0 {
					accumulate(qi, &rec, shared)
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
