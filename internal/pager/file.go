package pager

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is an os.File-backed Pager. Pages live at offset id×PageSize.
type File struct {
	mu     sync.Mutex
	f      *os.File // guarded by mu
	pages  int      // guarded by mu
	stats  Stats    // guarded by mu
	closed bool     // guarded by mu
}

// OpenFile opens (or creates) a page file at path. An existing file must
// be a whole number of pages.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d is not page-aligned", path, info.Size())
	}
	return &File{f: f, pages: int(info.Size() / PageSize)}, nil
}

// Alloc implements Pager.
func (fp *File) Alloc() (PageID, error) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		return 0, ErrClosed
	}
	id := PageID(fp.pages)
	var zero Page
	if _, err := fp.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("pager: alloc page %d: %w", id, err)
	}
	fp.pages++
	fp.stats.Allocs++
	return id, nil
}

// Read implements Pager.
func (fp *File) Read(id PageID, p *Page) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		return ErrClosed
	}
	if int(id) >= fp.pages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, fp.pages)
	}
	if _, err := fp.f.ReadAt(p[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	fp.stats.Reads++
	return nil
}

// Write implements Pager.
func (fp *File) Write(id PageID, p *Page) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		return ErrClosed
	}
	if int(id) >= fp.pages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, fp.pages)
	}
	if _, err := fp.f.WriteAt(p[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	fp.stats.Writes++
	return nil
}

// NumPages implements Pager.
func (fp *File) NumPages() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.pages
}

// Stats implements Pager.
func (fp *File) Stats() Stats {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.stats
}

// ResetStats implements Pager.
func (fp *File) ResetStats() {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.stats = Stats{}
}

// Sync flushes the file to stable storage.
func (fp *File) Sync() error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		return ErrClosed
	}
	//lint:ignore lockorder Sync IS this pager's flush primitive: the mutex orders it against concurrent writes, and callers sync off the hot path
	return fp.f.Sync()
}

// Close implements Pager.
func (fp *File) Close() error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.closed {
		return nil
	}
	fp.closed = true
	return fp.f.Close()
}
