package refpoint

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

func clusteredCloud(r *rand.Rand, n, dim, clusters int) []vec.Vector {
	centers := make([]vec.Vector, clusters)
	for i := range centers {
		c := make(vec.Vector, dim)
		for j := range c {
			c[j] = r.Float64()
		}
		centers[i] = c
	}
	out := make([]vec.Vector, n)
	for i := range out {
		c := centers[r.Intn(clusters)]
		p := vec.Clone(c)
		for j := range p {
			p[j] += r.NormFloat64() * 0.03
		}
		out[i] = p
	}
	return out
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil, 4, 1); err == nil {
		t.Fatal("expected error for empty points")
	}
	pts := []vec.Vector{{1, 2}, {3, 4}}
	m, err := NewMulti(pts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitions() < 1 {
		t.Fatalf("partitions = %d", m.Partitions())
	}
	if m.Kind() != MultiRef || m.FirstPC() != nil {
		t.Fatalf("kind/FirstPC wrong: %v %v", m.Kind(), m.FirstPC())
	}
}

// Keys of different partitions live in disjoint bands.
func TestMultiKeyBandsDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := clusteredCloud(r, 500, 8, 5)
	m, err := NewMulti(pts, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Group keys by assigned partition; check each partition's keys stay
	// within [base, base+headroom] and bands do not interleave.
	for _, p := range pts {
		i, d := m.assign(p)
		key := m.Key(p)
		if key < m.base[i] || key > m.base[i]+m.headroom[i] {
			t.Fatalf("key %v outside band %d [%v, %v]", key, i, m.base[i], m.base[i]+m.headroom[i])
		}
		if math.Abs(key-(m.base[i]+d)) > 1e-12 {
			t.Fatalf("key is not base+distance: %v vs %v", key, m.base[i]+d)
		}
	}
	for i := 1; i < m.Partitions(); i++ {
		if m.base[i] < m.base[i-1]+m.headroom[i-1] {
			t.Fatalf("bands %d and %d overlap", i-1, i)
		}
	}
}

// The Ranges contract: for any database point x within gamma of a query
// q, x's key must be covered by one of Ranges(q, gamma) — this is what
// makes index pruning lossless.
func TestMultiRangesLossless(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := clusteredCloud(r, 400, 8, 4)
	m, err := NewMulti(pts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		q := pts[r.Intn(len(pts))]
		gamma := 0.05 + 0.3*r.Float64()
		ranges := m.Ranges(q, gamma)
		for _, x := range pts {
			if vec.Dist(q, x) > gamma {
				continue
			}
			key := m.Key(x)
			covered := false
			for _, kr := range ranges {
				if key >= kr.Lo-1e-12 && key <= kr.Hi+1e-12 {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point within gamma not covered: d=%v key=%v ranges=%v",
					vec.Dist(q, x), key, ranges)
			}
		}
	}
}

// Ranges must skip partitions the query ball cannot reach.
func TestMultiRangesPrune(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := clusteredCloud(r, 600, 8, 6)
	m, err := NewMulti(pts, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for trial := 0; trial < 50; trial++ {
		q := pts[r.Intn(len(pts))]
		if got := len(m.Ranges(q, 0.1)); got < m.Partitions() {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("tight queries never pruned a partition")
	}
}

// Out-of-distribution inserts are keyed at the band edge, never bleeding
// into the next band.
func TestMultiKeyClampsOutliers(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {0.1, 0}, {1, 1}, {1.1, 1}}
	m, err := NewMulti(pts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	far := vec.Vector{100, -100}
	i, _ := m.assign(far)
	key := m.Key(far)
	if key > m.base[i]+m.headroom[i] {
		t.Fatalf("outlier key %v beyond band end %v", key, m.base[i]+m.headroom[i])
	}
}

// Single-reference Transform.Ranges is the one-band special case.
func TestSingleTransformRanges(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {1, 1}}
	tr, err := New(Config{Kind: DataCenter}, pts)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Ranges(vec.Vector{1, 0}, 0.25)
	if len(got) != 1 {
		t.Fatalf("ranges = %v", got)
	}
	k := tr.Key(vec.Vector{1, 0})
	if got[0].Lo != k-0.25 || got[0].Hi != k+0.25 {
		t.Fatalf("range %v around key %v", got[0], k)
	}
}
