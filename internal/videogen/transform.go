package videogen

import (
	"math/rand"

	"vitri/internal/feature"
)

// Near-duplicate transforms model what happens to a clip between its
// original broadcast and a re-captured or re-encoded copy. They operate at
// the pixel level so the feature pipeline sees realistic distortions.

// Brightness returns a copy of the frames with every channel shifted by
// delta (clamped to [0, 255]).
func Brightness(frames []*feature.Frame, delta int) []*feature.Frame {
	out := make([]*feature.Frame, len(frames))
	for i, f := range frames {
		nf := feature.NewFrame(f.W, f.H)
		for p := range f.Pix {
			v := int(f.Pix[p]) + delta
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			nf.Pix[p] = byte(v)
		}
		out[i] = nf
	}
	return out
}

// Noise returns a copy with ±amp uniform noise added per channel.
func Noise(frames []*feature.Frame, amp int, seed int64) []*feature.Frame {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*feature.Frame, len(frames))
	for i, f := range frames {
		nf := feature.NewFrame(f.W, f.H)
		for p := range f.Pix {
			v := int(f.Pix[p]) + rng.Intn(2*amp+1) - amp
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			nf.Pix[p] = byte(v)
		}
		out[i] = nf
	}
	return out
}

// TemporalCrop drops a prefix and suffix, keeping frames [from, to).
func TemporalCrop(frames []*feature.Frame, from, to int) []*feature.Frame {
	if from < 0 {
		from = 0
	}
	if to > len(frames) {
		to = len(frames)
	}
	if from >= to {
		return nil
	}
	out := make([]*feature.Frame, to-from)
	copy(out, frames[from:to])
	return out
}

// Subsample keeps every stride-th frame (frame-rate reduction).
func Subsample(frames []*feature.Frame, stride int) []*feature.Frame {
	if stride <= 1 {
		out := make([]*feature.Frame, len(frames))
		copy(out, frames)
		return out
	}
	var out []*feature.Frame
	for i := 0; i < len(frames); i += stride {
		out = append(out, frames[i])
	}
	return out
}
