// Package atomix seeds the atomic-consistency violations — mixed
// atomic/plain access, guarded fields touched outside their mutex,
// post-publication writes to immutable fields, unresolvable guards —
// next to the annotated shapes atomicmix accepts.
package atomix

import (
	"sync"
	"sync/atomic"
)

// Counter mixes atomic and plain access to hits.
type Counter struct {
	hits uint64
}

// Bump is the atomic side.
func (c *Counter) Bump() {
	atomic.AddUint64(&c.hits, 1)
}

// Read is the plain side: racy against Bump.
func (c *Counter) Read() uint64 {
	return c.hits // want "field hits is accessed through sync/atomic"
}

// Gauge documents its guard; the analyzer enforces it.
type Gauge struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// Set takes the lock: clean.
func (g *Gauge) Set(v int) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// setLocked inherits the caller's lock — the interprocedural entry set
// proves every caller holds g.mu: clean.
func (g *Gauge) setLocked(v int) {
	g.val = v
}

// SetViaHelper funnels the write through setLocked under the lock.
func (g *Gauge) SetViaHelper(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setLocked(v)
}

// Peek reads without the lock.
func (g *Gauge) Peek() int {
	return g.val // want "field val is read without holding mu"
}

// RGauge's writers need the exclusive lock: RLock is not enough.
type RGauge struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

// BumpUnderRLock writes under a read lock.
func (g *RGauge) BumpUnderRLock() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val++ // want "field val is written without exclusively holding mu"
}

// Config is fixed at construction.
type Config struct {
	name string // immutable
}

// NewConfig writes before publication — the receiver is provably fresh:
// clean.
func NewConfig(name string) *Config {
	c := &Config{}
	c.name = name
	return c
}

// Rename mutates a published Config.
func (c *Config) Rename(name string) {
	c.name = name // want "field name is annotated // immutable but written after publication"
}

// Broken's guard names a mutex that does not exist.
type Broken struct {
	mu sync.Mutex
	// guarded by missing
	val int // want "does not resolve to a mutex field"
}

// touch keeps Broken.val referenced.
func (b *Broken) touch() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}
