# Tier-1 verification is `make check`: vet plus the full test suite under
# the race detector. The concurrency stress tests (concurrency_test.go,
# internal/index/parallel_test.go) are only meaningful with -race, so the
# race run gates every PR.

GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...
