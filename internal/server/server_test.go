package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vitri"
)

// synthVideo makes a video of a few gaussian shots. Shot centers are
// drawn from [lo, hi]^dim so tests can place video populations in
// disjoint regions of feature space.
func synthVideo(r *rand.Rand, dim, shots, perShot int, lo, hi float64) []vitri.Vector {
	var frames []vitri.Vector
	for s := 0; s < shots; s++ {
		center := make(vitri.Vector, dim)
		for j := range center {
			center[j] = lo + (hi-lo)*r.Float64()
		}
		for f := 0; f < perShot; f++ {
			p := make(vitri.Vector, dim)
			for j := range p {
				p[j] = center[j] + r.NormFloat64()*0.02
			}
			frames = append(frames, p)
		}
	}
	return frames
}

func noisyCopy(r *rand.Rand, frames []vitri.Vector, sigma float64) []vitri.Vector {
	out := make([]vitri.Vector, len(frames))
	for i, f := range frames {
		p := make(vitri.Vector, len(f))
		for j := range f {
			p[j] = f[j] + r.NormFloat64()*sigma
		}
		out[i] = p
	}
	return out
}

// testCorpus builds a DB over n synthetic videos (ids 0..n-1) in the
// [0.2, 0.8] region and returns it with the videos' frames.
func testCorpus(t *testing.T, n int, opts vitri.Options) (*vitri.DB, [][]vitri.Vector) {
	t.Helper()
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	db := vitri.New(opts)
	r := rand.New(rand.NewSource(77))
	videos := make([][]vitri.Vector, n)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 15, 0.2, 0.8)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, videos
}

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

func framesJSON(frames []vitri.Vector) [][]float64 {
	out := make([][]float64, len(frames))
	for i, f := range frames {
		out[i] = f
	}
	return out
}

func TestSearchSingleAndBatch(t *testing.T) {
	db, videos := testCorpus(t, 12, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(5))
	q := framesJSON(noisyCopy(r, videos[7], 0.01))

	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": q, "k": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single search status = %d", resp.StatusCode)
	}
	var single searchResponse
	decodeBody(t, resp, &single)
	if len(single.Matches) == 0 || single.Matches[0].VideoID != 7 {
		t.Fatalf("single search matches = %+v", single.Matches)
	}
	if single.Stats.PageReads == 0 || single.Stats.Ranges == 0 {
		t.Fatalf("single search stats not attributed: %+v", single.Stats)
	}

	q2 := framesJSON(noisyCopy(r, videos[3], 0.01))
	resp = postJSON(t, ts.URL+"/search", map[string]interface{}{"queries": [][][]float64{q, q2}, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch search status = %d", resp.StatusCode)
	}
	var batch batchResponse
	decodeBody(t, resp, &batch)
	if len(batch.Results) != 2 {
		t.Fatalf("batch results = %d", len(batch.Results))
	}
	if batch.Results[0].Matches[0].VideoID != 7 || batch.Results[1].Matches[0].VideoID != 3 {
		t.Fatalf("batch matches = %+v", batch.Results)
	}

	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestRequestValidation(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{MaxBodyBytes: 1 << 20, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q := framesJSON(videos[0])

	cases := []struct {
		name string
		body interface{}
		want int
	}{
		{"neither frames nor queries", map[string]interface{}{"k": 3}, http.StatusBadRequest},
		{"both frames and queries", map[string]interface{}{"frames": q, "queries": [][][]float64{q}}, http.StatusBadRequest},
		{"k too large", map[string]interface{}{"frames": q, "k": 10_000}, http.StatusBadRequest},
		{"negative k", map[string]interface{}{"frames": q, "k": -1}, http.StatusBadRequest},
		{"bad mode", map[string]interface{}{"frames": q, "mode": "psychic"}, http.StatusBadRequest},
		{"empty frames", map[string]interface{}{"frames": [][]float64{}}, http.StatusBadRequest},
		{"ragged frames", map[string]interface{}{"frames": [][]float64{{1, 2}, {1}}}, http.StatusBadRequest},
		{"unknown field", map[string]interface{}{"frames": q, "wat": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/search", tc.body)
		var e errorResponse
		decodeBody(t, resp, &e)
		if resp.StatusCode != tc.want || e.Error == "" {
			t.Errorf("%s: status = %d (error %q), want %d", tc.name, resp.StatusCode, e.Error, tc.want)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status = %d", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{MaxBodyBytes: 64, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": framesJSON(videos[0])})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestInsertRemoveLifecycle(t *testing.T) {
	db, videos := testCorpus(t, 6, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(9))
	newFrames := framesJSON(synthVideo(r, 8, 2, 12, 0.2, 0.8))

	resp := postJSON(t, ts.URL+"/insert", map[string]interface{}{"id": 100, "frames": newFrames})
	var mut mutateResponse
	decodeBody(t, resp, &mut)
	if resp.StatusCode != http.StatusOK || mut.Videos != 7 {
		t.Fatalf("insert: status %d, %+v", resp.StatusCode, mut)
	}

	// Duplicate id → 409.
	resp = postJSON(t, ts.URL+"/insert", map[string]interface{}{"id": 100, "frames": newFrames})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert status = %d, want 409", resp.StatusCode)
	}
	// Negative id → 400.
	resp = postJSON(t, ts.URL+"/insert", map[string]interface{}{"id": -1, "frames": newFrames})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative-id insert status = %d, want 400", resp.StatusCode)
	}

	// The inserted video is searchable.
	q := framesJSON(noisyCopy(r, toVectorsMust(t, newFrames), 0.01))
	resp = postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": q, "k": 2})
	var sr searchResponse
	decodeBody(t, resp, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Matches) == 0 || sr.Matches[0].VideoID != 100 {
		t.Fatalf("search for inserted video: status %d, %+v", resp.StatusCode, sr.Matches)
	}

	resp = postJSON(t, ts.URL+"/remove", map[string]interface{}{"id": 100})
	decodeBody(t, resp, &mut)
	if resp.StatusCode != http.StatusOK || mut.Videos != 6 {
		t.Fatalf("remove: status %d, %+v", resp.StatusCode, mut)
	}
	// Removing again → 404.
	resp = postJSON(t, ts.URL+"/remove", map[string]interface{}{"id": 100})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second remove status = %d, want 404", resp.StatusCode)
	}
	_ = videos
}

func toVectorsMust(t *testing.T, frames [][]float64) []vitri.Vector {
	t.Helper()
	v, err := toVectors(frames)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthzAndStats(t *testing.T) {
	db, videos := testCorpus(t, 5, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthzResponse
	decodeBody(t, resp, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Videos != 5 {
		t.Fatalf("healthz: status %d, %+v", resp.StatusCode, h)
	}

	// One search, then stats must reflect it.
	postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": framesJSON(videos[1])}).Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decodeBody(t, resp, &st)
	if st.Videos != 5 || st.SearchQueries != 1 || st.SearchPageReads == 0 {
		t.Fatalf("stats = %+v", st)
	}
	ep, ok := st.Endpoints[epSearch]
	if !ok || ep.Requests != 1 || ep.LatencyMaxS <= 0 {
		t.Fatalf("search endpoint stats = %+v (present %v)", ep, ok)
	}
	if st.AdmissionLimit == 0 {
		t.Fatalf("admission limit missing: %+v", st)
	}
}

func TestPanicRecovery(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	var once int32
	srv.testHookAdmitted = func() {
		if atomic.CompareAndSwapInt32(&once, 0, 1) {
			panic("boom")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := map[string]interface{}{"frames": framesJSON(videos[0])}
	resp := postJSON(t, ts.URL+"/search", body)
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusInternalServerError || e.Error == "" {
		t.Fatalf("panicking request: status %d, error %q", resp.StatusCode, e.Error)
	}

	// The process survived; the next request succeeds and the panic is
	// counted.
	resp = postJSON(t, ts.URL+"/search", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status %d", resp.StatusCode)
	}
	if got := srv.met.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d", got)
	}
	// The admission slot was released despite the panic.
	if held := srv.adm.held(); held != 0 {
		t.Fatalf("admission slots leaked: %d", held)
	}
}

func TestAdmissionControl(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{MaxInFlight: 2, RetryAfter: 3 * time.Second, ErrorLog: quietLog()})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	srv.testHookAdmitted = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := map[string]interface{}{"frames": framesJSON(videos[0])}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/search", body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until both slots are provably held.
	<-entered
	<-entered

	// The N+1st request is shed immediately with 429 + Retry-After.
	resp := postJSON(t, ts.URL+"/search", body)
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if e.Error == "" {
		t.Fatal("429 body has no error message")
	}

	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("held request %d status = %d", i, c)
		}
	}
	if got := srv.met.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d", got)
	}
}

func TestRequestTimeout(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{RequestTimeout: 50 * time.Millisecond, ErrorLog: quietLog()})
	release := make(chan struct{})
	srv.testHookWork = func() { <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": framesJSON(videos[0])})
	var e errorResponse
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusGatewayTimeout || e.Error == "" {
		t.Fatalf("timed-out request: status %d, error %q", resp.StatusCode, e.Error)
	}
	if got := srv.met.timeouts.Value(); got != 1 {
		t.Fatalf("timeouts counter = %d", got)
	}

	// Graceful close must wait for the abandoned search, then succeed.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close(context.Background()) }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned before abandoned work finished: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookAdmitted = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := map[string]interface{}{"frames": framesJSON(videos[2])}
	inFlight := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/search", body)
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	<-entered

	// Begin shutdown while the request is mid-flight.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close(context.Background()) }()

	// New work is rejected with 503 as soon as draining begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting requests")
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight request still completes with a full response.
	close(release)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d", code)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	// After Close, the DB's pager is closed: a direct search fails.
	q := vitri.Summarize(-1, videos[0], db.Epsilon(), db.Seed())
	if _, _, err := db.SearchSummary(&q, 1, vitri.Composed); err == nil {
		t.Fatal("search succeeded on a closed database")
	}
	// Close is idempotent.
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestCloseDrainDeadline(t *testing.T) {
	db, videos := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookAdmitted = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": framesJSON(videos[0])})
		resp.Body.Close()
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Close(ctx); err == nil {
		t.Fatal("Close with stuck in-flight work returned nil before the drain finished")
	}
	// The pager must still be open: the stuck request finishes fine.
	close(release)
	<-done

	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("final close: %v", err)
	}
}

func TestSearchModesAgree(t *testing.T) {
	db, videos := testCorpus(t, 10, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(3))
	q := framesJSON(noisyCopy(r, videos[4], 0.01))
	get := func(mode string) searchResponse {
		resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": q, "k": 5, "mode": mode})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s status = %d", mode, resp.StatusCode)
		}
		var sr searchResponse
		decodeBody(t, resp, &sr)
		return sr
	}
	composed, naive := get("composed"), get("naive")
	if fmt.Sprintf("%v", composed.Matches) != fmt.Sprintf("%v", naive.Matches) {
		t.Fatalf("modes disagree:\ncomposed %v\nnaive    %v", composed.Matches, naive.Matches)
	}
}
