// Package renames seeds violations and blessed shapes of the
// atomic-replace discipline syncbeforerename enforces: a vfs Rename must
// be preceded by a vfs File.Sync in the same function.
package renames

import "fixture/vfs"

// PublishUnsynced renames a temp file whose bytes were never fsynced —
// the classic crash bug the analyzer exists for.
func PublishUnsynced(fsys vfs.FS, data []byte) error {
	f, err := fsys.Create("store.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename("store.tmp", "store") // want "without a preceding File.Sync in PublishUnsynced"
}

// BareRename has no write at all in scope; the rule still demands a sync
// (or a suppression, when the contents provably never changed).
func BareRename(fsys vfs.FS) error {
	return fsys.Rename("a", "b") // want "without a preceding File.Sync in BareRename"
}

// SyncAfterRenameTooLate syncs the wrong side of the rename.
func SyncAfterRenameTooLate(fsys vfs.FS, f vfs.File) error {
	if err := fsys.Rename("x.tmp", "x"); err != nil { // want "without a preceding File.Sync in SyncAfterRenameTooLate"
		return err
	}
	return f.Sync()
}

// PublishAtomic is the sanctioned shape: write, sync, close, rename,
// sync the directory.
func PublishAtomic(fsys vfs.FS, data []byte) error {
	f, err := fsys.Create("store.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename("store.tmp", "store"); err != nil {
		return err
	}
	return fsys.SyncDir(".")
}

// MoveUntouched legitimately renames a file it never wrote; the drop is
// documented in place.
func MoveUntouched(fsys vfs.FS) error {
	//lint:ignore syncbeforerename the source file's contents were never modified here
	return fsys.Rename("old-name", "new-name")
}
