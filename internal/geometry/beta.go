// Package geometry implements the n-dimensional volume computations that
// underpin ViTri similarity (paper §3.2): hypersphere, hypersector,
// hypercone and hypercap volumes, and the volume of intersection of two
// hyperspheres.
//
// Two independent formulations are provided and cross-checked in tests:
//
//   - the paper's closed-form finite series for even/odd dimensionality
//     (SectorVolumeSeries, CapVolumeSeries), and
//   - a regularized-incomplete-beta formulation (CapVolume, SectorVolume)
//     that is numerically stable for all angles and dimensions.
//
// Because cluster volumes in high-dimensional spaces underflow float64
// (a 64-d sphere of radius 0.15 has volume ~1e-73), log-space variants
// (LogSphereVolume, LogCapVolume, LogIntersectionVolume) are the production
// path used by the similarity measure.
package geometry

import "math"

// RegIncompleteBeta returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], computed with the continued
// fraction expansion (modified Lentz method) plus the symmetry relation
// I_x(a,b) = 1 - I_{1-x}(b,a) for fast convergence on either side of the
// mean a/(a+b).
func RegIncompleteBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		panic("geometry: RegIncompleteBeta requires a, b > 0")
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lgamma wraps math.Lgamma discarding the sign, which is always +1 for the
// positive arguments used here.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
