package vitri

import (
	"io/fs"
	"sync/atomic"
	"testing"
	"time"

	"vitri/internal/vfs"
)

// gatedSyncFS makes every file's Sync block on the gate channel once
// armed, and signals started when a sync first parks there.
type gatedSyncFS struct {
	vfs.FS
	armed   atomic.Bool
	gate    chan struct{}
	started chan struct{}
}

func (g *gatedSyncFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gatedSyncFile{File: f, fs: g}, nil
}

type gatedSyncFile struct {
	vfs.File
	fs *gatedSyncFS
}

func (f *gatedSyncFile) Sync() error {
	if f.fs.armed.Load() {
		select {
		case f.fs.started <- struct{}{}:
		default:
		}
		<-f.fs.gate
	}
	return f.File.Sync()
}

// TestCloseSyncDoesNotBlockReaders locks down the fix the lock graph
// forced on DB.Close: the journal's final fsync must happen outside
// db.mu, so readers racing a shutdown are never stalled behind disk
// latency. With the old under-lock Close, db.Len here deadlocks until
// the gate opens.
func TestCloseSyncDoesNotBlockReaders(t *testing.T) {
	fsys := &gatedSyncFS{
		FS:      vfs.NewMemFS(),
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	db, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if err := db.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}

	fsys.armed.Store(true)
	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()

	// Close is parked inside the journal's gated fsync.
	select {
	case <-fsys.started:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never reached the journal fsync")
	}

	lenDone := make(chan int, 1)
	go func() { lenDone <- db.Len() }()
	select {
	case n := <-lenDone:
		if n != 3 {
			t.Fatalf("Len = %d, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("db.Len blocked while Close was stalled in the journal fsync: the sync is back under db.mu")
	}

	close(fsys.gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
