package experiments

import (
	"fmt"
	"runtime"

	"vitri/internal/core"
	"vitri/internal/index"
	"vitri/internal/metrics"
	"vitri/internal/refpoint"
)

// ParallelSearch benchmarks the concurrent query engine against the
// strictly sequential §5.2 baseline on one database: per-query latency
// with the disjoint range scans fanned across a worker pool
// (SearchParallelism), and whole-batch throughput with SearchBatch
// pipelining the query set through the same pool. Results are verified
// identical between the sequential and parallel runs before any number
// is reported — parallelism is a pure execution-strategy change.
func ParallelSearch(cfg Config) ([]*metrics.Table, error) {
	par := cfg.SearchParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	env, err := cfg.newIndexEnv(cfg.FixedViTris, 64, cfg.Seed+404)
	if err != nil {
		return nil, err
	}
	ix, err := index.Build(env.sums, index.Options{
		Epsilon:           cfg.Epsilon,
		RefKind:           refpoint.Optimal,
		SearchParallelism: par,
	})
	if err != nil {
		return nil, err
	}

	lat := &metrics.Table{
		Title: fmt.Sprintf("Parallel KNN: per-query latency, sequential vs %d workers (%d ViTris)",
			par, cfg.FixedViTris),
		Columns: []string{"Mode", "Seq µs/query", "Par µs/query", "Speedup", "Pages/query", "Ranges/query"},
	}
	for _, mode := range []index.Mode{index.Naive, index.Composed} {
		cfg.logf("  parallel: %s latency", mode)
		seq, err := measureLatency(ix, env.queries, cfg.K, mode, 1)
		if err != nil {
			return nil, err
		}
		pp, err := measureLatency(ix, env.queries, cfg.K, mode, par)
		if err != nil {
			return nil, err
		}
		if err := resultsEqual(ix, env.queries, cfg.K, mode, par); err != nil {
			return nil, err
		}
		lat.AddRowf(mode.String(), fmt.Sprintf("%.0f", seq.us), fmt.Sprintf("%.0f", pp.us),
			fmt.Sprintf("%.2fx", seq.us/pp.us), fmt.Sprintf("%.1f", pp.pages), fmt.Sprintf("%.1f", pp.ranges))
	}

	thr := &metrics.Table{
		Title:   fmt.Sprintf("Parallel KNN: batch throughput over %d queries (composed mode)", len(env.queries)),
		Columns: []string{"Execution", "Total µs", "Queries/s"},
	}
	seqTotal, err := timeIt(func() error {
		for qi := range env.queries {
			if _, _, err := ix.SearchParallel(&env.queries[qi], cfg.K, index.Composed, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	batchTotal, err := timeIt(func() error {
		for _, item := range ix.SearchBatch(env.queries, cfg.K, index.Composed) {
			if item.Err != nil {
				return item.Err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	thr.AddRowf("sequential loop", fmt.Sprintf("%.0f", seqTotal), fmt.Sprintf("%.0f", qps(len(env.queries), seqTotal)))
	thr.AddRowf(fmt.Sprintf("SearchBatch ×%d", par), fmt.Sprintf("%.0f", batchTotal), fmt.Sprintf("%.0f", qps(len(env.queries), batchTotal)))
	return []*metrics.Table{lat, thr}, nil
}

// latRow aggregates one latency measurement.
type latRow struct {
	us     float64
	pages  float64
	ranges float64
}

// measureLatency averages per-query wall time at the given intra-query
// parallelism.
func measureLatency(ix *index.Index, queries []core.Summary, k int, mode index.Mode, par int) (latRow, error) {
	var row latRow
	for qi := range queries {
		var stats index.SearchStats
		us, err := timeIt(func() error {
			var e error
			_, stats, e = ix.SearchParallel(&queries[qi], k, mode, par)
			return e
		})
		if err != nil {
			return row, err
		}
		row.us += us
		row.pages += float64(stats.PageReads)
		row.ranges += float64(stats.Ranges)
	}
	n := float64(len(queries))
	row.us /= n
	row.pages /= n
	row.ranges /= n
	return row, nil
}

// resultsEqual asserts the parallel engine returns exactly the sequential
// results (same ranking, same floats, same deterministic stats).
func resultsEqual(ix *index.Index, queries []core.Summary, k int, mode index.Mode, par int) error {
	for qi := range queries {
		seqRes, seqStats, err := ix.SearchParallel(&queries[qi], k, mode, 1)
		if err != nil {
			return err
		}
		parRes, parStats, err := ix.SearchParallel(&queries[qi], k, mode, par)
		if err != nil {
			return err
		}
		if len(seqRes) != len(parRes) {
			return fmt.Errorf("parallel: query %d: %d results sequential, %d parallel", qi, len(seqRes), len(parRes))
		}
		for i := range seqRes {
			if seqRes[i] != parRes[i] {
				return fmt.Errorf("parallel: query %d result %d diverged: %+v vs %+v", qi, i, seqRes[i], parRes[i])
			}
		}
		if seqStats != parStats {
			return fmt.Errorf("parallel: query %d stats diverged: %+v vs %+v", qi, seqStats, parStats)
		}
	}
	return nil
}

// qps converts a query count and total microseconds to queries/second.
func qps(n int, totalUS float64) float64 {
	if totalUS <= 0 {
		return 0
	}
	return float64(n) / (totalUS / 1e6)
}
