package index

import (
	"errors"
	"sort"

	"vitri/internal/core"
)

// SearchImage runs a query-by-image probe: the query summary's triplets
// (for an image, the single triplet a one-frame video summarizes to) are
// driven through the exact scan pipeline whole-video KNN uses — B+-tree
// range scans at γ = r_q + ε/2, the signature pre-filter gate, exact
// float64 catalog geometry — but each video is ranked by its BEST
// matching (query triplet, db triplet) cell instead of the clamped §3.1
// sum: the image's score against a video is the estimated shared-frame
// count of the triplet that explains the frame best. For a single-frame
// probe that value is in (0, 1] (SharedFrames clamps at the probe's
// frame count of 1), so Similarity doubles as a match confidence.
//
// Because the best-cell fold is a max over canonical cells — each cell
// written by exactly one evaluation — the ranking is a pure function of
// (query, video contents): identical run to run, at every parallelism,
// across any sharding of the database, and with the pre-filter on or
// off. Results sort by Similarity descending, video id ascending, like
// every other ranking in the engine, so scatter-gather merges are
// order-compatible. Stats carry the same contract as Search: exact
// per-query PageReads, and SimilarityOps + SignatureSkips invariant
// under the signature tier.
func (ix *Index) SearchImage(q *core.Summary, k int, mode Mode, parallelism int) ([]Result, SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, errors.New("index: k must be positive")
	}
	if parallelism <= 0 {
		parallelism = ix.opts.SearchParallelism
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	if len(q.Triplets) == 0 {
		return nil, SearchStats{}, nil
	}
	_, scores, stats, err := ix.scanQueryLocked(q, mode, parallelism)
	if err != nil {
		return nil, SearchStats{}, err
	}
	return rankImage(scores, k), stats, nil
}

// rankImage turns accumulated scores into the image probe's top-k: per
// video, the maximum cell value. Max is order-independent, so unlike
// rankLocked no canonical fold order is needed for determinism.
func rankImage(scores map[int32]*videoScore, k int) []Result {
	results := make([]Result, 0, len(scores))
	for vid, vs := range scores {
		var best float64
		for _, v := range vs.cells {
			if v > best {
				best = v
			}
		}
		if best <= 0 {
			continue
		}
		results = append(results, Result{VideoID: int(vid), Similarity: best, Shared: best})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].VideoID < results[j].VideoID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}
