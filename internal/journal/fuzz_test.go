package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the replay scanner and
// checks its safety contract: it never panics, never surfaces a record
// that did not pass its checksum (approximated by the properties below —
// any surfaced record must survive a rescan of the reported valid
// prefix), reports a valid prefix no longer than the input, and applies
// records with strictly increasing sequence numbers.
func FuzzJournalReplay(f *testing.F) {
	// Seed corpus: well-formed journals of increasing richness, plus
	// truncations and near-miss corruptions of them, so the fuzzer starts
	// at the interesting boundaries instead of random noise.
	f.Add([]byte{})
	f.Add(encodeHeader(1))
	s := testSummary(3)
	var valid bytes.Buffer
	valid.Write(encodeHeader(1))
	pay, err := addPayload(&s)
	if err != nil {
		f.Fatal(err)
	}
	encodeRecord(&valid, KindAdd, 1, pay)
	encodeRecord(&valid, KindRemove, 2, removePayload(3))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add(valid.Bytes()[:headerSize+5])
	mut := append([]byte(nil), valid.Bytes()...)
	mut[headerSize+9] ^= 0x40
	f.Add(mut)
	hdr := append([]byte(nil), encodeHeader(7)...)
	hdr[21] ^= 0xff
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []Entry
		res, err := Scan(bytes.NewReader(data), func(e Entry) error {
			entries = append(entries, e)
			return nil
		})
		if err != nil {
			t.Fatalf("Scan returned an error for hostile input: %v", err)
		}
		if res.Valid < 0 || res.Valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", res.Valid, len(data))
		}
		if res.Records != len(entries) {
			t.Fatalf("Records=%d but apply ran %d times", res.Records, len(entries))
		}
		if !res.HeaderOK && len(entries) != 0 {
			t.Fatal("records surfaced without a valid header")
		}
		prev := uint64(0)
		for i, e := range entries {
			if i > 0 && e.Seq <= prev {
				t.Fatalf("non-monotonic seq %d after %d", e.Seq, prev)
			}
			prev = e.Seq
			if e.Kind != KindAdd && e.Kind != KindRemove {
				t.Fatalf("unknown kind %d surfaced", e.Kind)
			}
		}
		// The reported valid prefix must be self-consistent: rescanning it
		// yields exactly the same records. This is the recovery contract —
		// truncating to res.Valid loses nothing that was surfaced.
		var again []Entry
		res2, err := Scan(bytes.NewReader(data[:res.Valid]), func(e Entry) error {
			again = append(again, e)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Records != res.Records || res2.Valid != res.Valid || res2.LastSeq != res.LastSeq {
			t.Fatalf("rescan of valid prefix diverged: %+v vs %+v", res2, res)
		}
	})
}
