// Package dataset assembles the evaluation corpora. Two generation paths
// feed the same Corpus type:
//
//   - the pixel path (GeneratePixel) renders procedural video with
//     internal/videogen and extracts the paper's 64-d histograms with
//     internal/feature — the full pipeline, used by tests, examples and
//     the small-scale precision experiments; and
//   - the histogram path (GenerateHist) synthesizes frame features
//     directly with the same shot statistics (compact intra-shot
//     clusters, sharp cuts, Zipf-skewed bin popularity for realistic
//     correlation), which scales to the hundreds of thousands of frames
//     the index experiments need.
//
// The paper's dataset (Table 2: 6,587 TV ads at 25 fps) is proprietary;
// PaperSpec reproduces its duration mix at a configurable scale.
package dataset

import (
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"

	"vitri/internal/baseline"
	"vitri/internal/feature"
	"vitri/internal/vec"
	"vitri/internal/videogen"
)

// Video is one clip: its id, duration class and frame feature vectors.
type Video struct {
	ID          int
	DurationSec float64
	Frames      []vec.Vector
}

// Corpus is a dataset of feature-extracted videos.
type Corpus struct {
	Dim    int
	FPS    int
	Videos []Video
}

// FrameCount returns the total number of frames.
func (c *Corpus) FrameCount() int {
	n := 0
	for i := range c.Videos {
		n += len(c.Videos[i].Frames)
	}
	return n
}

// ByID returns frame sequences keyed by video id (the shape ExactKNN
// consumes).
func (c *Corpus) ByID() map[int][]vec.Vector {
	out := make(map[int][]vec.Vector, len(c.Videos))
	for i := range c.Videos {
		out[c.Videos[i].ID] = c.Videos[i].Frames
	}
	return out
}

// DurationSpec is one duration class: videos of Seconds length, Count of
// them.
type DurationSpec struct {
	Seconds float64
	Count   int
}

// PaperSpec reproduces Table 2's duration mix (30s×2934, 15s×2519,
// 10s×1134) scaled by the given factor; each class keeps at least one
// video for any positive scale.
func PaperSpec(scale float64) []DurationSpec {
	mk := func(sec float64, count int) DurationSpec {
		n := int(float64(count) * scale)
		if n < 1 {
			n = 1
		}
		return DurationSpec{Seconds: sec, Count: n}
	}
	return []DurationSpec{mk(30, 2934), mk(15, 2519), mk(10, 1134)}
}

// HistConfig parameterizes the histogram-space generator.
//
// The generator models what makes the paper's TV-advertisement corpus
// interesting for this workload:
//
//   - a *shot library*: broadcast material reuses footage (station logos,
//     stock shots, re-cut campaigns), so videos genuinely share frames —
//     every shot is drawn from a global library with Zipf popularity,
//     giving ground-truth near-neighbour structure;
//   - a *color-profile gradient*: shot palettes interpolate between two
//     global profiles, so the corpus has a dominant principal direction
//     for the optimal reference point to exploit;
//   - compact intra-shot jitter and hard cuts, reproducing Table 3's
//     cluster statistics.
type HistConfig struct {
	Dim        int     // feature dimensionality (64 in the paper)
	FPS        int     // frames per second (25 in the paper)
	AvgShotSec float64 // mean shot length; ~2s matches Table 3's ε=0.3 row
	ShotNoise  float64 // within-shot per-bin jitter scale
	ActiveBins int     // active histogram bins per shot
	// LibraryShots is the size of the global shot library; smaller values
	// mean more footage sharing between videos.
	LibraryShots int
	Seed         int64
	Durations    []DurationSpec
}

// DefaultHistConfig returns paper-matched parameters at the given corpus
// scale. The library scales with the corpus so sharing density stays
// constant.
func DefaultHistConfig(scale float64, seed int64) HistConfig {
	videos := 0
	for _, s := range PaperSpec(scale) {
		videos += s.Count
	}
	// A tight library: broadcast corpora re-use footage heavily, so a
	// query's ground-truth neighbourhood (shared-footage videos) is deep.
	lib := videos * 3 / 2
	if lib < 16 {
		lib = 16
	}
	return HistConfig{
		Dim:          64,
		FPS:          25,
		AvgShotSec:   2.0,
		ShotNoise:    0.004,
		ActiveBins:   8,
		LibraryShots: lib,
		Seed:         seed,
		Durations:    PaperSpec(scale),
	}
}

func (cfg *HistConfig) validate() error {
	if cfg.Dim < 2 {
		return fmt.Errorf("dataset: dim %d too small", cfg.Dim)
	}
	if cfg.FPS <= 0 || cfg.AvgShotSec <= 0 || cfg.ActiveBins < 1 || len(cfg.Durations) == 0 {
		return fmt.Errorf("dataset: invalid config %+v", *cfg)
	}
	if cfg.ActiveBins > cfg.Dim {
		return fmt.Errorf("dataset: ActiveBins %d exceeds Dim %d", cfg.ActiveBins, cfg.Dim)
	}
	if cfg.LibraryShots < 1 {
		return fmt.Errorf("dataset: LibraryShots %d", cfg.LibraryShots)
	}
	return nil
}

// shotLibrary is the global pool of shot palettes videos sample from,
// grouped by visual family. A video belongs to one family and draws most
// of its shots there (with occasional cross-family material, like shared
// station graphics).
type shotLibrary struct {
	byFamily [][]libShot
	picks    []*rand.Zipf // one popularity law per family
	all      []libShot
	pickAll  *rand.Zipf
}

// libShot is one piece of footage. Its frames spread around the base
// palette along a low-rank motion subspace (camera pans and object motion
// move a histogram within a plane, not isotropically): frame = base +
// amp·(u1·dir1 + u2·dir2) + sensor noise. The low rank matters twice —
// the recursive 2-means can actually shrink such clusters, and the µ+σ
// radius is stable across renderings, so two videos' clusters over the
// same footage agree in both position and radius. The amplitude is a
// property of the footage (static packshot vs action shot); shots with
// amp above the ε/2 bound are the ones the clustering splits, producing
// Table 3's cluster-count scaling.
type libShot struct {
	from vec.Vector
	dirs [2]vec.Vector // unit motion directions
	amp  float64       // major motion amplitude (feature-space units)
	amp2 float64       // minor amplitude: motion is an anisotropic ellipse,
	// so when ε forces a split, 2-means cuts along the major axis — the
	// same cut in every rendering, keeping split clusters aligned across
	// videos
	noise float64 // per-bin sensor noise
}

// corpusFamilies is the number of visual families in generated corpora.
const corpusFamilies = 4

// newShotLibrary builds the library over a set of visual families.
func newShotLibrary(rng *rand.Rand, dim, activeBins, size int) *shotLibrary {
	fams := familyPalettes(rng, dim, activeBins, corpusFamilies)
	perFam := size / corpusFamilies
	if perFam < 2 {
		perFam = 2
	}
	lib := &shotLibrary{}
	for f := 0; f < corpusFamilies; f++ {
		shots := make([]libShot, perFam)
		for j := range shots {
			// Palette = shot-specific accent with a family tint. The
			// accent dominates so *distinct* shots sit well over ε apart
			// (frame-level matches come only from shared library shots),
			// while the tint keeps corpus-level correlation.
			accent := sharpProfile(rng, dim, activeBins)
			from := blend(fams[f], accent, 0.3)
			amp := 0.13 + 0.06*rng.Float64()
			shots[j] = libShot{
				from:  from,
				dirs:  [2]vec.Vector{randomUnit(rng, dim), randomUnit(rng, dim)},
				amp:   amp,
				amp2:  amp * (0.3 + 0.3*rng.Float64()),
				noise: 0.002,
			}
		}
		lib.byFamily = append(lib.byFamily, shots)
		// Flat-headed Zipf: a few shots (station idents, stock footage)
		// recur across unrelated videos, but no shot dominates.
		lib.picks = append(lib.picks, rand.NewZipf(rng, 1.15, 30, uint64(perFam-1)))
		lib.all = append(lib.all, shots...)
	}
	lib.pickAll = rand.NewZipf(rng, 1.15, 30, uint64(len(lib.all)-1))
	return lib
}

// shotFor samples a shot palette for a video of the given family: usually
// from the family pool, occasionally from the global pool.
func (lib *shotLibrary) shotFor(rng *rand.Rand, family int) libShot {
	if rng.Float64() < 0.1 {
		return lib.all[lib.pickAll.Uint64()]
	}
	return lib.byFamily[family][lib.picks[family].Uint64()]
}

// families returns the number of families in the library.
func (lib *shotLibrary) families() int { return len(lib.byFamily) }

// GenerateHist synthesizes a corpus directly in feature space.
func GenerateHist(cfg HistConfig) (*Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lib := newShotLibrary(rng, cfg.Dim, cfg.ActiveBins, cfg.LibraryShots)
	c := &Corpus{Dim: cfg.Dim, FPS: cfg.FPS}

	// Advertising campaigns: the same ad airs as several cuts (a 30s
	// master plus 15s/10s edits) that share most of their footage. Videos
	// are assigned round-robin across duration classes to a stream of
	// campaigns, so a campaign's members usually span classes — the
	// dominant source of genuine near-duplicates in the corpus.
	camp := newCampaign(rng, lib)
	left := campaignSize(rng)
	id := 0
	remaining := make([]int, len(cfg.Durations))
	total := 0
	for i, spec := range cfg.Durations {
		remaining[i] = spec.Count
		total += spec.Count
	}
	for total > 0 {
		for i, spec := range cfg.Durations {
			if remaining[i] == 0 {
				continue
			}
			if left == 0 {
				camp = newCampaign(rng, lib)
				left = campaignSize(rng)
			}
			frames := genHistVideo(rng, lib, camp, &cfg, spec.Seconds)
			c.Videos = append(c.Videos, Video{ID: id, DurationSec: spec.Seconds, Frames: frames})
			id++
			left--
			remaining[i]--
			total--
		}
	}
	return c, nil
}

// campaign is one advertising campaign: a family, a pool of shots, and a
// fixed *cut* (shot edit) per duration class. Every video of the campaign
// is one *airing* of its class's cut — a fresh capture of the same edit,
// which is where the corpus's dozens-of-near-duplicates-per-query
// structure (a TV capture's defining property) comes from.
type campaign struct {
	family int
	shots  []libShot
	cuts   map[float64][]cutShot
}

// cutShot is one edit decision: which footage, for how many frames, and
// the footage's motion path through its disk (pathSeed). The path belongs
// to the cut — every airing renders the same camera motion — while sensor
// noise is fresh per airing. Shared paths are what make two airings'
// clusters agree in position and radius.
type cutShot struct {
	shot     libShot
	frames   int
	pathSeed int64
}

// campaignSize draws how many airings+cuts a campaign has. Captures of a
// running campaign accumulate: a quarter of campaigns are one-offs, the
// rest repeat heavily.
func campaignSize(rng *rand.Rand) int {
	if rng.Float64() < 0.2 {
		return 1 + rng.Intn(2)
	}
	return 30 + rng.Intn(50)
}

// newCampaign samples a campaign's family and shot pool.
func newCampaign(rng *rand.Rand, lib *shotLibrary) *campaign {
	family := rng.Intn(lib.families())
	n := 10 + rng.Intn(8)
	shots := make([]libShot, n)
	for i := range shots {
		shots[i] = lib.byFamily[family][rng.Intn(len(lib.byFamily[family]))]
	}
	return &campaign{family: family, shots: shots, cuts: make(map[float64][]cutShot)}
}

// cutFor returns the campaign's edit for a duration class, creating it on
// first use: a sequence of (shot, length) decisions. Lengths are
// heavy-tailed (log-normal): real footage mixes half-second inserts with
// long held shots, and the length spread is what separates density-aware
// summaries from keyframe counting.
func (camp *campaign) cutFor(rng *rand.Rand, lib *shotLibrary, cfg *HistConfig, seconds float64) []cutShot {
	if cut, ok := camp.cuts[seconds]; ok {
		return cut
	}
	total := int(seconds * float64(cfg.FPS))
	if total < 1 {
		total = 1
	}
	avgShot := int(cfg.AvgShotSec * float64(cfg.FPS))
	if avgShot < 1 {
		avgShot = 1
	}
	var cut []cutShot
	placed := 0
	for placed < total {
		factor := math.Exp(rng.NormFloat64() * 0.7)
		if factor < 0.2 {
			factor = 0.2
		} else if factor > 5 {
			factor = 5
		}
		n := int(float64(avgShot) * factor)
		if n < 1 {
			n = 1
		}
		if rem := total - placed; n > rem {
			n = rem
		}
		shot := camp.shots[rng.Intn(len(camp.shots))]
		if rng.Float64() < 0.2 {
			shot = lib.shotFor(rng, camp.family)
		}
		cut = append(cut, cutShot{shot: shot, frames: n, pathSeed: rng.Int63()})
		placed += n
	}
	camp.cuts[seconds] = cut
	return cut
}

// genHistVideo renders one *airing* of the campaign's cut for the given
// duration class: the same edit as every other airing, with fresh capture
// noise and small broadcast variations (clipped head/tail shots, an
// occasionally replaced shot), which grade the ground-truth similarity
// between airings instead of leaving them all tied at 1.
func genHistVideo(rng *rand.Rand, lib *shotLibrary, camp *campaign, cfg *HistConfig, seconds float64) []vec.Vector {
	cut := camp.cutFor(rng, lib, cfg, seconds)
	var frames []vec.Vector
	// Broadcast time compression: airings of the same cut run at slightly
	// different speeds, so they share the same clusters with different
	// frame counts — gradation that only a density-aware summary sees.
	speed := 0.7 + 0.3*rng.Float64()
	for i, cs := range cut {
		shot, n, seed := cs.shot, cs.frames, cs.pathSeed
		n = int(float64(n) * speed)
		if n < 1 {
			n = 1
		}
		switch {
		case i == 0 && rng.Float64() < 0.4:
			// Broadcast clipped the head of the ad.
			n -= rng.Intn(n + 1)
		case i == len(cut)-1 && rng.Float64() < 0.4:
			n -= rng.Intn(n + 1)
		case rng.Float64() < 0.08:
			// A re-edited airing swaps one shot (fresh footage and path).
			shot = lib.shotFor(rng, camp.family)
			seed = rng.Int63()
		}
		frames = append(frames, renderShot(rng, seed, &shot, n, cfg.ShotNoise/0.004)...)
	}
	if len(frames) == 0 {
		// Degenerate clipping of a one-shot cut: render one frame.
		frames = renderShot(rng, cut[0].pathSeed, &cut[0].shot, 1, cfg.ShotNoise/0.004)
	}
	return frames
}

// jitterHistogram perturbs a base histogram with non-negative noise and
// renormalizes, keeping the frame on the probability simplex.
func jitterHistogram(rng *rand.Rand, base vec.Vector, noise float64) vec.Vector {
	h := vec.Clone(base)
	for i := range h {
		h[i] += rng.NormFloat64() * noise
		if h[i] < 0 {
			h[i] = 0
		}
	}
	if s := vec.Sum(h); s > 0 {
		vec.ScaleInPlace(h, 1/s)
	}
	return h
}

// PixelConfig parameterizes the pixel path.
type PixelConfig struct {
	W, H       int
	FPS        int
	Bits       int // histogram bits per channel (2 in the paper)
	AvgShotSec float64
	Seed       int64
	Durations  []DurationSpec
}

// DefaultPixelConfig uses the paper's capture parameters at a small,
// test-friendly resolution scale factor of 1 (192×144).
func DefaultPixelConfig(seed int64) PixelConfig {
	return PixelConfig{W: 192, H: 144, FPS: 25, Bits: feature.DefaultBits, AvgShotSec: 2.0, Seed: seed}
}

// GeneratePixel renders procedural videos and extracts their histograms —
// the full paper pipeline.
func GeneratePixel(cfg PixelConfig) (*Corpus, error) {
	if cfg.Bits < 1 || cfg.Bits > 8 {
		return nil, fmt.Errorf("dataset: bits %d out of range", cfg.Bits)
	}
	if len(cfg.Durations) == 0 {
		return nil, fmt.Errorf("dataset: no duration specs")
	}
	c := &Corpus{Dim: feature.Dims(cfg.Bits), FPS: cfg.FPS}
	id := 0
	for _, spec := range cfg.Durations {
		for v := 0; v < spec.Count; v++ {
			g := videogen.New(videogen.Config{W: cfg.W, H: cfg.H, FPS: cfg.FPS, Seed: cfg.Seed + int64(id)*7919})
			frames := g.Video(spec.Seconds, cfg.AvgShotSec)
			hists, err := feature.HistogramSeq(frames, cfg.Bits)
			if err != nil {
				return nil, err
			}
			c.Videos = append(c.Videos, Video{ID: id, DurationSec: spec.Seconds, Frames: hists})
			id++
		}
	}
	return c, nil
}

// Save persists a corpus with gob encoding.
func (c *Corpus) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return f.Sync()
}

// Load reads a corpus written by Save.
func Load(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var c Corpus
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &c, nil
}

// GroundTruth ranks the corpus against query frames with the exact §3.1
// measure — the paper's ground-truth procedure for precision experiments.
func (c *Corpus) GroundTruth(query []vec.Vector, epsilon float64, k int) []baseline.Ranked {
	return baseline.ExactKNN(query, c.ByID(), epsilon, k)
}

// randomUnit returns a uniformly random unit direction.
func randomUnit(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	vec.Normalize(v)
	return v
}

// renderShot renders n frames of a shot: the camera walks the motion disk
// along the path determined by pathSeed (shared by every airing of the
// cut), and each frame gets fresh per-airing sensor noise from rng,
// clamped back onto the simplex. noiseScale rescales the shot's sensor
// noise (HistConfig.ShotNoise relative to its default).
func renderShot(rng *rand.Rand, pathSeed int64, shot *libShot, n int, noiseScale float64) []vec.Vector {
	path := rand.New(rand.NewSource(pathSeed))
	out := make([]vec.Vector, 0, n)
	// Start at a uniform point of the unit disk (by rejection), then walk.
	var u1, u2 float64
	for {
		u1 = 2*path.Float64() - 1
		u2 = 2*path.Float64() - 1
		if u1*u1+u2*u2 <= 1 {
			break
		}
	}
	// Step size scales with 1/√n so the walk covers the whole disk
	// whatever the rendering length: every instance of the footage then
	// summarizes to the same center and radius.
	step := 2.4 / math.Sqrt(float64(n)+1)
	sigma := shot.noise * noiseScale
	for k := 0; k < n; k++ {
		f := vec.Clone(shot.from)
		vec.AXPY(f, shot.amp*u1, shot.dirs[0])
		vec.AXPY(f, shot.amp2*u2, shot.dirs[1])
		for i := range f {
			f[i] += rng.NormFloat64() * sigma
			if f[i] < 0 {
				f[i] = 0
			}
		}
		if s := vec.Sum(f); s > 0 {
			vec.ScaleInPlace(f, 1/s)
		}
		out = append(out, f)
		// Advance the walk, reflecting at the disk boundary.
		u1 += path.NormFloat64() * step
		u2 += path.NormFloat64() * step
		if r2 := u1*u1 + u2*u2; r2 > 1 {
			r := math.Sqrt(r2)
			u1 /= r * r
			u2 /= r * r
		}
	}
	return out
}
