package journal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vitri/internal/core"
	"vitri/internal/metrics"
	"vitri/internal/vfs"
)

// ErrPoisoned reports a writer disabled by an earlier flush or fsync
// failure. Once storage has failed mid-stream the durable prefix is
// unknowable, so every later operation fails loudly instead of
// acknowledging writes that may never reach disk (the "fsyncgate"
// lesson: retrying fsync can silently drop the failed pages).
var ErrPoisoned = errors.New("journal: writer poisoned by earlier write failure")

// Config tunes Open.
type Config struct {
	// StartSeq is the sequence number a fresh journal starts at — the
	// snapshot's LastSeq+1. Ignored when the journal already has records
	// with higher sequence numbers.
	StartSeq uint64
	// KeepCorruptTail disables the truncation of a torn tail at open.
	// It exists ONLY so the crash-simulation suite can prove the
	// truncation matters (appends after a kept tail land beyond garbage
	// and are invisible to the next replay). Production code must leave
	// it false.
	KeepCorruptTail bool
}

// Writer is an open journal accepting appends. Safe for concurrent use:
// Append serializes on an internal mutex (callers needing a specific
// interleaving with their in-memory state hold their own lock around
// Append, as vitri.DB does), and Commit group-commits across goroutines.
type Writer struct {
	fsys vfs.FS // immutable after Open
	path string // immutable after Open

	mu          sync.Mutex    // guards f, bw, seq, counters, err
	f           vfs.File      // guarded by mu
	bw          *bufio.Writer // guarded by mu
	seq         uint64        // last assigned sequence number. guarded by mu
	baseRecords int           // records replayed at open. guarded by mu
	records     int           // records appended since open/rotation. guarded by mu
	bytes       int64         // valid length incl. buffered appends. guarded by mu
	err         error         // sticky storage failure. guarded by mu

	syncMu     sync.Mutex // serializes group-commit leaders
	durableSeq atomic.Uint64

	fsyncs       metrics.Counter    // internally synchronized
	fsyncLatency *metrics.Histogram // internally synchronized
}

// Open opens (creating if absent) the journal at path, replays every
// valid record through apply, truncates any torn tail, and returns a
// writer positioned after the last valid record.
//
// Replay stops cleanly at the first invalid record: a power cut can tear
// the final record or drop unsynced bytes, and everything from that
// point on was never acknowledged. apply's error aborts the open — a
// record that passed its checksum must apply, or the store is genuinely
// inconsistent.
func Open(fsys vfs.FS, path string, cfg Config, apply func(Entry) error) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{fsys: fsys, path: path, f: f, fsyncLatency: newFsyncHistogram()}
	if err := w.recover(cfg, apply); err != nil {
		f.Close()
		return nil, err
	}
	w.bw = bufio.NewWriter(f)
	w.durableSeq.Store(w.seq)
	return w, nil
}

// recover scans the file, replays valid records and positions the writer.
func (w *Writer) recover(cfg Config, apply func(Entry) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	size, err := fileSize(w.f)
	if err != nil {
		return err
	}
	res, err := scan(bufio.NewReader(io.LimitReader(w.f, size)), apply)
	if err != nil {
		return err
	}
	w.baseRecords = res.records
	startSeq := cfg.StartSeq
	if startSeq == 0 {
		startSeq = 1
	}
	w.seq = startSeq - 1
	if res.headerOK && res.startSeq > startSeq {
		w.seq = res.startSeq - 1
	}
	if res.lastSeq > w.seq {
		w.seq = res.lastSeq
	}

	if !res.headerOK {
		// Empty or header-corrupt file: rewrite from scratch. The header
		// is synced, and the name is made durable, before any append can
		// be acknowledged on top of it.
		if err := w.f.Truncate(0); err != nil {
			return err
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if _, err := w.f.Write(encodeHeader(startSeq)); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.fsys.SyncDir(filepath.Dir(w.path)); err != nil {
			return err
		}
		w.bytes = headerSize
		return nil
	}

	w.bytes = res.valid
	if res.valid < size && !cfg.KeepCorruptTail {
		// Torn tail: drop it so future appends extend the valid prefix.
		// Without this, appends land beyond the garbage and the next
		// replay — which stops at the garbage — never sees them.
		if err := w.f.Truncate(res.valid); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	at := res.valid
	if cfg.KeepCorruptTail {
		at = size
		w.bytes = size
	}
	if _, err := w.f.Seek(at, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// AppendAdd journals an added summary and returns its sequence number.
// The record is buffered; it is durable only once Commit(seq) returns.
func (w *Writer) AppendAdd(s *core.Summary) (uint64, error) {
	payload, err := addPayload(s)
	if err != nil {
		return 0, err
	}
	return w.append(KindAdd, payload)
}

// AppendRemove journals a removed video id.
func (w *Writer) AppendRemove(videoID int) (uint64, error) {
	if videoID < 0 {
		return 0, fmt.Errorf("journal: negative video id %d", videoID)
	}
	return w.append(KindRemove, removePayload(videoID))
}

func (w *Writer) append(kind Kind, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.seq++
	var buf bytes.Buffer
	buf.Grow(len(payload) + recOverhead)
	encodeRecord(&buf, kind, w.seq, payload)
	if _, err := w.bw.Write(buf.Bytes()); err != nil {
		return 0, w.poisonLocked(err)
	}
	w.records++
	w.bytes += int64(buf.Len())
	return w.seq, nil
}

// Commit makes every record up to and including seq durable. Multiple
// goroutines committing concurrently share fsyncs: a caller whose seq is
// already covered returns immediately; otherwise one leader flushes and
// syncs for everyone waiting.
func (w *Writer) Commit(seq uint64) error {
	if w.durableSeq.Load() >= seq {
		return w.stickyErr()
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durableSeq.Load() >= seq {
		return w.stickyErr()
	}
	w.mu.Lock()
	// Capture the sticky error under the lock: reading w.err after the
	// unlock would race a concurrent poison.
	if err := w.err; err != nil {
		w.mu.Unlock()
		return err
	}
	target := w.seq
	if err := w.bw.Flush(); err != nil {
		err = w.poisonLocked(err)
		w.mu.Unlock()
		return err
	}
	f := w.f
	w.mu.Unlock()

	// Syncing outside w.mu keeps appends flowing during the fsync; the
	// descriptor stays valid because Rotate and Close, the only swappers/
	// closers, serialize on w.syncMu, which this leader holds.
	start := time.Now()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		err = w.poisonLocked(err)
		w.mu.Unlock()
		return err
	}
	w.observeFsync(start)
	w.durableSeq.Store(target)
	return nil
}

func (w *Writer) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Err reports the writer's sticky failure (wrapping ErrPoisoned), or nil
// on a healthy writer. Batch callers use it to stop feeding a poisoned
// writer: after the first failed append every further operation can only
// return this same error.
func (w *Writer) Err() error { return w.stickyErr() }

// poisonLocked records err as the writer's sticky failure and returns the
// original err. Caller holds w.mu.
func (w *Writer) poisonLocked(err error) error {
	w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
	return err
}

// Cut is a consistent capture of the journal's position, taken while the
// caller excludes appends (vitri.DB holds its write or read lock — either
// keeps mutators out, since appends run under the write lock). Every
// record at a byte offset below Offset has seq <= LastSeq; every record
// appended after the cut lands beyond Offset with seq > LastSeq. A Cut is
// what makes the retained-suffix rotation O(appends since the cut): the
// suffix is a contiguous byte range, never a full-journal rescan.
type Cut struct {
	// LastSeq is the last assigned sequence number at the cut.
	LastSeq uint64
	// Offset is the journal's valid byte length at the cut (header plus
	// every record with seq <= LastSeq, including still-buffered ones).
	Offset int64
	// Depth is the live record count at the cut (replayed + appended).
	Depth int
}

// CutPoint captures the journal's current cut. The caller must hold its
// own append exclusion (vitri.DB's mutex) so the cut is consistent with
// the in-memory state captured under the same hold.
func (w *Writer) CutPoint() (Cut, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Cut{}, w.err
	}
	return Cut{LastSeq: w.seq, Offset: w.bytes, Depth: w.baseRecords + w.records}, nil
}

// WithSyncSlot runs fn while holding the writer's group-commit fsync
// slot: no journal fsync, rotation, or close runs concurrently with fn.
// Background writers syncing OTHER files on the same filesystem use it
// to keep their fsyncs from entangling with journal commits — on a
// journaling filesystem two concurrent fsync streams serialize anyway,
// but through the filesystem journal's commit batching, which can cost
// tens of milliseconds per commit; an explicit slot costs one fn. fn
// must not call back into the Writer or the slot deadlocks.
func (w *Writer) WithSyncSlot(fn func() error) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return fn()
}

// Rotate atomically replaces the journal with a fresh, empty one
// starting at startSeq — the checkpoint's LastSeq+1. The caller must
// guarantee every record in the journal is covered by the snapshot it
// just wrote (vitri.DB used to hold its write lock across the whole
// checkpoint for this; the non-blocking checkpoint uses RotateRetain
// instead). A concurrent Commit is fine — Rotate serializes with the
// in-flight leader on syncMu.
func (w *Writer) Rotate(startSeq uint64) error {
	// syncMu before mu, the same order as Close: a Commit leader syncs
	// w.f after releasing w.mu, so taking only w.mu here could swap and
	// close the descriptor mid-sync — the sync would hit a closed fd and
	// poison the writer for no real storage failure.
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.rotateLocked(startSeq, nil, 0)
}

// RotateRetain replaces the journal with a fresh one that retains every
// record appended after c — the records with seq > c.LastSeq that
// mutators appended while a checkpoint was writing its snapshot outside
// the lock. The new journal's header starts at c.LastSeq+1 (the
// snapshot's fold point), followed by the retained suffix byte-for-byte.
// Appends are blocked only while the suffix — proportional to mutations
// since the cut, not to journal depth — is copied.
//
// Crash safety: the retained records were fsynced into the old journal
// before their operations were acknowledged, and the replacement file is
// fsynced before the rename, so a power cut at any boundary leaves a
// journal (old or new) that still carries every acknowledged record past
// the cut. The crash suite enumerates these windows with inserts in
// flight mid-checkpoint.
func (w *Writer) RotateRetain(c Cut) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	// Flush buffered appends so the suffix is readable from the file. A
	// flush failure leaves the durable prefix unknowable: poison.
	if err := w.bw.Flush(); err != nil {
		return w.poisonLocked(err)
	}
	var suffix []byte
	if w.bytes > c.Offset {
		suffix = make([]byte, w.bytes-c.Offset)
		// A failed seek or short read leaves the descriptor at an unknown
		// position; later appends would interleave into the middle of the
		// file. Poison rather than guess.
		if _, err := w.f.Seek(c.Offset, io.SeekStart); err != nil {
			return w.poisonLocked(err)
		}
		if _, err := io.ReadFull(w.f, suffix); err != nil {
			return w.poisonLocked(err)
		}
	}
	return w.rotateLocked(c.LastSeq+1, suffix, w.baseRecords+w.records-c.Depth)
}

// rotateLocked writes header(startSeq)+suffix as the replacement journal
// via the atomic discipline (temp file + fsync + rename + directory
// sync), then swaps the writer onto it. Caller holds syncMu and mu. A
// crash at any point leaves either the old journal or the new one,
// both complete: the temp file's bytes are durable before the rename.
func (w *Writer) rotateLocked(startSeq uint64, suffix []byte, retained int) error {
	tmp := w.path + ".tmp"
	tf, err := w.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// Before the rename a failure is recoverable — the live journal is
	// untouched — but the temp file must not linger: the next rotation
	// truncates it, yet an orphan between failed checkpoints is dead
	// weight a recovery scan has to step around.
	abort := func(err error) error {
		tf.Close()
		//lint:ignore droppederr best-effort cleanup of a never-read temp file; the original error is surfaced
		w.fsys.Remove(tmp)
		return err
	}
	if _, err := tf.Write(encodeHeader(startSeq)); err != nil {
		return abort(err)
	}
	if len(suffix) > 0 {
		if _, err := tf.Write(suffix); err != nil {
			return abort(err)
		}
	}
	if err := tf.Sync(); err != nil {
		return abort(err)
	}
	if err := tf.Close(); err != nil {
		//lint:ignore droppederr best-effort cleanup of a never-read temp file; the close error is surfaced
		w.fsys.Remove(tmp)
		return err
	}
	if err := w.fsys.Rename(tmp, w.path); err != nil {
		//lint:ignore droppederr best-effort cleanup of a never-read temp file; the rename error is surfaced
		w.fsys.Remove(tmp)
		return err
	}
	// Past the rename the live name is the fresh journal while w.f still
	// references the replaced, unlinked inode. A failure from here on
	// must poison the writer: returning a plain error would leave later
	// appends acknowledged against (fsynced to) the dead inode and
	// silently lost at the next recovery.
	if err := w.fsys.SyncDir(filepath.Dir(w.path)); err != nil {
		return w.poisonLocked(err)
	}
	// Swap handles: the old descriptor still points at the replaced
	// inode; reopen the live name.
	nf, err := w.fsys.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return w.poisonLocked(err)
	}
	end := headerSize + int64(len(suffix))
	if _, err := nf.Seek(end, io.SeekStart); err != nil {
		nf.Close()
		return w.poisonLocked(err)
	}
	old := w.f
	w.f = nf
	w.bw = bufio.NewWriter(nf)
	w.baseRecords, w.records = retained, 0
	w.bytes = end
	if startSeq > 0 && startSeq-1 > w.seq {
		w.seq = startSeq - 1
	}
	// Everything in the replacement file was fsynced before the rename,
	// and the rename itself is dir-synced: the whole journal — retained
	// suffix included — is durable.
	w.durableSeq.Store(w.seq)
	return old.Close()
}

// Close flushes, syncs and closes the journal. Safe to call once; the
// writer is unusable afterwards.
func (w *Writer) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		err := w.f.Close()
		if err == nil {
			err = w.err
		}
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.durableSeq.Store(w.seq)
	return w.f.Close()
}

// LastSeq returns the last assigned sequence number.
func (w *Writer) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	depth := w.baseRecords + w.records
	bytes := w.bytes
	seq := w.seq
	w.mu.Unlock()
	return Stats{
		Depth:        depth,
		Bytes:        bytes,
		LastSeq:      seq,
		DurableSeq:   w.durableSeq.Load(),
		Fsyncs:       w.fsyncs.Value(),
		FsyncLatency: w.fsyncLatency.Snapshot(),
	}
}

// fileSize reports f's size without Stat (vfs.File carries no Stat).
func fileSize(f vfs.File) (int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	return size, nil
}
