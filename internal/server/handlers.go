package server

import (
	"fmt"
	"math"
	"net/http"
	"time"

	"vitri"
)

// searchRequest is the /search body. Exactly one of frames (single
// query) or queries (batch) must be present.
type searchRequest struct {
	// Frames is one query video's frame feature vectors.
	Frames [][]float64 `json:"frames,omitempty"`
	// Queries is a batch: one frame sequence per query.
	Queries [][][]float64 `json:"queries,omitempty"`
	// K is the result count (Config.DefaultK when omitted).
	K int `json:"k,omitempty"`
	// Epsilon overrides the summarization threshold for the query side
	// only; the index always searches at the ε it was built with.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Mode is "composed" (default) or "naive".
	Mode string `json:"mode,omitempty"`
}

type matchJSON struct {
	VideoID    int     `json:"video_id"`
	Similarity float64 `json:"similarity"`
	Shared     float64 `json:"shared"`
}

type searchStatsJSON struct {
	Ranges         int    `json:"ranges"`
	Candidates     int    `json:"candidates"`
	SimilarityOps  int    `json:"similarity_ops"`
	SignatureSkips int    `json:"signature_skips"`
	PageReads      uint64 `json:"page_reads"`
}

type searchResponse struct {
	Matches []matchJSON     `json:"matches"`
	Stats   searchStatsJSON `json:"stats"`
}

type batchItemJSON struct {
	Matches []matchJSON     `json:"matches,omitempty"`
	Stats   searchStatsJSON `json:"stats"`
	Error   string          `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchItemJSON `json:"results"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if (req.Frames == nil) == (req.Queries == nil) {
		writeJSONError(w, http.StatusBadRequest, "exactly one of frames and queries must be set")
		return
	}
	k := req.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	if k < 1 || k > s.cfg.MaxK {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.cfg.MaxK))
		return
	}
	eps := req.Epsilon
	if eps == 0 {
		eps = s.db.Epsilon()
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		writeJSONError(w, http.StatusBadRequest, "epsilon must be positive and finite")
		return
	}
	mode, ok := parseMode(w, req.Mode)
	if !ok {
		return
	}

	if req.Frames != nil {
		frames, err := toVectors(req.Frames)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "frames: "+err.Error())
			return
		}
		out, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
			q := vitri.Summarize(-1, frames, eps, s.db.Seed())
			matches, stats, err := s.db.SearchSummary(&q, k, mode)
			if err != nil {
				return nil, err
			}
			s.met.searchQueries.Inc()
			s.met.searchPageReads.Add(stats.PageReads)
			s.met.searchSimOps.Add(uint64(stats.SimilarityOps))
			s.met.searchSignatureSkips.Add(uint64(stats.SignatureSkips))
			return &searchResponse{Matches: toMatchJSON(matches), Stats: toStatsJSON(stats)}, nil
		})
		if err != nil {
			writeJSONError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	queries := make([]vitri.Summary, len(req.Queries))
	framesPer := make([][]vitri.Vector, len(req.Queries))
	for i, fr := range req.Queries {
		frames, err := toVectors(fr)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("queries[%d]: %v", i, err))
			return
		}
		framesPer[i] = frames
	}
	out, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		for i := range framesPer {
			queries[i] = vitri.Summarize(-1, framesPer[i], eps, s.db.Seed())
		}
		items, err := s.db.SearchBatch(queries, k, mode)
		if err != nil {
			return nil, err
		}
		resp := batchResponse{Results: make([]batchItemJSON, len(items))}
		for i := range items {
			it := &items[i]
			resp.Results[i].Stats = toStatsJSON(it.Stats)
			if it.Err != nil {
				resp.Results[i].Error = it.Err.Error()
				continue
			}
			resp.Results[i].Matches = toMatchJSON(it.Results)
			s.met.searchQueries.Inc()
			s.met.searchPageReads.Add(it.Stats.PageReads)
			s.met.searchSimOps.Add(uint64(it.Stats.SimilarityOps))
			s.met.searchSignatureSkips.Add(uint64(it.Stats.SignatureSkips))
		}
		return &resp, nil
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// insertRequest is the /insert body. Exactly one of frames (single video,
// with id) or videos (batch) must be present.
type insertRequest struct {
	ID     int          `json:"id"`
	Frames [][]float64  `json:"frames,omitempty"`
	Videos []insertItem `json:"videos,omitempty"`
}

// insertItem is one video of a batch insert.
type insertItem struct {
	ID     int         `json:"id"`
	Frames [][]float64 `json:"frames"`
}

type mutateResponse struct {
	ID     int `json:"id"`
	Videos int `json:"videos"`
}

// insertBatchItemJSON is one video's outcome in a batch insert: its id and
// the error that rejected it, if any.
type insertBatchItemJSON struct {
	ID    int    `json:"id"`
	Error string `json:"error,omitempty"`
}

type insertBatchResponse struct {
	Results  []insertBatchItemJSON `json:"results"`
	Inserted int                   `json:"inserted"`
	Videos   int                   `json:"videos"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if (req.Frames == nil) == (req.Videos == nil) {
		writeJSONError(w, http.StatusBadRequest, "exactly one of frames and videos must be set")
		return
	}
	if req.Videos != nil {
		s.handleInsertBatch(w, r, req.Videos)
		return
	}
	if req.ID < 0 {
		writeJSONError(w, http.StatusBadRequest, "id must be non-negative")
		return
	}
	frames, err := toVectors(req.Frames)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "frames: "+err.Error())
		return
	}
	_, err = s.callWithDeadline(r.Context(), func() (interface{}, error) {
		return nil, s.db.Add(req.ID, frames)
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, mutateResponse{ID: req.ID, Videos: s.db.Len()})
}

// handleInsertBatch loads a batch through DB.AddBatch — summarization fans
// out across the ingest worker pool, then the videos merge in request
// order under one lock. Every video gets its own status slot; an invalid
// video never rejects its batch-mates. The whole request fails only on
// batch-level errors (the drift-triggered rebuild).
func (s *Server) handleInsertBatch(w http.ResponseWriter, r *http.Request, items []insertItem) {
	if len(items) == 0 {
		writeJSONError(w, http.StatusBadRequest, "videos must not be empty")
		return
	}
	results := make([]insertBatchItemJSON, len(items))
	// Frame-level validation (shape, finiteness) happens here so the
	// ingest pool only ever sees well-formed vectors; AddBatch itself
	// reports id-level rejections (negative, duplicate, no frames).
	videos := make([]vitri.Video, 0, len(items))
	slot := make([]int, 0, len(items)) // videos[j] reports into results[slot[j]]
	for i, it := range items {
		results[i].ID = it.ID
		frames, err := toVectors(it.Frames)
		if err != nil {
			results[i].Error = "frames: " + err.Error()
			continue
		}
		videos = append(videos, vitri.Video{ID: it.ID, Frames: frames})
		slot = append(slot, i)
	}
	out, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		itemErrs, err := s.db.AddBatch(videos)
		if err != nil {
			return nil, err
		}
		inserted := 0
		for j, e := range itemErrs {
			if e != nil {
				results[slot[j]].Error = e.Error()
				continue
			}
			inserted++
		}
		return &insertBatchResponse{Results: results, Inserted: inserted, Videos: s.db.Len()}, nil
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, out)
}

// removeRequest is the /remove body.
type removeRequest struct {
	ID int `json:"id"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	_, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		return nil, s.db.Remove(req.ID)
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, mutateResponse{ID: req.ID, Videos: s.db.Len()})
}

// checkpointResponse is the /checkpoint body: the durable position after
// the fold.
type checkpointResponse struct {
	SnapshotSeq  uint64 `json:"snapshot_seq"`
	JournalDepth int    `json:"journal_depth"`
	Checkpoints  uint64 `json:"checkpoints"`
}

// handleCheckpoint folds the journal into a fresh snapshot on demand —
// the admin endpoint behind `curl -X POST /checkpoint`. Answers 409 on a
// non-durable database.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	_, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		return nil, s.runCheckpoint()
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	st := s.db.DurabilityStats()
	writeJSON(w, http.StatusOK, checkpointResponse{
		SnapshotSeq:  st.SnapshotSeq,
		JournalDepth: st.Journal.Depth,
		Checkpoints:  st.Checkpoints,
	})
}

type healthzResponse struct {
	Status   string `json:"status"`
	Videos   int    `json:"videos"`
	Triplets int    `json:"triplets"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:   "ok",
		Videos:   s.db.Len(),
		Triplets: s.db.Triplets(),
	})
}

type endpointStatsJSON struct {
	Requests     uint64  `json:"requests"`
	Errors5xx    uint64  `json:"errors_5xx"`
	LatencyMeanS float64 `json:"latency_mean_s"`
	LatencyP50S  float64 `json:"latency_p50_s"`
	LatencyP95S  float64 `json:"latency_p95_s"`
	LatencyP99S  float64 `json:"latency_p99_s"`
	LatencyMaxS  float64 `json:"latency_max_s"`
}

type pagerStatsJSON struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Allocs uint64 `json:"allocs"`
}

type cacheStatsJSON struct {
	Accesses uint64  `json:"accesses"`
	Hits     uint64  `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
}

// durabilityStatsJSON surfaces the durable store's health: journal depth
// and size, the fsync profile (group commit makes fsyncs < operations
// under load), and the snapshot position.
type durabilityStatsJSON struct {
	Dir             string  `json:"dir"`
	SnapshotSeq     uint64  `json:"snapshot_seq"`
	SnapshotVersion uint32  `json:"snapshot_version"`
	Checkpoints     uint64  `json:"checkpoints"`
	JournalDepth    int     `json:"journal_depth"`
	JournalBytes    int64   `json:"journal_bytes"`
	LastSeq         uint64  `json:"last_seq"`
	DurableSeq      uint64  `json:"durable_seq"`
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncMeanS      float64 `json:"fsync_mean_s"`
	FsyncP50S       float64 `json:"fsync_p50_s"`
	FsyncP99S       float64 `json:"fsync_p99_s"`
	FsyncMaxS       float64 `json:"fsync_max_s"`
	// Checkpoint health through this server: the last failure (empty
	// when the most recent checkpoint succeeded) with its time, and the
	// last success. A standing LastCheckpointError means automatic
	// checkpoints are in their failure cooldown and the journal is
	// growing unchecked — the alertable condition.
	LastCheckpointError  string `json:"last_checkpoint_error,omitempty"`
	LastCheckpointErrorT string `json:"last_checkpoint_error_time,omitempty"`
	LastCheckpointTime   string `json:"last_checkpoint_time,omitempty"`
}

type statsResponse struct {
	Videos          int    `json:"videos"`
	Triplets        int    `json:"triplets"`
	InFlight        int64  `json:"in_flight"`
	AdmissionHeld   int    `json:"admission_held"`
	AdmissionLimit  int    `json:"admission_limit"`
	Shed            uint64 `json:"shed"`
	Panics          uint64 `json:"panics"`
	Timeouts        uint64 `json:"timeouts"`
	SearchQueries   uint64 `json:"search_queries"`
	SearchPageReads uint64 `json:"search_page_reads"`
	// Cumulative pre-filter accounting: exact similarity evaluations
	// performed vs. candidates proven disjoint by the signature tier and
	// skipped before any geometry ran.
	SearchSimilarityOps  uint64 `json:"search_similarity_ops"`
	SearchSignatureSkips uint64 `json:"search_signature_skips"`
	// The same per-workload attribution for the query-by-image and
	// temporal subsequence endpoints.
	ImageQueries           uint64                       `json:"image_queries"`
	ImagePageReads         uint64                       `json:"image_page_reads"`
	ImageSimilarityOps     uint64                       `json:"image_similarity_ops"`
	ImageSignatureSkips    uint64                       `json:"image_signature_skips"`
	TemporalQueries        uint64                       `json:"temporal_queries"`
	TemporalPageReads      uint64                       `json:"temporal_page_reads"`
	TemporalSimilarityOps  uint64                       `json:"temporal_similarity_ops"`
	TemporalSignatureSkips uint64                       `json:"temporal_signature_skips"`
	Pager                  pagerStatsJSON               `json:"pager"`
	Cache                  *cacheStatsJSON              `json:"cache,omitempty"`
	Durability             *durabilityStatsJSON         `json:"durability,omitempty"`
	Endpoints              map[string]endpointStatsJSON `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ps := s.db.PagerStats()
	resp := statsResponse{
		Videos:                 s.db.Len(),
		Triplets:               s.db.Triplets(),
		InFlight:               s.inflight.Load(),
		AdmissionHeld:          s.adm.held(),
		AdmissionLimit:         s.cfg.MaxInFlight,
		Shed:                   s.met.shed.Value(),
		Panics:                 s.met.panics.Value(),
		Timeouts:               s.met.timeouts.Value(),
		SearchQueries:          s.met.searchQueries.Value(),
		SearchPageReads:        s.met.searchPageReads.Value(),
		SearchSimilarityOps:    s.met.searchSimOps.Value(),
		SearchSignatureSkips:   s.met.searchSignatureSkips.Value(),
		ImageQueries:           s.met.imageQueries.Value(),
		ImagePageReads:         s.met.imagePageReads.Value(),
		ImageSimilarityOps:     s.met.imageSimOps.Value(),
		ImageSignatureSkips:    s.met.imageSignatureSkips.Value(),
		TemporalQueries:        s.met.temporalQueries.Value(),
		TemporalPageReads:      s.met.temporalPageReads.Value(),
		TemporalSimilarityOps:  s.met.temporalSimOps.Value(),
		TemporalSignatureSkips: s.met.temporalSignatureSkips.Value(),
		Pager:                  pagerStatsJSON{Reads: ps.Reads, Writes: ps.Writes, Allocs: ps.Allocs},
		Endpoints:              make(map[string]endpointStatsJSON, len(s.met.endpoints)),
	}
	if s.cfg.CacheStats != nil {
		accesses, hits, rate := s.cfg.CacheStats()
		resp.Cache = &cacheStatsJSON{Accesses: accesses, Hits: hits, HitRate: rate}
	}
	if ds := s.db.DurabilityStats(); ds.Enabled {
		fl := ds.Journal.FsyncLatency
		resp.Durability = &durabilityStatsJSON{
			Dir:             ds.Dir,
			SnapshotSeq:     ds.SnapshotSeq,
			SnapshotVersion: ds.SnapshotVersion,
			Checkpoints:     ds.Checkpoints,
			JournalDepth:    ds.Journal.Depth,
			JournalBytes:    ds.Journal.Bytes,
			LastSeq:         ds.Journal.LastSeq,
			DurableSeq:      ds.Journal.DurableSeq,
			Fsyncs:          ds.Journal.Fsyncs,
			FsyncMeanS:      fl.MeanValue(),
			FsyncP50S:       fl.Quantile(0.50),
			FsyncP99S:       fl.Quantile(0.99),
			FsyncMaxS:       fl.Max,
		}
		if lastErr, lastErrT, lastOK := s.checkpointHealth(); lastErr != nil || !lastOK.IsZero() {
			if lastErr != nil {
				resp.Durability.LastCheckpointError = lastErr.Error()
				resp.Durability.LastCheckpointErrorT = lastErrT.UTC().Format(time.RFC3339Nano)
			}
			if !lastOK.IsZero() {
				resp.Durability.LastCheckpointTime = lastOK.UTC().Format(time.RFC3339Nano)
			}
		}
	}
	for name, ep := range s.met.endpoints {
		snap := ep.latency.Snapshot()
		resp.Endpoints[name] = endpointStatsJSON{
			Requests:     ep.requests.Value(),
			Errors5xx:    ep.errors5xx.Value(),
			LatencyMeanS: snap.MeanValue(),
			LatencyP50S:  snap.Quantile(0.50),
			LatencyP95S:  snap.Quantile(0.95),
			LatencyP99S:  snap.Quantile(0.99),
			LatencyMaxS:  snap.Max,
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

// toVectors validates and converts a JSON frame matrix: non-empty, one
// consistent dimensionality, finite values only.
func toVectors(frames [][]float64) ([]vitri.Vector, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("no frames")
	}
	dim := len(frames[0])
	out := make([]vitri.Vector, len(frames))
	for i, fr := range frames {
		if len(fr) == 0 {
			return nil, fmt.Errorf("frame %d is empty", i)
		}
		if len(fr) != dim {
			return nil, fmt.Errorf("frame %d has %d dims, frame 0 has %d", i, len(fr), dim)
		}
		for j, v := range fr {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("frame %d value %d is not finite", i, j)
			}
		}
		out[i] = vitri.Vector(fr)
	}
	return out, nil
}

func toMatchJSON(ms []vitri.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{VideoID: m.VideoID, Similarity: m.Similarity, Shared: m.Shared}
	}
	return out
}

func toStatsJSON(st vitri.SearchStats) searchStatsJSON {
	return searchStatsJSON{
		Ranges:         st.Ranges,
		Candidates:     st.Candidates,
		SimilarityOps:  st.SimilarityOps,
		SignatureSkips: st.SignatureSkips,
		PageReads:      st.PageReads,
	}
}
