// Package dropped seeds discarded module-internal errors, the exempt
// shapes, and the suppression directives — including the malformed
// directives the runner must refuse to honor.
package dropped

import (
	"fmt"

	"fixture/pager"
)

func mutate() error { return nil }

func pair() (int, error) { return 0, nil }

// Discard drops the error of a bare statement call.
func Discard() {
	mutate() // want "dropped.mutate returns an error that is discarded"
}

// StaleSuppression carries a directive whose finding no longer exists:
// the runner reports the directive itself.
func StaleSuppression() error {
	//lint:ignore droppederr the mutation this once excused was deleted
	return nil // want "stale //lint:ignore directive: droppederr reports nothing here"
}

// Blank drops the error through the blank identifier.
func Blank() {
	_, _ = pair() // want "error result of dropped.pair assigned to _"
}

// BlankSingle drops a lone error result through the blank identifier.
func BlankSingle() {
	_ = mutate() // want "error result of dropped.mutate assigned to _"
}

// DropMethod drops a module-internal interface method's error.
func DropMethod(pg pager.Pager) {
	pg.Close() // want "pager.Pager.Close returns an error that is discarded"
}

// DeferExempt may drop the error: there is nowhere to return it.
func DeferExempt(pg pager.Pager) error {
	defer pg.Close()
	var p pager.Page
	return pg.Read(0, &p)
}

// GoExempt spawns the call; the error belongs to the goroutine.
func GoExempt() {
	//lint:ignore goroutinelife fixture: fire-and-forget spawn seeds droppederr's go exemption, not a lifecycle idiom
	go mutate()
}

// Handled checks the error: clean.
func Handled() error {
	if err := mutate(); err != nil {
		return err
	}
	return nil
}

// StdlibExempt drops a standard-library result, out of scope here.
func StdlibExempt() {
	fmt.Println("stdlib results are go vet's business")
}

// Suppressed demonstrates the line-above directive.
func Suppressed() {
	//lint:ignore droppederr fixture demonstrates best-effort drops
	mutate()
}

// SuppressedSameLine demonstrates the same-line directive.
func SuppressedSameLine() {
	mutate() //lint:ignore droppederr fixture demonstrates same-line suppression
}

// Malformed's directive lacks a reason, so it must not suppress.
func Malformed() {
	//lint:ignore droppederr
	// want "malformed //lint:ignore directive"
	mutate() // want "dropped.mutate returns an error that is discarded"
}

// UnknownAnalyzer's directive names no known analyzer.
func UnknownAnalyzer() {
	//lint:ignore nosuchanalyzer because reasons
	// want "names unknown analyzer nosuchanalyzer"
	mutate() // want "dropped.mutate returns an error that is discarded"
}
