package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vitri/internal/vec"
)

// Regression test for the empty-cluster repair bug: repair used to run
// inside the centroid-recompute loop, before later clusters were scaled,
// so the farthest-point scan compared distances to raw coordinate *sums*.
// With points {0,1,2,3,10} all assigned to one cluster, the unscaled sum
// is 16 (farthest point would be {0}), while the scaled centroid is 3.2
// (farthest point is {10}). The fixed repair must pick {10}.
func TestRepairEmptyClustersUsesScaledCentroids(t *testing.T) {
	points := []vec.Vector{{0}, {1}, {2}, {3}, {10}}
	var s scratch
	s.grow(2, len(points), 1)
	// Cluster 0 empty; every point assigned to cluster 1, scaled centroid
	// (0+1+2+3+10)/5 = 3.2.
	s.centers.SetRow(1, vec.Vector{3.2})
	for i := range points {
		s.assign[i] = 1
	}
	s.sizes[0], s.sizes[1] = 0, 5

	repairEmptyClusters(points, 2, &s)

	if got := s.centers.Row(0)[0]; got != 10 {
		t.Fatalf("repair re-seeded cluster 0 on %v, want the farthest point 10", got)
	}
	if s.assign[4] != 0 || s.sizes[0] != 1 {
		t.Fatalf("repair must claim the re-seeded point: assign[4]=%d sizes[0]=%d", s.assign[4], s.sizes[0])
	}
}

// Two empty clusters must repair onto two distinct points: claiming the
// first re-seeded point zeroes its own-center distance, so the second scan
// picks someone else.
func TestRepairEmptyClustersClaimsDistinctPoints(t *testing.T) {
	points := []vec.Vector{{0}, {5}, {9}, {10}}
	var s scratch
	s.grow(3, len(points), 1)
	s.centers.SetRow(2, vec.Vector{6}) // mean of all four points
	for i := range points {
		s.assign[i] = 2
	}
	s.sizes[0], s.sizes[1], s.sizes[2] = 0, 0, 4

	repairEmptyClusters(points, 3, &s)

	a, b := s.centers.Row(0)[0], s.centers.Row(1)[0]
	if a == b {
		t.Fatalf("both empty clusters repaired onto the same point %v", a)
	}
	if a != 0 {
		t.Fatalf("first repair picked %v, want 0 (farthest from centroid 6)", a)
	}
}

// A warm scratch makes the whole k-means run allocation-free, which is the
// property the ingest worker pool depends on.
func TestKMeansRunZeroAllocWhenWarm(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	points := make([]vec.Vector, 64)
	for i := range points {
		p := make(vec.Vector, 16)
		for j := range p {
			p[j] = r.NormFloat64()
		}
		points[i] = p
	}
	var s scratch
	kmeansRun(points, 4, r, 0, &s) // warm up

	if n := testing.AllocsPerRun(20, func() {
		kmeansRun(points, 4, r, 0, &s)
	}); n != 0 {
		t.Fatalf("warm kmeansRun allocates %v per run, want 0", n)
	}
}

// A reused Generator must produce results identical to a fresh one: the
// scratch is invisible to the output.
func TestGeneratorReuseMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	mkVideo := func(n int) []vec.Vector {
		pts := make([]vec.Vector, n)
		for i := range pts {
			p := make(vec.Vector, 8)
			for j := range p {
				p[j] = r.NormFloat64()
			}
			pts[i] = p
		}
		return pts
	}
	videos := [][]vec.Vector{mkVideo(40), mkVideo(7), mkVideo(120), mkVideo(1)}

	g := NewGenerator()
	for vi, pts := range videos {
		got := g.Generate(pts, 1.5, rand.New(rand.NewSource(int64(100+vi))))
		want := Generate(pts, 1.5, rand.New(rand.NewSource(int64(100+vi))))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("video %d: reused Generator diverged from fresh Generate", vi)
		}
	}
}

// KMeans results must not alias the internal scratch: mutating one run's
// output cannot corrupt the next.
func TestKMeansResultIndependentOfScratch(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	points := make([]vec.Vector, 20)
	for i := range points {
		points[i] = vec.Vector{r.Float64(), r.Float64()}
	}
	res1 := KMeans(points, 3, rand.New(rand.NewSource(7)), 0)
	saved := make([]vec.Vector, len(res1.Centers))
	for i, c := range res1.Centers {
		saved[i] = vec.Clone(c)
	}
	KMeans(points, 3, rand.New(rand.NewSource(8)), 0)
	for i, c := range res1.Centers {
		if !vec.Equal(c, saved[i]) {
			t.Fatalf("center %d mutated by a later KMeans call", i)
		}
	}
}

// The singleton path (k >= n) must consume no rng so downstream seed
// derivation stays aligned with the historical sequential behavior.
func TestKMeansSingletonConsumesNoRNG(t *testing.T) {
	points := []vec.Vector{{1}, {2}}
	rng := rand.New(rand.NewSource(9))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(9))
	KMeans(points, 5, rng, 0)
	if after := rng.Int63(); after != before {
		t.Fatal("singleton KMeans consumed rng state")
	}
}

// Lloyd iterations converge to assignment-consistent centers even when a
// cluster empties mid-run; all invariants hold after repair.
func TestKMeansWithForcedEmptyClusterStillConsistent(t *testing.T) {
	// Two far groups plus k=3 often leaves one seed stranded, exercising
	// repair through the public API across many seeds.
	points := []vec.Vector{}
	for i := 0; i < 10; i++ {
		points = append(points, vec.Vector{float64(i) * 0.01})
		points = append(points, vec.Vector{100 + float64(i)*0.01})
	}
	for seed := int64(0); seed < 30; seed++ {
		res := KMeans(points, 3, rand.New(rand.NewSource(seed)), 0)
		total := 0
		for c, sz := range res.Sizes {
			total += sz
			if sz == 0 {
				// Final assignment may legitimately leave a center unused
				// only if no point is nearest to it; verify that.
				for _, p := range points {
					if vec.Dist2(p, res.Centers[c]) < vec.Dist2(p, res.Centers[res.Assign[0]])-1e-12 {
						t.Fatalf("seed %d: empty cluster %d is nearest to a point", seed, c)
					}
				}
			}
		}
		if total != len(points) {
			t.Fatalf("seed %d: sizes sum to %d, want %d", seed, total, len(points))
		}
		for i, p := range points {
			bestD := math.Inf(1)
			best := -1
			for c, ctr := range res.Centers {
				if d := vec.Dist2(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if res.Assign[i] != best {
				t.Fatalf("seed %d: point %d assigned %d, nearest %d", seed, i, res.Assign[i], best)
			}
		}
	}
}
