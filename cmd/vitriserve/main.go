// Command vitriserve loads a corpus (vitrigen .gob) or a saved summary
// store (vitri .Save file), builds a ViTri database once, and serves KNN
// queries over HTTP/JSON until terminated.
//
// Endpoints (see internal/server): POST /search, /insert, /remove and
// GET /healthz, /stats. Load shedding answers 429 + Retry-After once
// -max-inflight requests are active; SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight queries before the page store closes.
//
// Example:
//
//	vitrigen -scale 0.02 -o corpus.gob
//	vitriserve -corpus corpus.gob -addr :8080
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/pager"
	"vitri/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		corpusPath  = flag.String("corpus", "", "corpus file from vitrigen (summarized at startup)")
		dbPath      = flag.String("db", "", "summary store written by vitri Save (loads without re-summarizing)")
		epsilon     = flag.Float64("epsilon", 0.3, "frame similarity threshold (ignored with -db: the store fixes it)")
		seed        = flag.Int64("seed", 1, "summarization seed")
		parallelism = flag.Int("parallelism", 0, "search parallelism (0 = GOMAXPROCS)")
		cachePages  = flag.Int("cache", 1024, "LRU page-cache capacity in 4 KiB pages (0 = uncached)")
		k           = flag.Int("k", 10, "default result count per query")
		maxInflight = flag.Int("max-inflight", 64, "admission limit for /search, /insert and /remove")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	)
	flag.Parse()
	if (*corpusPath == "") == (*dbPath == "") {
		fatalf("exactly one of -corpus and -db is required")
	}

	newPager := func() pager.Pager { return pager.NewMem() }
	var cacheStats func() (uint64, uint64, float64)
	if *cachePages > 0 {
		newPager, cacheStats = server.CachedPager(newPager, *cachePages)
	}
	opts := vitri.Options{
		Epsilon:           *epsilon,
		Seed:              *seed,
		SearchParallelism: *parallelism,
		NewPager:          newPager,
	}

	db, err := loadDB(*corpusPath, *dbPath, opts)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("vitriserve: %d videos, %d triplets (epsilon %g)", db.Len(), db.Triplets(), db.Epsilon())

	srv := server.New(db, server.Config{
		DefaultK:       *k,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *timeout,
		CacheStats:     cacheStats,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("vitriserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("vitriserve: shutting down (drain budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("vitriserve: http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		fatalf("close: %v", err)
	}
	log.Printf("vitriserve: drained, page store closed")
}

// loadDB builds the database from whichever source was given.
func loadDB(corpusPath, dbPath string, opts vitri.Options) (*vitri.DB, error) {
	if dbPath != "" {
		opts.Epsilon = 0 // take ε from the store
		db, err := vitri.Load(dbPath, opts)
		if err != nil {
			return nil, err
		}
		return db, nil
	}
	c, err := dataset.Load(corpusPath)
	if err != nil {
		return nil, err
	}
	if len(c.Videos) == 0 {
		return nil, errors.New("corpus has no videos")
	}
	db := vitri.New(opts)
	for i := range c.Videos {
		v := &c.Videos[i]
		if err := db.Add(v.ID, v.Frames); err != nil {
			return nil, fmt.Errorf("add video %d: %w", v.ID, err)
		}
	}
	// Force the lazy index build now, so the first request doesn't pay
	// for it and startup fails fast on a broken corpus.
	warm := vitri.Summarize(-1, c.Videos[0].Frames, db.Epsilon(), opts.Seed)
	if _, _, err := db.SearchSummary(&warm, 1, vitri.Composed); err != nil {
		return nil, fmt.Errorf("index build: %w", err)
	}
	return db, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitriserve: "+format+"\n", args...)
	os.Exit(1)
}
