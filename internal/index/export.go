package index

import (
	"sort"

	"vitri/internal/btree"
	"vitri/internal/core"
)

// Summaries reconstructs every indexed video's summary from the stored
// records and the catalog, ordered by video id. Triplets within a video
// are ordered by their original cluster ordinal. This is the export path
// used for persistence: the index's leaf records carry everything a
// summary contains.
func (ix *Index) Summaries() ([]core.Summary, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	recs, err := ix.allRecordsLocked()
	if err != nil {
		return nil, err
	}
	byVideo := make(map[int32][]Record)
	for _, r := range recs {
		byVideo[r.VideoID] = append(byVideo[r.VideoID], r)
	}
	out := make([]core.Summary, 0, len(byVideo))
	for vid, group := range byVideo {
		sort.Slice(group, func(i, j int) bool { return group[i].ClusterN < group[j].ClusterN })
		s := core.Summary{
			VideoID:    int(vid),
			FrameCount: ix.catalog[vid].frameCount,
			Triplets:   make([]core.ViTri, 0, len(group)),
		}
		for _, r := range group {
			s.Triplets = append(s.Triplets, r.Triplet())
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VideoID < out[j].VideoID })
	return out, nil
}

// TreeStats exposes the physical shape of the underlying B+-tree.
func (ix *Index) TreeStats() (btree.TreeStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Stats()
}

// CheckTree verifies the underlying B+-tree's structural invariants.
func (ix *Index) CheckTree() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Check()
}
