// Package goro seeds the goroutine-lifecycle violations — orphan
// spawns, uncovered WaitGroup joins, unbounded loops, leak-on-early-
// return — next to the join and cancel shapes goroutinelife accepts.
package goro

import "sync"

// Orphan spawns a goroutine nothing ever joins or cancels.
func Orphan() {
	go func() { // want "goroutine has no provable join or cancel path"
		_ = 1 + 1
	}()
}

// MissingAdd joins with Done but never Adds, so Wait does not cover the
// goroutine.
func MissingAdd(wg *sync.WaitGroup) {
	go func() { // want "never calls Add before the go statement"
		defer wg.Done()
	}()
}

// Unbounded launches one goroutine per element with no semaphore.
func Unbounded(items []int, wg *sync.WaitGroup) {
	for range items {
		wg.Add(1)
		go func() { // want "unbounded goroutine spawn"
			defer wg.Done()
		}()
	}
}

// LeakOnReturn's worker blocks forever on result when the timeout case
// returns first.
func LeakOnReturn(timeout chan struct{}) int {
	result := make(chan int)
	go func() { // want "goroutine may leak on early return"
		result <- 42
	}()
	select {
	case v := <-result:
		return v
	case <-timeout:
		return 0
	}
}

// Bounded acquires a semaphore slot before each spawn: clean.
func Bounded(items []int, wg *sync.WaitGroup) {
	sem := make(chan struct{}, 4)
	for range items {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-sem
		}()
	}
}

// Buffered gives the worker a buffered result slot, so an early return
// cannot strand it: clean.
func Buffered(timeout chan struct{}) int {
	result := make(chan int, 1)
	go func() {
		result <- 42
	}()
	select {
	case v := <-result:
		return v
	case <-timeout:
		return 0
	}
}

// DoneChannel parks the goroutine on a cancel channel: clean.
func DoneChannel() func() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return func() { close(done) }
}

// work carries the join evidence for ViaCallee.
func work(results chan<- int) {
	results <- 1
}

// ViaCallee's evidence lives in the spawned callee, proved through the
// call graph: clean.
func ViaCallee(results chan int) {
	go work(results)
}
