package vitri

import (
	"math/rand"
	"reflect"
	"testing"

	"vitri/internal/core"
	"vitri/internal/crashfs"
	"vitri/internal/shard"
	"vitri/internal/vfs"
)

// Sharded crash-simulation suite. The flat suite (crash_test.go) proves
// one journal + snapshot survives a power cut at every write boundary;
// this file proves the sharded composition does too: N independent
// per-shard stores plus the cross-shard MANIFEST that commits their
// layout and checkpoint cuts. Two things change versus the flat model:
//
//   - a multi-shard batch group-commits each shard's journal
//     independently, so the state recovered after a mid-batch cut is the
//     acknowledged oracle plus any PRODUCT of per-shard prefixes of the
//     in-flight call (shard A may have persisted all its items while
//     shard B persisted none);
//   - the checkpoint's commit point is the manifest rename. The teeth
//     test swaps the atomic rename for an in-place overwrite and demands
//     the suite notice the difference.

// shardCall is one DB call's span in the op log, its logical ops grouped
// by home shard. Recovery may surface any combination of per-group
// prefixes of an in-flight call; an acknowledged call applies fully.
type shardCall struct {
	start, end int
	perShard   [][]crashOp
}

// shardCrashShards is the shard count the crash workload runs at.
const shardCrashShards = 3

// shardCrashOpts is the workload/recovery configuration: Shards is 0 on
// recovery so the manifest (or, for a pre-manifest crash, its absence)
// decides the layout.
func shardCrashOpts(fsys vfs.FS, shards int) Options {
	return Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}, Shards: shards}
}

// single wraps one op as a one-group call body.
func single(op crashOp) [][]crashOp { return [][]crashOp{{op}} }

// shardCrashWorkload drives the sharded durable workload on rec: singles
// across every shard, a checkpoint, a real multi-shard AddBatch, a
// mid-stream checkpoint with mutations injected into a shard's unlocked
// commit windows, and removes. nonAtomicManifest is the teeth switch.
func shardCrashWorkload(t *testing.T, rec *crashfs.Recorder, nonAtomicManifest bool) []shardCall {
	t.Helper()
	db, err := OpenDurable("db", shardCrashOpts(rec, shardCrashShards))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db.testNonAtomicManifest = nonAtomicManifest
	calls := []shardCall{{start: 0, end: rec.Ops()}} // the open (manifest + empty shards)

	record := func(start int, groups [][]crashOp) {
		calls = append(calls, shardCall{start: start, end: rec.Ops(), perShard: groups})
	}
	add := func(id int) {
		start := rec.Ops()
		s := crashSummary(id)
		if err := db.AddSummary(s); err != nil {
			t.Fatalf("AddSummary(%d): %v", id, err)
		}
		record(start, single(crashOp{id: id, summary: s}))
	}
	remove := func(id int) {
		start := rec.Ops()
		if err := db.Remove(id); err != nil {
			t.Fatalf("Remove(%d): %v", id, err)
		}
		record(start, single(crashOp{remove: true, id: id}))
	}
	checkpoint := func() {
		start := rec.Ops()
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		record(start, nil)
	}

	// Phase 1: enough singles that every shard holds data (ids 1..8 cover
	// all three shards under shard.Route), then fold them into per-shard
	// snapshots and a fresh manifest epoch.
	for id := 1; id <= 8; id++ {
		add(id)
	}
	checkpoint()

	// Phase 2: a real multi-shard AddBatch — the group commits run
	// concurrently per shard, so its acceptance is the per-shard-prefix
	// product. The oracle's summaries replicate AddBatch's summarization
	// (per-video seed = Options.Seed + id with the default zero seed).
	batchStart := rec.Ops()
	r := rand.New(rand.NewSource(19))
	videos := make([]Video, 5)
	groups := make([][]crashOp, shardCrashShards)
	for i := range videos {
		id := 20 + i
		videos[i] = Video{ID: id, Frames: synthVideo(r, 8, 2, 4)}
		s := Summarize(id, videos[i].Frames, 0.3, int64(id))
		home := shard.Route(id, shardCrashShards)
		groups[home] = append(groups[home], crashOp{id: id, summary: s})
	}
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	for i, e := range itemErrs {
		if e != nil {
			t.Fatalf("AddBatch item %d: %v", i, e)
		}
	}
	record(batchStart, groups)

	// Phase 3: a checkpoint with mutations landing inside shard 0's
	// unlocked commit windows — acknowledged after the capture, absent
	// from the snapshots being written, surviving only through the
	// retained journal suffixes and the manifest's cut sequences.
	ckptStart := rec.Ops()
	var hookCalls []shardCall
	db.sub[0].testBeforeSnapshotWrite = func() {
		for _, id := range []int{30, 31} {
			start := rec.Ops()
			s := crashSummary(id)
			if err := db.AddSummary(s); err != nil {
				t.Fatalf("mid-checkpoint AddSummary(%d): %v", id, err)
			}
			hookCalls = append(hookCalls, shardCall{start: start, end: rec.Ops(), perShard: single(crashOp{id: id, summary: s})})
		}
	}
	db.sub[0].testBeforeRotate = func() {
		start := rec.Ops()
		if err := db.Remove(30); err != nil {
			t.Fatalf("mid-checkpoint Remove(30): %v", err)
		}
		hookCalls = append(hookCalls, shardCall{start: start, end: rec.Ops(), perShard: single(crashOp{remove: true, id: 30})})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("mid-stream Checkpoint: %v", err)
	}
	db.sub[0].testBeforeSnapshotWrite, db.sub[0].testBeforeRotate = nil, nil
	record(ckptStart, nil)
	calls = append(calls, hookCalls...)

	// Phase 4: removes and a few more singles on top of the new epoch.
	for _, id := range []int{2, 5, 21} {
		remove(id)
	}
	for id := 40; id <= 43; id++ {
		add(id)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return calls
}

// shardAcceptable reports whether got matches the oracle after the acked
// calls plus any product of per-shard prefixes of the call in flight at
// crash point p.
func shardAcceptable(got map[int]core.Summary, calls []shardCall, p int) (bool, string) {
	state := make(map[int]core.Summary)
	var inflight [][]crashOp
	for _, c := range calls {
		switch {
		case c.end <= p:
			for _, g := range c.perShard {
				for _, o := range g {
					oracleApply(state, o)
				}
			}
		case c.start <= p && p < c.end && len(c.perShard) > 0:
			inflight = c.perShard
		}
	}
	// Enumerate the prefix product across the in-flight call's shard
	// groups (each shard's journal recovers to an independent prefix of
	// its items).
	prefixes := make([]int, len(inflight))
	for {
		trial := make(map[int]core.Summary, len(state))
		for k, v := range state {
			trial[k] = v
		}
		for gi, g := range inflight {
			for _, o := range g[:prefixes[gi]] {
				oracleApply(trial, o)
			}
		}
		if reflect.DeepEqual(got, trial) {
			return true, ""
		}
		// Advance the mixed-radix prefix counter.
		gi := 0
		for ; gi < len(inflight); gi++ {
			if prefixes[gi] < len(inflight[gi]) {
				prefixes[gi]++
				break
			}
			prefixes[gi] = 0
		}
		if gi == len(inflight) {
			break
		}
	}
	full := make(map[int]core.Summary, len(state))
	for k, v := range state {
		full[k] = v
	}
	for _, g := range inflight {
		for _, o := range g {
			oracleApply(full, o)
		}
	}
	return false, describeDiff(got, full)
}

// verifyShardCrashState recovers one post-crash image (shard count
// adopted from the manifest; a cut before the first manifest commit
// legitimately recovers an empty flat store) and checks the full
// invariant, including that the recovered store still accepts and keeps
// a fresh insert across a reopen.
func verifyShardCrashState(st crashfs.State, calls []shardCall) string {
	open := func(fsys vfs.FS) (*DB, string) {
		db, err := OpenDurable("db", shardCrashOpts(fsys, 0))
		if err != nil {
			return nil, "recovery failed: " + err.Error()
		}
		return db, ""
	}
	db, msg := open(st.FS)
	if msg != "" {
		return msg
	}
	sums, err := db.summaries()
	if err != nil {
		return "summaries: " + err.Error()
	}
	got := make(map[int]core.Summary, len(sums))
	for _, s := range sums {
		got[s.VideoID] = s
	}
	ok, diff := shardAcceptable(got, calls, st.Point)
	if !ok {
		return "recovered contents diverge from oracle: " + diff
	}

	fresh := crashSummary(9900)
	if err := db.AddSummary(fresh); err != nil {
		return "post-recovery insert: " + err.Error()
	}
	if err := db.Close(); err != nil {
		return "post-recovery close: " + err.Error()
	}
	db2, msg := open(st.FS)
	if msg != "" {
		return "reopen after insert: " + msg
	}
	defer db2.Close()
	sums2, err := db2.summaries()
	if err != nil {
		return "reopen summaries: " + err.Error()
	}
	got2 := make(map[int]core.Summary, len(sums2))
	for _, s := range sums2 {
		got2[s.VideoID] = s
	}
	if _, ok := got2[9900]; !ok {
		return "acknowledged post-recovery insert lost on reopen"
	}
	delete(got2, 9900)
	if !reflect.DeepEqual(got2, got) {
		return "reopen changed recovered contents: " + describeDiff(got2, got)
	}
	return ""
}

// TestCrashShardedRecoveryExhaustive enumerates a power cut at every
// write boundary of the sharded workload — per-shard journal appends and
// group commits, per-shard snapshot writes and rotations, and both
// manifest commits — and requires every recovered image to satisfy the
// invariant.
func TestCrashShardedRecoveryExhaustive(t *testing.T) {
	rec := crashfs.NewRecorder()
	calls := shardCrashWorkload(t, rec, false)
	states := rec.CrashStates()
	if rec.Ops() < 100 {
		t.Fatalf("workload produced only %d crash boundaries, want hundreds of injected crash points", rec.Ops())
	}
	failures := 0
	for _, st := range states {
		if msg := verifyShardCrashState(st, calls); msg != "" {
			failures++
			t.Errorf("%s: %s", st.Desc, msg)
			if failures >= 10 {
				t.Fatalf("stopping after %d failing crash states (of %d)", failures, len(states))
			}
		}
	}
	t.Logf("verified %d crash states across %d boundaries", len(states), rec.Ops()+1)
}

// TestCrashShardedManifestHasTeeth breaks the manifest's atomic-replace
// discipline on purpose — checkpoints overwrite MANIFEST in place, in
// two unsynced writes — and demands the suite notice. A cut inside the
// overwrite leaves a truncated or half-written manifest that must brick
// or corrupt recovery somewhere in the enumeration; if it never does,
// the manifest boundaries prove nothing.
func TestCrashShardedManifestHasTeeth(t *testing.T) {
	rec := crashfs.NewRecorder()
	calls := shardCrashWorkload(t, rec, true)
	failures := 0
	for _, st := range rec.CrashStates() {
		if msg := verifyShardCrashState(st, calls); msg != "" {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("non-atomic manifest replacement passed every crash state — the manifest commit boundaries have no teeth")
	}
	t.Logf("non-atomic manifest replacement failed %d crash states, as it should", failures)
}
