// Package floats seeds order-dependent float folds over maps, next to
// every exemption the floatorder analyzer grants.
package floats

import "sort"

// SumMap folds map values in iteration order.
func SumMap(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation into total inside range over map m"
	}
	return total
}

// ProductMap shows the rule covers every compound float operator.
func ProductMap(m map[int]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod *= v // want "float accumulation into prod inside range over map m"
	}
	return prod
}

// SumField shows the rule reaching through selectors and pointers.
type acc struct {
	total float64
}

// SumIntoField accumulates into a struct field owned outside the loop.
func SumIntoField(a *acc, m map[string]float64) {
	for _, v := range m {
		a.total += v // want "float accumulation into a.total inside range over map m"
	}
}

// SumInts accumulates integers: exact arithmetic, order-independent.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Normalize writes per-key slots: deterministic per key.
func Normalize(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// LocalAccumulator's accumulator is declared inside the body, so it
// never spans iterations.
func LocalAccumulator(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		x := v
		x += 1
		last = x
	}
	return last
}

// SumOrdered is the sanctioned fix: collect the keys, sort, then fold.
func SumOrdered(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}
