// Package journal is the durable store's append-only delta log. Between
// snapshots, every acknowledged Add/Remove lands here as one
// length-prefixed, CRC32C-checksummed record; recovery replays the log
// over the last snapshot and truncates the torn tail a power cut may
// have left, instead of failing.
//
// Durability contract: an operation is durable once Commit has returned
// for its sequence number. Append alone only buffers — the caller
// acknowledges nothing until Commit succeeds. Commit is a group commit:
// concurrent callers piggyback on one fsync, so the fsync cost of a
// burst of inserts is amortized across the burst (the classic ARIES
// group-commit optimization).
//
// Wire layout (little-endian):
//
//	header: magic "VITRIWAL" (8) | version uint32 | startSeq uint64 |
//	        crc32c(previous fields) uint32
//	record: payloadLen uint32 | kind uint8 | seq uint64 | payload |
//	        crc32c(kind + seq + payload) uint32
//
// startSeq records where numbering resumed after the last checkpoint
// rotation, so an empty journal still carries its position in the global
// sequence. Replay (see replay.go) verifies every record checksum and
// stops — without error — at the first record that is torn, corrupt or
// misordered; everything after that point was never acknowledged.
package journal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"time"

	"vitri/internal/core"
	"vitri/internal/metrics"
	"vitri/internal/storefmt"
)

const (
	magic      = "VITRIWAL"
	version    = uint32(1)
	headerSize = 8 + 4 + 8 + 4
	// recOverhead is every non-payload byte of one record.
	recOverhead = 4 + 1 + 8 + 4
	// maxPayload bounds a hostile or garbage length prefix. One summary
	// is a few KiB; 64 MiB is far beyond any legitimate record.
	maxPayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind discriminates record types.
type Kind uint8

// Record kinds.
const (
	// KindAdd journals one added summary (payload: storefmt summary record).
	KindAdd Kind = 1
	// KindRemove journals one removed video (payload: video id uint32).
	KindRemove Kind = 2
)

// Entry is one decoded journal record.
type Entry struct {
	Seq  uint64
	Kind Kind
	// Summary is set for KindAdd.
	Summary core.Summary
	// VideoID is set for KindRemove.
	VideoID int
}

// Stats is a point-in-time view of the writer, surfaced through
// DB.DurabilityStats and the server's /stats endpoint.
type Stats struct {
	// Depth is the number of live records — operations not yet folded
	// into a snapshot (replayed at open plus appended since).
	Depth int
	// Bytes is the journal file's valid length.
	Bytes int64
	// LastSeq is the highest sequence number assigned.
	LastSeq uint64
	// DurableSeq is the highest sequence number fsync has covered.
	DurableSeq uint64
	// Fsyncs counts physical fsync calls (group commit makes this lower
	// than the operation count under concurrency).
	Fsyncs uint64
	// FsyncLatency is the distribution of fsync wall times in seconds.
	FsyncLatency metrics.HistogramSnapshot
}

// encodeRecord appends one record's wire bytes to buf.
func encodeRecord(buf *bytes.Buffer, kind Kind, seq uint64, payload []byte) {
	var scratch [13]byte
	le32put(scratch[0:4], uint32(len(payload)))
	scratch[4] = byte(kind)
	le64put(scratch[5:13], seq)
	buf.Write(scratch[:])
	buf.Write(payload)
	crc := crc32.New(castagnoli)
	crc.Write(scratch[4:13])
	crc.Write(payload)
	var tail [4]byte
	le32put(tail[:], crc.Sum32())
	buf.Write(tail[:])
}

// encodeHeader renders the journal header for startSeq.
func encodeHeader(startSeq uint64) []byte {
	b := make([]byte, headerSize)
	copy(b, magic)
	le32put(b[8:12], version)
	le64put(b[12:20], startSeq)
	le32put(b[20:24], crc32.Checksum(b[:20], castagnoli))
	return b
}

// addPayload encodes a KindAdd payload.
func addPayload(s *core.Summary) ([]byte, error) {
	var buf bytes.Buffer
	if err := storefmt.EncodeSummary(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// removePayload encodes a KindRemove payload.
func removePayload(videoID int) []byte {
	var b [4]byte
	le32put(b[:], uint32(videoID))
	return b[:]
}

// decodePayload parses a record payload for kind. Errors mean the bytes
// are checksum-valid but not a well-formed record — an encoder bug or a
// deliberate corruption that kept the CRC; replay treats it like a
// corrupt tail.
func decodePayload(kind Kind, payload []byte) (Entry, error) {
	switch kind {
	case KindAdd:
		r := bytes.NewReader(payload)
		s, err := storefmt.DecodeSummary(r)
		if err != nil {
			return Entry{}, err
		}
		if r.Len() != 0 {
			return Entry{}, fmt.Errorf("journal: %d trailing bytes after Add payload", r.Len())
		}
		return Entry{Kind: KindAdd, Summary: s}, nil
	case KindRemove:
		if len(payload) != 4 {
			return Entry{}, fmt.Errorf("journal: Remove payload is %d bytes, want 4", len(payload))
		}
		return Entry{Kind: KindRemove, VideoID: int(le32get(payload))}, nil
	}
	return Entry{}, fmt.Errorf("journal: unknown record kind %d", kind)
}

// newFsyncHistogram builds the latency histogram Commit observes into.
func newFsyncHistogram() *metrics.Histogram {
	return metrics.NewHistogram(metrics.LatencyBounds())
}

// observeFsync records one fsync's wall time.
func (w *Writer) observeFsync(start time.Time) {
	w.fsyncs.Inc()
	w.fsyncLatency.Observe(time.Since(start).Seconds())
}

func le32put(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func le64put(b []byte, v uint64) {
	le32put(b[:4], uint32(v))
	le32put(b[4:8], uint32(v>>32))
}

func le32get(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64get(b []byte) uint64 {
	return uint64(le32get(b)) | uint64(le32get(b[4:]))<<32
}
