// Package lint is a self-contained static-analysis framework for this
// module, built only on the standard library's go/parser, go/ast and
// go/types (the module carries no external dependencies, so
// golang.org/x/tools is deliberately off-limits).
//
// It exists to machine-check the three invariants PR 1 documented in
// prose, which review alone will not keep true as the tree grows:
//
//   - the checkpoint → shard-view → DB → Index → Tree → pager lock
//     hierarchy (analyzer lockorder),
//   - per-scan I/O attribution through pager.ScanStats on every search
//     path — the paper's §5.2 headline metric is page accesses, so one
//     unattributed read corrupts the reproduction (analyzer trackedio),
//   - byte-identical results regardless of parallelism, which forbids
//     float accumulation in map iteration order (analyzer floatorder),
//   - no silently dropped errors from module mutators (analyzer
//     droppederr),
//   - no per-iteration allocations from the vec helpers inside the
//     summarization hot loops, which the ingest pipeline's zero-alloc
//     Lloyd kernels depend on (analyzer hotalloc),
//   - the durability layer's atomic-replace discipline: a vfs Rename
//     publishes the source file's bytes, so the file must be fsynced
//     first or a crash can leave the new name pointing at garbage
//     (analyzer syncbeforerename),
//   - every spawned goroutine has a provable join or cancel path —
//     WaitGroup, channel send/close, or a receive loop — and loops do
//     not spawn unboundedly without a semaphore (analyzer
//     goroutinelife),
//   - atomic/mutex consistency: a field touched through sync/atomic is
//     never accessed plainly, fields annotated "// guarded by <mu>" are
//     only touched with that mutex held (proved through the
//     interprocedural entry-lock sets), and every field of a
//     mutex-carrying struct in the durability and serving paths carries
//     a concurrency annotation (analyzer atomicmix).
//
// The lockorder, goroutinelife and atomicmix analyzers are
// interprocedural: they share a module-wide call graph (callgraph.go)
// and lock graph (lockgraph.go) that propagate which locks each call
// can acquire, whether it can fsync or block on a channel, and which
// locks every caller provably holds at a function's entry.
//
// The cmd/vitrilint driver loads the whole module, runs every analyzer
// and exits nonzero with "file:line: [analyzer] message" diagnostics.
// Intentional violations are suppressed in place with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line above it; the driver counts
// suppressions in its summary line, and a directive that no longer
// suppresses anything is itself reported (analyzer lint), so stale
// suppressions cannot outlive the bug they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's diagnostic format: file:line: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package, a whole
// module, or both.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	// May be nil for module-only analyzers.
	Run func(pass *Pass)
	// RunModule inspects the whole module at once on the shared call
	// graph and lock facts (built lazily, once per lint run). The
	// driver filters its diagnostics to the packages the run selected.
	// May be nil for package-only analyzers.
	RunModule func(mp *ModulePass)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path; ModulePath the module's.
	PkgPath    string
	ModulePath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole loaded module plus the shared
// interprocedural facts to a module-level analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module
	// Graph is the module-wide call graph; Facts the lock/flow facts
	// computed on it (held sets, transitive summaries, entry musts).
	Graph *CallGraph
	Facts *modFacts

	report func(Diagnostic)
}

// Reportf records a module-level finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	mp.report(Diagnostic{
		Pos:      mp.Mod.Fset.Position(pos),
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// typeOf returns the type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// calleeFunc resolves the statically-known function or method a call
// invokes, or nil (calls through function values are not resolved).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// All returns the full analyzer suite in stable reporting order.
func All() []*Analyzer {
	return []*Analyzer{LockOrder, TrackedIO, FloatOrder, DroppedErr, HotAlloc, SyncBeforeRename, GoroutineLife, AtomicMix}
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// exprString renders a simple expression (identifiers, selectors, derefs)
// as source text for diagnostics and mutex identity. Unrenderable
// expressions collapse to "?", which deliberately never matches another
// mutex key.
func exprString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.BasicLit:
		return x.Value
	}
	return "?"
}

// deref removes one level of pointer indirection, if any.
func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// namedOf returns t's named type after stripping pointers and aliases.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if n, ok := deref(types.Unalias(t)).(*types.Named); ok {
		return n
	}
	return nil
}

// isScanStatsPtr reports whether t is *ScanStats from a package named
// "pager" (matched by name so testdata fixture modules exercise the same
// rule as the real tree).
func isScanStatsPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "ScanStats" && obj.Pkg() != nil && obj.Pkg().Name() == "pager"
}

// isNil reports whether e is the predeclared nil.
func (p *Pass) isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.ObjectOf(id).(*types.Nil)
	return isNil
}
