// Package btree seeds the trackedio violations reachable from a single
// package: direct pager reads on search paths, untracked same-package
// helpers, and nil ScanStats arguments — next to the sanctioned
// forwarding wrapper and fully attributed paths.
package btree

import (
	"errors"

	"fixture/pager"
)

var errNegative = errors.New("negative key")

// Tree is the fixture B+-tree handle.
type Tree struct {
	pg pager.Pager
}

// readNodeTracked is the attributed page reader: clean.
func (t *Tree) readNodeTracked(id pager.PageID, st *pager.ScanStats) error {
	var p pager.Page
	return pager.ReadTracked(t.pg, id, &p, st)
}

// descendToLeaf threads its caller's stats downward: clean.
func (t *Tree) descendToLeaf(key float64, st *pager.ScanStats) error {
	return t.readNodeTracked(0, st)
}

// searchRaw performs a raw page read on a search path.
func (t *Tree) searchRaw(id pager.PageID) error {
	var p pager.Page
	return t.pg.Read(id, &p) // want "untracked page read (t.pg.Read) on search path searchRaw"
}

// Scan reaches the raw read through a same-package helper.
func (t *Tree) Scan(st *pager.ScanStats) error {
	if st == nil {
		st = new(pager.ScanStats)
	}
	return t.searchRaw(0) // want "Scan calls searchRaw, which performs page reads that bypass ScanStats attribution"
}

// SeekBad drops attribution its caller offered.
func (t *Tree) SeekBad(key float64) error {
	if key < 0 {
		return errNegative
	}
	return t.descendToLeaf(key, nil) // want "nil ScanStats passed to descendToLeaf on search path SeekBad"
}

// Seek is the sanctioned single-statement forwarding wrapper: clean.
func (t *Tree) Seek(key float64) error { return t.descendToLeaf(key, nil) }

// ScanRange attributes every read to its caller's stats: clean.
func (t *Tree) ScanRange(lo, hi float64, st *pager.ScanStats) error {
	if err := t.descendToLeaf(lo, st); err != nil {
		return err
	}
	return t.readNodeTracked(1, st)
}

// checkAll is a maintenance walk, not a search path: its raw read is
// out of scope.
func (t *Tree) checkAll() error {
	var p pager.Page
	return t.pg.Read(0, &p)
}

// Audit keeps the unexported maintenance walk referenced.
func (t *Tree) Audit() error { return t.checkAll() }
