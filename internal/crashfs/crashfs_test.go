package crashfs

import (
	"io"
	"os"
	"strings"
	"testing"

	"vitri/internal/vfs"
)

// write is a test helper: create/open name, write data, optionally sync.
func write(t *testing.T, fsys vfs.FS, name string, data string, sync bool) {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func findState(states []State, point int, desc string) *State {
	for i := range states {
		if states[i].Point == point && strings.Contains(states[i].Desc, desc) {
			return &states[i]
		}
	}
	return nil
}

// TestUnsyncedWritesVanishInStrict: data written but never fsynced must
// be absent in the strict image at the final boundary.
func TestUnsyncedWritesVanishInStrict(t *testing.T) {
	rec := NewRecorder()
	write(t, rec, "a", "hello", true)
	write(t, rec, "b", "world", false)
	if err := rec.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	states := rec.CrashStates()
	end := rec.Ops()
	st := findState(states, end, "strict")
	if st == nil {
		t.Fatal("no strict state at final boundary")
	}
	img := st.FS.Snapshot()
	if string(img["a"]) != "hello" {
		t.Fatalf("synced file a = %q", img["a"])
	}
	if len(img["b"]) != 0 {
		t.Fatalf("unsynced write survived strict crash: b = %q", img["b"])
	}
	// The flushed image keeps everything.
	fl := findState(states, end, "flushed")
	if fl == nil {
		t.Fatal("no flushed state")
	}
	img = fl.FS.Snapshot()
	if string(img["a"]) != "hello" || string(img["b"]) != "world" {
		t.Fatalf("flushed image = %v", img)
	}
}

// TestRenameWithoutSyncDir: a rename not followed by a directory sync is
// undone in the strict image but visible in metadata-first — the exact
// divergence that catches rename-before-dir-sync bugs.
func TestRenameWithoutSyncDir(t *testing.T) {
	rec := NewRecorder()
	write(t, rec, "f.tmp", "v2", true)
	if err := rec.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := rec.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	states := rec.CrashStates()
	end := rec.Ops()

	strict := findState(states, end, "strict").FS.Snapshot()
	if _, ok := strict["f"]; ok {
		t.Fatal("unsynced rename visible in strict image")
	}
	if string(strict["f.tmp"]) != "v2" {
		t.Fatalf("strict image = %v", strict)
	}
	meta := findState(states, end, "metadata-first").FS.Snapshot()
	if string(meta["f"]) != "v2" {
		t.Fatalf("metadata-first image = %v", meta)
	}
}

// TestMetadataFirstExposesUnsyncedData: rename to the final name before
// syncing the file data — metadata-first must show the new name with
// only the synced (empty) data. This is the disk state that breaks
// naive save routines.
func TestMetadataFirstExposesUnsyncedData(t *testing.T) {
	rec := NewRecorder()
	write(t, rec, "g.tmp", "payload", false) // NOT synced
	if err := rec.Rename("g.tmp", "g"); err != nil {
		t.Fatal(err)
	}
	if err := rec.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	meta := findState(rec.CrashStates(), rec.Ops(), "metadata-first").FS.Snapshot()
	if data, ok := meta["g"]; !ok || len(data) != 0 {
		t.Fatalf("metadata-first: g = %q (present %v), want present and empty", data, ok)
	}
}

// TestTornAndPrefixStates: multiple unsynced writes yield prefix, torn
// and reordered images with the right contents.
func TestTornAndPrefixStates(t *testing.T) {
	rec := NewRecorder()
	f, err := rec.OpenFile("x", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "AAAA"); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "BBBB"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	states := rec.CrashStates()
	end := rec.Ops()

	if st := findState(states, end, "prefix inode=1 k=1"); st == nil {
		t.Fatal("no prefix state")
	} else if got := string(st.FS.Snapshot()["x"]); got != "AAAA" {
		t.Fatalf("prefix k=1: %q", got)
	}
	if st := findState(states, end, "torn-cut inode=1 k=0"); st == nil {
		t.Fatal("no torn-cut state")
	} else if got := string(st.FS.Snapshot()["x"]); got != "AA" {
		t.Fatalf("torn-cut k=0: %q", got)
	}
	if st := findState(states, end, "torn-zero inode=1 k=1"); st == nil {
		t.Fatal("no torn-zero state")
	} else if got := string(st.FS.Snapshot()["x"]); got != "AAAABB\x00\x00" {
		t.Fatalf("torn-zero k=1: %q", got)
	}
	// Reorder: only the second write hit disk; the hole reads as zeros.
	if st := findState(states, end, "reorder inode=1"); st == nil {
		t.Fatal("no reorder state")
	} else if got := string(st.FS.Snapshot()["x"]); got != "\x00\x00\x00\x00BBBB" {
		t.Fatalf("reorder: %q", got)
	}
}

// TestBoundaryEnumerationIsExhaustive: every op index appears as a crash
// point, including 0 and the final boundary.
func TestBoundaryEnumerationIsExhaustive(t *testing.T) {
	rec := NewRecorder()
	write(t, rec, "a", "1234", true)
	write(t, rec, "b", "5678", false)
	if err := rec.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	states := rec.CrashStates()
	seen := make(map[int]bool)
	for _, st := range states {
		seen[st.Point] = true
	}
	for p := 0; p <= rec.Ops(); p++ {
		if !seen[p] {
			t.Fatalf("crash point %d missing (ops=%d)", p, rec.Ops())
		}
	}
	// Point 0 is the pristine pre-workload disk.
	if img := findState(states, 0, "flushed").FS.Snapshot(); len(img) != 0 {
		t.Fatalf("point 0 image not empty: %v", img)
	}
}

// TestLiveViewServesReads: the workload reading its own writes sees them
// fully applied regardless of sync state.
func TestLiveViewServesReads(t *testing.T) {
	rec := NewRecorder()
	write(t, rec, "a", "data", false)
	f, err := rec.OpenFile("a", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("live read = %q", got)
	}
}
