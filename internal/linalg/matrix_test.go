package linalg

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

func TestSymSetAtMirrors(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 2, 5)
	if m.At(2, 0) != 5 || m.At(0, 2) != 5 {
		t.Fatalf("Set did not mirror: %v %v", m.At(0, 2), m.At(2, 0))
	}
}

func TestNewSymPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSym(0)
}

func TestMulVec(t *testing.T) {
	m := NewSym(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 1, 3)
	got := m.MulVec([]float64{1, 2})
	if got[0] != 4 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Points on a line y = 2x: covariance [[var, 2var],[2var, 4var]].
	pts := []vec.Vector{{-1, -2}, {0, 0}, {1, 2}}
	cov, mean := Covariance(pts)
	if !vec.ApproxEqual(mean, vec.Vector{0, 0}, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	wantVar := 2.0 / 3.0
	if math.Abs(cov.At(0, 0)-wantVar) > 1e-12 {
		t.Errorf("cov00 = %v want %v", cov.At(0, 0), wantVar)
	}
	if math.Abs(cov.At(0, 1)-2*wantVar) > 1e-12 {
		t.Errorf("cov01 = %v want %v", cov.At(0, 1), 2*wantVar)
	}
	if math.Abs(cov.At(1, 1)-4*wantVar) > 1e-12 {
		t.Errorf("cov11 = %v want %v", cov.At(1, 1), 4*wantVar)
	}
}

func TestCovarianceSinglePoint(t *testing.T) {
	cov, mean := Covariance([]vec.Vector{{3, 4}})
	if !vec.Equal(mean, vec.Vector{3, 4}) {
		t.Fatalf("mean = %v", mean)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cov.At(i, j) != 0 {
				t.Fatalf("single-point covariance not zero")
			}
		}
	}
}

func TestEigenDiagonal(t *testing.T) {
	m := NewSym(3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 5)
	m.Set(2, 2, 3)
	e := EigenSym(m)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-10 {
			t.Errorf("value[%d] = %v want %v", i, e.Values[i], w)
		}
	}
}

func TestEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	m := NewSym(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 1, 2)
	e := EigenSym(m)
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("values = %v", e.Values)
	}
	v0 := e.Vectors[0]
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Errorf("first eigenvector = %v", v0)
	}
}

// Property: for random symmetric matrices, A v = λ v for every eigenpair,
// eigenvectors are orthonormal, and the trace equals the eigenvalue sum.
func TestEigenRandomProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(24)
		m := NewSym(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		e := EigenSym(m)
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			sum += e.Values[i]
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			t.Fatalf("n=%d trace %v != eigensum %v", n, trace, sum)
		}
		for i := 0; i < n; i++ {
			av := m.MulVec(e.Vectors[i])
			lv := vec.Scale(e.Vectors[i], e.Values[i])
			if !vec.ApproxEqual(av, lv, 1e-7) {
				t.Fatalf("n=%d eigenpair %d residual too large", n, i)
			}
			for j := i; j < n; j++ {
				dot := vec.Dot(e.Vectors[i], e.Vectors[j])
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("n=%d vectors %d,%d not orthonormal: %v", n, i, j, dot)
				}
			}
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", e.Values)
			}
		}
	}
}

func TestPCADominantDirection(t *testing.T) {
	// Points spread along direction (3,4)/5 with small orthogonal noise.
	r := rand.New(rand.NewSource(7))
	dir := vec.Vector{0.6, 0.8}
	orth := vec.Vector{-0.8, 0.6}
	var pts []vec.Vector
	for i := 0; i < 500; i++ {
		t1 := r.NormFloat64() * 10
		t2 := r.NormFloat64() * 0.1
		pts = append(pts, vec.Add(vec.Scale(dir, t1), vec.Scale(orth, t2)))
	}
	p := ComputePCA(pts)
	if ang := AngleBetween(p.First(), dir); ang > 0.02 {
		t.Fatalf("first PC off by %v rad: %v", ang, p.First())
	}
	if p.Variances[0] < 50*p.Variances[1] {
		t.Fatalf("variance ordering unexpected: %v", p.Variances)
	}
}

func TestVarianceSegment(t *testing.T) {
	pts := []vec.Vector{{-3, 0}, {5, 0}, {1, 0}, {0, 0}}
	p := ComputePCA(pts)
	seg := p.SegmentFor(pts, 0)
	// Φ1 is ±x axis; projections are ±the x coordinates.
	lo, hi := seg.Lo, seg.Hi
	if math.Abs(seg.Length()-8) > 1e-9 {
		t.Fatalf("segment [%v,%v] length %v, want 8", lo, hi, seg.Length())
	}
}

func TestAngleBetween(t *testing.T) {
	if a := AngleBetween(vec.Vector{1, 0}, vec.Vector{0, 1}); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Errorf("perpendicular angle = %v", a)
	}
	if a := AngleBetween(vec.Vector{1, 0}, vec.Vector{-1, 0}); a > 1e-9 {
		t.Errorf("sign-flipped angle should be 0, got %v", a)
	}
	if a := AngleBetween(vec.Vector{0, 0}, vec.Vector{1, 0}); a != 0 {
		t.Errorf("zero vector angle = %v", a)
	}
}

func TestProjectMatchesDot(t *testing.T) {
	pts := []vec.Vector{{1, 2}, {3, 4}, {5, 6}, {2, 1}}
	p := ComputePCA(pts)
	x := vec.Vector{7, 8}
	if got, want := p.Project(x, 0), vec.Dot(x, p.Components[0]); got != want {
		t.Fatalf("Project = %v want %v", got, want)
	}
}

func TestFirstEigenvectorMatchesJacobi(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(30)
		// Build an SPD matrix A = B·Bᵀ with a boosted dominant direction
		// so the top eigenvalue is well separated.
		m := NewSym(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, r.NormFloat64()*0.1)
			}
		}
		dom := make(vec.Vector, n)
		for i := range dom {
			dom[i] = r.NormFloat64()
		}
		vec.Normalize(dom)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, m.At(i, j)+5*dom[i]*dom[j])
			}
		}
		// Symmetrize into PSD-ish by squaring: C = M·M (still symmetric,
		// same eigenvectors, squared eigenvalues -> all non-negative).
		c := NewSym(n)
		for i := 0; i < n; i++ {
			row := m.MulVec(colOf(m, i))
			for j := i; j < n; j++ {
				c.Set(i, j, row[j])
			}
		}
		want := EigenSym(c).Vectors[0]
		got := FirstEigenvector(c, 1e-12, 0)
		if ang := AngleBetween(want, got); ang > 1e-4 {
			t.Fatalf("n=%d power iteration off by %v rad", n, ang)
		}
	}
}

// colOf extracts column i of a symmetric matrix (equals row i).
func colOf(m *Sym, i int) vec.Vector {
	out := make(vec.Vector, m.N)
	for j := 0; j < m.N; j++ {
		out[j] = m.At(i, j)
	}
	return out
}

func TestFirstEigenvectorDegenerate(t *testing.T) {
	// Zero matrix: any unit vector is acceptable; must not hang or NaN.
	m := NewSym(4)
	v := FirstEigenvector(m, 0, 50)
	if len(v) != 4 || !vec.IsFinite(v) {
		t.Fatalf("degenerate result %v", v)
	}
	if math.Abs(vec.Norm(v)-1) > 1e-9 {
		t.Fatalf("not unit: %v", vec.Norm(v))
	}
}
