package linalg

import (
	"math"
	"math/rand"

	"vitri/internal/vec"
)

// FirstEigenvector estimates the dominant eigenvector of a symmetric
// positive-semidefinite matrix by power iteration with a deterministic
// start. It is the fast path for callers that only need Φ1 (drift
// detection re-checks the principal direction after every batch of
// insertions): O(n² · iters) instead of the full Jacobi O(n³) sweep.
//
// Convergence is declared when successive directions agree within tol
// (angle-insensitive to sign). For matrices whose top two eigenvalues
// coincide the returned vector is an arbitrary direction in their
// eigenspace — exactly the situation in which "the" first principal
// component is not well defined anyway.
func FirstEigenvector(m *Sym, tol float64, maxIters int) vec.Vector {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 1000
	}
	n := m.N
	// Deterministic pseudo-random start avoids adversarial orthogonality
	// to the dominant eigenvector.
	rng := rand.New(rand.NewSource(0x5eed))
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	vec.Normalize(v)
	for it := 0; it < maxIters; it++ {
		w := m.MulVec(v)
		if !vec.Normalize(w) {
			// The matrix annihilated v (zero matrix or v in the null
			// space); any unit vector is as good as another.
			return v
		}
		// |v·w| close to 1 means the direction has stabilized.
		if math.Abs(vec.Dot(v, w)) >= 1-tol {
			return w
		}
		v = w
	}
	return v
}
