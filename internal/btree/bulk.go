package btree

import (
	"errors"
	"fmt"

	"vitri/internal/pager"
)

// Entry is one (key, value) pair for bulk loading.
type Entry struct {
	Key float64
	Val []byte
}

// DefaultFillFactor leaves a little slack in bulk-loaded leaves so the
// first few subsequent inserts do not immediately split every leaf.
const DefaultFillFactor = 0.95

// BulkLoad builds a tree over pre-sorted entries, packing leaves to
// fillFactor (0 selects DefaultFillFactor) and constructing the internal
// levels bottom-up. It is the fast path for one-off index construction
// (paper §6.3.2's "one-off construction"); entries must be sorted by key
// ascending or an error is returned.
func BulkLoad(pg pager.Pager, valSize int, entries []Entry, fillFactor float64) (*Tree, error) {
	if fillFactor == 0 {
		fillFactor = DefaultFillFactor
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("btree: fill factor %v out of (0, 1]", fillFactor)
	}
	t, err := Create(pg, valSize)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key < entries[i-1].Key {
			return nil, errors.New("btree: BulkLoad entries not sorted")
		}
	}
	perLeaf := int(float64(leafCapacity(valSize)) * fillFactor)
	if perLeaf < 1 {
		perLeaf = 1
	}

	type childRef struct {
		firstKey float64
		id       pager.PageID
	}
	var level []childRef

	// The Create call made an empty root leaf; reuse it as the first leaf.
	leafID := t.root
	var prev *node
	for start := 0; start < len(entries); start += perLeaf {
		end := start + perLeaf
		if end > len(entries) {
			end = len(entries)
		}
		var n *node
		if start == 0 {
			if n, err = t.readNode(leafID); err != nil {
				return nil, err
			}
		} else {
			id, err := t.allocNode(nodeLeaf)
			if err != nil {
				return nil, err
			}
			if n, err = t.readNode(id); err != nil {
				return nil, err
			}
			prev.setLink(n.id)
			if err := t.writeNode(prev); err != nil {
				return nil, err
			}
		}
		for i := start; i < end; i++ {
			e := entries[i]
			if len(e.Val) != valSize {
				return nil, fmt.Errorf("btree: entry %d value size %d, want %d", i, len(e.Val), valSize)
			}
			n.setLeafEntry(i-start, valSize, e.Key, e.Val)
		}
		n.setCount(end - start)
		n.setLink(pager.InvalidPage)
		if err := t.writeNode(n); err != nil {
			return nil, err
		}
		level = append(level, childRef{firstKey: entries[start].Key, id: n.id})
		prev = n
	}

	// Build internal levels until a single node remains.
	height := 1
	for len(level) > 1 {
		perNode := internalCapacity() + 1 // link child + capacity separators
		var next []childRef
		for start := 0; start < len(level); start += perNode {
			end := start + perNode
			if end > len(level) {
				end = len(level)
			}
			id, err := t.allocNode(nodeInternal)
			if err != nil {
				return nil, err
			}
			n, err := t.readNode(id)
			if err != nil {
				return nil, err
			}
			n.setLink(level[start].id)
			for i := start + 1; i < end; i++ {
				n.internalInsertAt(i-start-1, level[i].firstKey, level[i].id)
			}
			if err := t.writeNode(n); err != nil {
				return nil, err
			}
			next = append(next, childRef{firstKey: level[start].firstKey, id: id})
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = int64(len(entries))
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}
