package vitri

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vitri/internal/core"
	"vitri/internal/shard"
	"vitri/internal/vfs"
)

// Shard router: when Options.Shards > 1, DB.sub holds that many
// independent single-shard engines and the methods here route, scatter
// and aggregate across them.
//
//   - Mutations route by shard.Route(videoID, N) — a stable hash, so a
//     video's home shard never changes and a durable store's journals
//     stay self-consistent across restarts.
//   - Searches scatter to every shard and merge the per-shard top-k.
//     Similarities are canonical (see internal/index's cell fold), so the
//     merged ranking is byte-identical to the single-shard engine's; the
//     tie-break (higher similarity first, then lower video id) is the
//     same total order rankLocked uses.
//   - Cross-shard reads (Len, Triplets, DriftAngle, Save, the checkpoint
//     capture) take viewMu exclusively while multi-shard mutations hold
//     it shared for their whole apply window, so no reader ever observes
//     a batch half-applied across shards.
//
// The equivalence contract — matches, similarities, shared-frame counts
// and aggregate stats byte-identical to the single-shard oracle at every
// shard count — is enforced by shard_equiv_test.go; the crash contract
// (per-shard journals plus an atomically committed manifest survive a
// power cut at every write boundary) by shard_crash_test.go.

// shardDur is a shard router's durable bookkeeping. The per-shard
// snapshot + journal state lives in each shard's own durableState; the
// router owns only the manifest — the store's commit record — and the
// checkpoint epoch it advances.
type shardDur struct {
	fs           vfs.FS // immutable after OpenDurable
	dir          string // immutable after OpenDurable
	manifestPath string // immutable after OpenDurable
	// epoch mirrors the committed manifest's checkpoint epoch.
	// guarded by db.ckptMu
	epoch       uint64
	checkpoints atomic.Uint64
}

// addSummarySharded routes one summary to its home shard. The apply runs
// under a shared view-lock hold (consistent with batch applies; see
// DB.viewMu), the group commit after every lock is released.
func (db *DB) addSummarySharded(s Summary) error {
	db.viewMu.RLock()
	dur, seq, err := db.sub[shard.Route(s.VideoID, len(db.sub))].addSummaryApply(s)
	db.viewMu.RUnlock()
	if err != nil {
		return err
	}
	return dur.commitSeq(seq)
}

// removeSharded routes one removal to its home shard.
func (db *DB) removeSharded(videoID int) error {
	db.viewMu.RLock()
	dur, seq, err := db.sub[shard.Route(videoID, len(db.sub))].removeApply(videoID)
	db.viewMu.RUnlock()
	if err != nil {
		return err
	}
	return dur.commitSeq(seq)
}

// commitTicket is one shard's pending group commit after a batch apply.
type commitTicket struct {
	dur    *durableState
	maxSeq uint64
	err    error
}

// addBatchSharded applies a summarized batch across shards. Items
// partition by home shard in input order (so first-wins duplicate
// semantics inside a shard match the sequential engine; cross-shard
// duplicates cannot exist — equal ids share a home). The per-shard
// applies run concurrently under one shared view-lock hold, then each
// shard group-commits its own journal concurrently — independent fsync
// streams are exactly where sharding multiplies ingest bandwidth.
func (db *DB) addBatchSharded(summaries []core.Summary, itemErrs []error) ([]error, error) {
	n := len(db.sub)
	byShard := make([][]int, n)
	for i := range summaries {
		if itemErrs[i] != nil {
			continue
		}
		si := shard.Route(summaries[i].VideoID, n)
		byShard[si] = append(byShard[si], i)
	}
	tickets := make([]commitTicket, n)
	db.viewMu.RLock()
	if hook := db.testBetweenShardApplies; hook != nil {
		// Test-only deterministic path: apply shard by shard and run the
		// hook inside the window where the batch is torn across shards.
		for si := 0; si < n; si++ {
			if len(byShard[si]) > 0 {
				d, mx, e := db.sub[si].applyBatch(summaries, byShard[si], itemErrs)
				tickets[si] = commitTicket{dur: d, maxSeq: mx, err: e}
			}
			hook()
		}
	} else {
		var wg sync.WaitGroup
		for si := 0; si < n; si++ {
			if len(byShard[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				d, mx, e := db.sub[si].applyBatch(summaries, byShard[si], itemErrs)
				tickets[si] = commitTicket{dur: d, maxSeq: mx, err: e}
			}(si)
		}
		wg.Wait()
	}
	db.viewMu.RUnlock()

	// Group-commit every shard's journal concurrently, after the view
	// lock is released (an fsync must never stall snapshot readers).
	commitErrs := make([]error, n)
	var cwg sync.WaitGroup
	for si := 0; si < n; si++ {
		if tickets[si].maxSeq == 0 {
			continue
		}
		cwg.Add(1)
		go func(si int) {
			defer cwg.Done()
			commitErrs[si] = tickets[si].dur.commitSeq(tickets[si].maxSeq)
		}(si)
	}
	cwg.Wait()

	var batchErr error
	for si := 0; si < n; si++ {
		if tickets[si].err != nil && batchErr == nil {
			batchErr = tickets[si].err
		}
		cerr := commitErrs[si]
		if cerr == nil {
			continue
		}
		// A failed shard commit covers exactly that shard's journaled
		// items: none of them is durable, so the failure surfaces in each
		// of their slots — a nil item error always means durable.
		for _, i := range byShard[si] {
			if itemErrs[i] == nil {
				itemErrs[i] = cerr
			}
		}
		if batchErr == nil {
			batchErr = cerr
		}
	}
	return itemErrs, batchErr
}

// scatterSearch fans one query out to every shard and merges the
// per-shard top-k. Correctness of merge-then-truncate: each video lives
// in exactly one shard and its similarity is canonical, so the global
// top-k is a subset of the union of per-shard top-ks. An empty shard is
// skipped; the search fails with ErrEmptyDB only when every shard is
// empty, matching the single-shard contract. Stats are the exact sum of
// the per-shard counters (each shard attributes page reads per query).
func (db *DB) scatterSearch(q *Summary, k int, mode QueryMode, parallelism int, concurrent bool) ([]Match, SearchStats, error) {
	return db.scatter(k, concurrent, func(sh *DB) ([]Match, SearchStats, error) {
		return sh.searchSummaryP(q, k, mode, parallelism)
	})
}

// scatter runs one per-shard search closure on every shard and merges
// the per-shard top-k — the fan-out skeleton scatterSearch and
// scatterImage share. The closure must rank by the engine's canonical
// total order (similarity descending, id ascending) for mergeTopK's
// merge-then-truncate to reproduce the single-shard ranking.
func (db *DB) scatter(k int, concurrent bool, run func(sh *DB) ([]Match, SearchStats, error)) ([]Match, SearchStats, error) {
	type shardOut struct {
		res   []Match
		stats SearchStats
		err   error
	}
	outs := make([]shardOut, len(db.sub))
	if concurrent {
		var wg sync.WaitGroup
		for i := 0; i < len(db.sub); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				o := &outs[i]
				o.res, o.stats, o.err = run(db.sub[i])
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < len(db.sub); i++ {
			o := &outs[i]
			o.res, o.stats, o.err = run(db.sub[i])
		}
	}
	var stats SearchStats
	empty := 0
	parts := make([][]Match, 0, len(outs))
	for i := range outs {
		switch {
		case outs[i].err == nil:
			stats.Ranges += outs[i].stats.Ranges
			stats.Candidates += outs[i].stats.Candidates
			stats.SimilarityOps += outs[i].stats.SimilarityOps
			stats.SignatureSkips += outs[i].stats.SignatureSkips
			stats.PageReads += outs[i].stats.PageReads
			parts = append(parts, outs[i].res)
		case errors.Is(outs[i].err, ErrEmptyDB):
			empty++
		default:
			return nil, SearchStats{}, outs[i].err
		}
	}
	if empty == len(db.sub) {
		return nil, SearchStats{}, ErrEmptyDB
	}
	return mergeTopK(parts, k), stats, nil
}

// mergeTopK merges per-shard ranked lists into the global top-k using
// the same total order the per-shard ranking sorts by: similarity
// descending, then video id ascending. Returns nil when no shard
// produced a match, like a single-shard search with no candidates.
func mergeTopK(parts [][]Match, k int) []Match {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	all := make([]Match, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Similarity != all[j].Similarity {
			return all[i].Similarity > all[j].Similarity
		}
		return all[i].VideoID < all[j].VideoID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// searchBatchSharded pipelines whole queries through a worker pool
// (Options.SearchParallelism workers, like the single-shard batch path);
// each query scatters across shards sequentially with intra-query
// parallelism 1, so concurrency lives at the query and shard grain where
// it pays, not in nested pools.
func (db *DB) searchBatchSharded(queries []Summary, k int, mode QueryMode) ([]BatchResult, error) {
	// Whole-call contract, as on a single shard: fail only when the
	// database holds nothing; force lazy index builds now so per-query
	// work starts from a built index.
	empty := 0
	for i := 0; i < len(db.sub); i++ {
		if _, err := db.sub[i].index(); err != nil {
			if errors.Is(err, ErrEmptyDB) {
				empty++
				continue
			}
			return nil, err
		}
	}
	if empty == len(db.sub) {
		return nil, ErrEmptyDB
	}
	out := make([]BatchResult, len(queries))
	workers := db.opts.SearchParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				res, stats, err := db.scatterSearch(&queries[i], k, mode, 1, false)
				out[i] = BatchResult{Results: res, Stats: stats, Err: err}
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// checkpointSharded runs the two-phase checkpoint per shard and commits
// the cross-shard cut atomically:
//
//  1. Capture — every shard's (summaries, journal cut) pair is pinned
//     under ONE exclusive view-lock hold. Multi-shard batches hold the
//     view lock shared for their whole apply window, so the per-shard
//     cuts form a single consistent cross-shard cut: no batch is
//     captured on some shards and missed on others.
//  2. Commit — per shard, in shard order: snapshot write + journal
//     rotation, with mutations in flight (the view lock is released).
//     Sequential order keeps the crash suite's write-boundary
//     enumeration deterministic; the disk work is already pipelined
//     against mutations, which is where non-blocking matters.
//  3. Manifest — the new per-shard cut sequences and the advanced epoch
//     replace the manifest via temp file + fsync + rename + dir sync.
//     This rename is the checkpoint's commit point: a crash anywhere
//     before it leaves the previous manifest, whose cuts the retained
//     journal suffixes still satisfy; a crash after it finds every
//     shard's snapshot already in place.
func (db *DB) checkpointSharded() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	sd := db.shdur
	if sd == nil {
		return ErrNotDurable
	}
	caps := make([]*ckptCapture, len(db.sub))
	db.viewMu.Lock()
	var err error
	for i := 0; i < len(db.sub) && err == nil; i++ {
		caps[i], err = db.sub[i].checkpointCapture()
	}
	db.viewMu.Unlock()
	if err != nil {
		return err
	}
	cuts := make([]uint64, len(db.sub))
	for i := 0; i < len(db.sub); i++ {
		if err := db.sub[i].checkpointCommit(caps[i]); err != nil {
			return fmt.Errorf("vitri: checkpoint shard %d: %w", i, err)
		}
		cuts[i] = caps[i].cut.LastSeq
	}
	man := &shard.Manifest{Shards: len(db.sub), Epoch: sd.epoch + 1, Cuts: cuts}
	if db.testNonAtomicManifest {
		err = shard.WriteManifestUnsafe(sd.fs, sd.manifestPath, man)
	} else {
		err = shard.WriteManifest(sd.fs, sd.manifestPath, man)
	}
	if err != nil {
		return fmt.Errorf("vitri: checkpoint: manifest: %w", err)
	}
	sd.epoch++
	sd.checkpoints.Add(1)
	return nil
}

// durabilityStatsSharded aggregates per-shard durability telemetry; see
// DurabilityStats for the aggregation semantics.
func (db *DB) durabilityStatsSharded() DurabilityStats {
	sd := db.shdur
	if sd == nil {
		return DurabilityStats{}
	}
	agg := DurabilityStats{
		Enabled:     true,
		Dir:         sd.dir,
		Checkpoints: sd.checkpoints.Load(),
	}
	first := true
	for i := 0; i < len(db.sub); i++ {
		ds := db.sub[i].DurabilityStats()
		if !ds.Enabled {
			continue
		}
		agg.SnapshotSeq += ds.SnapshotSeq
		if first || ds.SnapshotVersion < agg.SnapshotVersion {
			agg.SnapshotVersion = ds.SnapshotVersion
		}
		first = false
		agg.Journal.Depth += ds.Journal.Depth
		agg.Journal.Bytes += ds.Journal.Bytes
		agg.Journal.LastSeq += ds.Journal.LastSeq
		agg.Journal.DurableSeq += ds.Journal.DurableSeq
		agg.Journal.Fsyncs += ds.Journal.Fsyncs
		agg.Journal.FsyncLatency = agg.Journal.FsyncLatency.Merge(ds.Journal.FsyncLatency)
	}
	return agg
}

// statsSharded aggregates the per-shard tree shapes under one consistent
// cross-shard snapshot.
func (db *DB) statsSharded() (IndexStats, error) {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	var agg IndexStats
	var weightedFill float64
	for i := 0; i < len(db.sub); i++ {
		st, err := db.sub[i].Stats()
		if err != nil {
			return IndexStats{}, err
		}
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
		agg.InternalNodes += st.InternalNodes
		agg.LeafNodes += st.LeafNodes
		agg.Entries += st.Entries
		weightedFill += st.LeafFill * float64(st.LeafNodes)
	}
	if agg.LeafNodes > 0 {
		agg.LeafFill = weightedFill / float64(agg.LeafNodes)
	}
	return agg, nil
}

// checkRouting verifies every video this shard recovered routes to it —
// the open-time guard against a store whose shard directories were
// rearranged or copied between stores with different shard counts.
func (db *DB) checkRouting(i, n int) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for id := range db.ids {
		if home := shard.Route(id, n); home != i {
			return fmt.Errorf("vitri: open durable: video %d recovered in shard %d but routes to shard %d — shard layout is corrupt", id, i, home)
		}
	}
	return nil
}

// forceBuild builds every lazy index now (empty shards stay empty), so a
// bulk constructor's first search doesn't pay for construction.
func (db *DB) forceBuild() error {
	if db.sub != nil {
		for i := 0; i < len(db.sub); i++ {
			if _, err := db.sub[i].index(); err != nil && !errors.Is(err, ErrEmptyDB) {
				return err
			}
		}
		return nil
	}
	_, err := db.index()
	return err
}
