package lint

import (
	"go/token"
	"sort"
	"strings"
	"time"
)

// AnalyzerStat is one analyzer's contribution to a run, for the
// lint-stats summary and BENCH_lint.json.
type AnalyzerStat struct {
	Name       string  `json:"name"`
	Findings   int     `json:"findings"` // unsuppressed
	Suppressed int     `json:"suppressed"`
	Millis     float64 `json:"millis"`
}

// Result is one vitrilint run's outcome.
type Result struct {
	// Diagnostics are the unsuppressed findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// Packages is the number of packages analyzed.
	Packages int
	// Stats breaks findings, suppressions and wall time down per
	// analyzer, in suite order ("lint" last for directive findings).
	Stats []AnalyzerStat
	// LoadMillis and GraphMillis time module loading and the shared
	// call-graph/lock-facts construction (zero when no module-level
	// analyzer ran).
	LoadMillis  float64
	GraphMillis float64
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
	consumed  int // findings this directive suppressed in this run
}

// Run loads the module at root and applies the analyzers to every
// package matched by patterns. Per-package analyzers (Analyzer.Run) see
// only the matched packages; module-level analyzers (Analyzer.RunModule)
// always analyze the whole module on the shared call graph, with their
// diagnostics filtered to the matched packages.
//
// Findings carrying a "//lint:ignore <analyzer> <reason>" directive on
// their own line or the line above are counted as suppressed instead of
// reported. Malformed directives are themselves findings (analyzer
// "lint"), so a typo cannot silently disable a check — and so is a
// directive that suppressed nothing, provided every analyzer it names
// took part in the run: a stale suppression must not outlive the bug it
// excused.
func Run(root string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	start := time.Now()
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	res := &Result{LoadMillis: millisSince(start)}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	running := make(map[string]bool)
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var raw []Diagnostic
	var directives []*ignoreDirective
	matchedFiles := make(map[string]bool)
	statByName := make(map[string]*AnalyzerStat)
	statFor := func(name string) *AnalyzerStat {
		if s := statByName[name]; s != nil {
			return s
		}
		s := &AnalyzerStat{Name: name}
		statByName[name] = s
		return s
	}

	for _, pkg := range mod.Pkgs {
		if !pkg.Match(patterns) {
			continue
		}
		res.Packages++
		for _, fn := range pkg.FileNames {
			matchedFiles[fn] = true
		}
		dirs, malformed := collectDirectives(mod, pkg, known)
		directives = append(directives, dirs...)
		raw = append(raw, malformed...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			t := time.Now()
			pass := &Pass{
				Analyzer:   a,
				Fset:       mod.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				Info:       pkg.Info,
				PkgPath:    pkg.Path,
				ModulePath: mod.Path,
				report:     func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
			statFor(a.Name).Millis += millisSince(t)
		}
	}

	// Module-level analyzers share one lazily built call graph + facts.
	var graph *CallGraph
	var facts *modFacts
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			t := time.Now()
			graph = BuildCallGraph(mod)
			facts = buildLockFacts(mod, graph)
			res.GraphMillis = millisSince(t)
		}
		t := time.Now()
		mp := &ModulePass{
			Analyzer: a,
			Mod:      mod,
			Graph:    graph,
			Facts:    facts,
			report: func(d Diagnostic) {
				if matchedFiles[d.Pos.Filename] {
					raw = append(raw, d)
				}
			},
		}
		a.RunModule(mp)
		statFor(a.Name).Millis += millisSince(t)
	}

	for _, d := range raw {
		if dir := suppressing(d, directives); dir != nil {
			dir.consumed++
			res.Suppressed++
			statFor(d.Analyzer).Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
		statFor(d.Analyzer).Findings++
	}

	// A directive that suppressed nothing is stale — but only when every
	// analyzer it names actually ran (a partial run proves nothing).
	for _, dir := range directives {
		if dir.consumed > 0 {
			continue
		}
		ran := true
		for name := range dir.analyzers {
			if !running[name] {
				ran = false
				break
			}
		}
		if !ran {
			continue
		}
		d := Diagnostic{
			Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
			Analyzer: "lint",
			Message:  "stale //lint:ignore directive: " + directiveNames(dir) + " reports nothing here; remove it or fix the regression it now hides",
		}
		res.Diagnostics = append(res.Diagnostics, d)
		statFor("lint").Findings++
	}

	// Assemble Stats in suite order, "lint" last.
	for _, a := range All() {
		if running[a.Name] {
			if s := statByName[a.Name]; s != nil {
				res.Stats = append(res.Stats, *s)
			} else {
				res.Stats = append(res.Stats, AnalyzerStat{Name: a.Name})
			}
		}
	}
	if s := statByName["lint"]; s != nil {
		res.Stats = append(res.Stats, *s)
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// collectDirectives parses every //lint:ignore comment in the package,
// returning well-formed directives and diagnostics for malformed ones.
func collectDirectives(mod *Module, pkg *Package, known map[string]bool) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				names := make(map[string]bool)
				valid := true
				for _, n := range strings.Split(fields[0], ",") {
					if !known[n] {
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore names unknown analyzer " + n,
						})
						valid = false
						break
					}
					names[n] = true
				}
				if !valid {
					continue
				}
				dirs = append(dirs, &ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: names})
			}
		}
	}
	return dirs, bad
}

// suppressing returns the directive covering d (on its line or the line
// above), or nil.
func suppressing(d Diagnostic, dirs []*ignoreDirective) *ignoreDirective {
	if d.Analyzer == "lint" {
		return nil // directive hygiene findings cannot be suppressed
	}
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}

// directiveNames renders a directive's analyzer list deterministically.
func directiveNames(dir *ignoreDirective) string {
	names := make([]string, 0, len(dir.analyzers))
	for n := range dir.analyzers {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func millisSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}
