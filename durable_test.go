package vitri

import (
	"errors"
	"io/fs"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vitri/internal/core"
	"vitri/internal/journal"
	"vitri/internal/storefmt"
	"vitri/internal/vfs"
)

// TestDurableLifecycle exercises the durable store on the real
// filesystem: open empty, mutate, close, reopen, verify; checkpoint,
// mutate more, reopen, verify.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if !db.Durable() {
		t.Fatal("Durable() = false")
	}
	for i := 1; i <= 6; i++ {
		if err := db.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Remove(2); err != nil {
		t.Fatal(err)
	}
	st := db.DurabilityStats()
	if !st.Enabled || st.Journal.Depth != 7 || st.Journal.LastSeq != 7 || st.Journal.DurableSeq != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: journal replays over the (absent) snapshot.
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if db2.Epsilon() != 0.3 {
		t.Fatalf("epsilon not adopted: %v", db2.Epsilon())
	}
	want := map[int]bool{1: true, 3: true, 4: true, 5: true, 6: true}
	got := dbContents(t, db2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d videos, want %d", len(got), len(want))
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			t.Fatalf("video %d missing after replay", id)
		}
	}

	// Checkpoint folds the journal; a reopen must replay nothing and see
	// the same contents.
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st = db2.DurabilityStats()
	if st.Journal.Depth != 0 || st.SnapshotVersion != storefmt.Version3 || st.Checkpoints != 1 {
		t.Fatalf("post-checkpoint stats = %+v", st)
	}
	if err := db2.AddSummary(crashSummary(50)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	got3 := dbContents(t, db3)
	if len(got3) != 6 {
		t.Fatalf("after checkpoint+add: %d videos, want 6", len(got3))
	}
	if _, ok := got3[50]; !ok {
		t.Fatal("post-checkpoint add lost")
	}
	if st := db3.DurabilityStats(); st.Journal.Depth != 1 {
		t.Fatalf("replayed depth = %d, want 1 (only the post-checkpoint add)", st.Journal.Depth)
	}
}

// TestDurableSearchable: a recovered durable database answers queries.
func TestDurableSearchable(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]Vector, 8)
	for i := range frames {
		frames[i] = Vector{float64(i) * 0.01, 0.5, 0.25}
	}
	if err := db.Add(1, frames); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	matches, err := db2.Search(frames, 1)
	if err != nil {
		t.Fatalf("Search after recovery: %v", err)
	}
	if len(matches) != 1 || matches[0].VideoID != 1 {
		t.Fatalf("matches = %+v", matches)
	}
}

// TestV1MigratesOnCheckpoint: a legacy v1 store dropped into a durable
// directory opens, serves, and upgrades to the checksummed v2 format on
// its next Checkpoint, preserving contents byte-for-byte.
func TestV1MigratesOnCheckpoint(t *testing.T) {
	dir := t.TempDir()
	legacy := New(Options{Epsilon: 0.25})
	for i := 1; i <= 5; i++ {
		if err := legacy.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(dir, "snapshot.vitri")
	if err := legacy.Save(snapPath); err != nil {
		t.Fatal(err)
	}
	legacyContents := dbContents(t, legacy)

	db, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDurable over v1 store: %v", err)
	}
	if db.Epsilon() != 0.25 {
		t.Fatalf("epsilon = %v", db.Epsilon())
	}
	if st := db.DurabilityStats(); st.SnapshotVersion != storefmt.Version1 {
		t.Fatalf("pre-migration SnapshotVersion = %d, want %d", st.SnapshotVersion, storefmt.Version1)
	}
	if !reflect.DeepEqual(dbContents(t, db), legacyContents) {
		t.Fatal("v1 contents not preserved on durable open")
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatalf("migrating checkpoint: %v", err)
	}
	if st := db.DurabilityStats(); st.SnapshotVersion != storefmt.Version3 {
		t.Fatalf("post-migration SnapshotVersion = %d, want %d", st.SnapshotVersion, storefmt.Version3)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The file on disk is now genuinely v3 (checksummed, with the
	// signatures section), still loadable by both Load and OpenDurable
	// with identical contents.
	snap, err := storefmt.ReadSnapshotFile(vfs.OS{}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != storefmt.Version3 {
		t.Fatalf("on-disk version = %d", snap.Version)
	}
	loaded, err := Load(snapPath, Options{})
	if err != nil {
		t.Fatalf("Load of migrated store: %v", err)
	}
	if !reflect.DeepEqual(dbContents(t, loaded), legacyContents) {
		t.Fatal("migration changed contents")
	}
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !reflect.DeepEqual(dbContents(t, db2), legacyContents) {
		t.Fatal("durable reopen of migrated store changed contents")
	}
}

// TestV2MigratesOnCheckpoint: a durable DB opened over a v2 snapshot
// (written by the previous release) loads it as-is and upgrades the file
// to v3 — summaries byte-preserved, signatures section derived — at its
// next checkpoint.
func TestV2MigratesOnCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var sums []core.Summary
	for i := 1; i <= 5; i++ {
		sums = append(sums, crashSummary(i))
	}
	storefmt.SortSummaries(sums)
	snapPath := filepath.Join(dir, "snapshot.vitri")
	v2 := &storefmt.Snapshot{Version: storefmt.Version2, Epsilon: 0.3, LastSeq: 0, Summaries: sums}
	if err := storefmt.WriteSnapshotFile(vfs.OS{}, snapPath, v2); err != nil {
		t.Fatalf("write v2 snapshot: %v", err)
	}

	db, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDurable over v2 store: %v", err)
	}
	if st := db.DurabilityStats(); st.SnapshotVersion != storefmt.Version2 {
		t.Fatalf("pre-migration SnapshotVersion = %d, want %d", st.SnapshotVersion, storefmt.Version2)
	}
	wantContents := dbContents(t, db)
	if len(wantContents) != len(sums) {
		t.Fatalf("loaded %d videos, want %d", len(wantContents), len(sums))
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatalf("migrating checkpoint: %v", err)
	}
	if st := db.DurabilityStats(); st.SnapshotVersion != storefmt.Version3 {
		t.Fatalf("post-migration SnapshotVersion = %d, want %d", st.SnapshotVersion, storefmt.Version3)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := storefmt.ReadSnapshotFile(vfs.OS{}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != storefmt.Version3 {
		t.Fatalf("on-disk version = %d, want v3", snap.Version)
	}
	if !reflect.DeepEqual(snap.Summaries, sums) {
		t.Fatal("v2→v3 migration changed the summaries")
	}
	if len(snap.Signatures) != len(sums) {
		t.Fatalf("migrated store carries %d signatures, want %d", len(snap.Signatures), len(sums))
	}
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !reflect.DeepEqual(dbContents(t, db2), wantContents) {
		t.Fatal("durable reopen of migrated store changed contents")
	}
}

func TestDurableErrors(t *testing.T) {
	// Checkpoint on a non-durable DB.
	db := New(Options{Epsilon: 0.3})
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on plain DB: %v, want ErrNotDurable", err)
	}
	if db.Durable() {
		t.Fatal("plain DB claims durability")
	}
	if st := db.DurabilityStats(); st.Enabled {
		t.Fatal("plain DB has enabled durability stats")
	}

	// Empty durable store without an epsilon.
	if _, err := OpenDurable(t.TempDir(), Options{}); err == nil {
		t.Fatal("OpenDurable with no epsilon on an empty store succeeded")
	}

	// Epsilon conflict with an existing store.
	dir := t.TempDir()
	db2, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.AddSummary(crashSummary(1)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, Options{Epsilon: 0.5}); err == nil {
		t.Fatal("conflicting epsilon accepted")
	}

	// Duplicate and missing ids still fail cleanly on a durable DB, and
	// failures are not journaled (depth unchanged).
	db3, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	depth := db3.DurabilityStats().Journal.Depth
	if err := db3.AddSummary(crashSummary(1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := db3.Remove(777); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if got := db3.DurabilityStats().Journal.Depth; got != depth {
		t.Fatalf("failed ops changed journal depth %d -> %d", depth, got)
	}
}

// TestCloseRacesDurabilityAccess is a regression test for the unlocked
// db.dur reads Close used to race: mutations and DurabilityStats must
// snapshot the durable state under db.mu, so a concurrent Close (which
// nils db.dur under the write lock) can neither panic them nor skip the
// fsync of an acknowledged mutation. Run under -race; errors from losing
// the race to Close are tolerated, panics and race reports are not.
func TestCloseRacesDurabilityAccess(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				//lint:ignore droppederr Close may win the race at any point
				db.AddSummary(crashSummary(base*1000 + i))
				db.DurabilityStats()
				db.Durable()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		//lint:ignore droppederr racing goroutines may have poisoned nothing; any close error is irrelevant here
		db.Close()
	}()
	close(start)
	wg.Wait()
}

// toggleFailFS fails every file fsync while fail is set.
type toggleFailFS struct {
	vfs.FS
	fail atomic.Bool
}

func (f *toggleFailFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &toggleFailFile{File: file, fs: f}, nil
}

type toggleFailFile struct {
	vfs.File
	fs *toggleFailFS
}

func (f *toggleFailFile) Sync() error {
	if f.fs.fail.Load() {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// TestAddBatchCommitFailureMarksItems: when the batch's single group
// commit fails, every journaled item's error slot must carry the failure
// — a nil slot means "durably inserted", and callers inspecting itemErrs
// per item (the documented pattern) must not see non-durable inserts as
// acknowledged. Items that already failed per-item keep their own error.
func TestAddBatchCommitFailureMarksItems(t *testing.T) {
	fsys := &toggleFailFS{FS: vfs.NewMemFS()}
	db, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	frames := func(seed int) []Vector {
		out := make([]Vector, 6)
		for i := range out {
			out[i] = Vector{float64(seed) * 0.1, float64(i) * 0.02, 0.5}
		}
		return out
	}
	fsys.fail.Store(true)
	videos := []Video{
		{ID: 1, Frames: frames(1)},
		{ID: 2, Frames: nil}, // per-item failure, independent of the commit
		{ID: 3, Frames: frames(3)},
	}
	itemErrs, batchErr := db.AddBatch(videos)
	if batchErr == nil {
		t.Fatal("AddBatch reported no batch error despite failed group commit")
	}
	if itemErrs[0] == nil || itemErrs[2] == nil {
		t.Fatalf("journaled items not marked failed: %v", itemErrs)
	}
	if !errors.Is(itemErrs[0], batchErr) && itemErrs[0].Error() != batchErr.Error() {
		t.Fatalf("item error %v does not reflect commit error %v", itemErrs[0], batchErr)
	}
	if itemErrs[1] == nil || itemErrs[1].Error() == batchErr.Error() {
		t.Fatalf("per-item failure overwritten: %v", itemErrs[1])
	}
}

// TestAddBatchPoisonedWriterShortCircuits: once the journal reports its
// sticky failure mid-batch, the remaining items must not churn through
// apply → append → rollback each — they short-circuit to the sticky
// error. The probe is a duplicate-id item placed after the poisoning
// point: the old loop would apply it first and report ErrDuplicateID;
// the short-circuit never touches the index and reports ErrPoisoned.
func TestAddBatchPoisonedWriterShortCircuits(t *testing.T) {
	fsys := &toggleFailFS{FS: vfs.NewMemFS()}
	db, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	frames := func(seed int) []Vector {
		out := make([]Vector, 6)
		for i := range out {
			out[i] = Vector{float64(seed) * 0.1, float64(i) * 0.02, 0.5}
		}
		return out
	}
	if err := db.Add(1, frames(1)); err != nil {
		t.Fatal(err)
	}
	// Poison the writer: a failed group commit is sticky.
	fsys.fail.Store(true)
	if err := db.Add(2, frames(2)); err == nil {
		t.Fatal("Add succeeded despite injected fsync failure")
	}
	videos := []Video{
		{ID: 3, Frames: frames(3)}, // hits the sticky error at its append
		{ID: 1, Frames: frames(1)}, // duplicate — must short-circuit, not apply
		{ID: 4, Frames: frames(4)},
	}
	itemErrs, batchErr := db.AddBatch(videos)
	if batchErr != nil {
		// No item was journaled, so there is nothing the group commit
		// could fail over; the failure belongs to the item slots.
		t.Fatalf("batch error = %v", batchErr)
	}
	for i, ierr := range itemErrs {
		if !errors.Is(ierr, journal.ErrPoisoned) {
			t.Fatalf("item %d error = %v, want ErrPoisoned", i, ierr)
		}
	}
	if errors.Is(itemErrs[1], ErrDuplicateID) {
		t.Fatal("duplicate item was applied against a poisoned writer — short-circuit missing")
	}
}

// TestDurableAddBatch: the batch path journals every accepted video and
// group-commits once; recovery sees all of them.
func TestDurableAddBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3, IngestParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := func(seed int) []Vector {
		out := make([]Vector, 6)
		for i := range out {
			out[i] = Vector{float64(seed) * 0.1, float64(i) * 0.02, 0.5}
		}
		return out
	}
	videos := []Video{
		{ID: 1, Frames: frames(1)},
		{ID: 2, Frames: frames(2)},
		{ID: 2, Frames: frames(2)}, // duplicate: must fail per-item, not journal
		{ID: 3, Frames: frames(3)},
	}
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if itemErrs[0] != nil || itemErrs[1] != nil || itemErrs[3] != nil {
		t.Fatalf("itemErrs = %v", itemErrs)
	}
	if !errors.Is(itemErrs[2], ErrDuplicateID) {
		t.Fatalf("duplicate item: %v", itemErrs[2])
	}
	st := db.DurabilityStats()
	if st.Journal.Depth != 3 || st.Journal.DurableSeq != 3 {
		t.Fatalf("stats after batch = %+v", st.Journal)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dbContents(t, db2); len(got) != 3 {
		t.Fatalf("recovered %d videos, want 3", len(got))
	}
}
