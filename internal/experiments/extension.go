package experiments

import (
	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/metrics"
	"vitri/internal/vec"
)

// ExtensionSummaries is not in the paper: it extends Figure 14's
// comparison with the video-signature method of Cheung & Zakhor [6]
// (random seed frames), which the paper discusses in related work as
// suffering from seed-sampling mismatch. All three methods get the same
// queries and the same frame-level ground truth at ε = Config.Epsilon.
func ExtensionSummaries(cfg Config) ([]*metrics.Table, error) {
	env, err := cfg.precisionEnv()
	if err != nil {
		return nil, err
	}
	eps := cfg.Epsilon
	sums := summarizeCorpus(env.corpus, eps, cfg.Seed)
	kfs := keyframesFromSummaries(sums)

	// Signature scheme: seeds drawn from a corpus sample, one signature
	// per database video.
	var sample []vec.Vector
	for i := range env.corpus.Videos {
		frames := env.corpus.Videos[i].Frames
		for j := 0; j < len(frames); j += 1 + len(frames)/8 {
			sample = append(sample, frames[j])
		}
	}
	scheme, err := baseline.NewSignatureScheme(sample, 64, eps, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	sigs := make([]baseline.Signature, len(env.corpus.Videos))
	for i := range env.corpus.Videos {
		v := &env.corpus.Videos[i]
		sigs[i] = scheme.Summarize(v.ID, v.Frames)
	}

	var pv, pk, ps []float64
	for _, q := range env.queries {
		cfg.logf("  extension: query %d", q.ID)
		rel := rankedIDs(env.searcher.KNN(q.Frames, eps, cfg.K))
		if len(rel) == 0 {
			continue
		}
		qSum := core.Summarize(q.ID, q.Frames, core.Options{Epsilon: eps, Seed: cfg.Seed})
		pv = append(pv, metrics.Precision(rel, rankViTri(&qSum, sums, cfg.K)))

		qKf := baseline.KeyframeSummary{VideoID: q.ID}
		for i := range qSum.Triplets {
			qKf.Keyframes = append(qKf.Keyframes, qSum.Triplets[i].Position)
		}
		pk = append(pk, metrics.Precision(rel, rankedIDs(baseline.KeyframeKNN(&qKf, kfs, eps, cfg.K))))

		qSig := scheme.Summarize(q.ID, q.Frames)
		ps = append(ps, metrics.Precision(rel, rankedIDs(scheme.KNN(&qSig, sigs, cfg.K))))
	}
	t := &metrics.Table{
		Title:   "Extension: summarization methods at eps = 0.3 (not in the paper)",
		Columns: []string{"method", "precision"},
	}
	t.AddRowf("ViTri", metrics.Mean(pv))
	t.AddRowf("Keyframe [5]", metrics.Mean(pk))
	t.AddRowf("Video signature [6]", metrics.Mean(ps))
	return []*metrics.Table{t}, nil
}
