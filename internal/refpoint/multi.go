package refpoint

import (
	"fmt"
	"math"
	"math/rand"

	"vitri/internal/cluster"
	"vitri/internal/vec"
)

// KeyRange is one interval of one-dimensional keys to search.
type KeyRange struct {
	Lo, Hi float64
}

// Mapper is the abstraction the index builds on: a mapping from
// n-dimensional points to one-dimensional keys, with the query-side
// inverse — the key ranges that can contain points within gamma of a
// query point. The single-reference Transform emits one range; the
// multi-partition iDistance mapper emits up to one per partition.
type Mapper interface {
	// Key maps a point to its one-dimensional key.
	Key(p vec.Vector) float64
	// Ranges returns the key intervals that may contain points within
	// gamma of p. Intervals may overlap; callers compose them.
	Ranges(p vec.Vector, gamma float64) []KeyRange
	// Kind identifies the strategy.
	Kind() Kind
	// FirstPC returns the first principal component captured at build
	// time, or nil when the strategy does not depend on data correlation.
	FirstPC() vec.Vector
}

// Ranges implements Mapper for the single-reference Transform: the one
// triangle-inequality band around the query's key.
func (t *Transform) Ranges(p vec.Vector, gamma float64) []KeyRange {
	k := t.Key(p)
	return []KeyRange{{Lo: k - gamma, Hi: k + gamma}}
}

var _ Mapper = (*Transform)(nil)

// Multi is the full iDistance scheme of Yu/Ooi/Tan/Jagadish (the paper's
// [15]): the space is partitioned around k reference points (cluster
// centers); a point's key is base(partition) + d(point, nearest ref),
// with partitions mapped to disjoint key bands. Queries probe only the
// partitions whose occupied shell the query ball reaches.
type Multi struct {
	refs []vec.Vector
	// maxDist[i] bounds d(x, refs[i]) over the build points of partition
	// i; headroom[i] is the band capacity available for later inserts.
	maxDist  []float64
	headroom []float64
	base     []float64
}

// MultiPartitions is the default partition count, matching the iDistance
// paper's typical configuration.
const MultiPartitions = 16

// NewMulti builds an iDistance mapper over points with k partitions
// (k <= 1 selects MultiPartitions). Reference points are k-means centers
// of the build set. Each partition's key band reserves 2× its build
// radius so dynamically inserted points near the partition stay in-band.
func NewMulti(points []vec.Vector, k int, seed int64) (*Multi, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("refpoint: no points to derive iDistance partitions")
	}
	if k <= 1 {
		k = MultiPartitions
	}
	res := cluster.KMeans(points, k, rand.New(rand.NewSource(seed)), 0)
	m := &Multi{refs: res.Centers}
	m.maxDist = make([]float64, len(m.refs))
	for i, p := range points {
		c := res.Assign[i]
		if d := vec.Dist(p, m.refs[c]); d > m.maxDist[c] {
			m.maxDist[c] = d
		}
	}
	m.headroom = make([]float64, len(m.refs))
	m.base = make([]float64, len(m.refs))
	offset := 0.0
	for i := range m.refs {
		// Headroom: twice the build radius, at least 1, so later inserts
		// have room before a rebuild is required.
		m.headroom[i] = 2*m.maxDist[i] + 1
		m.base[i] = offset
		offset += m.headroom[i]
	}
	return m, nil
}

// assign returns the nearest reference point's index and the distance.
func (m *Multi) assign(p vec.Vector) (int, float64) {
	best, bestD := 0, vec.Dist(p, m.refs[0])
	for i := 1; i < len(m.refs); i++ {
		if d := vec.Dist(p, m.refs[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Key implements Mapper. A point beyond its partition's reserved band
// (possible only for inserts far outside the build distribution) is keyed
// at the band edge; Ranges compensates by always probing band edges, so
// correctness is preserved at some pruning cost until a rebuild.
func (m *Multi) Key(p vec.Vector) float64 {
	i, d := m.assign(p)
	if d > m.headroom[i] {
		d = m.headroom[i]
	}
	return m.base[i] + d
}

// Ranges implements Mapper: one clamped band per partition whose occupied
// shell intersects the query ball.
func (m *Multi) Ranges(p vec.Vector, gamma float64) []KeyRange {
	var out []KeyRange
	for i, ref := range m.refs {
		d := vec.Dist(p, ref)
		lo := math.Max(0, d-gamma)
		hi := d + gamma
		if lo > m.headroom[i] {
			continue // the band cannot contain anything this close
		}
		if hi > m.headroom[i] {
			hi = m.headroom[i]
		}
		out = append(out, KeyRange{Lo: m.base[i] + lo, Hi: m.base[i] + hi})
	}
	return out
}

// Kind implements Mapper.
func (m *Multi) Kind() Kind { return MultiRef }

// FirstPC implements Mapper: iDistance partitioning does not depend on a
// principal direction.
func (m *Multi) FirstPC() vec.Vector { return nil }

// Partitions returns the number of reference points.
func (m *Multi) Partitions() int { return len(m.refs) }

var _ Mapper = (*Multi)(nil)
