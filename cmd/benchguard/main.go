// Command benchguard gates make check on the committed benchmark
// numbers: it fails when BENCH_checkpoint.json's engine p99 ratio —
// per-mutation latency during a checkpoint over the quiescent baseline,
// on a RAM-backed store — exceeds 2x. That ratio is the non-blocking
// checkpoint's contract; a regression means checkpoints have started
// blocking the mutation path again.
//
// Only the engine section is gated. The disk_cotenancy section records
// what sharing one filesystem journal with snapshot syncs costs on the
// measurement machine; it is expected to exceed 2x and is reported, not
// enforced.
//
// Usage:
//
//	benchguard [path/to/BENCH_checkpoint.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

const maxP99Ratio = 2.0

type section struct {
	P99Ratio *float64 `json:"p99_ratio"`
}

type benchCheckpoint struct {
	Engine        *section `json:"engine"`
	DiskCotenancy *section `json:"disk_cotenancy"`
}

func main() {
	path := "BENCH_checkpoint.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var b benchCheckpoint
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if b.Engine == nil || b.Engine.P99Ratio == nil {
		fatalf("%s: no engine.p99_ratio — re-run make bench-checkpoint", path)
	}
	ratio := *b.Engine.P99Ratio
	if ratio > maxP99Ratio {
		fatalf("%s: engine p99 ratio %.3f exceeds %.1fx — checkpoints are blocking the mutation path again",
			path, ratio, maxP99Ratio)
	}
	if b.DiskCotenancy != nil && b.DiskCotenancy.P99Ratio != nil {
		fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx); disk co-tenancy %.1fx (informational)\n",
			ratio, maxP99Ratio, *b.DiskCotenancy.P99Ratio)
		return
	}
	fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx)\n", ratio, maxP99Ratio)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
