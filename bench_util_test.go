package vitri

import (
	"fmt"
	"sort"

	"vitri/internal/btree"
)

// Small helpers for bench_test.go kept out of the main bench file.

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func fmtF(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

func sortEntries(entries []btree.Entry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}
