// Package baseline implements the comparators the paper evaluates against:
//
//   - the exact frame-level similarity measure of §3.1 (used to produce
//     ground truth, exactly as the paper does);
//   - sequential scan over a flat paged file of ViTri records;
//   - the keyframe method of Chang/Sull/Lee [5] (percentage of similar
//     keyframes);
//   - the video-signature method of Cheung/Zakhor [6] (random seed
//     frames) as an extension baseline.
package baseline

import (
	"runtime"
	"sort"
	"sync"

	"vitri/internal/vec"
)

// simBlock is the tile edge of the blocked exact-similarity kernel: 64
// frames of 64-dimensional float64 features are 32 KiB, so an x-tile and a
// y-tile together fit comfortably in L2 while the x-tile stays hot across
// the inner sweeps.
const simBlock = 64

// ExactSimilarity computes the §3.1 video similarity over raw frames:
//
//	sim(X,Y) = (|{x∈X : ∃y∈Y d(x,y)≤ε}| + |{y∈Y : ∃x∈X d(x,y)≤ε}|) / (|X|+|Y|)
//
// It is O(|X|·|Y|·n) and intended for ground truth; the pair loop is
// cache-blocked so long videos do not stream Y through cache once per
// frame of X. Pairs whose endpoints are both already marked similar are
// skipped — marks only ever turn on, so skipping cannot change the final
// counts, and ExactSimilarityNaive exists as the unblocked reference.
func ExactSimilarity(x, y []vec.Vector, epsilon float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	eps2 := epsilon * epsilon
	xHit := make([]bool, len(x))
	yHit := make([]bool, len(y))
	for xb := 0; xb < len(x); xb += simBlock {
		xe := xb + simBlock
		if xe > len(x) {
			xe = len(x)
		}
		for yb := 0; yb < len(y); yb += simBlock {
			ye := yb + simBlock
			if ye > len(y) {
				ye = len(y)
			}
			for i := xb; i < xe; i++ {
				fx := x[i]
				hit := xHit[i]
				for j := yb; j < ye; j++ {
					if hit && yHit[j] {
						continue
					}
					if vec.Dist2(fx, y[j]) <= eps2 {
						hit = true
						yHit[j] = true
					}
				}
				xHit[i] = hit
			}
		}
	}
	matched := 0
	for _, h := range xHit {
		if h {
			matched++
		}
	}
	for _, h := range yHit {
		if h {
			matched++
		}
	}
	return float64(matched) / float64(len(x)+len(y))
}

// ExactSimilarityNaive is the direct row-by-row evaluation of the §3.1
// measure, the reference the blocked kernel is tested (and benchmarked)
// against.
func ExactSimilarityNaive(x, y []vec.Vector, epsilon float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	eps2 := epsilon * epsilon
	matched := 0
	yHit := make([]bool, len(y))
	for _, fx := range x {
		found := false
		for yi, fy := range y {
			if vec.Dist2(fx, fy) <= eps2 {
				yHit[yi] = true
				if !found {
					found = true
					// Keep scanning: yHit marks must be complete for the
					// reverse direction.
				}
			}
		}
		if found {
			matched++
		}
	}
	for _, h := range yHit {
		if h {
			matched++
		}
	}
	return float64(matched) / float64(len(x)+len(y))
}

// Ranked is one scored video in a baseline result list.
type Ranked struct {
	VideoID    int
	Similarity float64
}

// rankTopK sorts by similarity descending (video id ascending on ties) and
// truncates to k, dropping zero scores.
func rankTopK(scores []Ranked, k int) []Ranked {
	nz := scores[:0]
	for _, s := range scores {
		if s.Similarity > 0 {
			nz = append(nz, s)
		}
	}
	sort.Slice(nz, func(i, j int) bool {
		if nz[i].Similarity != nz[j].Similarity {
			return nz[i].Similarity > nz[j].Similarity
		}
		return nz[i].VideoID < nz[j].VideoID
	})
	if len(nz) > k {
		nz = nz[:k]
	}
	return nz
}

// ExactKNN ranks every corpus video against the query frames with the
// exact measure and returns the top k — the paper's ground-truth
// procedure. Work is spread across CPUs.
func ExactKNN(query []vec.Vector, corpus map[int][]vec.Vector, epsilon float64, k int) []Ranked {
	ids := make([]int, 0, len(corpus))
	for id := range corpus {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	scores := make([]Ranked, len(ids))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				id := ids[i]
				scores[i] = Ranked{VideoID: id, Similarity: ExactSimilarity(query, corpus[id], epsilon)}
			}
		}()
	}
	for i := range ids {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return rankTopK(scores, k)
}
