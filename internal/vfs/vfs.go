// Package vfs is the narrow filesystem seam the durability layer writes
// through. Production code uses OS (thin wrappers over package os); the
// crash-simulation harness substitutes internal/crashfs's recorder, which
// logs every write/sync boundary so a simulated power cut can be injected
// between any two of them.
//
// The interface is deliberately minimal — exactly the operations a
// snapshot writer and an append-only journal need — because every method
// is a crash boundary the harness must model:
//
//   - File.Write and File.Truncate change file data, volatile until the
//     next File.Sync;
//   - FS.Rename, FS.Remove and file creation change directory entries,
//     volatile until FS.SyncDir on the parent directory (the POSIX rule
//     "All File Systems Are Not Created Equal" (OSDI 2014) showed real
//     applications forget).
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is one open file. The durability contract mirrors POSIX: data
// written is volatile until Sync returns; Close does not imply Sync.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Truncate changes the file's size; like writes, the new size is
	// volatile until Sync.
	Truncate(size int64) error
	// Sync makes all of the file's current data and size durable.
	Sync() error
}

// FS is the filesystem the store and journal operate on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (O_RDONLY, O_RDWR,
	// O_CREATE, O_TRUNC, O_APPEND are honoured).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newname with oldname. The new directory
	// entry is volatile until SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove deletes a name (volatile until SyncDir).
	Remove(name string) error
	// Stat reports a name's metadata (fs.ErrNotExist when absent).
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll creates a directory path.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir makes the directory's entries — creations, renames and
	// removals under it — durable.
	SyncDir(name string) error
}

// OS is the production FS: direct delegation to package os.
type OS struct{}

// osFile adapts *os.File (method set already matches File).
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir fsyncs the directory itself, making renames under it durable.
func (OS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
