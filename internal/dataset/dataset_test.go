package dataset

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"vitri/internal/vec"
)

func tinyHistConfig(seed int64) HistConfig {
	return HistConfig{
		Dim:          16,
		FPS:          10,
		AvgShotSec:   1.0,
		ShotNoise:    0.004,
		ActiveBins:   5,
		LibraryShots: 24,
		Seed:         seed,
		Durations:    []DurationSpec{{Seconds: 3, Count: 5}, {Seconds: 2, Count: 3}},
	}
}

func TestPaperSpecScaling(t *testing.T) {
	full := PaperSpec(1.0)
	if full[0].Count != 2934 || full[1].Count != 2519 || full[2].Count != 1134 {
		t.Fatalf("full spec = %+v", full)
	}
	tenth := PaperSpec(0.1)
	if tenth[0].Count != 293 || tenth[1].Count != 251 || tenth[2].Count != 113 {
		t.Fatalf("tenth spec = %+v", tenth)
	}
	tiny := PaperSpec(0.00001)
	for _, s := range tiny {
		if s.Count < 1 {
			t.Fatalf("scale floor violated: %+v", tiny)
		}
	}
}

func TestGenerateHistShape(t *testing.T) {
	c, err := GenerateHist(tinyHistConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Videos) != 8 {
		t.Fatalf("videos = %d", len(c.Videos))
	}
	// Airings are time-compressed and clipped, so totals land below the
	// nominal duration×fps but in a bounded band.
	nominal := 5*30 + 3*20
	if fc := c.FrameCount(); fc < nominal*2/5 || fc > nominal {
		t.Fatalf("frames = %d, want within [%d, %d]", fc, nominal*2/5, nominal)
	}
	for _, v := range c.Videos {
		if len(v.Frames) == 0 {
			t.Fatalf("video %d has no frames", v.ID)
		}
	}
	for _, v := range c.Videos {
		for _, f := range v.Frames {
			if len(f) != 16 {
				t.Fatalf("frame dim = %d", len(f))
			}
			if s := vec.Sum(f); math.Abs(s-1) > 1e-9 {
				t.Fatalf("frame sums to %v", s)
			}
			for _, x := range f {
				if x < 0 {
					t.Fatalf("negative bin %v", x)
				}
			}
		}
	}
}

func TestGenerateHistDeterministic(t *testing.T) {
	a, err := GenerateHist(tinyHistConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHist(tinyHistConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Videos {
		for j := range a.Videos[i].Frames {
			if !vec.Equal(a.Videos[i].Frames[j], b.Videos[i].Frames[j]) {
				t.Fatalf("video %d frame %d differs", i, j)
			}
		}
	}
}

func TestGenerateHistValidation(t *testing.T) {
	bad := tinyHistConfig(1)
	bad.Dim = 1
	if _, err := GenerateHist(bad); err == nil {
		t.Fatal("expected error for dim 1")
	}
	bad = tinyHistConfig(1)
	bad.ActiveBins = 100
	if _, err := GenerateHist(bad); err == nil {
		t.Fatal("expected error for ActiveBins > Dim")
	}
	bad = tinyHistConfig(1)
	bad.Durations = nil
	if _, err := GenerateHist(bad); err == nil {
		t.Fatal("expected error for empty durations")
	}
}

func TestShotClusteringStatistics(t *testing.T) {
	// Within-shot consecutive distances must be far below the ε=0.3
	// threshold, with occasional large jumps at cuts.
	c, err := GenerateHist(tinyHistConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var small, large int
	for _, v := range c.Videos {
		for i := 1; i < len(v.Frames); i++ {
			if vec.Dist(v.Frames[i-1], v.Frames[i]) < 0.1 {
				small++
			} else {
				large++
			}
		}
	}
	if large == 0 {
		t.Fatal("no shot cuts present")
	}
	if small < large {
		t.Fatalf("intra-shot transitions (%d) should dominate cuts (%d)", small, large)
	}
}

func TestGeneratePixelPipeline(t *testing.T) {
	cfg := PixelConfig{
		W: 48, H: 36, FPS: 5, Bits: 2, AvgShotSec: 1.0, Seed: 3,
		Durations: []DurationSpec{{Seconds: 2, Count: 2}},
	}
	c, err := GeneratePixel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim != 64 || len(c.Videos) != 2 || c.FrameCount() != 20 {
		t.Fatalf("corpus shape: dim=%d videos=%d frames=%d", c.Dim, len(c.Videos), c.FrameCount())
	}
	for _, v := range c.Videos {
		for _, f := range v.Frames {
			if s := vec.Sum(f); math.Abs(s-1) > 1e-9 {
				t.Fatalf("pixel histogram sums to %v", s)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, err := GenerateHist(tinyHistConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.gob")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != c.Dim || len(got.Videos) != len(c.Videos) {
		t.Fatalf("reloaded shape differs")
	}
	for i := range c.Videos {
		if got.Videos[i].ID != c.Videos[i].ID {
			t.Fatalf("video %d id differs", i)
		}
		for j := range c.Videos[i].Frames {
			if !vec.Equal(got.Videos[i].Frames[j], c.Videos[i].Frames[j]) {
				t.Fatalf("video %d frame %d differs", i, j)
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestMakeQueriesAndGroundTruth(t *testing.T) {
	c, err := GenerateHist(tinyHistConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := MakeQueries(c, 3, DefaultPerturb, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.SourceID] {
			t.Fatalf("duplicate source %d", q.SourceID)
		}
		seen[q.SourceID] = true
		if len(q.Frames) == 0 {
			t.Fatal("empty query")
		}
		// Ground truth must rank the source video at the top. With a
		// small shared shot library two videos can tie at the maximum
		// similarity (genuine duplicates), so accept the source anywhere
		// within the top tie group.
		gt := c.GroundTruth(q.Frames, 0.3, 5)
		if len(gt) == 0 {
			t.Fatal("empty ground truth")
		}
		found := false
		for _, r := range gt {
			if r.Similarity == gt[0].Similarity && r.VideoID == q.SourceID {
				found = true
			}
		}
		if !found {
			t.Fatalf("ground truth top = %+v, want source %d in the top tie group", gt, q.SourceID)
		}
	}
}

func TestMakeQueriesValidation(t *testing.T) {
	c, _ := GenerateHist(tinyHistConfig(1))
	if _, err := MakeQueries(c, 0, DefaultPerturb, 0, 1); err == nil {
		t.Fatal("expected error for zero queries")
	}
	if _, err := MakeQueries(c, 100, DefaultPerturb, 0, 1); err == nil {
		t.Fatal("expected error for too many queries")
	}
}

func TestPerturbFramesKeepsSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frames := []vec.Vector{{0.5, 0.5, 0, 0}, {0.25, 0.25, 0.25, 0.25}}
	out := PerturbFrames(frames, PerturbConfig{Noise: 0.05, MassShift: 0.1}, rng)
	for _, f := range out {
		if s := vec.Sum(f); math.Abs(s-1) > 1e-9 {
			t.Fatalf("perturbed frame sums to %v", s)
		}
	}
	// Extreme crop falls back to the full range.
	out = PerturbFrames(frames, PerturbConfig{DropFraction: 2.0}, rng)
	if len(out) != len(frames) {
		t.Fatalf("extreme crop returned %d frames", len(out))
	}
}
