package metrics

import (
	"strings"
	"testing"
)

func TestPrecision(t *testing.T) {
	cases := []struct {
		rel, ret []int
		want     float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2, 3}, []int{3, 4, 5}, 1.0 / 3},
		{[]int{1, 2}, []int{3, 4}, 0},
		{nil, []int{1}, 0},
		{[]int{1, 2, 3, 4}, []int{2, 4}, 0.5},
	}
	for _, c := range cases {
		if got := Precision(c.rel, c.ret); got != c.want {
			t.Errorf("Precision(%v, %v) = %v want %v", c.rel, c.ret, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tb.AddRow("x", "y")
	tb.AddRowf(1.23456789, 7)
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "a") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
	if !strings.Contains(s, "1.235") {
		t.Fatalf("float formatting wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), s)
	}
}
