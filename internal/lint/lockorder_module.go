package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// runLockOrderModule is lockorder's interprocedural half, running once
// per module on the shared lock graph. It reports:
//
//   - hierarchy violations, both where an acquisition is spelled out
//     (reproducing the intra-procedural diagnostic) and at calls that
//     transitively reach one, with the acquisition chain;
//   - ranked locks held across fsync, directly or through callees;
//   - classed locks held across blocking channel sends, ditto;
//   - lock-order cycles among lock classes (one report per strongly
//     connected component, with the chain behind every edge). Cycles
//     whose every edge set already includes a reported hierarchy
//     violation are left to those reports.
//
// lockEdgeKey identifies one "from is held while to is acquired" pair.
type lockEdgeKey struct{ from, to *types.Var }

// lockEdge is the first witness recorded for one edge.
type lockEdge struct {
	fn      *types.Func
	pos     token.Pos // event position (acquire or call)
	fromPos token.Pos // where the held lock was acquired
	wit     *witness  // nil: local acquire of .to at pos
	hier    bool      // some occurrence was reported as a hierarchy violation
}

func runLockOrderModule(mp *ModulePass) {
	mf := mp.Facts

	edges := make(map[lockEdgeKey]*lockEdge)
	addEdge := func(k lockEdgeKey, e *lockEdge) {
		if cur, ok := edges[k]; ok {
			cur.hier = cur.hier || e.hier
			return
		}
		edges[k] = e
	}

	for _, fi := range mp.Graph.Order {
		f := mf.fns[fi.Fn]

		// Local acquisitions: hierarchy check (the pre-interprocedural
		// diagnostic, verbatim) and cycle edges.
		for i := range f.acquires {
			acq := &f.acquires[i]
			for _, h := range acq.held {
				hier := h.level >= 0 && acq.op.level >= 0 && acq.op.level <= h.level && h.key != acq.op.key
				if hier {
					mp.Reportf(acq.op.pos,
						"lock order violation: acquiring %s lock %s while holding %s lock %s; the hierarchy is checkpoint → shard-view → DB → Index → Tree → pager",
						lockLevelLabel[acq.op.level], acq.op.key, lockLevelLabel[h.level], h.key)
				}
				if h.class != nil && acq.op.class != nil && h.class != acq.op.class {
					addEdge(lockEdgeKey{h.class, acq.op.class},
						&lockEdge{fn: fi.Fn, pos: acq.op.pos, fromPos: h.pos, hier: hier})
				}
			}
		}

		// Direct fsyncs under a ranked engine lock.
		for i := range f.syncs {
			s := &f.syncs[i]
			for _, h := range s.held {
				if h.level >= 1 && h.level <= 5 {
					mp.Reportf(s.pos,
						"%s lock %s is held across %s, which fsyncs; fsync latency under the lock stalls every waiter — move the sync outside",
						lockLevelLabel[h.level], h.key, funcDisplay(s.callee))
				}
			}
		}

		// Direct blocking sends under any classed lock.
		for i := range f.sends {
			s := &f.sends[i]
			for _, h := range s.held {
				if h.class != nil {
					mp.Reportf(s.pos,
						"lock %s is held across a blocking channel send; a stalled receiver extends the critical section indefinitely", h.key)
				}
			}
		}

		// Call sites: what the callees can transitively do while we hold
		// locks. Goroutine launches are excluded — the spawned body
		// inherits nothing and is checked on its own state.
		for i := range f.calls {
			call := &f.calls[i]
			if call.kind == CallGo {
				continue
			}
			targets := mp.Graph.Targets(call.callee)
			if len(targets) == 0 {
				continue
			}
			mayAcq := make(map[*types.Var]*witness)
			var sy, se *witness
			for _, t := range targets {
				g := mf.fns[t]
				if g == nil || t == fi.Fn {
					continue
				}
				for c, tail := range g.mayAcquire {
					if mayAcq[c] == nil {
						mayAcq[c] = &witness{fn: fi.Fn, pos: call.pos, callee: t, tail: tail}
					}
				}
				if sy == nil && g.maySync != nil {
					sy = &witness{fn: fi.Fn, pos: call.pos, callee: t, tail: g.maySync}
				}
				if se == nil && g.maySend != nil {
					se = &witness{fn: fi.Fn, pos: call.pos, callee: t, tail: g.maySend}
				}
			}
			for _, h := range call.held {
				if h.class != nil {
					for c, wit := range mayAcq {
						if c != h.class {
							lvl := mf.classLevel(c)
							hier := h.level >= 0 && lvl >= 0 && lvl <= h.level
							addEdge(lockEdgeKey{h.class, c},
								&lockEdge{fn: fi.Fn, pos: call.pos, fromPos: h.pos, wit: wit, hier: hier})
						}
					}
					if se != nil {
						mp.Reportf(call.pos,
							"lock %s is held across a call that can block on a channel send (%s)",
							h.key, mf.chainString(se, sendLeaf))
					}
				}
				if h.level >= 0 {
					var viol []string
					var wit *witness
					var witClass string
					for c := range mayAcq {
						lvl := mf.classLevel(c)
						if c == h.class || lvl < 0 || lvl > h.level {
							continue
						}
						desc := fmt.Sprintf("%s lock %s", lockLevelLabel[lvl], mf.classDisplay(c))
						viol = append(viol, desc)
						if wit == nil || desc < witClass {
							wit, witClass = mayAcq[c], desc
						}
					}
					if len(viol) > 0 {
						sort.Strings(viol)
						mp.Reportf(call.pos,
							"lock order violation: %s lock %s is held across a call that may acquire %s (%s); the hierarchy is checkpoint → shard-view → DB → Index → Tree → pager",
							lockLevelLabel[h.level], h.key, strings.Join(viol, ", "), mf.chainString(wit, acquireLeaf))
					}
				}
				if h.level >= 1 && h.level <= 5 && sy != nil {
					mp.Reportf(call.pos,
						"%s lock %s is held across a call that can fsync (%s); fsync latency under the lock stalls every waiter — move the sync outside",
						lockLevelLabel[h.level], h.key, mf.chainString(sy, syncLeaf))
				}
			}
		}
	}

	mf.reportCycles(mp, edges)
}

// reportCycles finds strongly connected components among lock classes,
// ignoring edges already reported as hierarchy violations (those cycles
// are that diagnostic's job), and reports one diagnostic per component
// with the acquisition chain behind every edge of its shortest witness
// cycle, anchored at the lexicographically smallest class.
func (mf *modFacts) reportCycles(mp *ModulePass, edges map[lockEdgeKey]*lockEdge) {
	succ := make(map[*types.Var][]*types.Var)
	nodeSet := make(map[*types.Var]bool)
	for k, e := range edges {
		if e.hier {
			continue
		}
		succ[k.from] = append(succ[k.from], k.to)
		nodeSet[k.from] = true
		nodeSet[k.to] = true
	}
	var nodes []*types.Var
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return mf.classDisplay(nodes[i]) < mf.classDisplay(nodes[j]) })
	for _, n := range nodes {
		ss := succ[n]
		sort.Slice(ss, func(i, j int) bool { return mf.classDisplay(ss[i]) < mf.classDisplay(ss[j]) })
	}

	// Tarjan's SCC over the filtered graph.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, comp := range sccs {
		sort.Slice(comp, func(i, j int) bool { return mf.classDisplay(comp[i]) < mf.classDisplay(comp[j]) })
		inComp := make(map[*types.Var]bool, len(comp))
		for _, n := range comp {
			inComp[n] = true
		}
		start := comp[0]
		cycle := shortestCycle(start, succ, inComp)
		if cycle == nil {
			continue
		}
		var names []string
		for _, n := range cycle {
			names = append(names, mf.classDisplay(n))
		}
		names = append(names, mf.classDisplay(start))
		var descs []string
		for i, n := range cycle {
			to := start
			if i+1 < len(cycle) {
				to = cycle[i+1]
			}
			e := edges[lockEdgeKey{n, to}]
			if e == nil {
				continue
			}
			if e.wit == nil {
				descs = append(descs, fmt.Sprintf("%s is held (acquired at %s) when %s acquires %s at %s",
					mf.classDisplay(n), mf.shortPos(e.fromPos), funcDisplay(e.fn),
					mf.classDisplay(to), mf.shortPos(e.pos)))
			} else {
				descs = append(descs, fmt.Sprintf("%s is held (acquired at %s) while %s",
					mf.classDisplay(n), mf.shortPos(e.fromPos), mf.chainString(e.wit, acquireLeaf)))
			}
		}
		first := edges[lockEdgeKey{cycle[0], cycleSecond(cycle, start)}]
		mp.Reportf(first.pos, "lock-order cycle: %s — %s",
			strings.Join(names, " → "), strings.Join(descs, "; "))
	}
}

func cycleSecond(cycle []*types.Var, start *types.Var) *types.Var {
	if len(cycle) > 1 {
		return cycle[1]
	}
	return start
}

// shortestCycle finds the shortest cycle through start inside one SCC
// via BFS, returning the node sequence starting at start (the closing
// edge back to start is implied).
func shortestCycle(start *types.Var, succ map[*types.Var][]*types.Var, inComp map[*types.Var]bool) []*types.Var {
	type path struct {
		node *types.Var
		prev *path
	}
	visited := map[*types.Var]bool{start: true}
	queue := []*path{{node: start}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, w := range succ[p.node] {
			if !inComp[w] {
				continue
			}
			if w == start {
				var rev []*types.Var
				for q := p; q != nil; q = q.prev {
					rev = append(rev, q.node)
				}
				out := make([]*types.Var, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if visited[w] {
				continue
			}
			visited[w] = true
			queue = append(queue, &path{node: w, prev: p})
		}
	}
	return nil
}

// Leaf renderers for witness chains.
func acquireLeaf(mf *modFacts, w *witness) string {
	return fmt.Sprintf("%s locks at %s", funcDisplay(w.fn), mf.shortPos(w.pos))
}

func syncLeaf(mf *modFacts, w *witness) string {
	return fmt.Sprintf("%s fsyncs via %s at %s", funcDisplay(w.fn), funcDisplay(w.callee), mf.shortPos(w.pos))
}

func sendLeaf(mf *modFacts, w *witness) string {
	return fmt.Sprintf("%s sends at %s", funcDisplay(w.fn), mf.shortPos(w.pos))
}

// chainString renders a witness chain as "f → g → leaf-description".
func (mf *modFacts) chainString(w *witness, leaf func(*modFacts, *witness) string) string {
	var parts []string
	cur := w
	for cur.tail != nil {
		parts = append(parts, funcDisplay(cur.fn))
		cur = cur.tail
	}
	parts = append(parts, leaf(mf, cur))
	return strings.Join(parts, " → ")
}

// shortPos renders a position as "file.go:line" for in-message chains.
func (mf *modFacts) shortPos(pos token.Pos) string {
	p := mf.mod.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
