package sig

import (
	"bytes"
	"testing"

	"vitri/internal/vec"
)

// FuzzDecodeSignature feeds the signature codec hostile bytes: it must
// never panic, never allocate unboundedly, and anything it accepts must
// re-encode to exactly the input bytes (the codec has no redundant
// representations).
func FuzzDecodeSignature(f *testing.F) {
	seed := func(dim int) []byte {
		s := FromTriplet(make(vec.Vector, dim), 0.05, 0.1)
		for d := 0; d < dim; d++ {
			s.Planes[d%Cells][d/64] |= 1 << (uint(d) % 64)
		}
		buf := make([]byte, EncodedSize(s.Words()))
		if err := s.Encode(buf); err != nil {
			f.Fatal(err)
		}
		return buf
	}
	f.Add(seed(8))
	f.Add(seed(64))
	f.Add(seed(65))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf8, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		out := make([]byte, EncodedSize(s.Words()))
		if err := s.Encode(out); err != nil {
			t.Fatalf("decoded signature failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode diverged from accepted input")
		}
	})
}
