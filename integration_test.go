package vitri

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"vitri/internal/pager"
)

// TestDiskBackedDatabase runs the whole stack over a file-backed page
// store: build, search, dynamic insert, rebuild.
func TestDiskBackedDatabase(t *testing.T) {
	dir := t.TempDir()
	n := 0
	db := New(Options{
		Epsilon: 0.3,
		Seed:    1,
		NewPager: func() pager.Pager {
			n++
			p, err := pager.OpenFile(filepath.Join(dir, filenameN(n)))
			if err != nil {
				t.Fatalf("open pager: %v", err)
			}
			return p
		},
	})
	r := rand.New(rand.NewSource(60))
	videos := make([][]Vector, 20)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 3, 25)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := noisyCopy(r, videos[11], 0.01)
	matches, err := db.Search(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].VideoID != 11 {
		t.Fatalf("disk-backed top match = %+v", matches)
	}
	// Dynamic insert and rebuild exercise a second pager file.
	if err := db.Add(100, synthVideo(r, 8, 2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := db.Rebuild(); err != nil {
		t.Fatal(err)
	}
	matches, err = db.Search(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].VideoID != 11 {
		t.Fatalf("post-rebuild top match = %+v", matches[0])
	}
}

func filenameN(n int) string {
	return "index-" + string(rune('a'+n-1)) + ".pages"
}

// TestConcurrentSearches hammers one database from many goroutines while
// asserting result consistency. Run with -race to check synchronization.
func TestConcurrentSearches(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	videos := make([][]Vector, 30)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 20)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Precompute queries and expected top matches single-threaded.
	type testCase struct {
		q    Summary
		want int
	}
	cases := make([]testCase, 8)
	for i := range cases {
		src := i * 3
		q := Summarize(-1, noisyCopy(r, videos[src], 0.01), 0.3, int64(i))
		cases[i] = testCase{q: q, want: src}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				c := &cases[(w+rep)%len(cases)]
				matches, _, err := db.SearchSummary(&c.q, 3, Composed)
				if err != nil {
					errs <- err
					return
				}
				if len(matches) == 0 || matches[0].VideoID != c.want {
					errs <- errMismatch(c.want, matches)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	want int
	got  []Match
}

func (e *mismatchError) Error() string { return "concurrent search mismatch" }

func errMismatch(want int, got []Match) error { return &mismatchError{want, got} }

// TestConcurrentInsertAndSearch interleaves writers and readers.
func TestConcurrentInsertAndSearch(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	db := New(Options{Epsilon: 0.3, Seed: 1})
	for i := 0; i < 10; i++ {
		if err := db.Add(i, synthVideo(r, 8, 2, 15)); err != nil {
			t.Fatal(err)
		}
	}
	target := synthVideo(r, 8, 2, 15)
	if err := db.Add(999, target); err != nil {
		t.Fatal(err)
	}
	q := Summarize(-1, noisyCopy(r, target, 0.01), 0.3, 1)

	// Pre-generate writer payloads outside the goroutines (rand.Rand is
	// not safe for concurrent use).
	payloads := make([][]Vector, 20)
	for i := range payloads {
		payloads[i] = synthVideo(r, 8, 1, 10)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, p := range payloads {
			if err := db.Add(1000+i, p); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 15; rep++ {
				matches, _, err := db.SearchSummary(&q, 3, Composed)
				if err != nil {
					errs <- err
					return
				}
				if len(matches) == 0 || matches[0].VideoID != 999 {
					errs <- errMismatch(999, matches)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Len() != 31 {
		t.Fatalf("Len = %d after concurrent inserts", db.Len())
	}
}
