package baseline

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

func TestExactSearcherMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	corpus := make(map[int][]vec.Vector)
	for i := 0; i < 15; i++ {
		corpus[i] = makeVideo(r, 6, 2, 12)
	}
	s := NewExactSearcher(corpus)
	for trial := 0; trial < 10; trial++ {
		q := perturb(r, corpus[r.Intn(15)], 0.03)
		for id, frames := range corpus {
			want := ExactSimilarity(q, frames, 0.3)
			got := s.Similarity(q, id, 0.3)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("video %d: searcher %v vs naive %v", id, got, want)
			}
		}
	}
}

func TestExactSearcherKNNMatchesExactKNN(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	corpus := make(map[int][]vec.Vector)
	for i := 0; i < 20; i++ {
		corpus[i] = makeVideo(r, 6, 2, 10)
	}
	s := NewExactSearcher(corpus)
	q := perturb(r, corpus[4], 0.02)
	a := ExactKNN(q, corpus, 0.3, 10)
	b := s.KNN(q, 0.3, 10)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VideoID != b[i].VideoID || math.Abs(a[i].Similarity-b[i].Similarity) > 1e-12 {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExactSearcherEdgeCases(t *testing.T) {
	s := NewExactSearcher(map[int][]vec.Vector{})
	if got := s.Similarity([]vec.Vector{{1}}, 99, 0.3); got != 0 {
		t.Fatalf("missing video similarity = %v", got)
	}
	if got := s.KNN(nil, 0.3, 5); got != nil {
		t.Fatalf("empty query KNN = %v", got)
	}
}
