package experiments

import (
	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/dataset"
	"vitri/internal/metrics"
)

// precisionEnv is the shared setup of the precision experiments: the
// corpus, its exact-measure searcher, and the query workload.
type precisionEnv struct {
	corpus   *dataset.Corpus
	searcher *baseline.ExactSearcher
	queries  []dataset.Query
}

func (cfg *Config) precisionEnv() (*precisionEnv, error) {
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	n := cfg.Queries
	if n > len(c.Videos) {
		n = len(c.Videos)
	}
	// As in the paper's §6.1, queries are database videos themselves; the
	// ground truth is their frame-level 50NN ranking.
	qs, err := dataset.MakeQueries(c, n, dataset.PerturbConfig{}, 1_000_000, cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	return &precisionEnv{
		corpus:   c,
		searcher: baseline.NewExactSearcher(c.ByID()),
		queries:  qs,
	}, nil
}

// Figure14 reproduces retrieval precision vs ε for ViTri and the keyframe
// method (ground truth by the exact frame-level measure at the same ε).
func Figure14(cfg Config) ([]*metrics.Table, error) {
	env, err := cfg.precisionEnv()
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "Figure 14: retrieval precision vs epsilon (50NN ground truth at frame level)",
		Columns: []string{"eps", "ViTri precision", "Keyframe precision"},
	}
	for _, eps := range epsilonSweep {
		cfg.logf("  figure 14: eps=%.1f", eps)
		sums := summarizeCorpus(env.corpus, eps, cfg.Seed)
		kfs := keyframesFromSummaries(sums)
		var pvRows, pkRows []float64
		for _, q := range env.queries {
			rel := rankedIDs(env.searcher.KNN(q.Frames, eps, cfg.K))
			if len(rel) == 0 {
				continue
			}
			qSum := core.Summarize(q.ID, q.Frames, core.Options{Epsilon: eps, Seed: cfg.Seed})
			pvRows = append(pvRows, metrics.Precision(rel, rankViTri(&qSum, sums, cfg.K)))
			qKf := baseline.KeyframeSummary{VideoID: q.ID}
			for i := range qSum.Triplets {
				qKf.Keyframes = append(qKf.Keyframes, qSum.Triplets[i].Position)
			}
			pkRows = append(pkRows, metrics.Precision(rel, rankedIDs(baseline.KeyframeKNN(&qKf, kfs, eps, cfg.K))))
		}
		t.AddRowf(eps, metrics.Mean(pvRows), metrics.Mean(pkRows))
	}
	return []*metrics.Table{t}, nil
}

// Figure15 reproduces precision vs K at fixed ε = Config.Epsilon.
func Figure15(cfg Config) ([]*metrics.Table, error) {
	env, err := cfg.precisionEnv()
	if err != nil {
		return nil, err
	}
	eps := cfg.Epsilon
	sums := summarizeCorpus(env.corpus, eps, cfg.Seed)
	kfs := keyframesFromSummaries(sums)
	ks := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	maxK := ks[len(ks)-1]

	// One full ranking per query, sliced per K.
	type perQuery struct {
		rel, vit, kf []int
	}
	var rankings []perQuery
	for _, q := range env.queries {
		cfg.logf("  figure 15: query %d", q.ID)
		rel := rankedIDs(env.searcher.KNN(q.Frames, eps, maxK))
		if len(rel) == 0 {
			continue
		}
		qSum := core.Summarize(q.ID, q.Frames, core.Options{Epsilon: eps, Seed: cfg.Seed})
		qKf := baseline.KeyframeSummary{VideoID: q.ID}
		for i := range qSum.Triplets {
			qKf.Keyframes = append(qKf.Keyframes, qSum.Triplets[i].Position)
		}
		rankings = append(rankings, perQuery{
			rel: rel,
			vit: rankViTri(&qSum, sums, maxK),
			kf:  rankedIDs(baseline.KeyframeKNN(&qKf, kfs, eps, maxK)),
		})
	}

	t := &metrics.Table{
		Title:   "Figure 15: retrieval precision vs K (eps = 0.3)",
		Columns: []string{"K", "ViTri precision", "Keyframe precision"},
	}
	clip := func(ids []int, k int) []int {
		if len(ids) > k {
			return ids[:k]
		}
		return ids
	}
	for _, k := range ks {
		var pv, pk []float64
		for _, r := range rankings {
			rel := clip(r.rel, k)
			pv = append(pv, metrics.Precision(rel, clip(r.vit, k)))
			pk = append(pk, metrics.Precision(rel, clip(r.kf, k)))
		}
		t.AddRowf(k, metrics.Mean(pv), metrics.Mean(pk))
	}
	return []*metrics.Table{t}, nil
}
