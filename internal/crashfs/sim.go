package crashfs

import (
	"fmt"

	"vitri/internal/vfs"
)

// State is one simulated post-crash disk image.
type State struct {
	// Point is the crash boundary: the cut happened after the first
	// Point logged operations were issued (0 ≤ Point ≤ Ops()).
	Point int
	// Desc names the scenario for failure messages, e.g.
	// "point=41 torn-cut inode=3 pending=2".
	Desc string
	// FS is the reconstructed disk image recovery runs against.
	FS *vfs.MemFS
}

// pendOp is one unsynced mutation of an inode.
type pendOp struct {
	isTrunc bool
	off     int64  // write
	data    []byte // write
	size    int64  // truncate
}

// model is the durability state after a prefix of the op log.
type model struct {
	synced   map[int][]byte   // inode → content as of its last fsync
	pending  map[int][]pendOp // inode → unsynced mutations, in order
	volNames map[string]int   // current directory entries
	durNames map[string]int   // entries as of the last directory sync
}

// replayPrefix folds log[:point] into a durability model.
func replayPrefix(log []op, point int) *model {
	m := &model{
		synced:   make(map[int][]byte),
		pending:  make(map[int][]pendOp),
		volNames: make(map[string]int),
		durNames: make(map[string]int),
	}
	for _, o := range log[:point] {
		switch o.kind {
		case opCreate:
			m.volNames[o.name] = o.inode
			m.synced[o.inode] = nil
		case opWrite:
			m.pending[o.inode] = append(m.pending[o.inode], pendOp{off: o.off, data: o.data})
		case opTruncate:
			m.pending[o.inode] = append(m.pending[o.inode], pendOp{isTrunc: true, size: o.size})
		case opSync:
			m.synced[o.inode] = applyPending(m.synced[o.inode], m.pending[o.inode], len(m.pending[o.inode]), -1, tornNone)
			delete(m.pending, o.inode)
		case opRename:
			if id, ok := m.volNames[o.name]; ok {
				m.volNames[o.name2] = id
				delete(m.volNames, o.name)
			}
		case opRemove:
			delete(m.volNames, o.name)
		case opSyncDir:
			m.durNames = make(map[string]int, len(m.volNames))
			for n, id := range m.volNames {
				m.durNames[n] = id
			}
		}
	}
	return m
}

// tornMode selects how the write at the tear index lands.
type tornMode int

const (
	tornNone tornMode = iota // tear index not applied at all
	tornCut                  // first half of the write, file ends there
	tornZero                 // full length, second half zeroed
)

// applyPending applies the first k pending ops fully, then optionally a
// torn rendition of pending[tear]. Writes beyond the current size
// zero-fill the gap, as a real filesystem's block allocation does.
func applyPending(base []byte, pending []pendOp, k, tear int, mode tornMode) []byte {
	out := append([]byte(nil), base...)
	apply := func(p pendOp) {
		if p.isTrunc {
			if p.size <= int64(len(out)) {
				out = out[:p.size]
			} else {
				out = append(out, make([]byte, p.size-int64(len(out)))...)
			}
			return
		}
		if grow := p.off + int64(len(p.data)) - int64(len(out)); grow > 0 {
			out = append(out, make([]byte, grow)...)
		}
		copy(out[p.off:], p.data)
	}
	for i := 0; i < k && i < len(pending); i++ {
		apply(pending[i])
	}
	if tear >= 0 && tear < len(pending) && !pending[tear].isTrunc {
		p := pending[tear]
		half := len(p.data) / 2
		switch mode {
		case tornCut:
			apply(pendOp{off: p.off, data: p.data[:half]})
		case tornZero:
			torn := append([]byte(nil), p.data[:half]...)
			torn = append(torn, make([]byte, len(p.data)-half)...)
			apply(pendOp{off: p.off, data: torn})
		}
	}
	return out
}

// applyOnly applies exactly one pending op (block reordering: the later
// write hit disk, earlier ones did not).
func applyOnly(base []byte, p pendOp) []byte {
	return applyPending(base, []pendOp{p}, 1, -1, tornNone)
}

// CrashStates enumerates every simulated power cut: for each operation
// boundary, the flushed / strict / metadata-first images, plus — for
// every inode with unsynced writes — each prefix of those writes with
// the next one torn (cut and zero-filled variants) and the
// block-reordered image. The enumeration is exhaustive over boundaries,
// not sampled.
func (r *Recorder) CrashStates() []State {
	r.mu.Lock()
	log := append([]op(nil), r.log...)
	r.mu.Unlock()

	var states []State
	for point := 0; point <= len(log); point++ {
		m := replayPrefix(log, point)
		full := func(id int) []byte {
			return applyPending(m.synced[id], m.pending[id], len(m.pending[id]), -1, tornNone)
		}
		syncedOnly := func(id int) []byte { return append([]byte(nil), m.synced[id]...) }

		states = append(states,
			materialize(point, "flushed", m.volNames, full),
			materialize(point, "strict", m.durNames, syncedOnly),
			materialize(point, "metadata-first", m.volNames, syncedOnly),
		)
		for _, id := range sortedKeys(m.pending) {
			id := id
			pend := m.pending[id]
			for k := 0; k < len(pend); k++ {
				k := k
				if k > 0 {
					states = append(states, materialize(point,
						fmt.Sprintf("prefix inode=%d k=%d", id, k), m.volNames,
						contentFor(id, syncedOnly, func() []byte {
							return applyPending(m.synced[id], pend, k, -1, tornNone)
						})))
				}
				if pend[k].isTrunc || len(pend[k].data) < 2 {
					continue
				}
				states = append(states, materialize(point,
					fmt.Sprintf("torn-cut inode=%d k=%d", id, k), m.volNames,
					contentFor(id, syncedOnly, func() []byte {
						return applyPending(m.synced[id], pend, k, k, tornCut)
					})))
				states = append(states, materialize(point,
					fmt.Sprintf("torn-zero inode=%d k=%d", id, k), m.volNames,
					contentFor(id, syncedOnly, func() []byte {
						return applyPending(m.synced[id], pend, k, k, tornZero)
					})))
			}
			if len(pend) >= 2 {
				last := pend[len(pend)-1]
				if !last.isTrunc {
					states = append(states, materialize(point,
						fmt.Sprintf("reorder inode=%d", id), m.volNames,
						contentFor(id, syncedOnly, func() []byte {
							return applyOnly(m.synced[id], last)
						})))
				}
			}
		}
	}
	return states
}

// contentFor builds a content function that special-cases one inode.
func contentFor(target int, base func(int) []byte, special func() []byte) func(int) []byte {
	return func(id int) []byte {
		if id == target {
			return special()
		}
		return base(id)
	}
}

// materialize renders a namespace + per-inode content choice into a
// fresh MemFS.
func materialize(point int, desc string, names map[string]int, content func(int) []byte) State {
	fs := vfs.NewMemFS()
	for name, id := range names {
		fs.SetFile(name, content(id))
	}
	return State{Point: point, Desc: fmt.Sprintf("point=%d %s", point, desc), FS: fs}
}
