// Package pager provides the 4 KiB page-storage substrate beneath the
// B+-tree: an in-memory store, a file-backed store, an LRU buffer pool and
// a fault-injection wrapper. Every implementation counts physical page
// reads and writes, which is how the experiments report I/O cost (the
// paper's Sun E420 page accesses are reproduced as counts, not
// milliseconds).
package pager

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the fixed page size in bytes, matching the paper's 4K pages.
const PageSize = 4096

// PageID identifies a page within a store. IDs are dense, starting at 0.
type PageID uint32

// InvalidPage is a sentinel for "no page" (e.g. a leaf with no successor).
const InvalidPage = PageID(^uint32(0))

// Page is one fixed-size page buffer.
type Page [PageSize]byte

// Stats counts physical page operations.
type Stats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
}

// ScanStats accumulates the physical page reads attributable to one
// logical operation (a single tree scan, or one KNN query). Unlike the
// pager-wide Stats counters — which are shared by every caller and can
// only be diffed, mis-attributing I/O as soon as two operations overlap —
// a ScanStats value is owned by exactly one operation and is therefore
// exact under any concurrency.
type ScanStats struct {
	Reads uint64
}

// Add folds another counter in (used when merging per-worker counters).
func (s *ScanStats) Add(o ScanStats) { s.Reads += o.Reads }

// TrackedReader is an optional Pager extension for per-operation I/O
// attribution: ReadTracked behaves exactly like Read but additionally
// adds the physical reads it performed to st (which may be nil). A
// wrapper that can satisfy a read without physical I/O — the LRU Cache
// on a hit — adds nothing.
type TrackedReader interface {
	ReadTracked(id PageID, p *Page, st *ScanStats) error
}

// ReadTracked reads page id from pg, attributing any physical read to st
// (st may be nil). Pagers implementing TrackedReader decide what counts
// as physical; for every other pager each Read is one physical read.
func ReadTracked(pg Pager, id PageID, p *Page, st *ScanStats) error {
	if tr, ok := pg.(TrackedReader); ok {
		return tr.ReadTracked(id, p, st)
	}
	if err := pg.Read(id, p); err != nil {
		return err
	}
	if st != nil {
		st.Reads++
	}
	return nil
}

// Pager is the minimal page-store interface the B+-tree builds on.
type Pager interface {
	// Alloc reserves a new zeroed page and returns its ID.
	Alloc() (PageID, error)
	// Read copies page id into p.
	Read(id PageID, p *Page) error
	// Write copies p into page id.
	Write(id PageID, p *Page) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns a snapshot of the physical I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters (between experiment runs).
	ResetStats()
	// Close releases underlying resources.
	Close() error
}

// ErrPageOutOfRange is returned for reads/writes beyond the allocated
// range.
var ErrPageOutOfRange = errors.New("pager: page id out of range")

// ErrClosed is returned for operations on a closed pager.
var ErrClosed = errors.New("pager: closed")

// Mem is an in-memory Pager. The zero value is ready to use.
type Mem struct {
	mu     sync.Mutex
	pages  []*Page // guarded by mu
	stats  Stats   // guarded by mu
	closed bool    // guarded by mu
}

// NewMem returns an empty in-memory pager.
func NewMem() *Mem { return &Mem{} }

// Alloc implements Pager.
func (m *Mem) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	m.pages = append(m.pages, new(Page))
	m.stats.Allocs++
	return PageID(len(m.pages) - 1), nil
}

// Read implements Pager.
func (m *Mem) Read(id PageID, p *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	*p = *m.pages[id]
	m.stats.Reads++
	return nil
}

// Write implements Pager.
func (m *Mem) Write(id PageID, p *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	*m.pages[id] = *p
	m.stats.Writes++
	return nil
}

// NumPages implements Pager.
func (m *Mem) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Stats implements Pager.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats implements Pager.
func (m *Mem) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Close implements Pager.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}
