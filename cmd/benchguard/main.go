// Command benchguard gates make check on the committed benchmark
// numbers. Each path given (default BENCH_checkpoint.json) is checked by
// the rules its basename selects:
//
//   - BENCH_checkpoint*.json: fails when the engine p99 ratio —
//     per-mutation latency during a checkpoint over the quiescent
//     baseline, on a RAM-backed store — exceeds 2x. That ratio is the
//     non-blocking checkpoint's contract; a regression means checkpoints
//     have started blocking the mutation path again. Only the engine
//     section is gated: the disk_cotenancy section records what sharing
//     one filesystem journal with snapshot syncs costs on the
//     measurement machine and is reported, not enforced.
//
//   - BENCH_shard*.json: fails when the recorded equivalence verdict is
//     false (the sharded engine returned different results from the
//     single engine — correctness, not speed), when any of the shard
//     counts 1/2/4/8 is missing, or when scatter-gather search
//     throughput at the highest shard count has collapsed below 0.35x
//     the single engine (the fan-out tax has eaten the engine).
//
// Usage:
//
//	benchguard [path ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	maxP99Ratio       = 2.0
	minShardSpeedup   = 0.35
	maxShardOfPattern = 8
)

type section struct {
	P99Ratio *float64 `json:"p99_ratio"`
}

type benchCheckpoint struct {
	Engine        *section `json:"engine"`
	DiskCotenancy *section `json:"disk_cotenancy"`
}

type benchShardRow struct {
	Shards        int     `json:"shards"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SearchSpeedup float64 `json:"search_speedup_vs_single"`
}

type benchShard struct {
	Equivalent bool            `json:"equivalent"`
	Rows       []benchShardRow `json:"rows"`
}

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = []string{"BENCH_checkpoint.json"}
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		if strings.HasPrefix(filepath.Base(path), "BENCH_shard") {
			checkShard(path, data)
		} else {
			checkCheckpoint(path, data)
		}
	}
}

func checkCheckpoint(path string, data []byte) {
	var b benchCheckpoint
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if b.Engine == nil || b.Engine.P99Ratio == nil {
		fatalf("%s: no engine.p99_ratio — re-run make bench-checkpoint", path)
	}
	ratio := *b.Engine.P99Ratio
	if ratio > maxP99Ratio {
		fatalf("%s: engine p99 ratio %.3f exceeds %.1fx — checkpoints are blocking the mutation path again",
			path, ratio, maxP99Ratio)
	}
	if b.DiskCotenancy != nil && b.DiskCotenancy.P99Ratio != nil {
		fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx); disk co-tenancy %.1fx (informational)\n",
			ratio, maxP99Ratio, *b.DiskCotenancy.P99Ratio)
		return
	}
	fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx)\n", ratio, maxP99Ratio)
}

func checkShard(path string, data []byte) {
	var b benchShard
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if !b.Equivalent {
		fatalf("%s: sharded engine results diverge from the single engine — re-run make bench-shard and fix the engine, not the gate", path)
	}
	byShards := map[int]benchShardRow{}
	for _, r := range b.Rows {
		byShards[r.Shards] = r
	}
	for _, want := range []int{1, 2, 4, maxShardOfPattern} {
		if _, ok := byShards[want]; !ok {
			fatalf("%s: no row for %d shards — re-run make bench-shard", path, want)
		}
	}
	top := byShards[maxShardOfPattern]
	if top.SearchSpeedup < minShardSpeedup {
		fatalf("%s: search throughput at %d shards is %.2fx the single engine (floor %.2fx) — scatter-gather overhead has collapsed search",
			path, maxShardOfPattern, top.SearchSpeedup, minShardSpeedup)
	}
	fmt.Printf("benchguard: sharded engine equivalent; search at %d shards %.2fx single (floor %.2fx)\n",
		maxShardOfPattern, top.SearchSpeedup, minShardSpeedup)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
