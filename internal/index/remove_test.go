package index

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/core"
)

func TestRemoveVideo(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	videos, sums, ix := buildCorpus(t, r, 30, 8)
	lenBefore := ix.Len()
	if !ix.Contains(13) {
		t.Fatal("video 13 should be present")
	}
	if err := ix.Remove(13); err != nil {
		t.Fatal(err)
	}
	if ix.Contains(13) {
		t.Fatal("video 13 still present")
	}
	if got, want := ix.Len(), lenBefore-len(sums[13].Triplets); got != want {
		t.Fatalf("Len = %d want %d", got, want)
	}
	if ix.Videos() != 29 {
		t.Fatalf("Videos = %d", ix.Videos())
	}
	// A query derived from the removed video no longer returns it.
	q := core.Summarize(9999, perturb(r, videos[13], 0.01), core.Options{Epsilon: testEps, Seed: 5})
	res, _, err := ix.Search(&q, 30, Composed)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res {
		if m.VideoID == 13 {
			t.Fatal("removed video returned by search")
		}
	}
	// Removing again fails cleanly.
	if err := ix.Remove(13); err == nil {
		t.Fatal("expected error removing twice")
	}
}

func TestRemoveMatchesFreshBuild(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	videos, sums, ix := buildCorpus(t, r, 20, 8)
	// Remove videos 3 and 17, compare against an index built without them.
	for _, id := range []int{3, 17} {
		if err := ix.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	var kept []core.Summary
	for i := range sums {
		if sums[i].VideoID != 3 && sums[i].VideoID != 17 {
			kept = append(kept, sums[i])
		}
	}
	fresh, err := Build(kept, Options{Epsilon: testEps})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Summarize(8888, perturb(r, videos[10], 0.02), core.Options{Epsilon: testEps, Seed: 3})
	a, _, err := ix.Search(&q, 20, Composed)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := fresh.Search(&q, 20, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VideoID != b[i].VideoID || math.Abs(a[i].Similarity-b[i].Similarity) > 1e-9 {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Drift accumulators were reversed: angles agree.
	if da, db := ix.DriftAngle(), fresh.DriftAngle(); math.Abs(da-db) > 0.15 {
		t.Fatalf("drift angles diverge after removal: %v vs %v", da, db)
	}
}

func TestRemoveAfterRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	_, _, ix := buildCorpus(t, r, 15, 8)
	if err := ix.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// Keys were re-derived during rebuild; removal must still find every
	// record.
	if err := ix.Remove(7); err != nil {
		t.Fatal(err)
	}
	if ix.Contains(7) {
		t.Fatal("video 7 still present after post-rebuild removal")
	}
}

func TestRemoveAllVideos(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	_, sums, ix := buildCorpus(t, r, 5, 8)
	for i := range sums {
		if err := ix.Remove(sums[i].VideoID); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 0 || ix.Videos() != 0 {
		t.Fatalf("index not empty: %d records, %d videos", ix.Len(), ix.Videos())
	}
	// An empty index answers queries with no results.
	q := core.Summarize(1, makeVideo(r, 8, 1, 10), core.Options{Epsilon: testEps, Seed: 1})
	res, _, err := ix.Search(&q, 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty index returned %v", res)
	}
}
