package geometry

import "math"

// Lens describes the intersection of two n-spheres at center distance d:
// the case taxonomy of paper §4.2 plus the cap angles when they exist.
type Lens struct {
	Case   IntersectCase
	Alpha1 float64 // cap half-angle at the sphere-1 center (0 if unused)
	Alpha2 float64 // cap half-angle at the sphere-2 center (0 if unused)
}

// IntersectCase labels the four configurations of §4.2.
type IntersectCase int

const (
	// Disjoint: d >= R1 + R2, no shared volume (Case 1).
	Disjoint IntersectCase = iota
	// Lune: R2 <= d < R1+R2 with both caps at most a hemisphere (Case 2).
	Lune
	// MajorOverlap: R1-R2 <= d < R2; the smaller sphere's cap exceeds a
	// hemisphere (Case 3).
	MajorOverlap
	// Contained: d < R1 - R2; the smaller sphere lies inside the larger
	// (Case 4).
	Contained
)

// String implements fmt.Stringer for diagnostics.
func (c IntersectCase) String() string {
	switch c {
	case Disjoint:
		return "disjoint"
	case Lune:
		return "lune"
	case MajorOverlap:
		return "major-overlap"
	case Contained:
		return "contained"
	}
	return "unknown"
}

// Classify determines the §4.2 case and cap angles for spheres of radii r1
// and r2 whose centers are d apart. Radii may be given in either order.
func Classify(d, r1, r2 float64) Lens {
	if d < 0 || r1 < 0 || r2 < 0 {
		panic("geometry: negative distance or radius")
	}
	if r1 < r2 {
		r1, r2 = r2, r1
	}
	switch {
	case d >= r1+r2:
		return Lens{Case: Disjoint}
	case d < r1-r2 || d == 0:
		// d == 0 with equal radii is full overlap of identical spheres,
		// treated as containment of sphere 2.
		return Lens{Case: Contained}
	}
	// Cap angles from the law of cosines on the triangle (O1, O2, rim
	// point). alpha_i is the half-angle of sphere i's cap beyond the
	// radical hyperplane.
	cos1 := (d*d + r1*r1 - r2*r2) / (2 * d * r1)
	cos2 := (d*d + r2*r2 - r1*r1) / (2 * d * r2)
	l := Lens{
		Alpha1: math.Acos(clampCos(cos1)),
		Alpha2: math.Acos(clampCos(cos2)),
	}
	if l.Alpha2 > math.Pi/2 {
		l.Case = MajorOverlap
	} else {
		l.Case = Lune
	}
	return l
}

func clampCos(c float64) float64 {
	if c > 1 {
		return 1
	}
	if c < -1 {
		return -1
	}
	return c
}

// IntersectionVolume returns the volume shared by two n-spheres of radii r1
// and r2 whose centers are d apart. The lens volume is the sum of the two
// hypercaps cut off by the radical hyperplane; with CapVolume defined on
// [0, π] this single expression covers the paper's cases 2 and 3, and the
// disjoint/contained cases short-circuit.
func IntersectionVolume(n int, d, r1, r2 float64) float64 {
	if r1 < r2 {
		r1, r2 = r2, r1
	}
	l := Classify(d, r1, r2)
	switch l.Case {
	case Disjoint:
		return 0
	case Contained:
		return SphereVolume(n, r2)
	}
	return CapVolume(n, r1, l.Alpha1) + CapVolume(n, r2, l.Alpha2)
}

// LogIntersectionVolume returns ln(IntersectionVolume) computed without
// leaving log space, so it remains meaningful when the volumes themselves
// underflow float64. Returns -Inf for disjoint spheres or zero radii.
func LogIntersectionVolume(n int, d, r1, r2 float64) float64 {
	if r1 < r2 {
		r1, r2 = r2, r1
	}
	l := Classify(d, r1, r2)
	switch l.Case {
	case Disjoint:
		return math.Inf(-1)
	case Contained:
		return LogSphereVolume(n, r2)
	}
	return logSumExp(LogCapVolume(n, r1, l.Alpha1), LogCapVolume(n, r2, l.Alpha2))
}

// logSumExp returns ln(e^a + e^b) stably.
func logSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
