package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr flags discarded error returns from this module's own
// functions — above all the pager and btree mutators (a dropped
// Write/Insert/Delete/Close error is silent data loss), but the rule
// covers every module-internal callee so the cmds and examples are held
// to the same bar. A call is "discarded" when it stands alone as a
// statement while returning an error, or when the error result is
// assigned to the blank identifier. Deferred and go-spawned calls are
// exempt (there is no error to handle at that point); deliberate
// best-effort drops are suppressed in place with
// //lint:ignore droppederr <reason>.
//
// Standard-library callees are out of scope: this analyzer guards the
// module's own contracts, not general error hygiene (which go vet and
// review still cover).
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag discarded error returns from module-internal functions (pager/btree mutators above all)",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := pass.calleeFunc(call)
				if callee == nil || !moduleInternal(pass, callee) {
					return true
				}
				if errorResultCount(callee, errType) > 0 {
					pass.Reportf(call.Pos(),
						"%s returns an error that is discarded; handle it or suppress with //lint:ignore droppederr <reason>",
						calleeLabel(callee))
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, s, errType)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags `_ = f()` / `a, _ := g()` where the blanked
// position is a module-internal error result.
func checkBlankErrAssign(pass *Pass, as *ast.AssignStmt, errType types.Type) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := pass.calleeFunc(call)
	if callee == nil || !moduleInternal(pass, callee) {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	if results.Len() != len(as.Lhs) {
		return
	}
	for i := 0; i < results.Len(); i++ {
		if !types.Identical(results.At(i).Type(), errType) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(),
				"error result of %s assigned to _; handle it or suppress with //lint:ignore droppederr <reason>",
				calleeLabel(callee))
			return
		}
	}
}

// moduleInternal reports whether fn is declared inside the analyzed
// module.
func moduleInternal(pass *Pass, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == pass.ModulePath || strings.HasPrefix(pkg.Path(), pass.ModulePath+"/")
}

// errorResultCount counts results of type error in fn's signature.
func errorResultCount(fn *types.Func, errType types.Type) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := 0
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if types.Identical(results.At(i).Type(), errType) {
			n++
		}
	}
	return n
}

// calleeLabel renders a callee for diagnostics: pkg.Func or (pkg.Type).Method.
func calleeLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := namedOf(sig.Recv().Type())
		if recv != nil {
			return recv.Obj().Pkg().Name() + "." + recv.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
