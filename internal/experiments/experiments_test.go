package experiments

import (
	"strconv"
	"strings"
	"testing"

	"vitri/internal/metrics"
)

// tinyConfig keeps experiment tests fast while exercising every stage.
func tinyConfig() Config {
	return Config{
		Scale:         0.002,
		Queries:       3,
		K:             10,
		Epsilon:       0.3,
		Seed:          1,
		ViTriCounts:   []int{800, 1600},
		Dims:          []int{8, 16},
		FixedViTris:   1500,
		InsertBatches: []int{800, 800},
		IndexQueries:  3,
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tb *metrics.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestTable2Shape(t *testing.T) {
	tabs, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("expected 3 duration classes, got %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		if cell(t, tb, r, 1) < 1 || cell(t, tb, r, 2) < 1 {
			t.Fatalf("row %d has empty class: %v", r, tb.Rows[r])
		}
	}
}

func TestTable3Trend(t *testing.T) {
	tabs, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != len(epsilonSweep) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Cluster count must not increase with ε; average size must not
	// decrease.
	for r := 1; r < len(tb.Rows); r++ {
		if cell(t, tb, r, 1) > cell(t, tb, r-1, 1) {
			t.Fatalf("cluster count increased at row %d:\n%s", r, tb)
		}
		if cell(t, tb, r, 2) < cell(t, tb, r-1, 2) {
			t.Fatalf("avg cluster size decreased at row %d:\n%s", r, tb)
		}
	}
}

func TestFigure14Runs(t *testing.T) {
	tabs, err := Figure14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != len(epsilonSweep) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		for c := 1; c <= 2; c++ {
			if v := cell(t, tb, r, c); v < 0 || v > 1 {
				t.Fatalf("precision out of range at (%d,%d): %v", r, c, v)
			}
		}
	}
}

func TestFigure15Runs(t *testing.T) {
	tabs, err := Figure15(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFigure16CompositionWins(t *testing.T) {
	tabs, err := Figure16(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	for r := range tb.Rows {
		naive, composed := cell(t, tb, r, 1), cell(t, tb, r, 2)
		if composed > naive {
			t.Fatalf("composed I/O %v above naive %v:\n%s", composed, naive, tb)
		}
	}
	// The I/O gap grows with database size.
	if len(tb.Rows) >= 2 {
		gap0 := cell(t, tb, 0, 1) - cell(t, tb, 0, 2)
		gapN := cell(t, tb, len(tb.Rows)-1, 1) - cell(t, tb, len(tb.Rows)-1, 2)
		if gapN < gap0 {
			t.Fatalf("composition gap shrank with database size:\n%s", tb)
		}
	}
}

func TestFigure17MethodOrdering(t *testing.T) {
	tabs, err := Figure17(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	io, cpu := tabs[0], tabs[1]
	// Columns: label, seqscan, space, data, optimal.
	for r := range io.Rows {
		if opt, seq := cell(t, io, r, 4), cell(t, io, r, 1); opt >= seq {
			t.Fatalf("optimal I/O %v not below seqscan %v:\n%s", opt, seq, io)
		}
		if opt, space := cell(t, cpu, r, 4), cell(t, cpu, r, 2); opt >= space {
			t.Fatalf("optimal CPU %v not below space-center %v:\n%s", opt, space, cpu)
		}
	}
	// Costs grow with database size.
	last := len(io.Rows) - 1
	if cell(t, io, last, 1) <= cell(t, io, 0, 1) {
		t.Fatalf("seqscan I/O did not grow with size:\n%s", io)
	}
}

func TestFigure18DimTrend(t *testing.T) {
	tabs, err := Figure18(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	io := tabs[0]
	last := len(io.Rows) - 1
	// I/O grows with dimensionality for every method (records get bigger).
	for c := 1; c <= 4; c++ {
		if cell(t, io, last, c) <= cell(t, io, 0, c) {
			t.Fatalf("column %d did not grow with dimensionality:\n%s", c, io)
		}
	}
}

func TestFigure19DynamicInsertion(t *testing.T) {
	tabs, err := Figure19(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	io := tabs[0]
	if len(io.Rows) != 2 {
		t.Fatalf("rows = %d", len(io.Rows))
	}
	for r := range io.Rows {
		dyn, oneOff := cell(t, io, r, 2), cell(t, io, r, 3)
		// Dynamic insertion may only degrade relative to a one-off
		// rebuild (within a small tolerance for page-boundary noise).
		if dyn < oneOff*0.8 {
			t.Fatalf("dynamic (%v) implausibly below one-off (%v):\n%s", dyn, oneOff, io)
		}
	}
	// Drift angle is reported and non-negative.
	if cell(t, io, 1, 4) < 0 {
		t.Fatalf("negative drift angle:\n%s", io)
	}
}

func TestParallelSearchExperiment(t *testing.T) {
	cfg := tinyConfig()
	cfg.SearchParallelism = 4
	tabs, err := ParallelSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2 (latency + throughput)", len(tabs))
	}
	lat := tabs[0]
	if len(lat.Rows) != 2 {
		t.Fatalf("latency rows = %d, want naive + composed", len(lat.Rows))
	}
	// Every latency cell is populated and positive (the experiment itself
	// verifies parallel results equal sequential before reporting).
	for r := range lat.Rows {
		for c := 1; c <= 2; c++ {
			if cell(t, lat, r, c) <= 0 {
				t.Fatalf("non-positive latency cell (%d,%d):\n%s", r, c, lat)
			}
		}
	}
	thr := tabs[1]
	if len(thr.Rows) != 2 {
		t.Fatalf("throughput rows = %d, want sequential + batch", len(thr.Rows))
	}
	for r := range thr.Rows {
		if cell(t, thr, r, 2) <= 0 {
			t.Fatalf("non-positive queries/s in row %d:\n%s", r, thr)
		}
	}
}

func TestRunAllProducesAllTables(t *testing.T) {
	var sb strings.Builder
	if err := RunAll(tinyConfig(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Figure 14", "Figure 15",
		"Figure 16", "Figure 17", "Figure 18", "Figure 19",
		"Parallel KNN",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}
