package vitri

import (
	"errors"
	"math"

	"vitri/internal/core"
	"vitri/internal/temporal"
	"vitri/internal/vec"
)

// Temporal re-ranking (the paper's §7 future work): the core measure is
// order-blind, so a re-cut trailer with the same shots as a film scores
// like the film itself. TemporalSignature and RerankTemporal let callers
// add order back as a post-processing step over a search's candidates.

// TemporalSignature is a video's shot-order signature.
type TemporalSignature = temporal.Signature

// NewTemporalSignature derives the temporal signature of a video's frames
// under its summary (every frame is assigned to its nearest triplet;
// consecutive equal assignments form runs).
func NewTemporalSignature(frames []Vector, s *Summary) (*TemporalSignature, error) {
	return temporal.NewSignature(frames, s)
}

// TemporalSimilarity is the order-preserving analogue of Similarity: only
// frames that match in compatible temporal order count.
func TemporalSimilarity(a, b *TemporalSignature) float64 {
	return temporal.Similarity(a, b)
}

// RerankTemporal re-orders search matches by blending each match's
// order-blind similarity with its temporal similarity to the query:
// score = (1-weight)·bag + weight·temporal. Matches without a signature
// in sigs keep their original score. The returned slice is sorted by the
// blended score.
func RerankTemporal(query *TemporalSignature, matches []Match, sigs map[int]*TemporalSignature, weight float64) []Match {
	cands := make([]temporal.Scored, len(matches))
	for i, m := range matches {
		cands[i] = temporal.Scored{VideoID: m.VideoID, Score: m.Similarity}
	}
	ranked := temporal.Rerank(query, cands, sigs, weight)
	out := make([]Match, len(ranked))
	for i, r := range ranked {
		out[i] = Match{VideoID: r.VideoID, Similarity: r.Score}
	}
	return out
}

// TemporalMatch is one result of a temporal subsequence search: the
// blended score it ranked by, decomposed into its order-blind and
// order-preserving components.
type TemporalMatch struct {
	VideoID int
	// Score is the blended ranking score:
	// (1-weight)·Bag + weight·Temporal, or just Bag for videos with no
	// registered temporal signature.
	Score float64
	// Bag is the order-blind §3.1 similarity the index reported.
	Bag float64
	// Temporal is the order-preserving similarity of the video's shot
	// sequence to the query's. Zero for videos with no registered
	// signature (ingested as bare summaries or recovered from disk).
	Temporal float64
}

// SearchTemporal answers a temporal subsequence query: the frames are
// summarized and searched like a whole video, and the candidate set is
// re-ranked by blending each match's order-blind similarity with the
// order-preserving similarity of its shot sequence to the query's
// (weight 0 ranks purely by the bag measure, weight 1 purely by order).
// Candidate retrieval is the byte-identical scatter-gather KNN every
// other workload uses, so the candidate set — and hence the final
// ranking — does not depend on the shard count or ingestion order.
// Videos ingested without frames (AddSummary, durable recovery) have no
// shot order on record and keep their bag score, as RerankTemporal
// documents. Stats reports the candidate search's work.
func (db *DB) SearchTemporal(frames []Vector, k int, weight float64, mode QueryMode) ([]TemporalMatch, SearchStats, error) {
	if len(frames) == 0 {
		return nil, SearchStats{}, errors.New("vitri: empty temporal query")
	}
	if math.IsNaN(weight) || weight < 0 || weight > 1 {
		return nil, SearchStats{}, errors.New("vitri: temporal weight must be in [0, 1]")
	}
	q := core.Summarize(-1, toVec(frames), core.Options{
		Epsilon: db.opts.Epsilon,
		Seed:    db.opts.Seed,
	})
	qsig, err := temporal.NewSignature(toVec(frames), &q)
	if err != nil {
		return nil, SearchStats{}, err
	}
	matches, stats, err := db.SearchSummary(&q, k, mode)
	if err != nil {
		return nil, stats, err
	}
	bag := make(map[int]float64, len(matches))
	cands := make([]temporal.Scored, len(matches))
	for i, m := range matches {
		bag[m.VideoID] = m.Similarity
		cands[i] = temporal.Scored{VideoID: m.VideoID, Score: m.Similarity}
	}
	ranked := temporal.Rerank(qsig, cands, db.temporalSnapshot(), weight)
	out := make([]TemporalMatch, len(ranked))
	for i, r := range ranked {
		out[i] = TemporalMatch{
			VideoID:  r.VideoID,
			Score:    r.Score,
			Bag:      bag[r.VideoID],
			Temporal: r.Temporal,
		}
	}
	return out, stats, nil
}

// toVec reexposes a []Vector as the internal []vec.Vector. Vector is an
// alias of vec.Vector, so this is a type-identity copy-free conversion.
func toVec(frames []Vector) []vec.Vector {
	return frames
}

// registerTemporal derives and records a video's temporal signature so
// SearchTemporal can re-rank it by shot order. Called after a successful
// frame-bearing ingest (Add, AddBatch), with no other database lock
// held. Summaries of non-empty videos always carry at least one triplet,
// so signature derivation cannot fail here; the guard only protects the
// registry's invariant (registered ⇒ usable signature).
func (db *DB) registerTemporal(frames []Vector, s *Summary) {
	sig, err := temporal.NewSignature(toVec(frames), s)
	if err != nil {
		return
	}
	db.tempoMu.Lock()
	if db.tsigs == nil {
		db.tsigs = make(map[int]*temporal.Signature)
	}
	db.tsigs[s.VideoID] = sig
	db.tempoMu.Unlock()
}

// dropTemporal forgets a removed video's temporal signature. A no-op for
// videos that never had one.
func (db *DB) dropTemporal(videoID int) {
	db.tempoMu.Lock()
	delete(db.tsigs, videoID)
	db.tempoMu.Unlock()
}

// temporalSnapshot returns the registry as a map usable without the
// lock. Signatures are immutable once registered, so sharing the
// pointers is safe; only the map itself is copied.
func (db *DB) temporalSnapshot() map[int]*temporal.Signature {
	db.tempoMu.Lock()
	defer db.tempoMu.Unlock()
	snap := make(map[int]*temporal.Signature, len(db.tsigs))
	for id, sig := range db.tsigs {
		snap[id] = sig
	}
	return snap
}
