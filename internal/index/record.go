// Package index assembles the paper's §5 ViTri index: positions are mapped
// to one-dimensional keys by a reference-point transform
// (internal/refpoint) and stored with their full triplets in the leaves of
// a paged B+-tree (internal/btree). KNN queries over summarized videos run
// per-triplet range searches — naively or with query composition (§5.2) —
// and aggregate ViTri similarities into video scores.
package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// Record is one indexed ViTri: the triplet itself plus its provenance
// (which video, which cluster within that video). Records are the leaf
// payload of the B+-tree, so the paper's "volume and density stored at
// leaf level" requirement is met: similarity is computable from the leaf
// alone.
type Record struct {
	VideoID  int32
	ClusterN int32 // ordinal of this triplet within the video's summary
	Count    int32
	Radius   float64
	Position vec.Vector
}

// recordHeaderSize is the fixed, position-independent prefix:
// VideoID(4) + ClusterN(4) + Count(4) + pad(4) + Radius(8).
const recordHeaderSize = 4 + 4 + 4 + 4 + 8

// RecordSize returns the encoded byte size for a given dimensionality.
func RecordSize(dim int) int { return recordHeaderSize + 8*dim }

// EncodeRecord serializes r into dst, which must be RecordSize(dim) bytes.
func EncodeRecord(r *Record, dst []byte) error {
	want := RecordSize(len(r.Position))
	if len(dst) != want {
		return fmt.Errorf("index: encode buffer %d bytes, want %d", len(dst), want)
	}
	binary.LittleEndian.PutUint32(dst[0:], uint32(r.VideoID))
	binary.LittleEndian.PutUint32(dst[4:], uint32(r.ClusterN))
	binary.LittleEndian.PutUint32(dst[8:], uint32(r.Count))
	binary.LittleEndian.PutUint32(dst[12:], 0)
	binary.LittleEndian.PutUint64(dst[16:], math.Float64bits(r.Radius))
	off := recordHeaderSize
	for _, v := range r.Position {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return nil
}

// DecodeRecord parses src (of RecordSize(dim) bytes) into r, reusing
// r.Position when it already has the right length.
func DecodeRecord(src []byte, dim int, r *Record) error {
	if len(src) != RecordSize(dim) {
		return fmt.Errorf("index: decode buffer %d bytes, want %d", len(src), RecordSize(dim))
	}
	r.VideoID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.ClusterN = int32(binary.LittleEndian.Uint32(src[4:]))
	r.Count = int32(binary.LittleEndian.Uint32(src[8:]))
	r.Radius = math.Float64frombits(binary.LittleEndian.Uint64(src[16:]))
	if len(r.Position) != dim {
		r.Position = make(vec.Vector, dim)
	}
	off := recordHeaderSize
	for i := 0; i < dim; i++ {
		r.Position[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		off += 8
	}
	return nil
}

// Triplet reconstitutes the core.ViTri for similarity computation.
func (r *Record) Triplet() core.ViTri {
	return core.NewViTri(r.Position, r.Radius, int(r.Count))
}
