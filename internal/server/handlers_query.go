package server

import (
	"fmt"
	"math"
	"net/http"

	"vitri"
)

// The two PR-10 query workloads, served next to whole-video /search:
//
//   - POST /search/image — one frame histogram in, videos ranked by their
//     best-matching triplet out (DB.SearchImage);
//   - POST /search/temporal — a frame sequence in, order-aware blended
//     rankings out (DB.SearchTemporal).
//
// Both share /search's serving contract: admission control, the request
// deadline, per-query stats in the response, and cumulative per-workload
// counters in /stats.

// parseMode maps a request's mode string onto a QueryMode, answering 400
// itself on unknown values.
func parseMode(w http.ResponseWriter, mode string) (vitri.QueryMode, bool) {
	switch mode {
	case "", "composed":
		return vitri.Composed, true
	case "naive":
		return vitri.Naive, true
	default:
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", mode))
		return 0, false
	}
}

// parseK validates a request's k, answering 400 itself when out of range.
func (s *Server) parseK(w http.ResponseWriter, k int) (int, bool) {
	if k == 0 {
		k = s.cfg.DefaultK
	}
	if k < 1 || k > s.cfg.MaxK {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.cfg.MaxK))
		return 0, false
	}
	return k, true
}

// imageSearchRequest is the /search/image body.
type imageSearchRequest struct {
	// Frame is the query image's feature vector (e.g. its normalized RGB
	// histogram), in the database's frame dimensionality.
	Frame []float64 `json:"frame"`
	// K is the result count (Config.DefaultK when omitted).
	K int `json:"k,omitempty"`
	// Mode is "composed" (default) or "naive".
	Mode string `json:"mode,omitempty"`
}

func (s *Server) handleSearchImage(w http.ResponseWriter, r *http.Request) {
	var req imageSearchRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	k, ok := s.parseK(w, req.K)
	if !ok {
		return
	}
	mode, ok := parseMode(w, req.Mode)
	if !ok {
		return
	}
	if len(req.Frame) == 0 {
		writeJSONError(w, http.StatusBadRequest, "frame must not be empty")
		return
	}
	for i, v := range req.Frame {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("frame value %d is not finite", i))
			return
		}
	}
	out, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		matches, stats, err := s.db.SearchImage(vitri.Vector(req.Frame), k, mode)
		if err != nil {
			return nil, err
		}
		s.met.imageQueries.Inc()
		s.met.imagePageReads.Add(stats.PageReads)
		s.met.imageSimOps.Add(uint64(stats.SimilarityOps))
		s.met.imageSignatureSkips.Add(uint64(stats.SignatureSkips))
		return &searchResponse{Matches: toMatchJSON(matches), Stats: toStatsJSON(stats)}, nil
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// temporalSearchRequest is the /search/temporal body.
type temporalSearchRequest struct {
	// Frames is the query sequence's frame feature vectors, in temporal
	// order.
	Frames [][]float64 `json:"frames"`
	// K is the result count (Config.DefaultK when omitted).
	K int `json:"k,omitempty"`
	// Weight blends order into the ranking: score =
	// (1-weight)·bag + weight·temporal, in [0, 1]. Defaults to 0.5.
	Weight *float64 `json:"weight,omitempty"`
	// Mode is "composed" (default) or "naive".
	Mode string `json:"mode,omitempty"`
}

// temporalMatchJSON is one /search/temporal result: the blended ranking
// score with its order-blind and order-preserving components.
type temporalMatchJSON struct {
	VideoID  int     `json:"video_id"`
	Score    float64 `json:"score"`
	Bag      float64 `json:"bag"`
	Temporal float64 `json:"temporal"`
}

type temporalSearchResponse struct {
	Matches []temporalMatchJSON `json:"matches"`
	Stats   searchStatsJSON     `json:"stats"`
}

func (s *Server) handleSearchTemporal(w http.ResponseWriter, r *http.Request) {
	var req temporalSearchRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	k, ok := s.parseK(w, req.K)
	if !ok {
		return
	}
	mode, ok := parseMode(w, req.Mode)
	if !ok {
		return
	}
	weight := 0.5
	if req.Weight != nil {
		weight = *req.Weight
	}
	if math.IsNaN(weight) || weight < 0 || weight > 1 {
		writeJSONError(w, http.StatusBadRequest, "weight must be in [0, 1]")
		return
	}
	frames, err := toVectors(req.Frames)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "frames: "+err.Error())
		return
	}
	out, err := s.callWithDeadline(r.Context(), func() (interface{}, error) {
		matches, stats, err := s.db.SearchTemporal(frames, k, weight, mode)
		if err != nil {
			return nil, err
		}
		s.met.temporalQueries.Inc()
		s.met.temporalPageReads.Add(stats.PageReads)
		s.met.temporalSimOps.Add(uint64(stats.SimilarityOps))
		s.met.temporalSignatureSkips.Add(uint64(stats.SignatureSkips))
		resp := &temporalSearchResponse{
			Matches: make([]temporalMatchJSON, len(matches)),
			Stats:   toStatsJSON(stats),
		}
		for i, m := range matches {
			resp.Matches[i] = temporalMatchJSON{
				VideoID:  m.VideoID,
				Score:    m.Score,
				Bag:      m.Bag,
				Temporal: m.Temporal,
			}
		}
		return resp, nil
	})
	if err != nil {
		writeJSONError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out)
}
