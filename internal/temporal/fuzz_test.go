package temporal

import (
	"math"
	"testing"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// FuzzTemporalSignature drives signature derivation, alignment and
// re-ranking from arbitrary bytes. The input decodes into a frame
// sequence (with explicit escapes for NaN and ±Inf values, which the
// serving layer filters but the package must still survive); the
// invariants are structural, so they hold for every input:
//
//   - nothing panics, hostile values included;
//   - a signature's run lengths are positive, sum to the frame count,
//     reference real triplets, and never repeat consecutively;
//   - Similarity is symmetric and always lands in [0, 1];
//   - Rerank returns a sorted permutation of its candidates and leaves
//     signature-less candidates' scores untouched.
func FuzzTemporalSignature(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x00\xff\xfe\xfd"))                 // NaN, +Inf, -Inf frames
	f.Add([]byte("\x00AAAAAA"))                       // one long run
	f.Add([]byte("\x00\x00\xc8\x00\xc8\x00\xc8"))     // alternating assignments
	f.Add([]byte("\x03\x10\x20\x30\x40\x50\x60\x70")) // dim 4, two frames
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, sane := decodeFuzzFrames(data)
		if len(frames) == 0 {
			// No frames decode to no triplets; derivation must refuse.
			if _, err := NewSignature(nil, &core.Summary{VideoID: 7}); err == nil {
				t.Fatal("NewSignature accepted a summary with no triplets")
			}
			return
		}
		// The summary comes from the sanitized copy (the engine never
		// summarizes non-finite frames); the signature is derived from
		// the raw frames, NaN and Inf included.
		sum := core.Summarize(7, sane, core.Options{Epsilon: 0.3, Seed: 1})
		sig, err := NewSignature(frames, &sum)
		if err != nil {
			t.Fatalf("NewSignature on %d same-dim frames: %v", len(frames), err)
		}
		checkRuns(t, sig, len(frames), len(sum.Triplets))

		// Reversal: same run multiset in reverse, and similarity to the
		// forward signature stays a valid score both ways.
		rev := make([]vec.Vector, len(frames))
		for i := range frames {
			rev[len(frames)-1-i] = frames[i]
		}
		rsig, err := NewSignature(rev, &sum)
		if err != nil {
			t.Fatalf("NewSignature on reversed frames: %v", err)
		}
		checkRuns(t, rsig, len(frames), len(sum.Triplets))
		ab, ba := Similarity(sig, rsig), Similarity(rsig, sig)
		if math.Float64bits(ab) != math.Float64bits(ba) {
			t.Fatalf("Similarity asymmetric: %v vs %v", ab, ba)
		}
		for _, s := range []float64{ab, Similarity(sig, sig)} {
			if !(s >= 0 && s <= 1) { // NaN fails both comparisons
				t.Fatalf("Similarity out of range: %v", s)
			}
		}

		// Rerank: a sorted permutation; candidates without signatures
		// keep their score bit-for-bit.
		cands := []Scored{
			{VideoID: 7, Score: 0.25},
			{VideoID: 1, Score: 0.5},
			{VideoID: 2, Score: 0.5},
			{VideoID: 3, Score: ab},
		}
		out := Rerank(sig, cands, map[int]*Signature{7: rsig}, 0.75)
		if len(out) != len(cands) {
			t.Fatalf("Rerank changed the candidate count: %d -> %d", len(cands), len(out))
		}
		seen := make(map[int]Scored, len(out))
		for i, c := range out {
			seen[c.VideoID] = c
			if i > 0 && (out[i-1].Score < c.Score ||
				(out[i-1].Score == c.Score && out[i-1].VideoID > c.VideoID)) {
				t.Fatalf("Rerank output unsorted at %d: %+v", i, out)
			}
		}
		for _, c := range cands {
			got, ok := seen[c.VideoID]
			if !ok {
				t.Fatalf("Rerank dropped candidate %d", c.VideoID)
			}
			if c.VideoID != 7 && math.Float64bits(got.Score) != math.Float64bits(c.Score) {
				t.Fatalf("Rerank touched signature-less candidate %d: %v -> %v", c.VideoID, c.Score, got.Score)
			}
		}
	})
}

// decodeFuzzFrames maps fuzz bytes onto a frame sequence: the first byte
// selects the dimensionality (1..8), each following byte is one value —
// 0xff, 0xfe, 0xfd escape to NaN, +Inf, -Inf; anything else lands in
// [0, 1]. Returns the raw frames and a sanitized copy with the escapes
// replaced by finite values.
func decodeFuzzFrames(data []byte) (raw, sane []vec.Vector) {
	if len(data) == 0 {
		return nil, nil
	}
	dim := 1 + int(data[0])%8
	vals := data[1:]
	if len(vals) > 128 {
		vals = vals[:128]
	}
	for len(vals) >= dim {
		rf := make(vec.Vector, dim)
		sf := make(vec.Vector, dim)
		for i := 0; i < dim; i++ {
			switch vals[i] {
			case 0xff:
				rf[i], sf[i] = math.NaN(), 0.5
			case 0xfe:
				rf[i], sf[i] = math.Inf(1), 0.5
			case 0xfd:
				rf[i], sf[i] = math.Inf(-1), 0.5
			default:
				v := float64(vals[i]) / 255
				rf[i], sf[i] = v, v
			}
		}
		raw = append(raw, rf)
		sane = append(sane, sf)
		vals = vals[dim:]
	}
	return raw, sane
}

// checkRuns asserts a signature's structural invariants.
func checkRuns(t *testing.T, sig *Signature, frames, triplets int) {
	t.Helper()
	if sig.FrameCount != frames {
		t.Fatalf("FrameCount = %d, want %d", sig.FrameCount, frames)
	}
	total := 0
	for i, r := range sig.Runs {
		if r.Length < 1 {
			t.Fatalf("run %d has length %d", i, r.Length)
		}
		if r.Triplet < 0 || r.Triplet >= triplets {
			t.Fatalf("run %d references triplet %d of %d", i, r.Triplet, triplets)
		}
		if i > 0 && sig.Runs[i-1].Triplet == r.Triplet {
			t.Fatalf("runs %d and %d share triplet %d without merging", i-1, i, r.Triplet)
		}
		total += r.Length
	}
	if total != frames {
		t.Fatalf("run lengths sum to %d, want %d", total, frames)
	}
}
