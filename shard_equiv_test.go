package vitri

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vfs"
)

// Differential equivalence suite: a sharded database must be
// observationally identical to the single-shard oracle. "Identical" here
// is the strictest form available — matches compared by Float64bits of
// every similarity and shared-frame count (not a tolerance), contents
// compared through the on-disk byte encoding — because the engine's
// canonical similarity fold makes scores a pure function of (query,
// video contents), independent of shard count, tree layout and
// parallelism. Anything weaker would let a shard-dependent accumulation
// order creep in unnoticed.

// equivShardCounts is the shard matrix the suite proves equivalent.
var equivShardCounts = []int{1, 2, 3, 8}

// matchesIdentical compares two rankings bit-for-bit.
func matchesIdentical(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].VideoID != b[i].VideoID ||
			math.Float64bits(a[i].Similarity) != math.Float64bits(b[i].Similarity) ||
			math.Float64bits(a[i].Shared) != math.Float64bits(b[i].Shared) {
			return false
		}
	}
	return true
}

// equivQueries builds the fixed query set every phase searches with.
func equivQueries(n int) []Summary {
	r := rand.New(rand.NewSource(77))
	qs := make([]Summary, n)
	for i := range qs {
		qs[i] = Summarize(1000+i, synthVideo(r, 8, 2, 5), 0.3, 7)
	}
	return qs
}

// checkEquiv asserts oracle and sharded agree on every observable that
// is shard-count-invariant: contents (byte-for-byte), Len, Triplets,
// entry counts, and for every query and both modes the full ranking
// bit-for-bit plus the candidate and geometry-evaluation totals (each
// record is scanned in exactly one shard against the same query-derived
// ranges, so those work counters sum to the oracle's; PageReads and
// Ranges legitimately depend on tree layout and are asserted
// deterministic in checkDeterministic instead). Geometry evaluations are
// compared as SimilarityOps + SignatureSkips: the signature tier moves
// work between the two counters — a pruned candidate is a skip instead
// of an op — but their sum is exactly the pre-tier op count, so the sum
// is invariant across shard counts AND across tier on/off, letting one
// oracle serve both configurations.
func checkEquiv(t *testing.T, oracle, sharded *DB, queries []Summary, k int) {
	t.Helper()
	if got, want := sharded.Len(), oracle.Len(); got != want {
		t.Fatalf("Len = %d, oracle %d", got, want)
	}
	if got, want := sharded.Triplets(), oracle.Triplets(); got != want {
		t.Fatalf("Triplets = %d, oracle %d", got, want)
	}
	if got, want := storeBytes(t, sharded), storeBytes(t, oracle); !bytes.Equal(got, want) {
		t.Fatalf("store bytes diverge: %d vs %d bytes", len(got), len(want))
	}
	for qi := range queries {
		for _, mode := range []QueryMode{Naive, Composed} {
			wantRes, wantStats, wantErr := oracle.SearchSummary(&queries[qi], k, mode)
			gotRes, gotStats, gotErr := sharded.SearchSummary(&queries[qi], k, mode)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("query %d mode %v: err = %v, oracle err = %v", qi, mode, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !matchesIdentical(gotRes, wantRes) {
				t.Fatalf("query %d mode %v: matches diverge\n got: %+v\nwant: %+v", qi, mode, gotRes, wantRes)
			}
			if gotStats.Candidates != wantStats.Candidates ||
				gotStats.SimilarityOps+gotStats.SignatureSkips != wantStats.SimilarityOps+wantStats.SignatureSkips {
				t.Fatalf("query %d mode %v: work counters diverge: got %+v, oracle %+v",
					qi, mode, gotStats, wantStats)
			}
		}
	}
	wantStats, err := oracle.Stats()
	if err != nil {
		t.Fatalf("oracle Stats: %v", err)
	}
	gotStats, err := sharded.Stats()
	if err != nil {
		t.Fatalf("sharded Stats: %v", err)
	}
	if gotStats.Entries != wantStats.Entries {
		t.Fatalf("Entries = %d, oracle %d", gotStats.Entries, wantStats.Entries)
	}
	if err := sharded.CheckIndex(); err != nil {
		t.Fatalf("CheckIndex: %v", err)
	}
}

// equivApply drives one deterministic mixed workload — batch ingest,
// single adds, removes, a second batch — against a database, asserting
// per-item and batch-level success.
func equivApply(t *testing.T, db *DB, videos []Video) {
	t.Helper()
	itemErrs, err := db.AddBatch(videos[:len(videos)/2])
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	for i, e := range itemErrs {
		if e != nil {
			t.Fatalf("AddBatch item %d: %v", i, e)
		}
	}
	for _, v := range videos[len(videos)/2 : 3*len(videos)/4] {
		if err := db.Add(v.ID, v.Frames); err != nil {
			t.Fatalf("Add(%d): %v", v.ID, err)
		}
	}
	for id := 0; id < len(videos)/2; id += 5 {
		if err := db.Remove(id); err != nil {
			t.Fatalf("Remove(%d): %v", id, err)
		}
	}
	if _, err := db.Search(videos[1].Frames, 3); err != nil {
		t.Fatalf("mid-workload Search: %v", err)
	}
	// The tail batch lands on a built index, exercising the incremental
	// insert path on every shard.
	itemErrs, err = db.AddBatch(videos[3*len(videos)/4:])
	if err != nil {
		t.Fatalf("tail AddBatch: %v", err)
	}
	for i, e := range itemErrs {
		if e != nil {
			t.Fatalf("tail AddBatch item %d: %v", i, e)
		}
	}
}

// TestShardEquivalence is the tentpole differential test: the same
// seeded workload applied to the single-shard oracle and to shard counts
// 1, 2, 3 and 8 yields bit-identical rankings, contents and
// shard-invariant work counters at every phase.
func TestShardEquivalence(t *testing.T) {
	videos := ingestCorpus(83, 48)
	queries := equivQueries(6)
	oracle := New(Options{Epsilon: 0.3, Seed: 7})
	equivApply(t, oracle, videos)
	for _, n := range equivShardCounts {
		n := n
		t.Run(shardName(n), func(t *testing.T) {
			sharded := New(Options{Epsilon: 0.3, Seed: 7, Shards: n})
			if n > 1 && len(sharded.sub) != n {
				t.Fatalf("router has %d shards, want %d", len(sharded.sub), n)
			}
			equivApply(t, sharded, videos)
			checkEquiv(t, oracle, sharded, queries, 10)
		})
	}
}

// TestShardEquivalenceSearchBatch proves the batch search path merges
// identically to per-query scatter and to the oracle.
func TestShardEquivalenceSearchBatch(t *testing.T) {
	videos := ingestCorpus(84, 40)
	queries := equivQueries(9)
	oracle := New(Options{Epsilon: 0.3, Seed: 7})
	equivApply(t, oracle, videos)
	wantBatch, err := oracle.SearchBatch(queries, 7, Composed)
	if err != nil {
		t.Fatalf("oracle SearchBatch: %v", err)
	}
	for _, n := range equivShardCounts {
		n := n
		t.Run(shardName(n), func(t *testing.T) {
			sharded := New(Options{Epsilon: 0.3, Seed: 7, Shards: n})
			equivApply(t, sharded, videos)
			gotBatch, err := sharded.SearchBatch(queries, 7, Composed)
			if err != nil {
				t.Fatalf("SearchBatch: %v", err)
			}
			if len(gotBatch) != len(wantBatch) {
				t.Fatalf("batch size %d, want %d", len(gotBatch), len(wantBatch))
			}
			for i := range gotBatch {
				if (gotBatch[i].Err == nil) != (wantBatch[i].Err == nil) {
					t.Fatalf("query %d: err %v, oracle %v", i, gotBatch[i].Err, wantBatch[i].Err)
				}
				if !matchesIdentical(gotBatch[i].Results, wantBatch[i].Results) {
					t.Fatalf("query %d: batch matches diverge from oracle", i)
				}
				if gotBatch[i].Stats.Candidates != wantBatch[i].Stats.Candidates ||
					gotBatch[i].Stats.SimilarityOps+gotBatch[i].Stats.SignatureSkips !=
						wantBatch[i].Stats.SimilarityOps+wantBatch[i].Stats.SignatureSkips {
					t.Fatalf("query %d: work counters diverge: got %+v, oracle %+v",
						i, gotBatch[i].Stats, wantBatch[i].Stats)
				}
			}
		})
	}
}

// TestShardSearchDeterministic pins the layout-dependent counters: at a
// fixed shard count, two independently built databases report identical
// SearchStats — including PageReads and Ranges — for every query. This
// is the other half of the stats contract (checkEquiv covers the
// shard-invariant half).
func TestShardSearchDeterministic(t *testing.T) {
	videos := ingestCorpus(85, 36)
	queries := equivQueries(5)
	for _, n := range equivShardCounts {
		n := n
		t.Run(shardName(n), func(t *testing.T) {
			a := New(Options{Epsilon: 0.3, Seed: 7, Shards: n})
			b := New(Options{Epsilon: 0.3, Seed: 7, Shards: n})
			equivApply(t, a, videos)
			equivApply(t, b, videos)
			for qi := range queries {
				for _, mode := range []QueryMode{Naive, Composed} {
					resA, statsA, errA := a.SearchSummary(&queries[qi], 10, mode)
					resB, statsB, errB := b.SearchSummary(&queries[qi], 10, mode)
					if errA != nil || errB != nil {
						t.Fatalf("query %d mode %v: errs %v / %v", qi, mode, errA, errB)
					}
					if !matchesIdentical(resA, resB) {
						t.Fatalf("query %d mode %v: twin builds disagree on matches", qi, mode)
					}
					if statsA != statsB {
						t.Fatalf("query %d mode %v: twin builds disagree on stats: %+v vs %+v",
							qi, mode, statsA, statsB)
					}
				}
			}
		})
	}
}

// TestShardEquivalenceDurable runs the differential workload against
// durable stores on an in-memory filesystem: mutate, checkpoint
// mid-stream, mutate more, close, reopen (shard count adopted from the
// manifest), and require the recovered database to remain bit-identical
// to the recovered single-shard oracle.
func TestShardEquivalenceDurable(t *testing.T) {
	videos := ingestCorpus(86, 40)
	queries := equivQueries(5)

	runStore := func(t *testing.T, n int) *DB {
		fsys := vfs.NewMemFS()
		dopts := DurableOptions{FS: fsys}
		db, err := OpenDurable("store", Options{Epsilon: 0.3, Seed: 7, Shards: n, Durable: &dopts})
		if err != nil {
			t.Fatalf("OpenDurable(shards=%d): %v", n, err)
		}
		equivApply(t, db, videos[:30])
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		for _, v := range videos[30:] {
			if err := db.Add(v.ID, v.Frames); err != nil {
				t.Fatalf("post-checkpoint Add(%d): %v", v.ID, err)
			}
		}
		if err := db.Remove(videos[31].ID); err != nil {
			t.Fatalf("post-checkpoint Remove: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		reopened, err := OpenDurable("store", Options{Seed: 7, Durable: &DurableOptions{FS: fsys}})
		if err != nil {
			t.Fatalf("reopen(shards=%d): %v", n, err)
		}
		if reopened.Epsilon() != 0.3 {
			t.Fatalf("epsilon not adopted on reopen: %v", reopened.Epsilon())
		}
		if got := reopened.Durable(); !got {
			t.Fatal("reopened store is not durable")
		}
		return reopened
	}

	oracle := runStore(t, 1)
	for _, n := range equivShardCounts[1:] {
		n := n
		t.Run(shardName(n), func(t *testing.T) {
			sharded := runStore(t, n)
			if len(sharded.sub) != n {
				t.Fatalf("reopen recovered %d shards, want %d", len(sharded.sub), n)
			}
			checkEquiv(t, oracle, sharded, queries, 8)
		})
	}
}

// TestShardEquivalencePreFilterOff crosses the shard matrix with the
// engine knobs that must not change any observable: signature tier off,
// unquantized float64 leaves, and both at once. Every configuration is
// checked against the same default-engine oracle — bit-identical
// rankings, byte-identical contents, equal candidate counts, and the
// tier-invariant work sum (checkEquiv). Sharded configurations with the
// tier disabled must report zero signature skips.
func TestShardEquivalencePreFilterOff(t *testing.T) {
	videos := ingestCorpus(87, 40)
	queries := equivQueries(6)
	oracle := New(Options{Epsilon: 0.3, Seed: 7})
	equivApply(t, oracle, videos)
	configs := []struct {
		name string
		opts Options
	}{
		{"prefilter-off", Options{Epsilon: 0.3, Seed: 7, DisablePreFilter: true}},
		{"unquantized", Options{Epsilon: 0.3, Seed: 7, UnquantizedPages: true}},
		{"both-off", Options{Epsilon: 0.3, Seed: 7, DisablePreFilter: true, UnquantizedPages: true}},
	}
	for _, n := range []int{1, 3} {
		for _, cfg := range configs {
			n, cfg := n, cfg
			t.Run(shardName(n)+"/"+cfg.name, func(t *testing.T) {
				opts := cfg.opts
				opts.Shards = n
				db := New(opts)
				equivApply(t, db, videos)
				checkEquiv(t, oracle, db, queries, 10)
				if opts.DisablePreFilter {
					for qi := range queries {
						_, stats, err := db.SearchSummary(&queries[qi], 10, Composed)
						if err != nil {
							t.Fatalf("query %d: %v", qi, err)
						}
						if stats.SignatureSkips != 0 {
							t.Fatalf("query %d: %d signature skips with the tier disabled", qi, stats.SignatureSkips)
						}
					}
				}
			})
		}
	}
}

// shardName labels a subtest by shard count.
func shardName(n int) string {
	return map[int]string{1: "shards=1", 2: "shards=2", 3: "shards=3", 8: "shards=8"}[n]
}
