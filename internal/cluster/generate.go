package cluster

import (
	"math"
	"math/rand"

	"vitri/internal/vec"
)

// Cluster is one tight group of similar frames produced by Generate: the
// center, the refined radius min(R_max, µ+σ), the member frame indices
// (into the original point slice), and the distance statistics that
// produced the radius.
type Cluster struct {
	Center  vec.Vector
	Radius  float64
	Members []int
	Mu      float64 // mean distance of members to Center
	Sigma   float64 // population standard deviation of those distances
}

// Size returns the number of frames in the cluster (|C| in the paper).
func (c *Cluster) Size() int { return len(c.Members) }

// Generator runs the paper's Generate_Clusters algorithm on reusable
// scratch buffers. One Generator summarizes any number of videos in
// sequence without reallocating its working set, which is what each
// ingest worker holds. A Generator is NOT safe for concurrent use: the
// scratch is owned by exactly one goroutine at a time (see DESIGN.md
// "Ingest pipeline" for the ownership rules).
//
// Scratch reuse never changes results: the kernels preserve the exact
// floating-point operation order of the allocation-per-call
// implementation, so Generate output depends only on (points, epsilon,
// rng state).
type Generator struct {
	km    scratch      // k-means working set for bisections
	group []vec.Vector // views of the current group's points
	tmp   []int        // right-hand side buffer for stable partitions
	items []distIdx    // fallback median-split ordering
	mean  vec.Vector   // group centroid scratch
}

// NewGenerator returns an empty Generator; buffers grow on first use.
func NewGenerator() *Generator { return &Generator{} }

// Generate implements the paper's Generate_Clusters algorithm (Figure 3):
// recursively bisect points with 2-means until each cluster's refined
// radius min(R, µ+σ) is at most ε/2, guaranteeing any two frames within a
// cluster are within ε of each other. rng seeds the bisections; pass a
// deterministic source for reproducible summaries.
//
// Degenerate inputs are handled conservatively: singleton and duplicate
// point sets terminate immediately (radius 0), and a bisection that fails
// to split (2-means puts everything on one side) falls back to a
// median-distance split so recursion always makes progress.
func Generate(points []vec.Vector, epsilon float64, rng *rand.Rand) []Cluster {
	return NewGenerator().Generate(points, epsilon, rng)
}

// Generate runs the recursive binary clustering on the Generator's
// scratch. See the package-level Generate for the algorithm contract.
func (g *Generator) Generate(points []vec.Vector, epsilon float64, rng *rand.Rand) []Cluster {
	if epsilon <= 0 {
		panic("cluster: Generate requires epsilon > 0")
	}
	if len(points) == 0 {
		return nil
	}
	// idx is the recursion's working set: bisections partition it in
	// place, so the whole run reorders this one slice instead of
	// allocating left/right lists at every node.
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	var out []Cluster
	g.generate(points, idx, epsilon, rng, &out, 0)
	return out
}

// maxDepth caps the recursion; 2^64 clusters is unreachable so this only
// guards against pathological non-progress.
const maxDepth = 64

func (g *Generator) generate(points []vec.Vector, idx []int, epsilon float64, rng *rand.Rand, out *[]Cluster, depth int) {
	radius, mu, sigma := g.groupStats(points, idx)
	if radius <= epsilon/2 || len(idx) == 1 || depth >= maxDepth {
		// Materialize the cluster only at a leaf: interior nodes of the
		// bisection tree never escape, so their center/member copies
		// would be garbage.
		center := make(vec.Vector, len(g.mean))
		copy(center, g.mean)
		members := make([]int, len(idx))
		copy(members, idx)
		*out = append(*out, Cluster{Center: center, Radius: radius, Members: members, Mu: mu, Sigma: sigma})
		return
	}
	left, right := g.bisect(points, idx, rng)
	if len(left) == 0 || len(right) == 0 {
		// No progress possible (identical points would have radius 0, so
		// this indicates numeric degeneracy); accept the cluster as-is.
		center := make(vec.Vector, len(g.mean))
		copy(center, g.mean)
		members := make([]int, len(idx))
		copy(members, idx)
		*out = append(*out, Cluster{Center: center, Radius: radius, Members: members, Mu: mu, Sigma: sigma})
		return
	}
	g.generate(points, left, epsilon, rng, out, depth+1)
	g.generate(points, right, epsilon, rng, out, depth+1)
}

// groupStats computes the centroid (left in g.mean), distance statistics
// and refined radius min(maxDist, µ+σ) for the group of points selected
// by idx, allocating nothing once the scratch is warm.
func (g *Generator) groupStats(points []vec.Vector, idx []int) (radius, mu, sigma float64) {
	n := len(points[idx[0]])
	if cap(g.mean) < n {
		g.mean = make(vec.Vector, n)
	}
	g.mean = g.mean[:n]
	for j := range g.mean {
		g.mean[j] = 0
	}
	for _, i := range idx {
		vec.AddInPlace(g.mean, points[i])
	}
	vec.ScaleInPlace(g.mean, 1/float64(len(idx)))

	var sum, sum2, maxD float64
	for _, i := range idx {
		d := vec.Dist(points[i], g.mean)
		sum += d
		sum2 += d * d
		if d > maxD {
			maxD = d
		}
	}
	m := float64(len(idx))
	mu = sum / m
	variance := sum2/m - mu*mu
	if variance < 0 {
		variance = 0
	}
	sigma = math.Sqrt(variance)
	return math.Min(maxD, mu+sigma), mu, sigma
}

// distIdx pairs a member id with its distance to the group centroid for
// the fallback median split.
type distIdx struct {
	d  float64
	id int
}

// bisect splits the group with 2-means, stably partitioning idx in place
// and returning the two halves as subslices. If 2-means degenerates to a
// single non-empty side, it falls back to splitting at the median
// distance from the centroid.
func (g *Generator) bisect(points []vec.Vector, idx []int, rng *rand.Rand) (left, right []int) {
	g.group = g.group[:0]
	for _, id := range idx {
		g.group = append(g.group, points[id])
	}
	kmeansRun(g.group, 2, rng, 0, &g.km)
	// Stable in-place partition by assignment: left-side ids compact to
	// the front, right-side ids stage through tmp, both keeping their
	// relative order (the accumulation order downstream float folds see).
	g.tmp = g.tmp[:0]
	w := 0
	for i, id := range idx {
		if g.km.assign[i] == 0 {
			idx[w] = id
			w++
		} else {
			g.tmp = append(g.tmp, id)
		}
	}
	copy(idx[w:], g.tmp)
	left, right = idx[:w], idx[w:]
	if len(left) > 0 && len(right) > 0 {
		return left, right
	}
	// Fallback: order by distance to the centroid and cut at the median.
	// g.mean still holds this group's centroid from groupStats.
	g.items = g.items[:0]
	for _, id := range idx {
		g.items = append(g.items, distIdx{vec.Dist(points[id], g.mean), id})
	}
	// Insertion sort: groups here are small and already nearly ordered.
	for i := 1; i < len(g.items); i++ {
		v := g.items[i]
		j := i - 1
		for j >= 0 && g.items[j].d > v.d {
			g.items[j+1] = g.items[j]
			j--
		}
		g.items[j+1] = v
	}
	for i, it := range g.items {
		idx[i] = it.id
	}
	mid := len(idx) / 2
	return idx[:mid], idx[mid:]
}

// Validate reports whether every pair of frames in the cluster is within
// epsilon. This holds strictly when Radius equals the max member distance;
// when the µ+σ refinement shrank the radius below the true extent, a small
// fraction of outlier pairs may exceed ε (the paper's deliberate
// trade-off), so callers should only require Validate in the strict case.
// Intended for tests and debugging; O(|C|²).
func (c *Cluster) Validate(points []vec.Vector, epsilon float64) bool {
	for i := 0; i < len(c.Members); i++ {
		for j := i + 1; j < len(c.Members); j++ {
			if vec.Dist(points[c.Members[i]], points[c.Members[j]]) > epsilon+1e-9 {
				return false
			}
		}
	}
	return true
}
