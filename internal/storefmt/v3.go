package storefmt

import (
	"bytes"
	"fmt"
	"io"

	"vitri/internal/sig"
)

// Store format v3: the same sealed sectioned layout as v2 (see
// sections.go) under magic "VITRIDB3", plus a signatures section
// carrying the per-video pre-filter signatures (internal/sig) so a
// reopened store can verify or adopt the memory-resident tier without
// recomputation. The exact float64 summaries remain the authoritative
// payload — signatures are derived data, always recomputable from the
// summaries and ε, and the encoder always derives them fresh so a v3
// file cannot carry signatures that disagree with its summaries.

// sectionSignatures holds count-prefixed (videoID uint32, encoded
// signature) pairs; see internal/sig for the signature codec.
const sectionSignatures = uint32(3)

// encodeSignaturesSection derives every video's signature from its
// summary. Videos with no triplets are skipped: they have no geometry to
// prune, and a zero-dimension signature has no valid encoding.
func encodeSignaturesSection(snap *Snapshot) ([]byte, error) {
	w := sig.CellWidth(snap.Epsilon)
	var body bytes.Buffer
	n := uint32(0)
	for i := range snap.Summaries {
		if len(snap.Summaries[i].Triplets) > 0 {
			n++
		}
	}
	if err := binWrite(&body, n); err != nil {
		return nil, err
	}
	for i := range snap.Summaries {
		s := &snap.Summaries[i]
		if len(s.Triplets) == 0 {
			continue
		}
		if err := binWrite(&body, uint32(s.VideoID)); err != nil {
			return nil, err
		}
		vs := sig.FromSummary(s, len(s.Triplets[0].Position), w)
		buf := make([]byte, sig.EncodedSize(vs.Words()))
		if err := vs.Encode(buf); err != nil {
			return nil, err
		}
		if _, err := body.Write(buf); err != nil {
			return nil, err
		}
	}
	return body.Bytes(), nil
}

// decodeSignaturesSection parses the signature pairs; duplicate video
// ids are rejected.
func decodeSignaturesSection(r io.Reader) (map[int32]*sig.Signature, error) {
	var count uint32
	if err := binRead(r, &count); err != nil {
		return nil, err
	}
	if count > maxReasonable {
		return nil, fmt.Errorf("implausible signature count %d", count)
	}
	out := make(map[int32]*sig.Signature, capHint(count))
	for i := uint32(0); i < count; i++ {
		var vid uint32
		if err := binRead(r, &vid); err != nil {
			return nil, err
		}
		s, err := sig.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("signature for video %d: %w", int32(vid), err)
		}
		if _, dup := out[int32(vid)]; dup {
			return nil, fmt.Errorf("duplicate signature for video %d", int32(vid))
		}
		out[int32(vid)] = s
	}
	return out, nil
}

// EncodeV3 writes snap in the v3 sealed sectioned format: meta,
// summaries, and the derived signatures section.
func EncodeV3(w io.Writer, snap *Snapshot) error {
	meta, err := encodeMetaSection(snap)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := encodeSummaries(&body, snap.Summaries); err != nil {
		return err
	}
	sigs, err := encodeSignaturesSection(snap)
	if err != nil {
		return err
	}
	return encodeSectioned(w, MagicV3, Version3, []storeSection{
		{sectionMeta, meta},
		{sectionSummaries, body.Bytes()},
		{sectionSignatures, sigs},
	})
}

// decodeV3Body reads everything after the v3 magic and version. The
// signatures section is optional on read (a tolerant reader, like
// unknown-id skipping), but when present every signature must belong to
// a summarized video — a signature for a video the store does not
// contain is corruption, not data.
func decodeV3Body(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Version: Version3}
	var sawMeta, sawSummaries bool
	err := decodeSectioned(r, MagicV3, Version3, func(id uint32, sec io.Reader) error {
		switch id {
		case sectionMeta:
			if err := decodeMetaSection(sec, snap); err != nil {
				return err
			}
			sawMeta = true
		case sectionSummaries:
			sums, err := decodeSummaries(sec)
			if err != nil {
				return fmt.Errorf("summaries section: %w", err)
			}
			snap.Summaries = sums
			sawSummaries = true
		case sectionSignatures:
			sigs, err := decodeSignaturesSection(sec)
			if err != nil {
				return fmt.Errorf("signatures section: %w", err)
			}
			snap.Signatures = sigs
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawMeta || !sawSummaries {
		return nil, fmt.Errorf("v3 store missing required sections (meta %v, summaries %v)", sawMeta, sawSummaries)
	}
	if snap.Signatures != nil {
		have := make(map[int32]bool, len(snap.Summaries))
		for i := range snap.Summaries {
			have[int32(snap.Summaries[i].VideoID)] = true
		}
		for vid := range snap.Signatures {
			if !have[vid] {
				return nil, fmt.Errorf("signature for video %d which the store does not contain", vid)
			}
		}
	}
	return snap, nil
}
