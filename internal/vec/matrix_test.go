package vec

import (
	"math"
	"math/rand"
	"testing"
)

// dist2Ref is the naive sequential fold the unrolled Dist2 must reproduce
// bit for bit: summaries are seeded floats, so the kernel may not change a
// single ulp.
func dist2Ref(a, b Vector) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

func TestDist2BitIdenticalToReference(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for n := 0; n <= 70; n++ {
		a, b := randVec(r, n), randVec(r, n)
		got, want := Dist2(a, b), dist2Ref(a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dist2 = %x, reference fold = %x", n, got, want)
		}
	}
}

func TestArgminDist2MatchesScalarLoop(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		k, dim := 1+r.Intn(12), 1+r.Intn(40)
		m := NewMatrix(k, dim)
		for c := 0; c < k; c++ {
			m.SetRow(c, randVec(r, dim))
		}
		p := randVec(r, dim)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if d := Dist2(p, m.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		gotC, gotD := ArgminDist2(p, m)
		if gotC != best || math.Float64bits(gotD) != math.Float64bits(bestD) {
			t.Fatalf("ArgminDist2 = (%d, %v), scalar loop = (%d, %v)", gotC, gotD, best, bestD)
		}
	}
}

func TestArgminDist2TieKeepsFirst(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, Vector{1, 0})
	m.SetRow(1, Vector{0, 1}) // same distance to p as row 0
	m.SetRow(2, Vector{5, 5})
	if best, _ := ArgminDist2(Vector{0, 0}, m); best != 0 {
		t.Fatalf("tie broke to row %d, want first minimum 0", best)
	}
}

func TestArgminDist2PanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ArgminDist2(Vector{1}, Matrix{})
}

func TestMatrixRowsAndAccum(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, Vector{1, 2, 3})
	m.AccumRow(0, Vector{10, 10, 10})
	if !Equal(m.Row(0), Vector{11, 12, 13}) {
		t.Fatalf("AccumRow: row 0 = %v", m.Row(0))
	}
	if !Equal(m.Row(1), Vector{0, 0, 0}) {
		t.Fatalf("row 1 disturbed: %v", m.Row(1))
	}
	m.ScaleRow(0, 2)
	if !Equal(m.Row(0), Vector{22, 24, 26}) {
		t.Fatalf("ScaleRow: row 0 = %v", m.Row(0))
	}
	m.ZeroRow(0)
	if !Equal(m.Row(0), Vector{0, 0, 0}) {
		t.Fatalf("ZeroRow: row 0 = %v", m.Row(0))
	}
}

func TestMatrixRowCannotGrowIntoNeighbor(t *testing.T) {
	m := NewMatrix(2, 2)
	m.SetRow(1, Vector{7, 8})
	row := m.Row(0)
	row = append(row, 99) // must reallocate, not clobber row 1
	_ = row
	if !Equal(m.Row(1), Vector{7, 8}) {
		t.Fatalf("append through a row view clobbered the next row: %v", m.Row(1))
	}
}

func TestMatrixResetReusesBacking(t *testing.T) {
	m := NewMatrix(4, 8)
	m.Data[0] = 42
	backing := &m.Data[0]
	m.Reset(2, 8)
	if m.Rows != 2 || m.Cols != 8 || len(m.Data) != 16 {
		t.Fatalf("Reset shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if m.Data[0] != 0 {
		t.Fatal("Reset did not zero the reused backing")
	}
	if &m.Data[0] != backing {
		t.Fatal("Reset reallocated although capacity sufficed")
	}
	m.Reset(8, 8) // larger than capacity: must grow
	if len(m.Data) != 64 {
		t.Fatalf("Reset grow: len %d", len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("grown backing not zero at %d: %v", i, v)
		}
	}
}

// The hot-loop kernels must not allocate: the Lloyd iteration runs them
// millions of times per ingest.
func TestKernelsZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a, b := randVec(r, 64), randVec(r, 64)
	m := NewMatrix(8, 64)
	for c := 0; c < 8; c++ {
		m.SetRow(c, randVec(r, 64))
	}
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink += Dist2(a, b) }); n != 0 {
		t.Errorf("Dist2 allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, d := ArgminDist2(a, m); sink += d }); n != 0 {
		t.Errorf("ArgminDist2 allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.AccumRow(3, b) }); n != 0 {
		t.Errorf("AccumRow allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.ScaleRow(3, 0.5); m.ZeroRow(2) }); n != 0 {
		t.Errorf("ScaleRow/ZeroRow allocate %v per call", n)
	}
	_ = sink
}
