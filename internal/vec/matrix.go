package vec

import "fmt"

// Matrix is a dense row-major matrix over one flat backing slice. The
// summarization hot path uses it for per-worker scratch (k-means centroid
// sets, accumulation buffers): one allocation covers every row, rows are
// contiguous in memory for cache-friendly argmin scans, and Reset lets a
// worker reuse the backing array across videos without reallocating.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements, row-major: element (i, j) is
	// Data[i*Cols+j]. len(Data) == Rows*Cols.
	Data []float64
}

// NewMatrix returns a zeroed rows×cols matrix backed by one allocation.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix(%d, %d) with negative dimension", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Reset reshapes m to rows×cols and zeroes every element, reusing the
// backing array when it is large enough. This is the scratch-buffer entry
// point: amortized over a worker's lifetime it allocates only when a
// larger video than any before arrives.
func (m *Matrix) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: Matrix.Reset(%d, %d) with negative dimension", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
}

// Row returns row i as a vector sharing the matrix's backing array. The
// full-slice expression pins the capacity so an append through the view
// cannot silently overwrite the next row.
func (m Matrix) Row(i int) Vector {
	lo, hi := i*m.Cols, (i+1)*m.Cols
	return m.Data[lo:hi:hi]
}

// SetRow copies src into row i. src must have exactly Cols elements.
func (m Matrix) SetRow(i int, src Vector) {
	if len(src) != m.Cols {
		panic(fmt.Sprintf("vec: SetRow of %d elements into %d columns", len(src), m.Cols))
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], src)
}

// ZeroRow sets every element of row i to zero.
func (m Matrix) ZeroRow(i int) {
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	for j := range row {
		row[j] = 0
	}
}

// AccumRow adds p element-wise into row i without allocating — the fused
// centroid-update kernel of the Lloyd iteration (accumulate each point
// into its assigned centroid's scratch row). p must have Cols elements.
func (m Matrix) AccumRow(i int, p Vector) {
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	if len(p) != len(row) {
		panic(fmt.Sprintf("vec: AccumRow of %d elements into %d columns", len(p), m.Cols))
	}
	p = p[:len(row)]
	for j := range row {
		row[j] += p[j]
	}
}

// ScaleRow multiplies every element of row i by s.
func (m Matrix) ScaleRow(i int, s float64) {
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	for j := range row {
		row[j] *= s
	}
}
