// Package clean must produce zero diagnostics: it composes the blessed
// idioms every analyzer checks for, so any finding here is an analyzer
// false positive.
package clean

import (
	"sort"
	"sync"

	"fixture/pager"
)

// Catalog pairs a mutex with the ordered-fold and tracked-read idioms.
type Catalog struct {
	mu     sync.RWMutex
	pg     pager.Pager
	scores map[int]float64
}

// Total folds the score map in sorted key order under a read lock.
func (c *Catalog) Total() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]int, 0, len(c.scores))
	for k := range c.scores {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += c.scores[k]
	}
	return total
}

// Load reads pages through the attributed reader and handles every
// error.
func (c *Catalog) Load(n int, st *pager.ScanStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var p pager.Page
	for i := 0; i < n; i++ {
		if err := pager.ReadTracked(c.pg, pager.PageID(i), &p, st); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the store, propagating its error.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pg.Close()
}

// Add allocates a combined score vector. It shares its name with the vec
// helpers, but this package is outside hotalloc's scope — loop calls to
// it must not be flagged.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// MergeScores calls the local Add in a loop; hotalloc only watches
// packages named vec and cluster, so this stays clean.
func MergeScores(rows [][]float64) []float64 {
	acc := make([]float64, len(rows[0]))
	for _, r := range rows {
		acc = Add(acc, r)
	}
	return acc
}
