package dataset

import (
	"math/rand"

	"vitri/internal/vec"
)

// Palette synthesis shared by the corpus and summary generators.
//
// Real video frames have *sharp* color histograms: a studio shot, a sky
// pan or a packshot puts half of its pixels into one or two of the 64
// color bins. And a broadcast corpus is *multi-modal*: footage falls into
// a handful of visual families (studio graphics, daylight exteriors,
// night scenes, ...). Both properties matter to the index experiments —
// sharpness gives the feature space its spread (distances approach the
// simplex diameter), and families cluster the one-dimensional keys so a
// range search can skip whole regions. The generators model them with
// sharpProfile and familyPalettes.

// sharpProfile samples a normalized histogram whose dominant bin holds
// 45–75% of the mass, with the remainder spread over k-1 other bins.
func sharpProfile(rng *rand.Rand, dim, k int) vec.Vector {
	return sharpProfileMass(rng, dim, k, 0.45+0.3*rng.Float64())
}

// sharpProfileMass is sharpProfile with an explicit dominant-bin mass:
// the dominant bin holds exactly domMass, the remaining 1-domMass is
// split over k-1 random bins with uniform proportions.
func sharpProfileMass(rng *rand.Rand, dim, k int, domMass float64) vec.Vector {
	h := make(vec.Vector, dim)
	dom := rng.Intn(dim)
	weights := make([]float64, k-1)
	var wsum float64
	for i := range weights {
		weights[i] = rng.Float64()
		wsum += weights[i]
	}
	rest := 1 - domMass
	for _, w := range weights {
		h[rng.Intn(dim)] += rest * w / wsum
	}
	h[dom] += domMass
	return h
}

// familyPalettes places the corpus's visual families along a sharp color
// gradient: two very peaked anchor profiles (distinct dominant bins, so
// the anchors sit nearly a simplex diameter apart) with families at evenly
// spaced blend positions. The resulting corpus has one dominant principal
// direction — the gradient — with multi-modal structure along it, which is
// what lets the PCA-optimal reference point spread the one-dimensional
// keys over a wide range.
func familyPalettes(rng *rand.Rand, dim, k, families int) []vec.Vector {
	p0 := sharpProfileMass(rng, dim, k, 0.85)
	p1 := sharpProfileMass(rng, dim, k, 0.85)
	// Ensure distinct dominant bins (re-draw p1 on collision).
	for dominantBin(p0) == dominantBin(p1) {
		p1 = sharpProfileMass(rng, dim, k, 0.85)
	}
	out := make([]vec.Vector, families)
	for f := range out {
		t := 0.0
		if families > 1 {
			t = float64(f) / float64(families-1)
		}
		out[f] = blend(p1, p0, t)
	}
	return out
}

// dominantBin returns the index of the largest component.
func dominantBin(h vec.Vector) int {
	best := 0
	for i, v := range h {
		if v > h[best] {
			best = i
		}
	}
	return best
}

// blend returns normalize(w·a + (1-w)·b).
func blend(a, b vec.Vector, w float64) vec.Vector {
	out := make(vec.Vector, len(a))
	for i := range out {
		out[i] = w*a[i] + (1-w)*b[i]
	}
	vec.ScaleInPlace(out, 1/vec.Sum(out))
	return out
}
