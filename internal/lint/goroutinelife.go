package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife checks that every go statement has a provable join or
// cancel path, on the shared call graph: the spawned body (or its
// callees, transitively) must signal a sync.WaitGroup, send on or close
// a channel, or block receiving from one — the idioms the module uses
// to join (drain groups, result channels) or cancel (done channels,
// context selects) its goroutines. On top of that it flags:
//
//   - WaitGroup-joined spawns whose spawner never calls Add before the
//     go statement (Wait returns immediately: the "join" is a no-op);
//   - unbounded spawning: a go statement inside a range loop or a
//     condition-less for loop with no channel send before it (the
//     semaphore-acquire idiom) bounding concurrency;
//   - leak-on-early-return: a goroutine whose only join path is a send
//     on an unbuffered spawner-local channel, when the spawner's select
//     can return through another case without receiving — the send
//     blocks forever and the goroutine leaks.
var GoroutineLife = &Analyzer{
	Name:      "goroutinelife",
	Doc:       "every go statement needs a provable join or cancel path (WaitGroup, channel send/close, or receive); loops must bound their spawns",
	RunModule: runGoroutineLife,
}

func runGoroutineLife(mp *ModulePass) {
	for _, fi := range mp.Graph.Order {
		ga := &goLifeAnalyzer{mp: mp, fi: fi, info: fi.Pkg.Info}
		ga.run()
	}
}

type goLifeAnalyzer struct {
	mp   *ModulePass
	fi   *FuncInfo
	info *types.Info
}

func (ga *goLifeAnalyzer) run() {
	var stack []ast.Node
	ast.Inspect(ga.fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if g, ok := n.(*ast.GoStmt); ok {
			ga.checkGo(g, stack)
		}
		return true
	})
}

func (ga *goLifeAnalyzer) checkGo(g *ast.GoStmt, stack []ast.Node) {
	ga.checkBounded(g, stack)

	life, sentChans := ga.spawnEvidence(g.Call)
	facts := ga.mp.Facts.fns[ga.fi.Fn]
	otherEvidence := life.chanSend || life.chanClose || life.chanRecv
	if life.wgDone {
		if ga.addBefore(facts, g.Pos()) || otherEvidence {
			return
		}
		ga.mp.Reportf(g.Pos(),
			"goroutine is joined by WaitGroup.Done but the spawner never calls Add before the go statement, so Wait does not cover it")
		return
	}
	if !otherEvidence {
		ga.mp.Reportf(g.Pos(),
			"goroutine has no provable join or cancel path: neither its body nor its callees signal a WaitGroup, send on or close a channel, or block receiving from one")
		return
	}
	ga.checkEarlyReturnLeak(g, life, sentChans)
}

// addBefore reports whether the spawner calls WaitGroup.Add before pos.
func (ga *goLifeAnalyzer) addBefore(facts *fnFacts, pos token.Pos) bool {
	if facts == nil {
		return false
	}
	for _, p := range facts.wgAdds {
		if p < pos {
			return true
		}
	}
	return false
}

// checkBounded flags go statements inside unbounded loops (range, or
// for without a condition) lacking a channel send before the spawn —
// the `sem <- struct{}{}` acquire that bounds concurrency.
func (ga *goLifeAnalyzer) checkBounded(g *ast.GoStmt, stack []ast.Node) {
	var loopBody *ast.BlockStmt
	for i := len(stack) - 2; i >= 0; i-- {
		switch l := stack[i].(type) {
		case *ast.RangeStmt:
			loopBody = l.Body
		case *ast.ForStmt:
			if l.Cond == nil {
				loopBody = l.Body
			}
		case *ast.FuncLit:
			// The literal is its own spawn scope; loops outside it run it
			// at most once per call.
			i = -1
		}
		if loopBody != nil {
			break
		}
	}
	if loopBody == nil {
		return
	}
	bounded := false
	ast.Inspect(loopBody, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok && s.Pos() < g.Pos() {
			bounded = true
		}
		_, isLit := n.(*ast.FuncLit)
		return !bounded && !isLit
	})
	if !bounded {
		ga.mp.Reportf(g.Pos(),
			"unbounded goroutine spawn: this loop launches a goroutine per iteration with no bounding semaphore (no channel send before the go statement)")
	}
}

// spawnEvidence computes the join/cancel evidence of one spawned call:
// the literal body's own signals plus the transitive flags of every
// statically resolvable callee. It also returns the local channel
// objects the body sends on, for the leak check.
func (ga *goLifeAnalyzer) spawnEvidence(call *ast.CallExpr) (lifeFlags, map[types.Object]bool) {
	sent := make(map[types.Object]bool)
	var life lifeFlags
	lit, ok := unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		if callee := staticCallee(ga.info, call); callee != nil {
			if f := ga.mp.Facts.fns[callee]; f != nil {
				life.merge(f.life)
			}
		}
		return life, sent
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine's signals are its own, not this one's.
			return false
		case *ast.SendStmt:
			life.chanSend = true
			if id, ok := unparen(x.Chan).(*ast.Ident); ok {
				if obj := ga.info.ObjectOf(id); obj != nil {
					sent[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				life.chanRecv = true
			}
		case *ast.RangeStmt:
			if t := typeOfExpr(ga.info, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					life.chanRecv = true
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := ga.info.ObjectOf(id).(*types.Builtin); ok {
					if b.Name() == "close" {
						life.chanClose = true
					}
					return true
				}
			}
			callee := staticCallee(ga.info, x)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "sync" &&
				recvNamed(callee) == "WaitGroup" && callee.Name() == "Done" {
				life.wgDone = true
				return true
			}
			if f := ga.mp.Facts.fns[callee]; f != nil {
				life.merge(f.life)
			}
		}
		return true
	})
	return life, sent
}

// checkEarlyReturnLeak flags goroutines whose only join path is a send
// on an unbuffered spawner-local channel the spawner may abandon: a
// select receiving from that channel with a sibling case that returns.
func (ga *goLifeAnalyzer) checkEarlyReturnLeak(g *ast.GoStmt, life lifeFlags, sentChans map[types.Object]bool) {
	if !life.chanSend || life.wgDone || life.chanClose || life.chanRecv || len(sentChans) == 0 {
		return
	}
	unbuffered := ga.unbufferedLocals()
	for obj := range sentChans {
		if !unbuffered[obj] {
			return // a buffered or non-local channel: the send cannot strand
		}
	}
	leakObj := ga.abandonableRecv(sentChans)
	if leakObj == nil {
		return
	}
	ga.mp.Reportf(g.Pos(),
		"goroutine may leak on early return: its only join path is a send on unbuffered channel %s, but the spawner's select can return through another case without receiving; buffer the channel or always drain it",
		leakObj.Name())
}

// unbufferedLocals collects the channels this function makes without a
// capacity argument.
func (ga *goLifeAnalyzer) unbufferedLocals() map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(ga.fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if fid, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := ga.info.ObjectOf(fid).(*types.Builtin); ok && b.Name() == "make" {
				if _, isChan := typeOfExpr(ga.info, call.Args[0]).(*types.Chan); isChan || isChanExpr(ga.info, call) {
					out[ga.info.ObjectOf(id)] = true
				}
			}
		}
		return true
	})
	return out
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	t := typeOfExpr(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// abandonableRecv finds a select that receives from one of chans but
// has a sibling case returning without the receive, and returns the
// abandoned channel object.
func (ga *goLifeAnalyzer) abandonableRecv(chans map[types.Object]bool) types.Object {
	var leak types.Object
	ast.Inspect(ga.fi.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if ok && leak == nil {
			var recvObj types.Object
			otherReturns := false
			for _, cl := range sel.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if obj := recvChanObj(ga.info, cc.Comm); obj != nil && chans[obj] {
					recvObj = obj
					continue
				}
				for _, s := range cc.Body {
					if _, ok := s.(*ast.ReturnStmt); ok {
						otherReturns = true
					}
				}
			}
			if recvObj != nil && otherReturns {
				leak = recvObj
			}
		}
		return leak == nil
	})
	return leak
}

// recvChanObj resolves the channel object a comm clause receives from.
func recvChanObj(info *types.Info, comm ast.Stmt) types.Object {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	ue, ok := unparen(recv).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil
	}
	id, ok := unparen(ue.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}
