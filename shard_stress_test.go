package vitri

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vitri/internal/core"
)

// TestShardConcurrentMixedWorkload hammers a sharded durable store with
// concurrent Add, AddBatch, Remove, Search, Len/Triplets snapshots and
// back-to-back Checkpoints. It exists to run under -race: the shard
// router's shared/exclusive view-lock discipline, the per-shard group
// commits and the sequential checkpoint fold are exactly the surfaces
// where an unsynchronized share would hide. Once the storm has passed,
// the store must be structurally consistent, hold exactly the surviving
// ids, and recover to the same contents after a close and reopen.
func TestShardConcurrentMixedWorkload(t *testing.T) {
	const (
		shards  = 4
		workers = 4
		ops     = 10
		base    = 20
	)
	dir := t.TempDir()
	db, err := OpenDurable(dir, Options{Epsilon: 0.3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base; i++ {
		if err := db.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	query := crashSummary(3)

	// Deterministic final-state bookkeeping: each worker owns a disjoint
	// id range (so adds never collide across workers) and reports the set
	// of its ids still live when it finished.
	live := make([][]int, workers)
	errCh := make(chan error, workers+2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(500 + w)))
			next := 1000 + w*1000
			mine := map[int]bool{}
			for i := 0; i < ops; i++ {
				switch op := r.Intn(6); {
				case op == 0 && len(mine) > 0: // remove one of ours
					for id := range mine {
						if err := db.Remove(id); err != nil {
							errCh <- fmt.Errorf("worker %d remove %d: %w", w, id, err)
							return
						}
						delete(mine, id)
						break
					}
				case op == 1: // multi-shard batch through the group-commit path
					vids := make([]Video, 3)
					for j := range vids {
						vids[j] = Video{ID: next, Frames: stressVideo(r, 3, 12)}
						mine[next] = true
						next++
					}
					itemErrs, err := db.AddBatch(vids)
					if err != nil {
						errCh <- fmt.Errorf("worker %d batch: %w", w, err)
						return
					}
					for j, e := range itemErrs {
						if e != nil {
							errCh <- fmt.Errorf("worker %d batch item %d: %w", w, j, e)
							return
						}
					}
				case op == 2: // cross-shard snapshot reads against in-flight batches
					if n := db.Len(); n < 0 {
						errCh <- fmt.Errorf("worker %d: Len() = %d", w, n)
						return
					}
					db.Triplets()
				case op == 3: // scatter-gather search with stats sanity
					_, stats, err := db.SearchSummary(&query, 5, Composed)
					if err != nil {
						errCh <- fmt.Errorf("worker %d search: %w", w, err)
						return
					}
					if stats.Ranges < 1 {
						errCh <- fmt.Errorf("worker %d: implausible stats %+v on a non-empty store", w, stats)
						return
					}
				default:
					if err := db.AddSummary(crashSummary(next)); err != nil {
						errCh <- fmt.Errorf("worker %d add %d: %w", w, next, err)
						return
					}
					mine[next] = true
					next++
				}
			}
			ids := make([]int, 0, len(mine))
			for id := range mine {
				ids = append(ids, id)
			}
			live[w] = ids
		}(w)
	}
	// Checkpointer: continuous sequential folds plus manifest commits
	// while every mutation and search path runs.
	checkpoints := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if err := db.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint %d: %w", i, err)
				return
			}
			checkpoints++
		}
		close(stop)
	}()
	// Batch searcher: whole-batch scatter while checkpoints capture.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch, err := db.SearchBatch([]Summary{query, query, query}, 4, Naive)
			if err != nil {
				errCh <- fmt.Errorf("batch search: %w", err)
				return
			}
			for _, item := range batch {
				if item.Err != nil {
					errCh <- fmt.Errorf("batch search item: %w", item.Err)
					return
				}
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if checkpoints != 15 {
		t.Fatalf("only %d/15 checkpoints completed", checkpoints)
	}

	// Exact final state: base ids plus every worker's surviving ids.
	want := map[int]bool{}
	for i := 0; i < base; i++ {
		want[i] = true
	}
	for _, ids := range live {
		for _, id := range ids {
			want[id] = true
		}
	}
	got := dbContents(t, db)
	if len(got) != len(want) || db.Len() != len(want) {
		t.Fatalf("final Len = %d (contents %d), want %d", db.Len(), len(got), len(want))
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			t.Fatalf("video %d missing after storm", id)
		}
	}
	if err := db.CheckIndex(); err != nil {
		t.Fatalf("index inconsistent after storm: %v", err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(db.Triplets()) {
		t.Fatalf("trees report %d entries, catalogs say %d", st.Entries, db.Triplets())
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after storm: %v", err)
	}
	defer db2.Close()
	got2 := dbContents(t, db2)
	if !reflect.DeepEqual(got2, got) {
		t.Fatalf("recovered contents diverge from pre-close state: %s", describeDiff(got2, got))
	}
}

// TestShardLenConsistentSnapshot is the torn-read regression: Len (and
// every cross-shard snapshot) must never observe a multi-shard batch
// half-applied. The batch applies under a shared view-lock hold; the
// test's hook fires between per-shard applies — exactly the torn window
// — and launches a concurrent Len, which must block until the batch's
// hold ends and therefore report a multiple of the batch size. Before
// the view lock existed, the mid-window Len returned a partial count;
// this test fails deterministically on that regression.
func TestShardLenConsistentSnapshot(t *testing.T) {
	const batch = 12 // spans all shards under shard.Route
	db := New(Options{Epsilon: 0.3, Shards: 3})

	var pending []chan int
	var launched atomic.Int32
	db.testBetweenShardApplies = func() {
		ch := make(chan int, 1)
		pending = append(pending, ch)
		launched.Add(1)
		ready := make(chan struct{})
		go func() {
			close(ready)
			ch <- db.Len() // must block until the batch's view hold ends
		}()
		<-ready
	}

	r := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		vids := make([]Video, batch)
		for i := range vids {
			vids[i] = Video{ID: round*batch + i, Frames: stressVideo(r, 3, 10)}
		}
		itemErrs, err := db.AddBatch(vids)
		if err != nil {
			t.Fatalf("AddBatch round %d: %v", round, err)
		}
		for i, e := range itemErrs {
			if e != nil {
				t.Fatalf("round %d item %d: %v", round, i, e)
			}
		}
	}
	db.testBetweenShardApplies = nil

	if launched.Load() == 0 {
		t.Fatal("hook never fired — the torn window was not exercised")
	}
	for i, ch := range pending {
		n := <-ch
		if n%batch != 0 {
			t.Fatalf("observation %d: Len = %d mid-batch — a torn cross-shard read (want a multiple of %d)", i, n, batch)
		}
	}
	if got := db.Len(); got != 3*batch {
		t.Fatalf("final Len = %d, want %d", got, 3*batch)
	}
}

// TestShardTripletsConsistentSnapshot extends the torn-read regression
// to Triplets: mid-batch observations must equal a sum over whole
// batches, never a partial application. Summary triplet counts vary per
// video, so the check pins the exact observable values instead of a
// divisibility property.
func TestShardTripletsConsistentSnapshot(t *testing.T) {
	db := New(Options{Epsilon: 0.3, Shards: 3})
	sums := make([]core.Summary, 9)
	total := 0
	for i := range sums {
		sums[i] = crashSummary(100 + i)
		total += len(sums[i].Triplets)
	}

	// The hook runs inside the batch's view hold, so it must not wait for
	// the observation (Triplets blocks on the view lock until the hold
	// ends — that blocking IS the property under test); it launches the
	// observer and the results are collected after the batch returns.
	var observations []chan int
	db.testBetweenShardApplies = func() {
		ch := make(chan int, 1)
		observations = append(observations, ch)
		go func() { ch <- db.Triplets() }()
	}
	// AddBatch summarizes frames; to control triplet counts exactly, feed
	// the summaries through AddSummary's routed path first (no hook), then
	// drive one AddBatch whose observations the hook checks.
	for _, s := range sums[:6] {
		if err := addNoHook(db, s); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(11))
	batch := make([]Video, 6)
	for i := range batch {
		batch[i] = Video{ID: 200 + i, Frames: stressVideo(r, 3, 10)}
	}
	itemErrs, err := db.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range itemErrs {
		if e != nil {
			t.Fatalf("item %d: %v", i, e)
		}
	}
	db.testBetweenShardApplies = nil

	if len(observations) == 0 {
		t.Fatal("hook never fired")
	}
	// Every mid-batch Triplets observation blocked until the batch's view
	// hold ended, so it must include all six pre-loaded summaries plus the
	// whole batch — the final count, never a prefix of it.
	want := db.Triplets()
	for i, ch := range observations {
		if n := <-ch; n != want {
			t.Fatalf("observation %d: Triplets = %d mid-batch, want the post-batch %d", i, n, want)
		}
	}
	pre := 0
	for _, s := range sums[:6] {
		pre += len(s.Triplets)
	}
	if want <= pre {
		t.Fatalf("batch added no triplets (%d <= %d)", want, pre)
	}
}

// addNoHook routes one summary while the between-shard hook is parked,
// so setup inserts don't trip the observation machinery.
func addNoHook(db *DB, s core.Summary) error {
	hook := db.testBetweenShardApplies
	db.testBetweenShardApplies = nil
	defer func() { db.testBetweenShardApplies = hook }()
	return db.AddSummary(s)
}
