// Command benchguard gates make check on the committed benchmark
// numbers. Each path given (default BENCH_checkpoint.json) is checked by
// the rules its basename selects:
//
//   - BENCH_checkpoint*.json: fails when the engine p99 ratio —
//     per-mutation latency during a checkpoint over the quiescent
//     baseline, on a RAM-backed store — exceeds 2x. That ratio is the
//     non-blocking checkpoint's contract; a regression means checkpoints
//     have started blocking the mutation path again. Only the engine
//     section is gated: the disk_cotenancy section records what sharing
//     one filesystem journal with snapshot syncs costs on the
//     measurement machine and is reported, not enforced.
//
//   - BENCH_shard*.json: fails when the recorded equivalence verdict is
//     false (the sharded engine returned different results from the
//     single engine — correctness, not speed), when any of the shard
//     counts 1/2/4/8 is missing, or when scatter-gather search
//     throughput at the highest shard count has collapsed below 0.35x
//     the single engine (the fan-out tax has eaten the engine).
//
//   - BENCH_prefilter*.json: fails when the recorded equivalence verdict
//     is false (the signature tier or the quantized leaf pages changed a
//     search result — correctness, not speed), when the default engine's
//     page reads exceed 0.6x the exact float64 baseline (the quantized
//     leaf fanout win has eroded), or when the signature tier proves
//     fewer than half the baseline's exact similarity evaluations
//     unnecessary (the tier has stopped pruning).
//
//   - BENCH_search*.json: validates the default-engine search profile —
//     the file must record a positive query rate and latency percentiles
//     and its skip fraction must clear the same 0.5 floor; the absolute
//     timings are machine-dependent and reported, not enforced.
//
//   - BENCH_serve*.json: validates the HTTP serving benchmark — all
//     three query workloads (/search, /search/image, /search/temporal)
//     must be present with a positive request count, zero errors, and
//     p99 >= p50 > 0; the throughputs are machine-dependent and
//     reported, not enforced.
//
//   - BENCH_ingest*.json: validates the batch-ingest profile — rows for
//     worker counts 1/2/4/8 must be present, each with positive
//     throughput; the absolute rates are machine-dependent and reported,
//     not enforced.
//
// Usage:
//
//	benchguard [path ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	maxP99Ratio          = 2.0
	minShardSpeedup      = 0.35
	maxShardOfPattern    = 8
	maxPrefilterPageRead = 0.6
	minSkipFraction      = 0.5
)

type section struct {
	P99Ratio *float64 `json:"p99_ratio"`
}

type benchCheckpoint struct {
	Engine        *section `json:"engine"`
	DiskCotenancy *section `json:"disk_cotenancy"`
}

type benchShardRow struct {
	Shards        int     `json:"shards"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SearchSpeedup float64 `json:"search_speedup_vs_single"`
}

type benchShard struct {
	Equivalent bool            `json:"equivalent"`
	Rows       []benchShardRow `json:"rows"`
}

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = []string{"BENCH_checkpoint.json"}
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		base := filepath.Base(path)
		switch {
		case strings.HasPrefix(base, "BENCH_shard"):
			checkShard(path, data)
		case strings.HasPrefix(base, "BENCH_prefilter"):
			checkPrefilter(path, data)
		case strings.HasPrefix(base, "BENCH_search"):
			checkSearch(path, data)
		case strings.HasPrefix(base, "BENCH_serve"):
			checkServe(path, data)
		case strings.HasPrefix(base, "BENCH_ingest"):
			checkIngest(path, data)
		default:
			checkCheckpoint(path, data)
		}
	}
}

func checkCheckpoint(path string, data []byte) {
	var b benchCheckpoint
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if b.Engine == nil || b.Engine.P99Ratio == nil {
		fatalf("%s: no engine.p99_ratio — re-run make bench-checkpoint", path)
	}
	ratio := *b.Engine.P99Ratio
	if ratio > maxP99Ratio {
		fatalf("%s: engine p99 ratio %.3f exceeds %.1fx — checkpoints are blocking the mutation path again",
			path, ratio, maxP99Ratio)
	}
	if b.DiskCotenancy != nil && b.DiskCotenancy.P99Ratio != nil {
		fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx); disk co-tenancy %.1fx (informational)\n",
			ratio, maxP99Ratio, *b.DiskCotenancy.P99Ratio)
		return
	}
	fmt.Printf("benchguard: engine p99 ratio %.3f (limit %.1fx)\n", ratio, maxP99Ratio)
}

func checkShard(path string, data []byte) {
	var b benchShard
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if !b.Equivalent {
		fatalf("%s: sharded engine results diverge from the single engine — re-run make bench-shard and fix the engine, not the gate", path)
	}
	byShards := map[int]benchShardRow{}
	for _, r := range b.Rows {
		byShards[r.Shards] = r
	}
	for _, want := range []int{1, 2, 4, maxShardOfPattern} {
		if _, ok := byShards[want]; !ok {
			fatalf("%s: no row for %d shards — re-run make bench-shard", path, want)
		}
	}
	top := byShards[maxShardOfPattern]
	if top.SearchSpeedup < minShardSpeedup {
		fatalf("%s: search throughput at %d shards is %.2fx the single engine (floor %.2fx) — scatter-gather overhead has collapsed search",
			path, maxShardOfPattern, top.SearchSpeedup, minShardSpeedup)
	}
	fmt.Printf("benchguard: sharded engine equivalent; search at %d shards %.2fx single (floor %.2fx)\n",
		maxShardOfPattern, top.SearchSpeedup, minShardSpeedup)
}

type benchPrefilter struct {
	Equivalent     bool     `json:"equivalent"`
	PageReadsRatio *float64 `json:"page_reads_ratio"`
	SkipFraction   *float64 `json:"skip_fraction"`
}

func checkPrefilter(path string, data []byte) {
	var b benchPrefilter
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if !b.Equivalent {
		fatalf("%s: pre-filter or quantized pages changed a search result — re-run make bench-prefilter and fix the engine, not the gate", path)
	}
	if b.PageReadsRatio == nil || b.SkipFraction == nil {
		fatalf("%s: missing page_reads_ratio or skip_fraction — re-run make bench-prefilter", path)
	}
	if *b.PageReadsRatio > maxPrefilterPageRead {
		fatalf("%s: page reads are %.3fx the float64 baseline (ceiling %.2fx) — quantized leaves have stopped doubling the fanout",
			path, *b.PageReadsRatio, maxPrefilterPageRead)
	}
	if *b.SkipFraction < minSkipFraction {
		fatalf("%s: signature tier pruned only %.1f%% of exact evaluations (floor %.0f%%) — the pre-filter has stopped earning its keep",
			path, 100**b.SkipFraction, 100*minSkipFraction)
	}
	fmt.Printf("benchguard: pre-filter equivalent; page reads %.3fx baseline (ceiling %.2fx), %.1f%% of exact evaluations pruned (floor %.0f%%)\n",
		*b.PageReadsRatio, maxPrefilterPageRead, 100**b.SkipFraction, 100*minSkipFraction)
}

type benchSearch struct {
	QueriesPerSec float64  `json:"queries_per_sec"`
	P50Micros     float64  `json:"p50_us"`
	P99Micros     float64  `json:"p99_us"`
	SkipFraction  *float64 `json:"skip_fraction"`
}

func checkSearch(path string, data []byte) {
	var b benchSearch
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	if b.QueriesPerSec <= 0 || b.P50Micros <= 0 || b.P99Micros < b.P50Micros {
		fatalf("%s: implausible search profile (%.1f q/s, p50 %.0fµs, p99 %.0fµs) — re-run make bench-search", path, b.QueriesPerSec, b.P50Micros, b.P99Micros)
	}
	if b.SkipFraction == nil || *b.SkipFraction < minSkipFraction {
		fatalf("%s: search profile skip fraction below %.0f%% floor — re-run make bench-search", path, 100*minSkipFraction)
	}
	fmt.Printf("benchguard: search profile %.0f q/s, p50 %.0fµs, p99 %.0fµs (informational), %.1f%% pruned (floor %.0f%%)\n",
		b.QueriesPerSec, b.P50Micros, b.P99Micros, 100**b.SkipFraction, 100*minSkipFraction)
}

type benchServeWorkload struct {
	Endpoint      string  `json:"endpoint"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
}

type benchServe struct {
	Workloads []benchServeWorkload `json:"workloads"`
}

func checkServe(path string, data []byte) {
	var b benchServe
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	byEndpoint := map[string]benchServeWorkload{}
	for _, w := range b.Workloads {
		byEndpoint[w.Endpoint] = w
	}
	for _, want := range []string{"/search", "/search/image", "/search/temporal"} {
		w, ok := byEndpoint[want]
		if !ok {
			fatalf("%s: no workload row for %s — re-run make bench-serve", path, want)
		}
		if w.Requests <= 0 {
			fatalf("%s: %s recorded no requests — re-run make bench-serve", path, want)
		}
		if w.Errors != 0 {
			fatalf("%s: %s recorded %d request errors — the serving layer failed under its own benchmark", path, want, w.Errors)
		}
		if w.QueriesPerSec <= 0 || w.P50Micros <= 0 || w.P99Micros < w.P50Micros {
			fatalf("%s: implausible %s profile (%.1f q/s, p50 %.0fµs, p99 %.0fµs) — re-run make bench-serve",
				path, want, w.QueriesPerSec, w.P50Micros, w.P99Micros)
		}
	}
	fmt.Printf("benchguard: serve profile covers all three workloads with zero errors (throughput informational)\n")
}

type benchIngestRow struct {
	Parallelism  int     `json:"parallelism"`
	VideosPerSec float64 `json:"videos_per_sec"`
}

type benchIngest struct {
	Rows []benchIngestRow `json:"rows"`
}

func checkIngest(path string, data []byte) {
	var b benchIngest
	if err := json.Unmarshal(data, &b); err != nil {
		fatalf("%s: %v", path, err)
	}
	byWidth := map[int]benchIngestRow{}
	for _, r := range b.Rows {
		byWidth[r.Parallelism] = r
	}
	for _, want := range []int{1, 2, 4, 8} {
		r, ok := byWidth[want]
		if !ok {
			fatalf("%s: no row for %d ingest workers — re-run make bench-ingest", path, want)
		}
		if r.VideosPerSec <= 0 {
			fatalf("%s: %d-worker ingest recorded no throughput — re-run make bench-ingest", path, want)
		}
	}
	fmt.Printf("benchguard: ingest profile covers worker counts 1/2/4/8 with positive throughput (rates informational)\n")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
