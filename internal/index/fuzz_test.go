package index

import (
	"bytes"
	"testing"

	"vitri/internal/vec"
)

// FuzzDecodeRecordV3 feeds the quantized leaf codec hostile bytes. The
// dimensionality is derived from the input length (the tree always knows
// it from the index geometry; the fuzzer reconstructs it the same way).
// The codec must never panic, and any record it accepts must re-encode
// to exactly the input bytes — widening float32 to float64 and narrowing
// back is the identity on finite values, so the accepted set has no
// redundant representations.
func FuzzDecodeRecordV3(f *testing.F) {
	seed := func(dim int) []byte {
		pos := make(vec.Vector, dim)
		for d := range pos {
			pos[d] = 0.25 * float64(d+1)
		}
		rec := Record{VideoID: 7, ClusterN: 1, Count: 3, Radius: 0.5, Position: pos}
		buf := make([]byte, RecordSizeV3(dim))
		if err := EncodeRecordV3(&rec, buf); err != nil {
			f.Fatal(err)
		}
		return buf
	}
	f.Add(seed(1))
	f.Add(seed(8))
	f.Add(seed(64))
	f.Add([]byte{})
	f.Add(make([]byte, recordHeaderSizeV3))
	f.Add(bytes.Repeat([]byte{0xff}, RecordSizeV3(2)))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < recordHeaderSizeV3 || (len(data)-recordHeaderSizeV3)%4 != 0 {
			return
		}
		dim := (len(data) - recordHeaderSizeV3) / 4
		var rec Record
		if err := DecodeRecordV3(data, dim, &rec); err != nil {
			return
		}
		out := make([]byte, RecordSizeV3(dim))
		if err := EncodeRecordV3(&rec, out); err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("re-encode diverged from accepted input")
		}
	})
}
