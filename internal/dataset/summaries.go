package dataset

import (
	"fmt"
	"math/rand"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// SummaryConfig parameterizes direct ViTri-summary synthesis. The index
// experiments (Figures 16–19) measure behaviour *given* a population of
// ViTris; running the full frame pipeline for millions of frames per data
// point would dominate runtime without changing what is measured, so this
// generator emits summaries whose statistics match what Summarize produces
// on the histogram corpus:
//
//   - cluster centers drawn from a shared library over a color-profile
//     gradient (strong first principal component, genuine center reuse
//     across videos);
//   - per-video coherence (one video's clusters share the video's
//     palette), so a query video's composed search ranges form a narrow
//     key band rather than covering the whole domain;
//   - radii below ε/2 with a realistic spread and Table 3-like cluster
//     sizes.
type SummaryConfig struct {
	NumViTris int     // total triplets to generate (paper: 20k–90k)
	Dim       int     // feature dimensionality
	Epsilon   float64 // frame similarity threshold the radii respect
	// MeanClusterSize approximates Table 3's avg cluster size (44 at
	// ε=0.3); cluster counts are jittered around it.
	MeanClusterSize int
	// TripletsPerVideo controls how triplets group into videos
	// (a 30s ad at ε=0.3 has roughly 15 clusters).
	TripletsPerVideo int
	ActiveBins       int
	Seed             int64
	// FirstVideoID offsets assigned video ids (for batched generation).
	FirstVideoID int
	// GradientTilt rotates the color-profile gradient's endpoints:
	// batches generated with different tilts have drifted principal
	// directions, modelling the correlation drift of §6.3.3. Zero keeps
	// the seed-determined gradient.
	GradientTilt float64
}

// DefaultSummaryConfig mirrors the paper's ε=0.3 operating point.
func DefaultSummaryConfig(numViTris int, seed int64) SummaryConfig {
	return SummaryConfig{
		NumViTris:        numViTris,
		Dim:              64,
		Epsilon:          0.3,
		MeanClusterSize:  44,
		TripletsPerVideo: 15,
		ActiveBins:       8,
		Seed:             seed,
	}
}

// GenerateSummaries synthesizes video summaries directly in ViTri space.
func GenerateSummaries(cfg SummaryConfig) ([]core.Summary, error) {
	if cfg.NumViTris < 1 || cfg.Dim < 2 || cfg.Epsilon <= 0 ||
		cfg.MeanClusterSize < 1 || cfg.TripletsPerVideo < 1 || cfg.ActiveBins < 1 {
		return nil, fmt.Errorf("dataset: invalid summary config %+v", cfg)
	}
	if cfg.ActiveBins > cfg.Dim {
		return nil, fmt.Errorf("dataset: ActiveBins %d exceeds Dim %d", cfg.ActiveBins, cfg.Dim)
	}
	// Family palettes come from a fixed seed so every batch of a sweep
	// shares one global structure; GradientTilt blends each family toward
	// a tilt-specific profile to model correlation drift.
	profileRng := rand.New(rand.NewSource(731))
	fams := familyPalettes(profileRng, cfg.Dim, cfg.ActiveBins, corpusFamilies)
	if cfg.GradientTilt != 0 {
		tiltRng := rand.New(rand.NewSource(731 + int64(cfg.GradientTilt*1000)))
		alt := sharpProfile(tiltRng, cfg.Dim, cfg.ActiveBins)
		for f := range fams {
			fams[f] = blend(alt, fams[f], cfg.GradientTilt)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []core.Summary
	vid := cfg.FirstVideoID
	made := 0
	for made < cfg.NumViTris {
		nt := cfg.TripletsPerVideo/2 + rng.Intn(cfg.TripletsPerVideo+1)
		if nt < 1 {
			nt = 1
		}
		if rem := cfg.NumViTris - made; nt > rem {
			nt = rem
		}
		// The video's palette: its family look plus a video accent. The
		// family component stays heavy so the gradient structure (and
		// hence the key spread) survives the blending.
		fam := fams[rng.Intn(len(fams))]
		videoBase := blend(fam, sharpProfile(rng, cfg.Dim, cfg.ActiveBins), 0.9)
		s := core.Summary{VideoID: vid}
		for k := 0; k < nt; k++ {
			accent := sharpProfile(rng, cfg.Dim, cfg.ActiveBins)
			center := blend(videoBase, accent, 0.85)
			// Radii: intra-shot clusters are tight (the µ+σ refinement
			// tracks within-shot jitter); the occasional merged cluster
			// approaches the ε/2 split bound. Square the uniform draw to
			// skew small.
			u := rng.Float64()
			radius := cfg.Epsilon / 2 * (0.1 + 0.9*u*u)
			count := 1 + rng.Intn(2*cfg.MeanClusterSize)
			s.Triplets = append(s.Triplets, core.NewViTri(center, radius, count))
			s.FrameCount += count
		}
		out = append(out, s)
		made += nt
		vid++
	}
	return out, nil
}

// QuerySummary derives a near-duplicate query summary from a database
// summary: triplet positions are jittered within a fraction of ε and a
// fresh video id is assigned.
func QuerySummary(src *core.Summary, queryID int, jitter float64, rng *rand.Rand) core.Summary {
	q := core.Summary{VideoID: queryID, FrameCount: src.FrameCount}
	for i := range src.Triplets {
		t := &src.Triplets[i]
		pos := vec.Clone(t.Position)
		for j := range pos {
			pos[j] += rng.NormFloat64() * jitter
			if pos[j] < 0 {
				pos[j] = 0
			}
		}
		if s := vec.Sum(pos); s > 0 {
			vec.ScaleInPlace(pos, 1/s)
		}
		q.Triplets = append(q.Triplets, core.NewViTri(pos, t.Radius, t.Count))
	}
	return q
}
