package linalg

import (
	"math"

	"vitri/internal/vec"
)

// PCA is the result of a principal component analysis over a point set:
// the data mean, the principal directions sorted by descending variance,
// and the variance (eigenvalue) along each direction.
type PCA struct {
	Mean       vec.Vector
	Components []vec.Vector // unit vectors, descending variance
	Variances  []float64
}

// ComputePCA runs a full PCA over points. It panics on an empty set; with a
// single point the components are an arbitrary orthonormal basis with zero
// variances, which downstream code treats as "no dominant direction".
func ComputePCA(points []vec.Vector) PCA {
	cov, mean := Covariance(points)
	eig := EigenSym(cov)
	return PCA{Mean: mean, Components: eig.Vectors, Variances: eig.Values}
}

// First returns the first principal component Φ1 (largest variance).
func (p PCA) First() vec.Vector { return p.Components[0] }

// Project returns the scalar projection of x onto component k, measured in
// the original (un-centered) coordinate frame, i.e. x·Φk. The paper's
// Definition 1 uses exactly this O·Φ form.
func (p PCA) Project(x vec.Vector, k int) float64 {
	return vec.Dot(x, p.Components[k])
}

// VarianceSegment is the segment of the line identified by a principal
// component between the two furthermost projections of the data
// (Definition 1 in the paper). Lo and Hi are scalar projections onto the
// component; the segment in space is {t·Φ : t ∈ [Lo,Hi]} shifted to the
// component's line through the data.
type VarianceSegment struct {
	Component vec.Vector
	Lo, Hi    float64
}

// Length returns the extent of the segment along the component.
func (s VarianceSegment) Length() float64 { return s.Hi - s.Lo }

// SegmentFor computes the variance segment of component k over points.
func (p PCA) SegmentFor(points []vec.Vector, k int) VarianceSegment {
	if len(points) == 0 {
		panic("linalg: SegmentFor with no points")
	}
	comp := p.Components[k]
	lo := math.Inf(1)
	hi := math.Inf(-1)
	for _, pt := range points {
		t := vec.Dot(pt, comp)
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return VarianceSegment{Component: vec.Clone(comp), Lo: lo, Hi: hi}
}

// AngleBetween returns the angle in radians between two directions,
// insensitive to sign (eigenvectors are defined up to ±). Used by the index
// to detect principal-direction drift under dynamic insertion (§6.3.3).
func AngleBetween(a, b vec.Vector) float64 {
	na, nb := vec.Norm(a), vec.Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := math.Abs(vec.Dot(a, b)) / (na * nb)
	if c > 1 {
		c = 1
	}
	return math.Acos(c)
}
