package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// TrackedIO enforces the I/O-attribution invariant on search paths in the
// btree and index packages: every B+-tree page read performed on behalf
// of a scan or KNN query must be attributed to that operation's
// pager.ScanStats. Page accesses are the paper's §5.2 primary cost
// metric, so one unattributed read silently corrupts the reproduction's
// headline numbers as soon as scans overlap.
//
// A function is "on a search path" when its name contains scan, search,
// seek, descend, leftmost, query, knn or task, or when it takes a
// *pager.ScanStats parameter. Inside such functions the analyzer flags:
//
//   - direct calls to a pager's Read (bypassing pager.ReadTracked);
//   - calls to same-package functions that (transitively) perform such
//     untracked reads;
//   - a nil literal passed where a callee expects a *pager.ScanStats —
//     attribution the caller had the chance to provide and dropped.
//
// The single-statement forwarding wrapper is the one sanctioned untracked
// entry point (e.g. RangeScan delegating to RangeScanStats with nil):
// a body consisting of exactly one delegation is exempt from the nil
// rule, keeping convenience APIs expressible without suppressions.
var TrackedIO = &Analyzer{
	Name: "trackedio",
	Doc:  "require ScanStats-attributed page reads on btree/index search paths",
	Run:  runTrackedIO,
}

// trackedioPkgs are the package names whose search paths carry the
// attribution obligation.
var trackedioPkgs = map[string]bool{"btree": true, "index": true}

var searchPathRe = regexp.MustCompile(`(?i)scan|search|seek|descend|leftmost|query|knn|task`)

func runTrackedIO(pass *Pass) {
	if !trackedioPkgs[pass.Pkg.Name()] {
		return
	}

	// Collect this package's function declarations.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				order = append(order, fn)
			}
		}
	}

	// untracked[fn] = fn performs a direct pager Read, or calls a
	// same-package function that does (transitive closure).
	untracked := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.calleeFunc(call)
			if callee == nil {
				return true
			}
			if isPagerRead(callee) {
				untracked[fn] = true
			} else if callee.Pkg() == pass.Pkg {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if untracked[fn] {
				continue
			}
			for _, c := range callees {
				if untracked[c] {
					untracked[fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fn := range order {
		fd := decls[fn]
		if !onSearchPath(fn) {
			continue
		}
		wrapper := isForwardingWrapper(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.calleeFunc(call)
			if callee == nil {
				return true
			}
			switch {
			case isPagerRead(callee):
				pass.Reportf(call.Pos(),
					"untracked page read (%s) on search path %s; route it through pager.ReadTracked so the scan's ScanStats sees it",
					exprString(call.Fun), fn.Name())
			case callee.Pkg() == pass.Pkg && untracked[callee]:
				pass.Reportf(call.Pos(),
					"%s calls %s, which performs page reads that bypass ScanStats attribution",
					fn.Name(), callee.Name())
			case !wrapper && nilScanStatsArg(pass, call, callee):
				pass.Reportf(call.Pos(),
					"nil ScanStats passed to %s on search path %s drops this scan's I/O attribution",
					callee.Name(), fn.Name())
			}
			return true
		})
	}
}

// isPagerRead matches the raw page-read method: Read on any type (or
// interface) from a package named pager.
func isPagerRead(fn *types.Func) bool {
	return fn.Name() == "Read" && fn.Pkg() != nil && fn.Pkg().Name() == "pager"
}

// onSearchPath applies the analyzer's search-path definition.
func onSearchPath(fn *types.Func) bool {
	if searchPathRe.MatchString(fn.Name()) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isScanStatsPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isForwardingWrapper reports whether fd's body is exactly one statement
// delegating to another call — the sanctioned shape of an untracked
// convenience entry point.
func isForwardingWrapper(fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		return len(s.Results) == 1 && isCall(s.Results[0])
	case *ast.ExprStmt:
		return isCall(s.X)
	}
	return false
}

func isCall(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.CallExpr)
	return ok
}

// nilScanStatsArg reports whether the call passes a nil literal in a
// *pager.ScanStats parameter position.
func nilScanStatsArg(pass *Pass, call *ast.CallExpr, callee *types.Func) bool {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	// Method expressions shift arguments by one; the plain method/function
	// call is the only form used here, so positions line up.
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if isScanStatsPtr(params.At(i).Type()) && pass.isNil(call.Args[i]) {
			return true
		}
	}
	return false
}
