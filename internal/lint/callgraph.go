package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (lockorder's lock graph, goroutinelife, atomicmix) share.
// It is purely structural: which module functions exist, which calls
// each body contains (and whether they run deferred or in a spawned
// goroutine), and which concrete module methods an interface method
// call can dispatch to. The flow-sensitive facts layered on top live in
// lockgraph.go.

// CallKind classifies how a call site runs relative to its enclosing
// function.
type CallKind int

const (
	// CallNormal runs synchronously where it is spelled.
	CallNormal CallKind = iota
	// CallDefer runs at function exit (locks held there are
	// approximated by the locks held at the defer statement).
	CallDefer
	// CallGo runs on a new goroutine: the callee inherits no locks and
	// its acquisitions never propagate back to the spawner.
	CallGo
)

// FuncInfo is one module function with a body.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// External means the function is callable from outside the analyzed
	// call graph: it is exported, or its value escapes (address taken /
	// stored / passed as a function value). Such functions can be
	// entered with no locks held, so caller-derived entry facts are
	// pinned to the empty set.
	External bool
}

// CallGraph indexes every module function and resolves interface
// dispatch within the module.
type CallGraph struct {
	Mod   *Module
	Funcs map[*types.Func]*FuncInfo
	// Order lists the functions deterministically: package topological
	// order, then file order, then source position.
	Order []*FuncInfo
	// impls maps an interface method declared in this module to the
	// concrete module methods implementing it. Interfaces from outside
	// the module (stdlib, etc.) are deliberately not expanded: they
	// would drag unrelated implementations into every summary.
	impls map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the graph for a loaded module.
func BuildCallGraph(mod *Module) *CallGraph {
	cg := &CallGraph{
		Mod:   mod,
		Funcs: make(map[*types.Func]*FuncInfo),
		impls: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg, External: fd.Name.IsExported()}
				cg.Funcs[fn] = fi
				cg.Order = append(cg.Order, fi)
			}
		}
	}
	cg.markEscaping()
	cg.linkInterfaces()
	return cg
}

// markEscaping flags module functions whose value is used outside a
// direct call position (assigned, passed, compared): those can be
// invoked from anywhere, including goroutines the graph cannot see.
func (cg *CallGraph) markEscaping() {
	for _, pkg := range cg.Mod.Pkgs {
		for _, f := range pkg.Files {
			// Idents that are the operator of a call are the only
			// non-escaping uses of a function name.
			calleeIdent := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					calleeIdent[fun] = true
				case *ast.SelectorExpr:
					calleeIdent[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || calleeIdent[id] {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if fi := cg.Funcs[fn]; fi != nil {
					fi.External = true
				}
				return true
			})
		}
	}
}

// linkInterfaces connects each method of a module-declared interface to
// the module's named types implementing it.
func (cg *CallGraph) linkInterfaces() {
	type ifaceDecl struct {
		iface *types.Interface
		pkg   *types.Package
	}
	var ifaces []ifaceDecl
	var named []*types.Named
	for _, pkg := range cg.Mod.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := n.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, ifaceDecl{iface, pkg.Pkg})
				}
				continue
			}
			named = append(named, n)
		}
	}
	for _, id := range ifaces {
		for _, n := range named {
			impl := types.NewPointer(n)
			if !types.Implements(impl, id.iface) && !types.Implements(n.Underlying(), id.iface) {
				// Neither *T nor the value type satisfies the interface.
				if !types.Implements(n, id.iface) {
					continue
				}
			}
			for i := 0; i < id.iface.NumMethods(); i++ {
				im := id.iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, im.Pkg(), im.Name())
				m, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if cg.Funcs[m] == nil {
					continue // no body in this module
				}
				cg.impls[im] = append(cg.impls[im], m)
			}
		}
	}
}

// Targets resolves the module functions a call to fn can reach: the
// function itself when it has a module body, or — for a module-declared
// interface method — every module implementation.
func (cg *CallGraph) Targets(fn *types.Func) []*types.Func {
	if fn == nil {
		return nil
	}
	if impls := cg.impls[fn]; len(impls) > 0 {
		return impls
	}
	if cg.Funcs[fn] != nil {
		return []*types.Func{fn}
	}
	return nil
}

// FuncAt returns the FuncInfo enclosing pos, for diagnostics that need
// the frame a position belongs to.
func (cg *CallGraph) FuncAt(pos token.Pos) *FuncInfo {
	for _, fi := range cg.Order {
		if fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return fi
		}
	}
	return nil
}

// funcDisplay renders a function for chain diagnostics as pkg.Func or
// pkg.Type.Method.
func funcDisplay(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}
