package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vitri"
)

// durableCorpus opens a durable DB in a temp dir and loads n synthetic
// videos through the journaled path.
func durableCorpus(t *testing.T, n int) (*vitri.DB, [][]vitri.Vector) {
	t.Helper()
	db, err := vitri.OpenDurable(t.TempDir(), vitri.Options{Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	videos := make([][]vitri.Vector, n)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 15, 0.2, 0.8)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, videos
}

func TestCheckpointEndpoint(t *testing.T) {
	db, videos := durableCorpus(t, 6)
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	// The six adds sit in the journal; /stats should say so.
	var stats statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stats)
	if stats.Durability == nil {
		t.Fatal("durable DB reported no durability stats")
	}
	if stats.Durability.JournalDepth != 6 {
		t.Fatalf("journal depth = %d, want 6", stats.Durability.JournalDepth)
	}

	// Folding the journal empties it and bumps the snapshot position.
	var ck checkpointResponse
	resp = postJSON(t, ts.URL+"/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &ck)
	if ck.JournalDepth != 0 || ck.SnapshotSeq != 6 || ck.Checkpoints != 1 {
		t.Fatalf("checkpoint response = %+v, want depth 0, seq 6, count 1", ck)
	}

	// The checkpointed store still answers searches.
	var sr searchResponse
	resp = postJSON(t, ts.URL+"/search", searchRequest{Frames: framesJSON(videos[2]), K: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after checkpoint: status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &sr)
	if len(sr.Matches) != 1 || sr.Matches[0].VideoID != 2 {
		t.Fatalf("search after checkpoint: matches %+v, want video 2", sr.Matches)
	}
}

func TestCheckpointNotDurable(t *testing.T) {
	db, _ := testCorpus(t, 3, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	resp := postJSON(t, ts.URL+"/checkpoint", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on non-durable DB: status %d, want 409", resp.StatusCode)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	db, _ := durableCorpus(t, 0)
	srv := New(db, Config{CheckpointEvery: 3, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/insert", insertRequest{ID: i, Frames: framesJSON(synthVideo(r, 8, 2, 10, 0.2, 0.8))})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
	}
	// The third insert crosses the threshold; the checkpoint runs detached
	// from the request, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for db.DurabilityStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 4 inserts with CheckpointEvery=3 (stats %+v)", db.DurabilityStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ds := db.DurabilityStats(); ds.SnapshotSeq < 3 {
		t.Fatalf("snapshot seq = %d after auto checkpoint, want >= 3", ds.SnapshotSeq)
	}
}
