package vitri

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"vitri/internal/core"
)

// Summary persistence: a compact, versioned binary format holding every
// video's triplets. A database can be saved after ingest and reloaded —
// the index is rebuilt on load (bulk construction from summaries is fast
// and re-derives the optimal reference point for the stored data).

const (
	storeMagic   = "VITRIDB1"
	storeVersion = uint32(1)
)

// Save writes the database's summaries to path. The database may be
// saved before or after its index has been built.
func (db *DB) Save(path string) error {
	sums, err := db.summaries()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vitri: save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := writeSummaries(w, db.opts.Epsilon, sums); err != nil {
		return fmt.Errorf("vitri: save: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("vitri: save: %w", err)
	}
	return f.Sync()
}

// summaries snapshots the database contents.
func (db *DB) summaries() ([]core.Summary, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ix == nil {
		out := make([]core.Summary, len(db.pending))
		copy(out, db.pending)
		return out, nil
	}
	return db.ix.Summaries()
}

// Load reads a database saved with Save. opts fields other than Epsilon
// are applied as given; Epsilon is taken from the file (a database's
// summaries are only meaningful at the ε they were built with) and must
// either match opts.Epsilon or opts.Epsilon must be zero.
func Load(path string, opts Options) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vitri: load: %w", err)
	}
	defer f.Close()
	eps, sums, err := readSummaries(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("vitri: load %s: %w", path, err)
	}
	if opts.Epsilon != 0 && opts.Epsilon != eps {
		return nil, fmt.Errorf("vitri: load: file epsilon %v conflicts with requested %v", eps, opts.Epsilon)
	}
	opts.Epsilon = eps
	db := New(opts)
	for _, s := range sums {
		if err := db.AddSummary(s); err != nil {
			return nil, fmt.Errorf("vitri: load: %w", err)
		}
	}
	return db, nil
}

// writeSummaries streams the store format.
func writeSummaries(w io.Writer, epsilon float64, sums []core.Summary) error {
	if _, err := io.WriteString(w, storeMagic); err != nil {
		return err
	}
	if err := binWrite(w, storeVersion); err != nil {
		return err
	}
	if err := binWrite(w, math.Float64bits(epsilon)); err != nil {
		return err
	}
	if err := binWrite(w, uint32(len(sums))); err != nil {
		return err
	}
	for i := range sums {
		s := &sums[i]
		if err := binWrite(w, uint32(s.VideoID)); err != nil {
			return err
		}
		if err := binWrite(w, uint32(s.FrameCount)); err != nil {
			return err
		}
		if err := binWrite(w, uint32(len(s.Triplets))); err != nil {
			return err
		}
		for t := range s.Triplets {
			tp := &s.Triplets[t]
			if err := binWrite(w, uint32(tp.Count)); err != nil {
				return err
			}
			if err := binWrite(w, math.Float64bits(tp.Radius)); err != nil {
				return err
			}
			if err := binWrite(w, uint32(len(tp.Position))); err != nil {
				return err
			}
			for _, v := range tp.Position {
				if err := binWrite(w, math.Float64bits(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// readSummaries parses the store format.
func readSummaries(r io.Reader) (float64, []core.Summary, error) {
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, nil, err
	}
	if string(magic) != storeMagic {
		return 0, nil, errors.New("not a vitri summary store")
	}
	var version uint32
	if err := binRead(r, &version); err != nil {
		return 0, nil, err
	}
	if version != storeVersion {
		return 0, nil, fmt.Errorf("unsupported store version %d", version)
	}
	var epsBits uint64
	if err := binRead(r, &epsBits); err != nil {
		return 0, nil, err
	}
	eps := math.Float64frombits(epsBits)
	// !(eps > 0) rather than eps <= 0: NaN compares false both ways and
	// must be rejected here, not fed to the summarizer.
	if !(eps > 0) || math.IsInf(eps, 0) {
		return 0, nil, fmt.Errorf("invalid stored epsilon %v", eps)
	}
	var count uint32
	if err := binRead(r, &count); err != nil {
		return 0, nil, err
	}
	const maxReasonable = 100_000_000
	if count > maxReasonable {
		return 0, nil, fmt.Errorf("implausible video count %d", count)
	}
	// Capacity hints are clamped: header counts are untrusted until the
	// records behind them have actually been read, and a 12-byte header
	// claiming 100M videos must not pre-allocate gigabytes (the slices
	// grow geometrically, bounded by input actually consumed).
	sums := make([]core.Summary, 0, capHint(count))
	for i := uint32(0); i < count; i++ {
		var vid, frames, nt uint32
		if err := binRead(r, &vid); err != nil {
			return 0, nil, err
		}
		if err := binRead(r, &frames); err != nil {
			return 0, nil, err
		}
		if err := binRead(r, &nt); err != nil {
			return 0, nil, err
		}
		if nt > maxReasonable {
			return 0, nil, fmt.Errorf("implausible triplet count %d", nt)
		}
		s := core.Summary{VideoID: int(vid), FrameCount: int(frames), Triplets: make([]core.ViTri, 0, capHint(nt))}
		for t := uint32(0); t < nt; t++ {
			var cnt, dim uint32
			var radBits uint64
			if err := binRead(r, &cnt); err != nil {
				return 0, nil, err
			}
			if err := binRead(r, &radBits); err != nil {
				return 0, nil, err
			}
			if err := binRead(r, &dim); err != nil {
				return 0, nil, err
			}
			if dim == 0 || dim > 1<<20 {
				return 0, nil, fmt.Errorf("implausible dimensionality %d", dim)
			}
			pos := make(Vector, 0, capHint(dim))
			for d := uint32(0); d < dim; d++ {
				var bits uint64
				if err := binRead(r, &bits); err != nil {
					return 0, nil, err
				}
				v := math.Float64frombits(bits)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return 0, nil, fmt.Errorf("non-finite position coordinate in triplet %d", t)
				}
				pos = append(pos, v)
			}
			radius := math.Float64frombits(radBits)
			if !(radius > 0) || math.IsInf(radius, 0) || cnt == 0 {
				return 0, nil, fmt.Errorf("invalid triplet (radius %v, count %d)", radius, cnt)
			}
			s.Triplets = append(s.Triplets, core.NewViTri(pos, radius, int(cnt)))
		}
		sums = append(sums, s)
	}
	return eps, sums, nil
}

func binWrite(w io.Writer, v interface{}) error { return binary.Write(w, binary.LittleEndian, v) }
func binRead(r io.Reader, v interface{}) error  { return binary.Read(r, binary.LittleEndian, v) }

// capHint bounds an untrusted length prefix to a sane preallocation.
func capHint(n uint32) int {
	const maxPrealloc = 4096
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// Remove deletes a video from the database.
func (db *DB) Remove(videoID int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.ids[videoID] {
		return fmt.Errorf("%w: %d", ErrNotFound, videoID)
	}
	if db.ix == nil {
		for i := range db.pending {
			if db.pending[i].VideoID == videoID {
				db.pending = append(db.pending[:i], db.pending[i+1:]...)
				break
			}
		}
		delete(db.ids, videoID)
		return nil
	}
	if err := db.ix.Remove(videoID); err != nil {
		return err
	}
	delete(db.ids, videoID)
	return nil
}
