package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"vitri"
)

func TestInsertBatch(t *testing.T) {
	db, _ := testCorpus(t, 4, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(11))
	good1 := framesJSON(synthVideo(r, 8, 2, 12, 0.2, 0.8))
	good2 := framesJSON(synthVideo(r, 8, 2, 12, 0.2, 0.8))
	bad := framesJSON(synthVideo(r, 8, 1, 6, 0.2, 0.8))
	bad[2] = bad[2][:4] // ragged dimensionality → toVectors rejects

	resp := postJSON(t, ts.URL+"/insert", map[string]interface{}{
		"videos": []map[string]interface{}{
			{"id": 200, "frames": good1},
			{"id": 201, "frames": bad},           // ragged frame → per-item error
			{"id": 0, "frames": good2},           // duplicate of corpus video 0
			{"id": 202, "frames": [][]float64{}}, // no frames
			{"id": 203, "frames": good2},         // fine
		},
	})
	var br insertBatchResponse
	decodeBody(t, resp, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch insert status = %d", resp.StatusCode)
	}
	if len(br.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[4].Error != "" {
		t.Fatalf("valid items rejected: %q, %q", br.Results[0].Error, br.Results[4].Error)
	}
	for _, i := range []int{1, 2, 3} {
		if br.Results[i].Error == "" {
			t.Errorf("item %d (id %d): expected an error", i, br.Results[i].ID)
		}
	}
	if br.Inserted != 2 || br.Videos != 6 {
		t.Fatalf("inserted %d videos %d, want 2 and 6", br.Inserted, br.Videos)
	}
	for i, wantID := range []int{200, 201, 0, 202, 203} {
		if br.Results[i].ID != wantID {
			t.Errorf("result %d id = %d, want %d", i, br.Results[i].ID, wantID)
		}
	}

	// Both inserted videos are searchable.
	q := framesJSON(noisyCopy(r, toVectorsMust(t, good1), 0.01))
	resp = postJSON(t, ts.URL+"/search", map[string]interface{}{"frames": q, "k": 2})
	var sr searchResponse
	decodeBody(t, resp, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Matches) == 0 || sr.Matches[0].VideoID != 200 {
		t.Fatalf("search for batch-inserted video: status %d, %+v", resp.StatusCode, sr.Matches)
	}
}

func TestInsertBatchValidation(t *testing.T) {
	db, _ := testCorpus(t, 2, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	frames := framesJSON(synthVideo(rand.New(rand.NewSource(12)), 8, 1, 6, 0.2, 0.8))
	cases := []struct {
		name string
		body map[string]interface{}
	}{
		{"neither frames nor videos", map[string]interface{}{"id": 5}},
		{"both frames and videos", map[string]interface{}{
			"id": 5, "frames": frames,
			"videos": []map[string]interface{}{{"id": 6, "frames": frames}},
		}},
		{"empty videos", map[string]interface{}{"videos": []map[string]interface{}{}}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/insert", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
