package vitri

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vitri/internal/vec"
)

// stressVideo synthesizes a small clustered video for the stress test.
func stressVideo(r *rand.Rand, dim, frames int) []Vector {
	center := make(vec.Vector, dim)
	for j := range center {
		center[j] = 0.2 + 0.6*r.Float64()
	}
	out := make([]Vector, frames)
	for f := range out {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = center[j] + r.NormFloat64()*0.02
		}
		out[f] = p
	}
	return out
}

// TestConcurrentMixedWorkload interleaves Add, Remove, Search (single and
// batch), Rebuild, and drift checks from many goroutines on one DB. It
// exists to run under -race: the assertions are per-query stats sanity
// while mutations are in flight, and full structural consistency once the
// storm has passed.
func TestConcurrentMixedWorkload(t *testing.T) {
	const (
		dim     = 8
		base    = 10
		workers = 6
		ops     = 12
	)
	db := New(Options{Epsilon: 0.3, Seed: 1, SearchParallelism: 4})
	seedRng := rand.New(rand.NewSource(21))
	for id := 0; id < base; id++ {
		if err := db.Add(id, stressVideo(seedRng, dim, 20)); err != nil {
			t.Fatal(err)
		}
	}
	query := Summarize(-1, stressVideo(seedRng, dim, 20), 0.3, 99)

	errs := make(chan error, workers*ops+workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			// Each worker owns a disjoint id range so adds never collide.
			nextID := 1000 + w*ops
			var mine []int
			for i := 0; i < ops; i++ {
				switch op := r.Intn(5); {
				case op == 0 && len(mine) > 0: // remove one of our own
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := db.Remove(id); err != nil {
						errs <- err
						return
					}
				case op == 1:
					if err := db.Rebuild(); err != nil {
						errs <- err
						return
					}
					db.DriftAngle()
				case op == 2: // batch of two queries through the pool
					batch, err := db.SearchBatch([]Summary{query, query}, 5, Composed)
					if err != nil {
						errs <- err
						return
					}
					for _, item := range batch {
						if item.Err != nil {
							errs <- item.Err
							return
						}
					}
				case op == 3: // single search with stats sanity
					_, stats, err := db.SearchSummary(&query, 5, Composed)
					if err != nil {
						errs <- err
						return
					}
					if stats.Ranges < 1 || stats.PageReads < 1 {
						errs <- fmt.Errorf("worker %d: implausible stats %+v on a non-empty index", w, stats)
						return
					}
					if stats.SimilarityOps > stats.Candidates*len(query.Triplets) {
						errs <- fmt.Errorf("worker %d: %d similarity ops for %d candidates", w, stats.SimilarityOps, stats.Candidates)
						return
					}
				default: // add a fresh video
					if err := db.Add(nextID, stressVideo(r, dim, 20)); err != nil {
						errs <- err
						return
					}
					mine = append(mine, nextID)
					nextID++
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := db.CheckIndex(); err != nil {
		t.Fatalf("index inconsistent after mixed workload: %v", err)
	}
	if db.Len() < base {
		t.Fatalf("base videos went missing: Len() = %d", db.Len())
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(db.Triplets()) {
		t.Fatalf("tree reports %d entries, catalog-backed count says %d", st.Entries, db.Triplets())
	}
	// A quiet-state search is reproducible: same query, same stats, twice.
	_, s1, err := db.SearchSummary(&query, 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := db.SearchSummary(&query, 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("quiet-state stats not reproducible: %+v vs %+v", s1, s2)
	}
}
