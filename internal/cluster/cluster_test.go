package cluster

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

func gauss(r *rand.Rand, center vec.Vector, spread float64, count int) []vec.Vector {
	out := make([]vec.Vector, count)
	for i := range out {
		p := make(vec.Vector, len(center))
		for j := range p {
			p[j] = center[j] + r.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := gauss(r, vec.Vector{0, 0}, 0.1, 50)
	b := gauss(r, vec.Vector{10, 10}, 0.1, 50)
	points := append(append([]vec.Vector{}, a...), b...)
	res := KMeans(points, 2, r, 0)
	// All of a must share a label distinct from all of b.
	la := res.Assign[0]
	for i := 1; i < 50; i++ {
		if res.Assign[i] != la {
			t.Fatalf("cluster a split: point %d", i)
		}
	}
	lb := res.Assign[50]
	if lb == la {
		t.Fatal("clusters merged")
	}
	for i := 51; i < 100; i++ {
		if res.Assign[i] != lb {
			t.Fatalf("cluster b split: point %d", i)
		}
	}
	if res.Sizes[la] != 50 || res.Sizes[lb] != 50 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func TestKMeansKGreaterThanPoints(t *testing.T) {
	points := []vec.Vector{{1}, {2}, {3}}
	res := KMeans(points, 10, rand.New(rand.NewSource(2)), 0)
	if len(res.Centers) != 3 {
		t.Fatalf("expected 3 singleton clusters, got %d", len(res.Centers))
	}
	for i := range points {
		if res.Assign[i] != i || res.Sizes[i] != 1 {
			t.Fatalf("bad singleton assignment %v %v", res.Assign, res.Sizes)
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := []vec.Vector{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res := KMeans(points, 2, rand.New(rand.NewSource(3)), 0)
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 4 {
		t.Fatalf("lost points: sizes=%v", res.Sizes)
	}
}

func TestKMeansPanics(t *testing.T) {
	for _, f := range []func(){
		func() { KMeans(nil, 2, rand.New(rand.NewSource(1)), 0) },
		func() { KMeans([]vec.Vector{{1}}, 0, rand.New(rand.NewSource(1)), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKMeansAssignmentIsNearest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	points := gauss(r, vec.Vector{0, 0, 0}, 3, 200)
	res := KMeans(points, 5, r, 0)
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range res.Centers {
			if d := vec.Dist2(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned %d but nearest is %d", i, res.Assign[i], best)
		}
	}
}

func TestGenerateRadiusBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// Three well-separated shot-like groups.
	pts := append(gauss(r, vec.Vector{0, 0, 0, 0}, 0.02, 60),
		append(gauss(r, vec.Vector{1, 0, 0, 0}, 0.02, 40),
			gauss(r, vec.Vector{0, 1, 1, 0}, 0.02, 80)...)...)
	eps := 0.3
	clusters := Generate(pts, eps, r)
	if len(clusters) < 3 {
		t.Fatalf("expected >= 3 clusters, got %d", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		if c.Radius > eps/2+1e-12 {
			t.Errorf("cluster radius %v exceeds ε/2", c.Radius)
		}
		total += c.Size()
	}
	if total != len(pts) {
		t.Fatalf("frames lost: %d != %d", total, len(pts))
	}
}

func TestGeneratePartition(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := gauss(r, vec.Vector{0, 0}, 1.0, 300)
	clusters := Generate(pts, 0.4, r)
	seen := make(map[int]bool)
	for _, c := range clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("frame %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("partition covers %d of %d frames", len(seen), len(pts))
	}
}

func TestGenerateSingleton(t *testing.T) {
	clusters := Generate([]vec.Vector{{1, 2, 3}}, 0.5, rand.New(rand.NewSource(7)))
	if len(clusters) != 1 || clusters[0].Radius != 0 || clusters[0].Size() != 1 {
		t.Fatalf("singleton summary wrong: %+v", clusters)
	}
}

func TestGenerateIdenticalFrames(t *testing.T) {
	pts := []vec.Vector{{2, 2}, {2, 2}, {2, 2}, {2, 2}, {2, 2}}
	clusters := Generate(pts, 0.1, rand.New(rand.NewSource(8)))
	if len(clusters) != 1 {
		t.Fatalf("identical frames should form one cluster, got %d", len(clusters))
	}
	if clusters[0].Radius != 0 || clusters[0].Size() != 5 {
		t.Fatalf("bad cluster %+v", clusters[0])
	}
}

func TestGenerateEmpty(t *testing.T) {
	if got := Generate(nil, 0.5, rand.New(rand.NewSource(9))); got != nil {
		t.Fatalf("expected nil for empty input, got %v", got)
	}
}

func TestGeneratePanicsOnBadEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate([]vec.Vector{{1}}, 0, rand.New(rand.NewSource(10)))
}

func TestGenerateEpsilonControlsClusterCount(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := gauss(r, make(vec.Vector, 8), 0.3, 500)
	prev := -1
	// Smaller ε must produce at least as many clusters (Table 3's trend).
	for _, eps := range []float64{0.6, 0.4, 0.2, 0.1} {
		n := len(Generate(pts, eps, rand.New(rand.NewSource(12))))
		if prev >= 0 && n < prev {
			t.Fatalf("cluster count decreased when ε shrank: ε=%v gives %d < %d", eps, n, prev)
		}
		prev = n
	}
}

func TestGenerateRefinedRadiusNotAboveMax(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := gauss(r, vec.Vector{0, 0, 0}, 0.5, 400)
	for _, c := range Generate(pts, 0.8, r) {
		maxD := 0.0
		for _, m := range c.Members {
			if d := vec.Dist(pts[m], c.Center); d > maxD {
				maxD = d
			}
		}
		if c.Radius > maxD+1e-12 {
			t.Fatalf("radius %v exceeds max member distance %v", c.Radius, maxD)
		}
		if c.Radius > c.Mu+c.Sigma+1e-12 {
			t.Fatalf("radius %v exceeds µ+σ = %v", c.Radius, c.Mu+c.Sigma)
		}
	}
}

func TestValidateStrictCase(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	pts := gauss(r, vec.Vector{0, 0}, 0.01, 100)
	eps := 0.5
	for _, c := range Generate(pts, eps, r) {
		// With such a compact blob the radius is far under ε/2 and every
		// pair must be within ε.
		if !c.Validate(pts, eps) {
			t.Fatalf("validate failed for compact cluster")
		}
	}
}

func TestGenerateDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	pts := gauss(r, vec.Vector{0, 0, 0, 0}, 0.4, 250)
	a := Generate(pts, 0.3, rand.New(rand.NewSource(99)))
	b := Generate(pts, 0.3, rand.New(rand.NewSource(99)))
	if len(a) != len(b) {
		t.Fatalf("non-deterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !vec.Equal(a[i].Center, b[i].Center) || a[i].Size() != b[i].Size() {
			t.Fatalf("cluster %d differs between runs", i)
		}
	}
}
