package storefmt

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"vitri/internal/sig"
)

func testSnapshotV3() *Snapshot {
	return &Snapshot{Version: Version3, Epsilon: 0.3, LastSeq: 42, Summaries: testSummaries()}
}

func TestRoundTripV3(t *testing.T) {
	want := testSnapshotV3()
	var buf bytes.Buffer
	if err := EncodeV3(&buf, want); err != nil {
		t.Fatalf("EncodeV3: %v", err)
	}
	snap, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.Version != Version3 || snap.Epsilon != want.Epsilon || snap.LastSeq != want.LastSeq {
		t.Fatalf("header = (%d, %v, %d), want (%d, %v, %d)",
			snap.Version, snap.Epsilon, snap.LastSeq, want.Version, want.Epsilon, want.LastSeq)
	}
	if !reflect.DeepEqual(snap.Summaries, want.Summaries) {
		t.Fatal("summaries did not round-trip")
	}
	// The decoded signatures must be exactly what the summaries derive:
	// one per non-empty video, identical to a fresh FromSummary.
	w := sig.CellWidth(want.Epsilon)
	for i := range want.Summaries {
		s := &want.Summaries[i]
		got, ok := snap.Signatures[int32(s.VideoID)]
		if !ok {
			t.Fatalf("video %d has no decoded signature", s.VideoID)
		}
		fresh := sig.FromSummary(s, len(s.Triplets[0].Position), w)
		if !sig.Equal(got, fresh) {
			t.Fatalf("video %d: decoded signature differs from recomputation", s.VideoID)
		}
	}
	if len(snap.Signatures) != len(want.Summaries) {
		t.Fatalf("decoded %d signatures, want %d", len(snap.Signatures), len(want.Summaries))
	}
	var buf2 bytes.Buffer
	if err := EncodeV3(&buf2, want); err != nil {
		t.Fatalf("EncodeV3 again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("EncodeV3 is not deterministic")
	}
}

// TestV3DetectsCorruption and truncation: the sealed sectioned layout
// gives v3 the same either-valid-or-rejected property as v2.
func TestV3DetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeV3(&buf, testSnapshotV3()); err != nil {
		t.Fatalf("EncodeV3: %v", err)
	}
	valid := buf.Bytes()
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(valid))
		}
	}
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes went undetected", n, len(valid))
		}
	}
}

// TestV3SignatureSectionOptional: a v3 file without the signatures
// section still loads — the tier is derived data, never required.
func TestV3SignatureSectionOptional(t *testing.T) {
	snap := testSnapshotV3()
	meta, err := encodeMetaSection(snap)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := encodeSummaries(&body, snap.Summaries); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = encodeSectioned(&buf, MagicV3, Version3, []storeSection{
		{sectionMeta, meta},
		{sectionSummaries, body.Bytes()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode without signatures section: %v", err)
	}
	if got.Signatures != nil {
		t.Fatal("Signatures should be nil when the section is absent")
	}
	if !reflect.DeepEqual(got.Summaries, snap.Summaries) {
		t.Fatal("summaries did not survive")
	}
}

// encodeV3WithSigs builds a v3 file whose signatures section is supplied
// by the test rather than derived — the hostile shapes EncodeV3 can
// never produce.
func encodeV3WithSigs(t *testing.T, snap *Snapshot, sigs []byte) []byte {
	t.Helper()
	meta, err := encodeMetaSection(snap)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := encodeSummaries(&body, snap.Summaries); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = encodeSectioned(&buf, MagicV3, Version3, []storeSection{
		{sectionMeta, meta},
		{sectionSummaries, body.Bytes()},
		{sectionSignatures, sigs},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeSigEntry(t *testing.T, vid uint32, s *sig.Signature) []byte {
	t.Helper()
	out := make([]byte, 4+sig.EncodedSize(s.Words()))
	binary.LittleEndian.PutUint32(out, vid)
	if err := s.Encode(out[4:]); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestV3RejectsHostileSignatures exercises checksum-intact files whose
// signatures section is semantically wrong: ids the store doesn't
// contain, duplicate ids, implausible counts, bad radii.
func TestV3RejectsHostileSignatures(t *testing.T) {
	snap := testSnapshotV3()
	w := sig.CellWidth(snap.Epsilon)
	good := sig.FromSummary(&snap.Summaries[0], 3, w)

	le32b := func(v uint32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return b[:]
	}
	badRadius := sig.FromTriplet([]float64{0.1, 0.2, 0.3}, 0.25, w)
	badRadius.MaxRadius = math.NaN()

	cases := map[string][]byte{
		"unknown video": bytes.Join([][]byte{le32b(1), encodeSigEntry(t, 999, good)}, nil),
		"duplicate video": bytes.Join([][]byte{le32b(2),
			encodeSigEntry(t, 0, good), encodeSigEntry(t, 0, good)}, nil),
		"implausible count": le32b(200_000_000),
		"truncated entry":   bytes.Join([][]byte{le32b(1), le32b(0), le32b(7)}, nil),
		"nan radius":        bytes.Join([][]byte{le32b(1), encodeSigEntry(t, 0, badRadius)}, nil),
	}
	for name, sec := range cases {
		if _, err := Decode(bytes.NewReader(encodeV3WithSigs(t, snap, sec))); err == nil {
			t.Errorf("%s: hostile signatures section decoded without error", name)
		}
	}

	// Sanity: the same harness with a well-formed section decodes.
	ok := bytes.Join([][]byte{le32b(1), encodeSigEntry(t, 0, good)}, nil)
	got, err := Decode(bytes.NewReader(encodeV3WithSigs(t, snap, ok)))
	if err != nil {
		t.Fatalf("well-formed hand-built section rejected: %v", err)
	}
	if len(got.Signatures) != 1 || got.Signatures[0] == nil {
		t.Fatalf("got signatures %v", got.Signatures)
	}
}
