package vitri

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"vitri/internal/core"
	"vitri/internal/crashfs"
	"vitri/internal/vec"
	"vitri/internal/vfs"
)

// The crash-simulation suite. A deterministic durable workload runs
// against a recording filesystem; crashfs then enumerates a simulated
// power cut at EVERY write/sync boundary (with torn, reordered and
// dropped-write variants at each), and recovery runs against every
// resulting disk image. The invariant checked on each image:
//
//  1. OpenDurable succeeds — no post-crash state may brick the store;
//  2. the recovered contents equal the oracle after exactly the
//     acknowledged operations, plus at most a prefix of the single call
//     that was in flight at the cut (an op that reached the journal but
//     was never acknowledged may legitimately survive — it must apply
//     fully or not at all, never partially);
//  3. the store still works: one more insert, close, reopen, and the
//     fresh insert plus everything from (2) is intact. This step is what
//     gives the torn-tail truncation teeth — see TestCrashSuiteHasTeeth.

// crashOp is one logical mutation for the oracle.
type crashOp struct {
	remove  bool
	id      int
	summary core.Summary
}

// ackedCall records one DB call's position in the filesystem op log:
// ops issued in [start, end). Its logical ops are acknowledged once the
// crash point reaches end.
type ackedCall struct {
	start, end int
	ops        []crashOp
}

// crashSummary builds a small deterministic summary for id.
func crashSummary(id int) core.Summary {
	base := float64(id)
	return core.Summary{
		VideoID:    id,
		FrameCount: 4 + id%3,
		Triplets: []core.ViTri{
			core.NewViTri(vec.Vector{base + 0.125, 0.5, -base * 0.0625}, 0.25, 1+id%4),
			core.NewViTri(vec.Vector{base * 0.5, -1.25, 0.75}, 0.375, 2),
		},
	}
}

// wlStep is one step of a crash workload.
type wlStep struct {
	checkpoint bool
	batch      []int // AddBatch when len > 1, AddSummary when len == 1
	remove     int   // Remove when > 0 and batch empty and !checkpoint
	// preWrite and preRotate are mutations injected inside a checkpoint's
	// unlocked windows via the DB's test hooks (checkpoint must be true):
	// preWrite runs after the capture but before the snapshot write,
	// preRotate after the snapshot write but before the journal rotation.
	// Positive ids are adds, negative ids removes. These are the ops the
	// retained-suffix rotation exists for — acknowledged after the cut,
	// absent from the snapshot being written, surviving only through the
	// journal.
	preWrite  []int
	preRotate []int
}

// defaultCrashWorkload: 8 adds, a checkpoint, then 36 journaled ops
// (adds, removes and one group-committed batch) with a second checkpoint
// mid-stream — the shape the acceptance bar asks for: every boundary of
// snapshot writing plus a journal at least 32 operations deep. The
// mid-stream checkpoint runs with concurrent mutations in flight: three
// adds land between the capture and the snapshot write, and one more add
// plus a remove (of a just-added id) land between the write and the
// journal rotation — power cuts at every boundary of the snapshot write
// and the retained-suffix rotation are enumerated with those acked ops
// living only in the journal suffix.
func defaultCrashWorkload() []wlStep {
	var steps []wlStep
	for i := 1; i <= 8; i++ {
		steps = append(steps, wlStep{batch: []int{i}})
	}
	steps = append(steps, wlStep{checkpoint: true})
	// 36 journaled ops: 20 adds, one 6-video batch, 10 removes.
	for i := 9; i <= 28; i++ {
		steps = append(steps, wlStep{batch: []int{i}})
		if i == 18 {
			steps = append(steps, wlStep{checkpoint: true, preWrite: []int{60, 61, 62}, preRotate: []int{63, -61}})
		}
	}
	steps = append(steps, wlStep{batch: []int{40, 41, 42, 43, 44, 45}})
	for i := 1; i <= 10; i++ {
		steps = append(steps, wlStep{remove: i})
	}
	return steps
}

// runCrashWorkload executes steps durably on fsys, recording each call's
// op-log span. Every step must succeed — the workload is the golden run.
func runCrashWorkload(t *testing.T, rec *crashfs.Recorder, steps []wlStep) []ackedCall {
	return runCrashWorkloadOpts(t, rec, steps, false)
}

// runCrashWorkloadOpts is runCrashWorkload with the retained-suffix
// rotation optionally broken (dropRetain) — the teeth switch: with the
// old rotate-to-empty, mutations acknowledged during a checkpoint's
// unlocked write are wiped from the journal.
func runCrashWorkloadOpts(t *testing.T, rec *crashfs.Recorder, steps []wlStep, dropRetain bool) []ackedCall {
	t.Helper()
	db, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: rec}})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db.testDropRetainedSuffix = dropRetain
	// applyHook runs one hook-injected mutation inside a checkpoint's
	// unlocked window. Each is its own acknowledged call whose op-log
	// span nests inside the checkpoint's span.
	applyHook := func(id int) ackedCall {
		start := rec.Ops()
		var op crashOp
		if id < 0 {
			if err := db.Remove(-id); err != nil {
				t.Fatalf("mid-checkpoint Remove(%d): %v", -id, err)
			}
			op = crashOp{remove: true, id: -id}
		} else {
			s := crashSummary(id)
			if err := db.AddSummary(s); err != nil {
				t.Fatalf("mid-checkpoint AddSummary(%d): %v", id, err)
			}
			op = crashOp{id: id, summary: s}
		}
		return ackedCall{start: start, end: rec.Ops(), ops: []crashOp{op}}
	}
	calls := []ackedCall{{start: 0, end: rec.Ops()}} // the open itself
	for _, st := range steps {
		start := rec.Ops()
		var ops []crashOp
		switch {
		case st.checkpoint:
			var hookCalls []ackedCall
			if len(st.preWrite) > 0 {
				db.testBeforeSnapshotWrite = func() {
					for _, id := range st.preWrite {
						hookCalls = append(hookCalls, applyHook(id))
					}
				}
			}
			if len(st.preRotate) > 0 {
				db.testBeforeRotate = func() {
					for _, id := range st.preRotate {
						hookCalls = append(hookCalls, applyHook(id))
					}
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			db.testBeforeSnapshotWrite, db.testBeforeRotate = nil, nil
			// The checkpoint's own (op-free) call is recorded at the end
			// of the loop body like every step; the nested hook calls
			// carry the in-flight mutations. acceptable() matches calls
			// on spans, not slice order.
			calls = append(calls, hookCalls...)
		case st.remove > 0:
			if err := db.Remove(st.remove); err != nil {
				t.Fatalf("Remove(%d): %v", st.remove, err)
			}
			ops = []crashOp{{remove: true, id: st.remove}}
		case len(st.batch) == 1:
			s := crashSummary(st.batch[0])
			if err := db.AddSummary(s); err != nil {
				t.Fatalf("AddSummary(%d): %v", st.batch[0], err)
			}
			ops = []crashOp{{id: s.VideoID, summary: s}}
		default:
			// Exercise the group-commit path with pre-made summaries via
			// AddSummary under one batch… AddBatch summarizes from frames;
			// journaling order inside one call is what matters, so issue
			// the adds back-to-back and treat them as one in-flight call.
			for _, id := range st.batch {
				s := crashSummary(id)
				if err := db.AddSummary(s); err != nil {
					t.Fatalf("AddSummary(batch %d): %v", id, err)
				}
				ops = append(ops, crashOp{id: s.VideoID, summary: s})
			}
		}
		calls = append(calls, ackedCall{start: start, end: rec.Ops(), ops: ops})
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return calls
}

// oracleApply folds ops into a contents map.
func oracleApply(state map[int]core.Summary, o crashOp) {
	if o.remove {
		delete(state, o.id)
	} else {
		state[o.id] = o.summary
	}
}

// dbContents reads back a database's full contents.
func dbContents(t *testing.T, db *DB) map[int]core.Summary {
	t.Helper()
	sums, err := db.summaries()
	if err != nil {
		t.Fatalf("summaries: %v", err)
	}
	out := make(map[int]core.Summary, len(sums))
	for _, s := range sums {
		out[s.VideoID] = s
	}
	return out
}

// acceptable reports whether got matches the oracle after acked calls
// plus some prefix (possibly empty, possibly all) of the in-flight
// call's ops at crash point p.
func acceptable(got map[int]core.Summary, calls []ackedCall, p int) (bool, string) {
	state := make(map[int]core.Summary)
	var inflight []crashOp
	for _, c := range calls {
		switch {
		case c.end <= p:
			for _, o := range c.ops {
				oracleApply(state, o)
			}
		case c.start <= p && p < c.end && len(c.ops) > 0:
			// The op-carrying call in flight at p. Op-free calls
			// (checkpoints) must not claim the slot: a mutation injected
			// inside a checkpoint's unlocked window has its span nested
			// inside the checkpoint's, and at most one op-carrying call
			// overlaps any point (hook mutations run synchronously).
			inflight = c.ops
		}
	}
	for k := 0; k <= len(inflight); k++ {
		if k > 0 {
			oracleApply(state, inflight[k-1])
		}
		if reflect.DeepEqual(got, state) {
			return true, ""
		}
	}
	return false, describeDiff(got, state)
}

// describeDiff renders a compact got-vs-want id diff for failures (want
// is the oracle with the whole in-flight call applied).
func describeDiff(got, want map[int]core.Summary) string {
	var missing, extra []int
	for id := range want {
		if _, ok := got[id]; !ok {
			missing = append(missing, id)
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			extra = append(extra, id)
		}
	}
	return "missing=" + intsString(missing) + " extra=" + intsString(extra)
}

func intsString(ids []int) string {
	if len(ids) == 0 {
		return "[]"
	}
	s := "["
	for i, id := range ids {
		if i > 0 {
			s += ","
		}
		s += itoa(id)
	}
	return s + "]"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// verifyCrashState runs recovery on one post-crash image and checks the
// full invariant. Returns an error string ("" = pass) so the teeth test
// can count failures without failing.
func verifyCrashState(st crashfs.State, calls []ackedCall, keepTail bool) string {
	open := func(fsys vfs.FS) (*DB, string) {
		opts := Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys, keepCorruptTail: keepTail}}
		db, err := OpenDurable("db", opts)
		if err != nil {
			return nil, "recovery failed: " + err.Error()
		}
		return db, ""
	}
	db, msg := open(st.FS)
	if msg != "" {
		return msg
	}
	got := make(map[int]core.Summary)
	sums, err := db.summaries()
	if err != nil {
		return "summaries: " + err.Error()
	}
	for _, s := range sums {
		got[s.VideoID] = s
	}
	ok, diff := acceptable(got, calls, st.Point)
	if !ok {
		return "recovered contents diverge from oracle: " + diff
	}

	// The store must still accept writes and keep them: one fresh insert,
	// close, reopen, and both the insert and the recovered set survive.
	fresh := crashSummary(9900)
	if err := db.AddSummary(fresh); err != nil {
		return "post-recovery insert: " + err.Error()
	}
	if err := db.Close(); err != nil {
		return "post-recovery close: " + err.Error()
	}
	db2, msg := open(st.FS)
	if msg != "" {
		return "reopen after insert: " + msg
	}
	defer db2.Close()
	got2 := make(map[int]core.Summary)
	sums2, err := db2.summaries()
	if err != nil {
		return "reopen summaries: " + err.Error()
	}
	for _, s := range sums2 {
		got2[s.VideoID] = s
	}
	if _, ok := got2[9900]; !ok {
		return "acknowledged post-recovery insert lost on reopen"
	}
	delete(got2, 9900)
	if !reflect.DeepEqual(got2, got) {
		return "reopen changed recovered contents: " + describeDiff(got2, got)
	}
	return ""
}

// TestCrashRecoveryExhaustive is the headline suite: every boundary,
// every scenario family, full invariant. Run with -v for the state count.
func TestCrashRecoveryExhaustive(t *testing.T) {
	rec := crashfs.NewRecorder()
	calls := runCrashWorkload(t, rec, defaultCrashWorkload())
	states := rec.CrashStates()
	if rec.Ops() < 100 {
		t.Fatalf("workload produced only %d crash boundaries, want hundreds of injected crash points", rec.Ops())
	}
	failures := 0
	for _, st := range states {
		if msg := verifyCrashState(st, calls, false); msg != "" {
			failures++
			t.Errorf("%s: %s", st.Desc, msg)
			if failures >= 10 {
				t.Fatalf("stopping after %d failing crash states (of %d)", failures, len(states))
			}
		}
	}
	t.Logf("verified %d crash states across %d boundaries", len(states), rec.Ops()+1)
}

// TestCrashSuiteHasTeeth breaks recovery on purpose — keepCorruptTail
// skips the torn-tail truncation — and demands the suite notice. If this
// test fails, the exhaustive suite is vacuous.
func TestCrashSuiteHasTeeth(t *testing.T) {
	rec := crashfs.NewRecorder()
	calls := runCrashWorkload(t, rec, defaultCrashWorkload())
	failures := 0
	for _, st := range rec.CrashStates() {
		if msg := verifyCrashState(st, calls, true); msg != "" {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("recovery without torn-tail truncation passed every crash state — the suite has no teeth")
	}
	t.Logf("broken recovery failed %d crash states, as it should", failures)
}

// TestMidCheckpointCrashSuiteHasTeeth breaks the retained-suffix
// rotation on purpose — the checkpoint reverts to the old
// rotate-to-empty while mutations land in its unlocked windows — and
// demands the suite notice: acknowledged mid-checkpoint mutations then
// live only in the journal bytes the rotation wipes, so crash states at
// and after the rotation must diverge from the oracle. If this passes
// every state, the new mid-checkpoint boundaries prove nothing.
func TestMidCheckpointCrashSuiteHasTeeth(t *testing.T) {
	rec := crashfs.NewRecorder()
	calls := runCrashWorkloadOpts(t, rec, defaultCrashWorkload(), true)
	failures := 0
	for _, st := range rec.CrashStates() {
		if msg := verifyCrashState(st, calls, false); msg != "" {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("rotate-to-empty under concurrent mutations passed every crash state — the retained-suffix rotation is not load-bearing or the suite is vacuous")
	}
	t.Logf("broken retained-suffix rotation failed %d crash states, as it should", failures)
}

// TestCheckpointEquivalence proves the non-blocking checkpoint is
// observationally identical to the blocking fold: the same logical
// mutation sequence — once applied around a checkpoint (the blocking
// path's only possibility), once injected into the checkpoint's
// unlocked windows — recovers to deep-equal contents, and folding both
// stores once more yields byte-identical snapshot files (summaries are
// written in canonical order, so logical equality is byte equality).
func TestCheckpointEquivalence(t *testing.T) {
	build := func(concurrent bool) (map[int]core.Summary, []byte) {
		fsys := vfs.NewMemFS()
		db, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			if err := db.AddSummary(crashSummary(i)); err != nil {
				t.Fatal(err)
			}
		}
		mid := func(ids []int) {
			for _, id := range ids {
				if id < 0 {
					if err := db.Remove(-id); err != nil {
						t.Fatal(err)
					}
				} else if err := db.AddSummary(crashSummary(id)); err != nil {
					t.Fatal(err)
				}
			}
		}
		preWrite, preRotate := []int{11, 12, 13, -2}, []int{14, -11}
		if concurrent {
			db.testBeforeSnapshotWrite = func() { mid(preWrite) }
			db.testBeforeRotate = func() { mid(preRotate) }
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("checkpoint (concurrent=%v): %v", concurrent, err)
		}
		db.testBeforeSnapshotWrite, db.testBeforeRotate = nil, nil
		if !concurrent {
			// The blocking path: the same mutations, after the fold.
			mid(preWrite)
			mid(preRotate)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// Recover — the concurrent variant replays its retained journal
		// suffix here — then fold once more for a canonical snapshot.
		db2, err := OpenDurable("db", Options{Epsilon: 0.3, Durable: &DurableOptions{FS: fsys}})
		if err != nil {
			t.Fatalf("recovery (concurrent=%v): %v", concurrent, err)
		}
		contents := dbContents(t, db2)
		if err := db2.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
		return contents, fsys.Snapshot()["db/snapshot.vitri"]
	}
	blockingContents, blockingSnap := build(false)
	concurrentContents, concurrentSnap := build(true)
	if !reflect.DeepEqual(blockingContents, concurrentContents) {
		t.Fatalf("recovered contents diverge: %s", describeDiff(concurrentContents, blockingContents))
	}
	if len(blockingSnap) == 0 {
		t.Fatal("blocking snapshot file missing or empty")
	}
	if !bytes.Equal(blockingSnap, concurrentSnap) {
		t.Fatalf("snapshot files differ (%d vs %d bytes) for identical logical contents", len(blockingSnap), len(concurrentSnap))
	}
}

// TestCrashProperty drives random Add/Remove/Checkpoint interleavings
// through the same exhaustive verification. The seed is logged so any
// failure replays exactly.
func TestCrashProperty(t *testing.T) {
	seed := rand.Int63()
	if env := os.Getenv("VITRI_CRASH_SEED"); env != "" {
		var parsed int64
		for _, c := range env {
			if c < '0' || c > '9' {
				t.Fatalf("VITRI_CRASH_SEED %q is not a number", env)
			}
			parsed = parsed*10 + int64(c-'0')
		}
		seed = parsed
	}
	t.Logf("seed=%d (replay with VITRI_CRASH_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	for iter := 0; iter < 3; iter++ {
		var steps []wlStep
		live := make(map[int]bool)
		next := 1
		for len(steps) < 24 {
			switch r := rng.Intn(10); {
			case r < 5 || len(live) == 0:
				steps = append(steps, wlStep{batch: []int{next}})
				live[next] = true
				next++
			case r < 8:
				// Remove a random live id (deterministic pick via sorted order).
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sortInts(ids)
				id := ids[rng.Intn(len(ids))]
				steps = append(steps, wlStep{remove: id})
				delete(live, id)
			default:
				steps = append(steps, wlStep{checkpoint: true})
			}
		}
		rec := crashfs.NewRecorder()
		calls := runCrashWorkload(t, rec, steps)
		for _, st := range rec.CrashStates() {
			if msg := verifyCrashState(st, calls, false); msg != "" {
				t.Fatalf("iter %d seed %d: %s: %s", iter, seed, st.Desc, msg)
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestSaveCrashSafety is the v1 regression: Save over an existing store
// must never damage it. The old implementation truncated in place
// (os.Create) before writing; a crash mid-save destroyed both versions.
// Every post-crash image must load as either the old or the new store.
func TestSaveCrashSafety(t *testing.T) {
	oldDB := New(Options{Epsilon: 0.3})
	for i := 1; i <= 4; i++ {
		if err := oldDB.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	newDB := New(Options{Epsilon: 0.3})
	for i := 10; i <= 16; i++ {
		if err := newDB.AddSummary(crashSummary(i)); err != nil {
			t.Fatal(err)
		}
	}

	rec := crashfs.NewRecorder()
	if err := oldDB.saveFS(rec, "store.vitri"); err != nil {
		t.Fatalf("first save: %v", err)
	}
	mark := rec.Ops()
	if err := newDB.saveFS(rec, "store.vitri"); err != nil {
		t.Fatalf("second save: %v", err)
	}

	for _, st := range rec.CrashStates() {
		if st.Point < mark {
			continue // crashes during the first save have no prior store to protect
		}
		img := st.FS.Snapshot()
		data, ok := img["store.vitri"]
		if !ok {
			t.Fatalf("%s: store file vanished", st.Desc)
		}
		eps, sums, err := readSummaries(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: store unreadable after crash: %v", st.Desc, err)
		}
		if eps != 0.3 {
			t.Fatalf("%s: epsilon %v", st.Desc, eps)
		}
		switch first := sums[0].VideoID; {
		case len(sums) == 4 && first == 1: // old store intact
		case len(sums) == 7 && first == 10: // new store complete
		default:
			t.Fatalf("%s: store is neither old nor new (%d summaries, first id %d)", st.Desc, len(sums), first)
		}
	}
}
