// Package cluster implements the clustering substrate for ViTri
// summarization: Lloyd's k-means with k-means++ seeding, and the paper's
// recursive binary clustering algorithm (Figure 3) that keeps bisecting a
// video's frames until every cluster is a tight hypersphere of radius
// min(R, µ+σ) ≤ ε/2.
//
// The hot path runs on reusable scratch buffers (see scratch and
// Generator): after warm-up a Lloyd iteration performs zero allocations,
// which is what lets the ingest pipeline fan summarization across workers
// without GC pressure. The allocation-free kernels preserve the exact
// floating-point operation order of the original sequential loops, so
// summaries are bit-identical regardless of how the scratch is reused.
package cluster

import (
	"math/rand"

	"vitri/internal/vec"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centers []vec.Vector // k centroids
	Assign  []int        // Assign[i] = index of the centroid owning point i
	Sizes   []int        // number of points per centroid
	Iters   int          // Lloyd iterations performed
}

// DefaultMaxIters bounds Lloyd's iteration; bisecting k-means converges in
// a handful of passes on video frames.
const DefaultMaxIters = 50

// scratch is the reusable working set of one k-means run: the centroid
// matrix, the assignment and size vectors, and the k-means++ seeding
// distances. grow reshapes it for a run, reusing backing arrays whenever
// they are large enough, so a warm scratch makes every Lloyd iteration
// allocation-free.
type scratch struct {
	centers vec.Matrix
	assign  []int
	sizes   []int
	d2      []float64
}

// grow reshapes the scratch for k centers over n points of the given
// dimensionality.
func (s *scratch) grow(k, n, dim int) {
	s.centers.Reset(k, dim)
	if cap(s.assign) < n {
		s.assign = make([]int, n)
	}
	s.assign = s.assign[:n]
	if cap(s.sizes) < k {
		s.sizes = make([]int, k)
	}
	s.sizes = s.sizes[:k]
	if cap(s.d2) < n {
		s.d2 = make([]float64, n)
	}
	s.d2 = s.d2[:n]
}

// KMeans clusters points into k groups using k-means++ seeding followed by
// Lloyd iterations. rng drives the seeding; maxIters <= 0 selects
// DefaultMaxIters. If k >= len(points), every point becomes its own
// (singleton) cluster.
func KMeans(points []vec.Vector, k int, rng *rand.Rand, maxIters int) KMeansResult {
	if len(points) == 0 {
		panic("cluster: KMeans with no points")
	}
	if k <= 0 {
		panic("cluster: KMeans with k <= 0")
	}
	var s scratch
	kEff, iters := kmeansRun(points, k, rng, maxIters, &s)
	dim := len(points[0])
	res := KMeansResult{
		Centers: make([]vec.Vector, kEff),
		Assign:  make([]int, len(points)),
		Sizes:   make([]int, kEff),
		Iters:   iters,
	}
	backing := make(vec.Vector, kEff*dim)
	for c := 0; c < kEff; c++ {
		row := backing[c*dim : (c+1)*dim : (c+1)*dim]
		copy(row, s.centers.Row(c))
		res.Centers[c] = row
	}
	copy(res.Assign, s.assign)
	copy(res.Sizes, s.sizes)
	return res
}

// kmeansRun executes k-means entirely on the given scratch, returning the
// effective number of centers (len(points) when k >= len(points), k
// otherwise) and the Lloyd iterations performed. After s has warmed to the
// problem size, the run — and in particular every Lloyd iteration — is
// allocation-free. Inputs must be valid (non-empty points, k > 0).
func kmeansRun(points []vec.Vector, k int, rng *rand.Rand, maxIters int, s *scratch) (kEff, iters int) {
	if maxIters <= 0 {
		maxIters = DefaultMaxIters
	}
	dim := len(points[0])
	if k >= len(points) {
		// Every point is its own singleton cluster; no rng is consumed.
		s.grow(len(points), len(points), dim)
		for i, p := range points {
			s.centers.SetRow(i, p)
			s.assign[i] = i
			s.sizes[i] = 1
		}
		return len(points), 0
	}

	s.grow(k, len(points), dim)
	seedInto(points, k, rng, s)
	for ; iters < maxIters; iters++ {
		changed := 0
		for i, p := range points {
			best, _ := vec.ArgminDist2(p, s.centers)
			if s.assign[i] != best || iters == 0 {
				changed++
				s.assign[i] = best
			}
		}
		if changed == 0 && iters > 0 {
			break
		}
		// Recompute centroids: accumulate every point into its assigned
		// scratch row, then scale by 1/size.
		for c := 0; c < k; c++ {
			s.centers.ZeroRow(c)
			s.sizes[c] = 0
		}
		for i, p := range points {
			c := s.assign[i]
			s.centers.AccumRow(c, p)
			s.sizes[c]++
		}
		for c := 0; c < k; c++ {
			if s.sizes[c] != 0 {
				s.centers.ScaleRow(c, 1/float64(s.sizes[c]))
			}
		}
		repairEmptyClusters(points, k, s)
	}
	// Final assignment pass so Assign/Sizes match the returned centers.
	for c := 0; c < k; c++ {
		s.sizes[c] = 0
	}
	for i, p := range points {
		best, _ := vec.ArgminDist2(p, s.centers)
		s.assign[i] = best
		s.sizes[best]++
	}
	return k, iters
}

// repairEmptyClusters re-seeds every empty cluster on the point farthest
// from its own centroid, the standard k-means repair. It runs only after
// all non-empty centroids have been scaled by 1/size: an earlier version
// interleaved repair with the recompute loop, so the farthest-point scan
// compared raw coordinate sums for clusters not yet scaled and picked
// wildly wrong points. A re-seeded point is claimed (its assignment moves
// to the repaired cluster, making its own-center distance zero), so a
// second empty cluster repairs onto a different point.
func repairEmptyClusters(points []vec.Vector, k int, s *scratch) {
	for c := 0; c < k; c++ {
		if s.sizes[c] != 0 {
			continue
		}
		far, farD := 0, -1.0
		for i, p := range points {
			if d := vec.Dist2(p, s.centers.Row(s.assign[i])); d > farD {
				far, farD = i, d
			}
		}
		s.centers.SetRow(c, points[far])
		s.assign[far] = c
		s.sizes[c] = 1
	}
}

// seedInto picks k initial centers with the k-means++ D² weighting,
// writing them into the scratch centroid matrix. The minimum distance to
// any chosen center is maintained incrementally in s.d2 (one O(n) update
// per new center), never rescanned.
func seedInto(points []vec.Vector, k int, rng *rand.Rand, s *scratch) {
	first := points[rng.Intn(len(points))]
	s.centers.SetRow(0, first)
	for i, p := range points {
		s.d2[i] = vec.Dist2(p, first)
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range s.d2 {
			total += d
		}
		var next int
		if total == 0 {
			// All remaining points coincide with chosen centers; pick any.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range s.d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		s.centers.SetRow(c, points[next])
		newC := s.centers.Row(c)
		for i, p := range points {
			if d := vec.Dist2(p, newC); d < s.d2[i] {
				s.d2[i] = d
			}
		}
	}
}
