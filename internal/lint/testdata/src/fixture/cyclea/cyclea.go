// Package cyclea seeds half of a cross-package lock-order cycle. A
// Registry holds its own lock while notifying through an interface; the
// implementation lives in package cycleb, takes its own lock, and calls
// back into Poke — which retakes r.mu. Neither package alone sees the
// cycle; only the module-wide lock graph does.
package cyclea

import "sync"

// Notifier is implemented by cycleb.Peer, linked purely through the
// type system — cyclea never imports cycleb.
type Notifier interface {
	Notify()
}

// Registry tracks peers behind an unranked lock.
type Registry struct {
	mu sync.Mutex
}

// WithNotifier holds r.mu across the dynamic Notify call: the first
// half of the cycle.
func (r *Registry) WithNotifier(n Notifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n.Notify() // want "lock-order cycle: cyclea.Registry.mu → cycleb.Peer.mu → cyclea.Registry.mu"
}

// Poke acquires r.mu; cycleb calls it with the peer lock held, closing
// the cycle.
func (r *Registry) Poke() {
	r.mu.Lock()
	defer r.mu.Unlock()
}
