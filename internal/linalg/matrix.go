// Package linalg implements the small dense linear-algebra substrate the
// ViTri index needs: symmetric matrices, covariance estimation, a Jacobi
// eigensolver, and principal component analysis with the paper's "variance
// segment" construct (Definition 1).
//
// The library is deliberately self-contained (stdlib only) and tuned for
// the moderate dimensionalities of image feature spaces (tens to a few
// hundred dimensions), where the O(n^3) Jacobi sweep is entirely adequate
// and numerically robust.
package linalg

import (
	"fmt"
	"math"

	"vitri/internal/vec"
)

// Sym is a dense symmetric n×n matrix stored in row-major full form.
// Only symmetric contents are meaningful; Set maintains the symmetry.
type Sym struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewSym returns a zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix order %d", n))
	}
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// At returns element (i,j).
func (m *Sym) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i,j) and mirrors it to (j,i).
func (m *Sym) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// Clone returns a deep copy of m.
func (m *Sym) Clone() *Sym {
	out := NewSym(m.N)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Sym) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		var s float64
		for j, rv := range row {
			s += rv * x[j]
		}
		out[i] = s
	}
	return out
}

// offDiagNorm returns the Frobenius norm of the strictly upper triangle,
// the Jacobi convergence criterion.
func (m *Sym) offDiagNorm() float64 {
	var s float64
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			v := m.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(2 * s)
}

// Covariance estimates the sample covariance matrix of the given points
// around their mean. With fewer than two points the covariance is the zero
// matrix (there is no spread to measure). The divisor is len(points), i.e.
// the population form, matching the paper's σ definition.
func Covariance(points []vec.Vector) (*Sym, vec.Vector) {
	if len(points) == 0 {
		panic("linalg: Covariance of empty point set")
	}
	n := len(points[0])
	mean := vec.Mean(points)
	cov := NewSym(n)
	if len(points) < 2 {
		return cov, mean
	}
	inv := 1 / float64(len(points))
	d := make([]float64, n)
	for _, p := range points {
		if len(p) != n {
			panic("linalg: Covariance points have mixed dimensionality")
		}
		for i := range d {
			d[i] = p[i] - mean[i]
		}
		for i := 0; i < n; i++ {
			di := d[i]
			if di == 0 {
				continue
			}
			row := cov.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				row[j] += di * d[j]
			}
		}
	}
	// Scale and mirror the accumulated upper triangle.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cov.Data[i*n+j] * inv
			cov.Data[i*n+j] = v
			cov.Data[j*n+i] = v
		}
	}
	return cov, mean
}

// Eigen holds a full eigendecomposition of a symmetric matrix with
// eigenvalues sorted in descending order. Vectors[k] is the unit
// eigenvector for Values[k].
type Eigen struct {
	Values  []float64
	Vectors []vec.Vector
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration; symmetric matrices of
// the orders we use converge in well under 20 sweeps.
const maxJacobiSweeps = 64

// EigenSym computes the eigendecomposition of symmetric matrix m using the
// cyclic Jacobi method. The input is not modified.
func EigenSym(m *Sym) Eigen {
	n := m.N
	a := m.Clone()
	// v accumulates rotations; starts as identity. v[i] is eigenvector i
	// stored as a column: we keep V as row-major with columns as vectors,
	// so v[r*n+c] is component r of eigenvector c.
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	eps := 1e-14 * (1 + a.offDiagNorm())
	rotate := func(g, h float64, s, tau float64) (float64, float64) {
		return g - s*(h+g*tau), h + s*(g-h*tau)
	}
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if a.offDiagNorm() <= eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				// t = sgn(theta)/(|theta| + sqrt(theta^2+1)), the smaller
				// root, which keeps the rotation angle <= pi/4.
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				a.Set(p, p, app-t*apq)
				a.Set(q, q, aqq+t*apq)
				a.Set(p, q, 0)
				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp, akq := rotate(a.At(k, p), a.At(k, q), s, tau)
					a.Set(k, p, akp)
					a.Set(k, q, akq)
				}
				// Accumulate rotation into v (columns p and q).
				for k := 0; k < n; k++ {
					vkp, vkq := rotate(v[k*n+p], v[k*n+q], s, tau)
					v[k*n+p] = vkp
					v[k*n+q] = vkq
				}
			}
		}
	}
	out := Eigen{
		Values:  make([]float64, n),
		Vectors: make([]vec.Vector, n),
	}
	for i := 0; i < n; i++ {
		out.Values[i] = a.At(i, i)
		ev := make(vec.Vector, n)
		for r := 0; r < n; r++ {
			ev[r] = v[r*n+i]
		}
		out.Vectors[i] = ev
	}
	// Sort by descending eigenvalue (insertion sort on small n).
	for i := 1; i < n; i++ {
		val, evec := out.Values[i], out.Vectors[i]
		j := i - 1
		for j >= 0 && out.Values[j] < val {
			out.Values[j+1], out.Vectors[j+1] = out.Values[j], out.Vectors[j]
			j--
		}
		out.Values[j+1], out.Vectors[j+1] = val, evec
	}
	return out
}
