package server

// End-to-end tests against a real httptest.Server: heavy concurrent
// load, exact /stats I/O attribution, shutdown mid-flight, and fault
// injection through pager.Faulty. These are the tests `make e2e` (and
// `make check`, under -race) gates every PR on.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vitri"
	"vitri/internal/pager"
)

// TestE2EConcurrentLoadAttribution drives 64 concurrent clients through
// a server and checks the acceptance bar: every request completes, zero
// 5xx, and /stats' cumulative search_page_reads equals the sum of the
// per-request attributions the clients saw — per-scan I/O attribution
// composed all the way up through HTTP.
func TestE2EConcurrentLoadAttribution(t *testing.T) {
	newPager, cacheStats := CachedPager(func() pager.Pager { return pager.NewMem() }, 256)
	db, videos := testCorpus(t, 24, vitri.Options{NewPager: newPager})
	srv := New(db, Config{MaxInFlight: 128, RequestTimeout: time.Minute, CacheStats: cacheStats, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-build one query body per client (rand.Rand is not
	// goroutine-safe).
	r := rand.New(rand.NewSource(11))
	const clients, perClient = 64, 3
	bodies := make([][]byte, clients)
	wants := make([]int, clients)
	for i := range bodies {
		src := i % len(videos)
		q := framesJSON(noisyCopy(r, videos[src], 0.01))
		b, err := json.Marshal(map[string]interface{}{"frames": q, "k": 4})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], wants[i] = b, src
	}

	var (
		wg        sync.WaitGroup
		totalIO   atomic.Uint64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < perClient; rep++ {
				resp, err := http.Post(ts.URL+"/search", "application/json", bytesReader(bodies[c]))
				if err != nil {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, fmt.Sprintf("client %d: %v", c, err))
					return
				}
				var sr searchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, fmt.Sprintf("client %d: status %d, decode %v", c, resp.StatusCode, err))
					return
				}
				if len(sr.Matches) == 0 || sr.Matches[0].VideoID != wants[c] {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, fmt.Sprintf("client %d: top match %+v, want video %d", c, sr.Matches, wants[c]))
					return
				}
				totalIO.Add(sr.Stats.PageReads)
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d client failures; first: %v", n, firstFail.Load())
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decodeBody(t, resp, &st)
	if st.SearchQueries != clients*perClient {
		t.Fatalf("search_queries = %d, want %d", st.SearchQueries, clients*perClient)
	}
	if st.SearchPageReads != totalIO.Load() {
		t.Fatalf("stats search_page_reads = %d, clients observed %d", st.SearchPageReads, totalIO.Load())
	}
	if st.Cache == nil || st.Cache.Accesses == 0 {
		t.Fatalf("cache stats missing: %+v", st.Cache)
	}
	for _, ep := range []string{epSearch, epStats} {
		if st.Endpoints[ep].Errors5xx != 0 {
			t.Fatalf("%s reported 5xx: %+v", ep, st.Endpoints[ep])
		}
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestE2ERaceStressShutdownMidFlight mixes concurrent /search, /insert
// and /remove traffic and begins a graceful shutdown while requests are
// mid-flight. Every client must receive a real HTTP response — success,
// a mapped client error, or the drain gate's 503 — and never a
// connection reset. Run under -race (make check does).
func TestE2ERaceStressShutdownMidFlight(t *testing.T) {
	db, videos := testCorpus(t, 16, vitri.Options{})
	srv := New(db, Config{MaxInFlight: 64, RequestTimeout: time.Minute, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(21))
	const workers = 64
	searchBodies := make([][]byte, workers)
	insertBodies := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		q := framesJSON(noisyCopy(r, videos[i%len(videos)], 0.01))
		b, err := json.Marshal(map[string]interface{}{"frames": q, "k": 3})
		if err != nil {
			t.Fatal(err)
		}
		searchBodies[i] = b
		// Scratch inserts live in a disjoint id range.
		ib, err := json.Marshal(map[string]interface{}{
			"id":     1000 + i,
			"frames": framesJSON(synthVideo(r, 8, 1, 8, 0.2, 0.8)),
		})
		if err != nil {
			t.Fatal(err)
		}
		insertBodies[i] = ib
	}

	var (
		wg        sync.WaitGroup
		transport atomic.Int64 // transport-level failures (connection resets)
		badStatus atomic.Value // unexpected HTTP statuses
	)
	do := func(w int, path string, body []byte) bool {
		resp, err := http.Post(ts.URL+path, "application/json", bytesReader(body))
		if err != nil {
			transport.Add(1)
			return false
		}
		defer resp.Body.Close()
		var decoded struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			badStatus.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: undecodable body (status %d): %v", w, path, resp.StatusCode, err))
			return false
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusConflict, http.StatusNotFound:
			return true
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			return true // shed or draining: valid, structured responses
		default:
			badStatus.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: status %d error %q", w, path, resp.StatusCode, decoded.Error))
			return false
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 6; rep++ {
				switch (w + rep) % 4 {
				case 0:
					do(w, "/insert", insertBodies[w])
				case 1:
					do(w, "/remove", mustMarshal(map[string]int{"id": 1000 + w}))
				default:
					do(w, "/search", searchBodies[w])
				}
			}
		}(w)
	}
	// Begin the graceful shutdown while the stress is mid-flight.
	time.Sleep(5 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close(context.Background()) }()

	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("close during traffic: %v", err)
	}
	if n := transport.Load(); n != 0 {
		t.Fatalf("%d transport-level failures (connection resets) during drain", n)
	}
	if m := badStatus.Load(); m != nil {
		t.Fatalf("unexpected response: %v", m)
	}

	// After the drain the gate answers 503 — still a clean response.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after close: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close = %d, want 503", resp.StatusCode)
	}
}

// TestE2EFaultyPager serves from a database whose page store injects
// read faults. Injected faults must surface as structured 5xx JSON
// errors, and — the corruption bar — queries that succeed afterwards
// must return results identical to a fault-free database over the same
// corpus. Scratch inserts live in a region of feature space disjoint
// from every query, so even records orphaned by failed best-effort
// insert rollbacks cannot perturb the compared results.
func TestE2EFaultyPager(t *testing.T) {
	const nVideos = 16
	faultyNew := func() pager.Pager {
		f := pager.NewFaulty(pager.NewMem(), 31)
		f.ReadFailProb = 0.05
		return f
	}
	db, videos := testCorpus(t, nVideos, vitri.Options{NewPager: faultyNew})
	refDB, _ := testCorpus(t, nVideos, vitri.Options{})
	srv := New(db, Config{MaxInFlight: 64, RequestTimeout: time.Minute, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := rand.New(rand.NewSource(31))
	queries := make([][]vitri.Vector, nVideos)
	bodies := make([][]byte, nVideos)
	for i := range queries {
		queries[i] = noisyCopy(r, videos[i], 0.01)
		bodies[i] = mustMarshal(map[string]interface{}{"frames": framesJSON(queries[i]), "k": 3})
	}
	scratch := make([][]byte, 8)
	for i := range scratch {
		// Far region of feature space (corpus lives in [0.2, 0.8]^8):
		// every scratch sphere is ≫ ε away from every query sphere, so
		// even records orphaned by failed rollbacks cannot score.
		scratch[i] = mustMarshal(map[string]interface{}{
			"id":     2000 + i,
			"frames": framesJSON(synthVideo(r, 8, 1, 8, 1.5, 1.6)),
		})
	}

	var (
		wg         sync.WaitGroup
		fives      atomic.Int64
		oks        atomic.Int64
		unexpected atomic.Value
	)
	post := func(w int, path string, body []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytesReader(body))
		if err != nil {
			unexpected.CompareAndSwap(nil, fmt.Sprintf("worker %d: transport error: %v", w, err))
			return
		}
		defer resp.Body.Close()
		var decoded struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			unexpected.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: status %d with undecodable body: %v", w, path, resp.StatusCode, err))
			return
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			oks.Add(1)
		case resp.StatusCode >= 500:
			if decoded.Error == "" {
				unexpected.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: 5xx without error body", w, path))
			}
			fives.Add(1)
		case resp.StatusCode == http.StatusConflict, resp.StatusCode == http.StatusNotFound:
			// Valid outcomes for racing scratch inserts/removes.
		default:
			unexpected.CompareAndSwap(nil, fmt.Sprintf("worker %d %s: status %d error %q", w, path, resp.StatusCode, decoded.Error))
		}
	}
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				switch (w + rep) % 4 {
				case 0:
					post(w, "/insert", scratch[w%len(scratch)])
				case 1:
					post(w, "/remove", mustMarshal(map[string]int{"id": 2000 + w%len(scratch)}))
				default:
					post(w, "/search", bodies[(w+rep)%len(bodies)])
				}
			}
		}(w)
	}
	wg.Wait()
	if m := unexpected.Load(); m != nil {
		t.Fatalf("unexpected response under faults: %v", m)
	}
	if oks.Load() == 0 {
		t.Fatal("no request survived the injected faults; fault rate too high to test anything")
	}
	t.Logf("faulty stress: %d ok, %d injected 5xx", oks.Load(), fives.Load())

	// Corruption check: every query, retried past injected faults, must
	// return exactly what the fault-free reference database returns.
	for i := range queries {
		q := vitri.Summarize(-1, queries[i], refDB.Epsilon(), refDB.Seed())
		wantMatches, _, err := refDB.SearchSummary(&q, 3, vitri.Composed)
		if err != nil {
			t.Fatalf("reference search %d: %v", i, err)
		}
		var got searchResponse
		ok := false
		for attempt := 0; attempt < 200 && !ok; attempt++ {
			resp, err := http.Post(ts.URL+"/search", "application/json", bytesReader(bodies[i]))
			if err != nil {
				t.Fatalf("verify query %d: transport: %v", i, err)
			}
			if resp.StatusCode == http.StatusOK {
				decodeBody(t, resp, &got)
				ok = true
			} else {
				resp.Body.Close()
			}
		}
		if !ok {
			t.Fatalf("verify query %d: no success in 200 attempts", i)
		}
		if len(got.Matches) != len(wantMatches) {
			t.Fatalf("query %d: %d matches, reference has %d", i, len(got.Matches), len(wantMatches))
		}
		for j, m := range got.Matches {
			if m.VideoID != wantMatches[j].VideoID || m.Similarity != wantMatches[j].Similarity {
				t.Fatalf("query %d match %d: got {%d %v}, reference {%d %v} — data corruption after injected faults",
					i, j, m.VideoID, m.Similarity, wantMatches[j].VideoID, wantMatches[j].Similarity)
			}
		}
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func mustMarshal(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
