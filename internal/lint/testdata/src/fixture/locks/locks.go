// Package locks seeds every violation class the lockorder analyzer
// recognizes, next to the clean shapes it must accept.
package locks

import (
	"errors"
	"sync"

	"fixture/pager"
)

// DB, Index and Tree carry the level-2/3/4 locks of the documented
// hierarchy; pager.Store carries level 5; DB's ckptMu field carries
// level 0 (the checkpoint serialization lock) and viewMu level 1 (the
// shard router's cross-shard view lock), both ranked by field name.
type DB struct {
	ckptMu sync.Mutex
	viewMu sync.RWMutex
	mu     sync.RWMutex
}

type Index struct{ mu sync.RWMutex }

type Tree struct{ mu sync.RWMutex }

// Inverted acquires a DB lock under a Tree lock: hierarchy inversion.
func Inverted(db *DB, t *Tree) {
	t.mu.Lock()
	defer t.mu.Unlock()
	db.mu.Lock() // want "lock order violation: acquiring DB lock db.mu while holding Tree lock t.mu"
	defer db.mu.Unlock()
}

// SameLevel nests two locks of the same level, which the hierarchy
// cannot order.
func SameLevel(a, b *Index) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock order violation: acquiring Index lock b.mu while holding Index lock a.mu"
	defer b.mu.Unlock()
}

// PagerThenTree acquires a Tree lock while holding a pager lock.
func PagerThenTree(s *pager.Store, t *Tree) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	t.mu.Lock() // want "lock order violation: acquiring Tree lock t.mu while holding pager lock s.Mu"
	defer t.mu.Unlock()
}

// MutationThenCkpt acquires the checkpoint lock under the DB lock —
// against a checkpoint holding ckptMu and waiting on db.mu, that
// deadlocks.
func MutationThenCkpt(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ckptMu.Lock() // want "lock order violation: acquiring checkpoint lock db.ckptMu while holding DB lock db.mu"
	defer db.ckptMu.Unlock()
}

// CkptThenDB descends the hierarchy from the checkpoint lock: clean —
// DB.Checkpoint's capture and finish sections take exactly this shape.
func CkptThenDB(db *DB) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.RLock()
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
}

// MutationThenView acquires the shard-view lock under a per-shard DB
// lock — against a snapshot reader holding viewMu and waiting on db.mu,
// that deadlocks.
func MutationThenView(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.viewMu.RLock() // want "lock order violation: acquiring shard-view lock db.viewMu while holding DB lock db.mu"
	defer db.viewMu.RUnlock()
}

// ViewThenCkpt acquires the checkpoint lock under the shard-view lock:
// a sharded checkpoint takes ckptMu first, then viewMu.
func ViewThenCkpt(db *DB) {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	db.ckptMu.Lock() // want "lock order violation: acquiring checkpoint lock db.ckptMu while holding shard-view lock db.viewMu"
	defer db.ckptMu.Unlock()
}

// ViewThenDB descends from the shard-view lock into a shard's DB lock:
// clean — the shard router's mutation and snapshot paths take exactly
// this shape.
func ViewThenDB(router, shard *DB) {
	router.viewMu.RLock()
	defer router.viewMu.RUnlock()
	shard.mu.Lock()
	defer shard.mu.Unlock()
}

// Upgrade attempts the RLock-then-Lock upgrade on one mutex.
func Upgrade(ix *Index) {
	ix.mu.RLock()
	ix.mu.Lock() // want "read-to-write upgrade: ix.mu.Lock() while ix.mu.RLock() is held self-deadlocks"
	ix.mu.Unlock()
	ix.mu.RUnlock()
}

// DoubleLock re-acquires a mutex it already holds.
func DoubleLock(t *Tree) {
	t.mu.Lock()
	t.mu.Lock() // want "t.mu.Lock() while t.mu is already held"
	t.mu.Unlock()
	t.mu.Unlock()
}

// LeakOnError returns early without releasing.
func LeakOnError(t *Tree, fail bool) error {
	t.mu.Lock() // want "t.mu.Lock() is not released on every return path"
	if fail {
		return errors.New("boom")
	}
	t.mu.Unlock()
	return nil
}

// ProperDescent takes the three levels in hierarchy order: clean.
func ProperDescent(db *DB, ix *Index, t *Tree) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
}

// BranchRelease unlocks explicitly on every return path: clean.
func BranchRelease(t *Tree, fail bool) error {
	t.mu.Lock()
	if fail {
		t.mu.Unlock()
		return errors.New("boom")
	}
	t.mu.Unlock()
	return nil
}

// PanicPath aborts on its locked path; a panic is not a return: clean.
func PanicPath(t *Tree, bad bool) {
	t.mu.Lock()
	if bad {
		panic("invariant broken")
	}
	t.mu.Unlock()
}

// WaitLocked holds a read lock across a select: clean.
func WaitLocked(t *Tree, ch chan struct{}) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	select {
	case <-ch:
	default:
	}
}

// Spawn's goroutine body is analyzed as its own function, and the
// WaitGroup joins it: clean.
func Spawn(t *Tree, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.mu.Lock()
		defer t.mu.Unlock()
	}()
}

// ClosureUnlock releases via a deferred closure: clean.
func ClosureUnlock(t *Tree) {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
}
