package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/experiments"
	"vitri/internal/metrics"
)

// The ingest experiment measures the batch ingest pipeline: videos/sec and
// heap allocations per video for AddBatch at increasing worker counts,
// against the sequential Add loop as the 1-worker baseline. It lives in
// package main (not internal/experiments) because it exercises the public
// vitri API, which the experiments package cannot import.

// ingestRow is one worker-count measurement in BENCH_ingest.json.
type ingestRow struct {
	Parallelism    int     `json:"parallelism"`
	Seconds        float64 `json:"seconds"`
	VideosPerSec   float64 `json:"videos_per_sec"`
	AllocsPerVideo float64 `json:"allocs_per_video"`
	Speedup        float64 `json:"speedup_vs_sequential"`
}

// ingestReport is the BENCH_ingest.json schema.
type ingestReport struct {
	Scale    float64     `json:"scale"`
	Videos   int         `json:"videos"`
	Frames   int         `json:"frames"`
	Epsilon  float64     `json:"epsilon"`
	Triplets int         `json:"triplets"`
	Rows     []ingestRow `json:"rows"`
}

// runIngest builds the experiment corpus once, then ingests it repeatedly
// at each worker count. Every run is checked against the sequential
// baseline's index (same video/triplet counts and tree shape) before its
// timing is reported — a fast pipeline that builds a different database
// would be worthless.
func runIngest(cfg experiments.Config, outPath string) ([]*metrics.Table, error) {
	corpus, err := dataset.GenerateHist(dataset.DefaultHistConfig(cfg.Scale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	videos := make([]vitri.Video, len(corpus.Videos))
	for i := range corpus.Videos {
		videos[i] = vitri.Video{ID: corpus.Videos[i].ID, Frames: corpus.Videos[i].Frames}
	}

	widths := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		widths = append(widths, p)
	}

	report := ingestReport{
		Scale:   cfg.Scale,
		Videos:  len(videos),
		Frames:  corpus.FrameCount(),
		Epsilon: cfg.Epsilon,
	}
	table := &metrics.Table{
		Title:   "Batch ingest throughput (AddBatch by worker count)",
		Columns: []string{"workers", "seconds", "videos/sec", "allocs/video", "speedup"},
	}

	var baseline ingestRun
	for i, p := range widths {
		run, err := ingestOnce(videos, cfg, p)
		if err != nil {
			return nil, fmt.Errorf("parallelism %d: %w", p, err)
		}
		if i == 0 {
			baseline = run
			report.Triplets = run.triplets
		} else if run.triplets != baseline.triplets || run.stats != baseline.stats {
			return nil, fmt.Errorf("parallelism %d built a different index: %d triplets %+v, sequential %d %+v",
				p, run.triplets, run.stats, baseline.triplets, baseline.stats)
		}
		row := ingestRow{
			Parallelism:    p,
			Seconds:        run.seconds,
			VideosPerSec:   float64(len(videos)) / run.seconds,
			AllocsPerVideo: run.allocs / float64(len(videos)),
			Speedup:        baseline.seconds / run.seconds,
		}
		report.Rows = append(report.Rows, row)
		table.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.3f", row.Seconds),
			fmt.Sprintf("%.1f", row.VideosPerSec),
			fmt.Sprintf("%.1f", row.AllocsPerVideo),
			fmt.Sprintf("%.2fx", row.Speedup),
		)
	}

	if outPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{table}, nil
}

type ingestRun struct {
	seconds  float64
	allocs   float64
	triplets int
	stats    vitri.IndexStats
}

// ingestOnce loads the corpus through BuildParallel at the given
// parallelism, timing the whole pipeline — summarization fan-out, ordered
// merge, and bulk index build — end to end.
func ingestOnce(videos []vitri.Video, cfg experiments.Config, parallelism int) (ingestRun, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	db, err := vitri.BuildParallel(videos, vitri.Options{
		Epsilon:           cfg.Epsilon,
		Seed:              cfg.Seed,
		IngestParallelism: parallelism,
	})
	if err != nil {
		return ingestRun{}, err
	}
	defer db.Close()

	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	stats, err := db.Stats()
	if err != nil {
		return ingestRun{}, err
	}
	return ingestRun{
		seconds:  elapsed,
		allocs:   float64(after.Mallocs - before.Mallocs),
		triplets: db.Triplets(),
		stats:    stats,
	}, nil
}
