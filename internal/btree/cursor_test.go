package btree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vitri/internal/pager"
)

func TestCursorMatchesRangeScan(t *testing.T) {
	tr := newMemTree(t, 8)
	buildRandom(t, tr, 3000, 40)
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		lo := float64(r.Intn(700))
		hi := lo + float64(r.Intn(150))
		var want []float64
		if err := tr.RangeScan(lo, hi, func(k float64, v []byte) bool {
			want = append(want, k)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		c, err := tr.Seek(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		for c.Next() {
			got = append(got, c.Key())
			if c.Value() == nil {
				t.Fatal("nil cursor value")
			}
		}
		c.Close()
		if len(got) != len(want) {
			t.Fatalf("[%v,%v] cursor %d entries, scan %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("entry %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestCursorCloseIdempotent(t *testing.T) {
	tr := newMemTree(t, 8)
	if err := tr.Insert(1, val8(1)); err != nil {
		t.Fatal(err)
	}
	c, err := tr.Seek(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic or double-unlock
	if c.Next() {
		t.Fatal("closed cursor advanced")
	}
	// Tree still usable for writes after close.
	if err := tr.Insert(2, val8(2)); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	tr := newMemTree(t, 8)
	buildRandom(t, tr, 5000, 42)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5000 {
		t.Fatalf("Entries = %d", st.Entries)
	}
	if st.Height != tr.Height() {
		t.Fatalf("Height = %d vs %d", st.Height, tr.Height())
	}
	if st.LeafNodes == 0 || st.InternalNodes == 0 {
		t.Fatalf("node counts: %+v", st)
	}
	if st.LeafFill <= 0 || st.LeafFill > 1 {
		t.Fatalf("LeafFill = %v", st.LeafFill)
	}
}

func TestCheckPassesOnHealthyTrees(t *testing.T) {
	// Random inserts.
	tr := newMemTree(t, 8)
	buildRandom(t, tr, 4000, 43)
	if err := tr.Check(); err != nil {
		t.Fatalf("random-insert tree: %v", err)
	}
	// Bulk loaded.
	r := rand.New(rand.NewSource(44))
	entries := make([]Entry, 3000)
	for i := range entries {
		entries[i] = Entry{Key: r.Float64(), Val: val8(uint64(i))}
	}
	sortEntriesByKey(entries)
	bulk, err := BulkLoad(pager.NewMem(), 8, entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Check(); err != nil {
		t.Fatalf("bulk tree: %v", err)
	}
	// After deletions.
	for i := 0; i < 500; i++ {
		if _, err := tr.Delete(float64(r.Intn(1000)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("post-delete tree: %v", err)
	}
}

func TestCheckDetectsMetadataDrift(t *testing.T) {
	tr := newMemTree(t, 8)
	buildRandom(t, tr, 100, 45)
	tr.count += 7 // corrupt the in-memory count
	if err := tr.Check(); err == nil {
		t.Fatal("expected count mismatch")
	}
	tr.count -= 7
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random interleaving of inserts and deletes leaves a tree
// that passes Check and agrees with a map-based model on total count.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := Create(pager.NewMem(), 8)
		if err != nil {
			return false
		}
		counts := map[float64]int{}
		total := 0
		for op := 0; op < 400; op++ {
			k := float64(r.Intn(40))
			if r.Float64() < 0.7 {
				if err := tr.Insert(k, val8(uint64(op))); err != nil {
					return false
				}
				counts[k]++
				total++
			} else {
				ok, err := tr.Delete(k, nil)
				if err != nil {
					return false
				}
				if ok != (counts[k] > 0) {
					return false
				}
				if ok {
					counts[k]--
					total--
				}
			}
		}
		if int64(total) != tr.Len() {
			return false
		}
		if err := tr.Check(); err != nil {
			return false
		}
		// Per-key counts agree.
		for k, want := range counts {
			got := 0
			if err := tr.RangeScan(k, k, func(float64, []byte) bool { got++; return true }); err != nil {
				return false
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func sortEntriesByKey(entries []Entry) {
	for i := 1; i < len(entries); i++ {
		v := entries[i]
		j := i - 1
		for j >= 0 && entries[j].Key > v.Key {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = v
	}
}

func TestCursorFullRange(t *testing.T) {
	tr := newMemTree(t, 8)
	model := buildRandom(t, tr, 1000, 46)
	c, err := tr.Seek(math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := 0
	for c.Next() {
		n++
	}
	if n != len(model) {
		t.Fatalf("full cursor visited %d of %d", n, len(model))
	}
}
