// Ad archive deduplication: the paper's motivating workload. A broadcast
// monitor captures thousands of TV advertisement airings; the same ad
// airs dozens of times in several cuts. This example ingests a synthetic
// capture corpus and produces a dedup report — for every video, its
// near-duplicate airings discovered through the ViTri index — then checks
// a sample of the discovered pairs against the exact frame-level measure.
//
// Run with:
//
//	go run ./examples/adarchive
package main

import (
	"fmt"
	"log"
	"sort"

	"vitri"
	"vitri/internal/dataset"
)

const (
	epsilon      = 0.3
	dupThreshold = 0.5 // estimated similarity above which we call it a duplicate
)

func main() {
	// A 1% scale capture session: ~65 ad airings across duration classes.
	corpus, err := dataset.GenerateHist(dataset.DefaultHistConfig(0.01, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d airings (%d frames)\n", len(corpus.Videos), corpus.FrameCount())

	db := vitri.New(vitri.Options{Epsilon: epsilon, Seed: 1})
	byID := map[int][]vitri.Vector{}
	for i := range corpus.Videos {
		v := &corpus.Videos[i]
		if err := db.Add(v.ID, v.Frames); err != nil {
			log.Fatal(err)
		}
		byID[v.ID] = v.Frames
	}
	fmt.Printf("indexed as %d triplets\n\n", db.Triplets())

	// Dedup sweep: search each video, keep matches above the threshold.
	groups := map[int][]vitri.Match{}
	var pageReads uint64
	for i := range corpus.Videos {
		v := &corpus.Videos[i]
		q := vitri.Summarize(-1, v.Frames, epsilon, 1)
		matches, stats, err := db.SearchSummary(&q, 20, vitri.Composed)
		if err != nil {
			log.Fatal(err)
		}
		pageReads += stats.PageReads
		for _, m := range matches {
			if m.VideoID != v.ID && m.Similarity >= dupThreshold {
				groups[v.ID] = append(groups[v.ID], m)
			}
		}
	}

	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("dedup report (threshold %.2f), %d videos with duplicates, %d page reads total:\n",
		dupThreshold, len(ids), pageReads)
	shown := 0
	for _, id := range ids {
		if shown >= 8 {
			fmt.Printf("  ... and %d more groups\n", len(ids)-shown)
			break
		}
		fmt.Printf("  video %-4d:", id)
		for _, m := range groups[id] {
			fmt.Printf(" %d(%.2f)", m.VideoID, m.Similarity)
		}
		fmt.Println()
		shown++
	}

	// Spot-check the first few reported pairs against the exact measure.
	fmt.Println("\nspot check (estimated vs exact):")
	checked := 0
	for _, id := range ids {
		for _, m := range groups[id] {
			if checked >= 5 {
				return
			}
			exact := vitri.ExactSimilarity(byID[id], byID[m.VideoID], epsilon)
			fmt.Printf("  %d ~ %d: estimated %.3f, exact %.3f\n", id, m.VideoID, m.Similarity, exact)
			checked++
		}
	}
}
