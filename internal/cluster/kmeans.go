// Package cluster implements the clustering substrate for ViTri
// summarization: Lloyd's k-means with k-means++ seeding, and the paper's
// recursive binary clustering algorithm (Figure 3) that keeps bisecting a
// video's frames until every cluster is a tight hypersphere of radius
// min(R, µ+σ) ≤ ε/2.
package cluster

import (
	"math"
	"math/rand"

	"vitri/internal/vec"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centers []vec.Vector // k centroids
	Assign  []int        // Assign[i] = index of the centroid owning point i
	Sizes   []int        // number of points per centroid
	Iters   int          // Lloyd iterations performed
}

// DefaultMaxIters bounds Lloyd's iteration; bisecting k-means converges in
// a handful of passes on video frames.
const DefaultMaxIters = 50

// KMeans clusters points into k groups using k-means++ seeding followed by
// Lloyd iterations. rng drives the seeding; maxIters <= 0 selects
// DefaultMaxIters. If k >= len(points), every point becomes its own
// (singleton) cluster.
func KMeans(points []vec.Vector, k int, rng *rand.Rand, maxIters int) KMeansResult {
	if len(points) == 0 {
		panic("cluster: KMeans with no points")
	}
	if k <= 0 {
		panic("cluster: KMeans with k <= 0")
	}
	if maxIters <= 0 {
		maxIters = DefaultMaxIters
	}
	if k >= len(points) {
		res := KMeansResult{
			Centers: make([]vec.Vector, len(points)),
			Assign:  make([]int, len(points)),
			Sizes:   make([]int, len(points)),
		}
		for i, p := range points {
			res.Centers[i] = vec.Clone(p)
			res.Assign[i] = i
			res.Sizes[i] = 1
		}
		return res
	}

	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	sizes := make([]int, k)
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := 0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := vec.Dist2(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iters == 0 {
				changed++
				assign[i] = best
			}
		}
		if changed == 0 && iters > 0 {
			break
		}
		// Recompute centroids.
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			vec.AddInPlace(centers[c], p)
			sizes[c]++
		}
		for c := range centers {
			if sizes[c] == 0 {
				// Re-seed an empty cluster on the point farthest from its
				// centroid, a standard k-means repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := vec.Dist2(p, centers[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], points[far])
				continue
			}
			vec.ScaleInPlace(centers[c], 1/float64(sizes[c]))
		}
	}
	// Final assignment pass so Assign/Sizes match the returned centers.
	for c := range sizes {
		sizes[c] = 0
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if d := vec.Dist2(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		sizes[best]++
	}
	return KMeansResult{Centers: centers, Assign: assign, Sizes: sizes, Iters: iters}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(points []vec.Vector, k int, rng *rand.Rand) []vec.Vector {
	centers := make([]vec.Vector, 0, k)
	first := points[rng.Intn(len(points))]
	centers = append(centers, vec.Clone(first))
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.Dist2(p, first)
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total == 0 {
			// All remaining points coincide with chosen centers; pick any.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := vec.Clone(points[next])
		centers = append(centers, c)
		for i, p := range points {
			if d := vec.Dist2(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}
