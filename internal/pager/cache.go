package pager

import (
	"container/list"
	"sync"
)

// Cache is a write-through LRU buffer pool over another Pager. Hits are
// served from memory; the underlying pager's Stats therefore count only
// physical (miss) I/O, while Cache.Accesses counts logical page requests.
type Cache struct {
	mu       sync.Mutex
	under    Pager                    // immutable after NewCache
	capacity int                      // immutable after NewCache
	lru      *list.List               // front = most recent. guarded by mu
	table    map[PageID]*list.Element // id -> element. guarded by mu
	accesses uint64                   // guarded by mu
	hits     uint64                   // guarded by mu
}

type cacheEntry struct {
	id   PageID
	page Page
}

// NewCache wraps under with an LRU pool holding up to capacity pages.
func NewCache(under Pager, capacity int) *Cache {
	if capacity < 1 {
		panic("pager: cache capacity must be >= 1")
	}
	return &Cache{
		under:    under,
		capacity: capacity,
		lru:      list.New(),
		table:    make(map[PageID]*list.Element),
	}
}

// Alloc implements Pager.
func (c *Cache) Alloc() (PageID, error) { return c.under.Alloc() }

// Read implements Pager.
func (c *Cache) Read(id PageID, p *Page) error { return c.ReadTracked(id, p, nil) }

// ReadTracked implements TrackedReader: only misses — reads that reach
// the underlying store — are attributed to st; hits cost no physical I/O.
func (c *Cache) ReadTracked(id PageID, p *Page, st *ScanStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accesses++
	if el, ok := c.table[id]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		*p = el.Value.(*cacheEntry).page
		return nil
	}
	//lint:ignore lockorder write-through wrapper: Cache.mu sits strictly above its wrapped pager's lock, and the wrapped pager never calls back into the cache
	if err := ReadTracked(c.under, id, p, st); err != nil {
		return err
	}
	c.insertLocked(id, p)
	return nil
}

// Write implements Pager. Writes go through to the underlying pager and
// refresh the cached copy.
func (c *Cache) Write(id PageID, p *Page) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockorder write-through wrapper: Cache.mu sits strictly above its wrapped pager's lock, and the wrapped pager never calls back into the cache
	if err := c.under.Write(id, p); err != nil {
		return err
	}
	if el, ok := c.table[id]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).page = *p
	} else {
		c.insertLocked(id, p)
	}
	return nil
}

func (c *Cache) insertLocked(id PageID, p *Page) {
	el := c.lru.PushFront(&cacheEntry{id: id, page: *p})
	c.table[id] = el
	for c.lru.Len() > c.capacity {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.table, old.Value.(*cacheEntry).id)
	}
}

// NumPages implements Pager.
func (c *Cache) NumPages() int { return c.under.NumPages() }

// Stats implements Pager, reporting the underlying (physical) counters.
func (c *Cache) Stats() Stats { return c.under.Stats() }

// ResetStats implements Pager; it also zeroes the hit counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	c.accesses, c.hits = 0, 0
	c.mu.Unlock()
	c.under.ResetStats()
}

// HitRate returns logical accesses, hits, and the hit fraction.
func (c *Cache) HitRate() (accesses, hits uint64, rate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.accesses == 0 {
		return 0, 0, 0
	}
	return c.accesses, c.hits, float64(c.hits) / float64(c.accesses)
}

// Invalidate drops every cached page (e.g. after out-of-band mutation of
// the underlying store).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.table = make(map[PageID]*list.Element)
}

// Close implements Pager.
func (c *Cache) Close() error {
	c.Invalidate()
	return c.under.Close()
}
