package storefmt

import (
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Sectioned store wire layout, shared by v2 and v3 (all integers
// little-endian):
//
//	magic (8 bytes)
//	version  uint32
//	sections uint32
//	sections × [ id uint32 | length uint64 | payload | crc32c(payload) uint32 ]
//	footer:
//	  footer magic "VTRISEAL" (8 bytes)
//	  fileCRC  uint32  — CRC32C of every byte before the footer
//	  totalLen uint64  — whole-file length, footer included
//	  crc32c(footer magic + fileCRC + totalLen) uint32
//
// The footer seals the file: a decode that does not end on a
// checksum-intact footer at exactly totalLen fails, so a torn or
// truncated file can never be half-read. Unknown section ids are skipped
// (their checksum still verified), leaving room to grow the format
// without breaking old readers.

const footerMagic = "VTRISEAL"

// footerSize is the fixed footer length: magic + fileCRC + totalLen + crc.
const footerSize = 8 + 4 + 8 + 4

// castagnoli is the CRC32C table; Castagnoli is the storage-industry
// polynomial (iSCSI, ext4, Btrfs) with hardware support on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSectionLen bounds a hostile section length before it drives reads.
const maxSectionLen = 1 << 32

// storeSection is one section to be written by encodeSectioned.
type storeSection struct {
	id      uint32
	payload []byte
}

// encodeSectioned writes the sealed sectioned layout: magic, version,
// the sections in order, then the footer.
func encodeSectioned(w io.Writer, magic string, version uint32, secs []storeSection) error {
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(w, crc) // crc accumulates the pre-footer bytes
	if _, err := io.WriteString(out, magic); err != nil {
		return err
	}
	if err := binWrite(out, version); err != nil {
		return err
	}
	if err := binWrite(out, uint32(len(secs))); err != nil {
		return err
	}
	written := int64(len(magic) + 4 + 4)
	for _, sec := range secs {
		if err := binWrite(out, sec.id); err != nil {
			return err
		}
		if err := binWrite(out, uint64(len(sec.payload))); err != nil {
			return err
		}
		if _, err := out.Write(sec.payload); err != nil {
			return err
		}
		if err := binWrite(out, crc32.Checksum(sec.payload, castagnoli)); err != nil {
			return err
		}
		written += 4 + 8 + int64(len(sec.payload)) + 4
	}

	fileCRC := crc.Sum32()
	if _, err := io.WriteString(w, footerMagic); err != nil {
		return err
	}
	if err := binWrite(w, fileCRC); err != nil {
		return err
	}
	if err := binWrite(w, uint64(written)+footerSize); err != nil {
		return err
	}
	tail := make([]byte, 0, footerSize-4)
	tail = append(tail, footerMagic...)
	tail = le32(tail, fileCRC)
	tail = le64(tail, uint64(written)+footerSize)
	return binWrite(w, crc32.Checksum(tail, castagnoli))
}

// decodeSectioned reads a sectioned body (everything after the magic and
// version, which the caller has already consumed and passes in so the
// whole-file CRC can be seeded), verifying every section checksum and
// the sealed footer. onSection is called once per section with a reader
// limited to that section's payload; it may consume any prefix — the
// remainder is drained (that is also how unknown ids are skipped, their
// checksum still verified).
func decodeSectioned(r io.Reader, magic string, version uint32, onSection func(id uint32, r io.Reader) error) error {
	cr := &crcReader{r: r, crc: crc32.New(castagnoli)}
	seedCRC(cr.crc, magic, version)
	cr.n = int64(len(magic) + 4)

	var sections uint32
	if err := binRead(cr, &sections); err != nil {
		return fmt.Errorf("sectioned header: %w", err)
	}
	if sections > 1024 {
		return fmt.Errorf("implausible section count %d", sections)
	}
	for i := uint32(0); i < sections; i++ {
		var id uint32
		var length uint64
		if err := binRead(cr, &id); err != nil {
			return fmt.Errorf("section %d header: %w", i, err)
		}
		if err := binRead(cr, &length); err != nil {
			return fmt.Errorf("section %d header: %w", i, err)
		}
		if length > maxSectionLen {
			return fmt.Errorf("section %d: implausible length %d", i, length)
		}
		// Stream the payload through its own CRC while decoding, so a
		// hostile length never buffers unbounded memory.
		secCRC := crc32.New(castagnoli)
		lim := &io.LimitedReader{R: io.TeeReader(cr, secCRC), N: int64(length)}
		if err := onSection(id, lim); err != nil {
			return err
		}
		// Drain whatever the section decoder did not consume (unknown
		// ids, or future fields appended to a known section).
		if _, err := io.Copy(io.Discard, lim); err != nil {
			return fmt.Errorf("section %d: %w", i, err)
		}
		var want uint32
		if err := binRead(cr, &want); err != nil {
			return fmt.Errorf("section %d checksum: %w", i, err)
		}
		if got := secCRC.Sum32(); got != want {
			return fmt.Errorf("section %d (id %d): checksum mismatch (got %08x, want %08x)", i, id, got, want)
		}
	}

	// The footer is outside the whole-file CRC; read it from the
	// underlying reader.
	preFooter := cr.crc.Sum32()
	preFooterLen := cr.n
	footer := make([]byte, footerSize)
	if _, err := io.ReadFull(r, footer); err != nil {
		return fmt.Errorf("footer: %w", err)
	}
	if string(footer[:8]) != footerMagic {
		return fmt.Errorf("store is not sealed (bad footer magic)")
	}
	fileCRC := le32get(footer[8:12])
	totalLen := le64get(footer[12:20])
	footCRC := le32get(footer[20:24])
	if got := crc32.Checksum(footer[:20], castagnoli); got != footCRC {
		return fmt.Errorf("footer checksum mismatch (got %08x, want %08x)", got, footCRC)
	}
	if fileCRC != preFooter {
		return fmt.Errorf("file checksum mismatch (got %08x, want %08x)", preFooter, fileCRC)
	}
	if want := uint64(preFooterLen) + footerSize; totalLen != want {
		return fmt.Errorf("footer length %d does not match file length %d", totalLen, want)
	}
	return nil
}

// crcReader mirrors everything read into a running CRC and counts bytes.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
		c.n += int64(n)
	}
	return n, err
}

// seedCRC folds the already-consumed magic and version into the digest.
func seedCRC(h hash.Hash32, magic string, version uint32) {
	b := make([]byte, 0, len(magic)+4)
	b = append(b, magic...)
	b = le32(b, version)
	h.Write(b)
}

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func le32get(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64get(b []byte) uint64 {
	return uint64(le32get(b)) | uint64(le32get(b[4:]))<<32
}
