package index

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"vitri/internal/core"
	"vitri/internal/pager"
	"vitri/internal/refpoint"
	"vitri/internal/vec"
)

// queriesFor derives near-duplicate queries from corpus videos.
func queriesFor(r *rand.Rand, videos [][]vec.Vector, n int) []core.Summary {
	out := make([]core.Summary, n)
	for i := range out {
		src := videos[r.Intn(len(videos))]
		out[i] = core.Summarize(-1, perturb(r, src, 0.01), core.Options{Epsilon: testEps, Seed: 7})
	}
	return out
}

// TestSearchParallelMatchesSequential: the parallel engine is an
// execution-strategy change only — results and stats must be
// byte-identical to the sequential path at every pool width, in both
// modes and for both single-reference and iDistance mappers.
func TestSearchParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	videos, sums, ix := buildCorpus(t, r, 40, 8)
	multi, err := Build(sums, Options{Epsilon: testEps, RefKind: refpoint.MultiRef, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFor(r, videos, 5)
	for name, idx := range map[string]*Index{"optimal": ix, "idistance": multi} {
		for _, mode := range []Mode{Naive, Composed} {
			for _, par := range []int{2, 4, 16} {
				for qi := range queries {
					seqRes, seqStats, err := idx.SearchParallel(&queries[qi], 10, mode, 1)
					if err != nil {
						t.Fatal(err)
					}
					parRes, parStats, err := idx.SearchParallel(&queries[qi], 10, mode, par)
					if err != nil {
						t.Fatal(err)
					}
					if len(seqRes) == 0 {
						t.Fatalf("%s/%v: query %d returned no results", name, mode, qi)
					}
					if len(parRes) != len(seqRes) {
						t.Fatalf("%s/%v par=%d: %d results, sequential %d", name, mode, par, len(parRes), len(seqRes))
					}
					for i := range seqRes {
						if parRes[i] != seqRes[i] {
							t.Fatalf("%s/%v par=%d query %d result %d: %+v != %+v",
								name, mode, par, qi, i, parRes[i], seqRes[i])
						}
					}
					if parStats != seqStats {
						t.Fatalf("%s/%v par=%d query %d stats: %+v != %+v",
							name, mode, par, qi, parStats, seqStats)
					}
				}
			}
		}
	}
}

// TestSearchStatsExactUnderConcurrentSearches is the attribution
// regression test: on a file-backed pager (every read physical), two
// simultaneous searches must each report exactly the PageReads they
// report when run alone. The old implementation diffed the pager's
// shared counter and stole reads from whichever search overlapped.
func TestSearchStatsExactUnderConcurrentSearches(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	videos := make([][]vec.Vector, 40)
	for i := range videos {
		videos[i] = makeVideo(r, 8, 3, 30)
	}
	sums := summarizeAll(videos)
	dir := t.TempDir()
	n := 0
	ix, err := Build(sums, Options{
		Epsilon: testEps,
		RefKind: refpoint.Optimal,
		NewPager: func() pager.Pager {
			n++
			fp, err := pager.OpenFile(filepath.Join(dir, fmt.Sprintf("pages%d.db", n)))
			if err != nil {
				panic(err)
			}
			return fp
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFor(r, videos, 4)
	solo := make([]SearchStats, len(queries))
	for qi := range queries {
		_, stats, err := ix.Search(&queries[qi], 10, Composed)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PageReads == 0 {
			t.Fatalf("query %d performed no page reads; test is vacuous", qi)
		}
		solo[qi] = stats
	}
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*rounds)
	for qi := range queries {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, stats, err := ix.Search(&queries[qi], 10, Composed)
				if err != nil {
					errs <- err
					return
				}
				if stats != solo[qi] {
					errs <- fmt.Errorf("query %d under concurrency: %+v, alone: %+v", qi, stats, solo[qi])
					return
				}
			}
		}(qi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSearchBatchMatchesIndividualSearches: batch execution is a pure
// scheduling layer over Search.
func TestSearchBatchMatchesIndividualSearches(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	videos, sums, _ := buildCorpus(t, r, 30, 8)
	ix, err := Build(sums, Options{Epsilon: testEps, RefKind: refpoint.Optimal, SearchParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFor(r, videos, 6)
	items := ix.SearchBatch(queries, 10, Composed)
	if len(items) != len(queries) {
		t.Fatalf("%d batch items for %d queries", len(items), len(queries))
	}
	for qi := range queries {
		if items[qi].Err != nil {
			t.Fatal(items[qi].Err)
		}
		res, stats, err := ix.SearchParallel(&queries[qi], 10, Composed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(items[qi].Results) != len(res) {
			t.Fatalf("query %d: batch %d results, direct %d", qi, len(items[qi].Results), len(res))
		}
		for i := range res {
			if items[qi].Results[i] != res[i] {
				t.Fatalf("query %d result %d: batch %+v, direct %+v", qi, i, items[qi].Results[i], res[i])
			}
		}
		if items[qi].Stats != stats {
			t.Fatalf("query %d stats: batch %+v, direct %+v", qi, items[qi].Stats, stats)
		}
	}
	// Per-query validation errors land in their slot, not the whole batch.
	bad := make([]core.Summary, 1)
	bad[0] = queries[0]
	bad[0].Triplets = []core.ViTri{core.NewViTri(vec.Vector{0.1, 0.2}, 0.05, 3)} // wrong dim
	items = ix.SearchBatch(bad, 10, Composed)
	if items[0].Err == nil {
		t.Fatal("dimensionality mismatch did not surface in the batch item")
	}
	if empty := ix.SearchBatch(nil, 10, Composed); len(empty) != 0 {
		t.Fatalf("empty batch returned %d items", len(empty))
	}
}

// TestInsertFailureLeavesIndexUnchanged is the partial-insert regression
// test: a summary rejected on its i-th triplet (wrong dimensionality)
// must leave the tree, catalog, and drift accumulators exactly as they
// were — no orphaned records for scans to surface.
func TestInsertFailureLeavesIndexUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	_, _, ix := buildCorpus(t, r, 10, 8)
	lenBefore := ix.Len()
	videosBefore := ix.Videos()
	driftBefore := ix.DriftAngle()

	bad := core.Summary{VideoID: 999, FrameCount: 60}
	good := makeVideo(r, 8, 1, 30)
	gs := core.Summarize(999, good, core.Options{Epsilon: testEps, Seed: 5})
	bad.Triplets = append(bad.Triplets, gs.Triplets...)
	// The poisoned triplet comes *after* valid ones, so a non-atomic
	// insert would orphan the earlier records.
	bad.Triplets = append(bad.Triplets, core.NewViTri(vec.Vector{0.5, 0.5}, 0.05, 3))

	if err := ix.Insert(bad); err == nil {
		t.Fatal("insert of mixed-dimensionality summary succeeded")
	}
	if got := ix.Len(); got != lenBefore {
		t.Fatalf("tree has %d records after failed insert, want %d", got, lenBefore)
	}
	if got := ix.Videos(); got != videosBefore {
		t.Fatalf("catalog has %d videos after failed insert, want %d", got, videosBefore)
	}
	if got := ix.DriftAngle(); got != driftBefore {
		t.Fatalf("drift accumulators moved: %v -> %v", driftBefore, got)
	}
	if ix.Contains(999) {
		t.Fatal("failed insert left video 999 in the catalog")
	}
	if err := ix.CheckTree(); err != nil {
		t.Fatal(err)
	}
	// The same summary without the poisoned triplet inserts cleanly.
	if err := ix.Insert(gs); err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != lenBefore+len(gs.Triplets) {
		t.Fatalf("tree has %d records after clean insert, want %d", got, lenBefore+len(gs.Triplets))
	}
}
