package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/experiments"
	"vitri/internal/metrics"
)

// The prefilter experiment measures what the signature tier and the
// quantized leaf pages buy, and proves they cost nothing: the same
// corpus and query set run through four engine configurations — exact
// float64 pages with no tier (the pre-optimization engine), each
// optimization alone, and the default engine with both — and every
// configuration's rankings are compared bit-for-bit against the exact
// baseline before any number is reported. BENCH_prefilter.json records
// the equivalence verdict, the page-read ratio (quantized vs float64
// pages) and the fraction of exact geometry evaluations the signature
// tier eliminated; benchguard fails make check when the verdict is
// false, the ratio exceeds 0.6, or the skip fraction drops below 0.5.

// prefilterSearchRounds is how many passes over the query set each
// configuration's timing averages.
const prefilterSearchRounds = 3

// prefilterRow is one engine configuration in BENCH_prefilter.json.
type prefilterRow struct {
	Config         string  `json:"config"`
	SearchSeconds  float64 `json:"search_seconds"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	PageReads      uint64  `json:"page_reads"`
	Candidates     int     `json:"candidates"`
	SimilarityOps  int     `json:"similarity_ops"`
	SignatureSkips int     `json:"signature_skips"`
}

// prefilterReport is the BENCH_prefilter.json schema.
type prefilterReport struct {
	Scale    float64 `json:"scale"`
	Videos   int     `json:"videos"`
	Triplets int     `json:"triplets"`
	Epsilon  float64 `json:"epsilon"`
	K        int     `json:"k"`
	Queries  int     `json:"queries"`
	Rounds   int     `json:"search_rounds"`
	// Equivalent is false if ANY configuration's rankings diverged from
	// the exact float64 baseline on any query.
	Equivalent bool `json:"equivalent"`
	// PageReadsRatio is default-engine page reads over baseline page
	// reads for the identical workload — the quantized-leaf fanout win.
	PageReadsRatio float64 `json:"page_reads_ratio"`
	// SkipFraction is the share of the baseline's exact similarity
	// evaluations the signature tier proved unnecessary.
	SkipFraction float64        `json:"skip_fraction"`
	Rows         []prefilterRow `json:"rows"`
}

// prefilterConfigs is the experiment matrix. The first entry is the
// baseline every other configuration is differentially checked against.
var prefilterConfigs = []struct {
	name                string
	noSigs, unquantized bool
}{
	{"baseline-f64-nosig", true, true},
	{"quantized-only", true, false},
	{"prefilter-only", false, true},
	{"default", false, false},
}

// runPrefilter builds the experiment corpus once and drives the query
// set through each engine configuration.
func runPrefilter(cfg experiments.Config, outPath string) ([]*metrics.Table, error) {
	videos, queries, err := prefilterCorpus(cfg)
	if err != nil {
		return nil, err
	}
	report := prefilterReport{
		Scale:      cfg.Scale,
		Videos:     len(videos),
		Epsilon:    cfg.Epsilon,
		K:          cfg.K,
		Queries:    len(queries),
		Rounds:     prefilterSearchRounds,
		Equivalent: true,
	}
	table := &metrics.Table{
		Title:   "Signature pre-filter + quantized pages (identical results, less work)",
		Columns: []string{"config", "search s", "queries/sec", "page reads", "sim ops", "sig skips", "equivalent"},
	}

	var reference [][]vitri.Match
	var baseline prefilterRow
	for ci, pc := range prefilterConfigs {
		db := vitri.New(vitri.Options{
			Epsilon:          cfg.Epsilon,
			Seed:             cfg.Seed,
			DisablePreFilter: pc.noSigs,
			UnquantizedPages: pc.unquantized,
		})
		if err := prefilterIngest(db, videos, &queries[0], cfg.K); err != nil {
			return nil, fmt.Errorf("%s: %w", pc.name, err)
		}

		matches := make([][]vitri.Match, len(queries))
		var agg vitri.SearchStats
		start := time.Now()
		for round := 0; round < prefilterSearchRounds; round++ {
			for qi := range queries {
				res, stats, err := db.SearchSummary(&queries[qi], cfg.K, vitri.Composed)
				if err != nil {
					return nil, fmt.Errorf("%s: query %d: %w", pc.name, qi, err)
				}
				matches[qi] = res
				agg.PageReads += stats.PageReads
				agg.Candidates += stats.Candidates
				agg.SimilarityOps += stats.SimilarityOps
				agg.SignatureSkips += stats.SignatureSkips
			}
		}
		search := time.Since(start)

		if ci == 0 {
			reference = matches
			report.Triplets = db.Triplets()
		} else if !shardMatchesEqual(matches, reference) {
			report.Equivalent = false
		}

		row := prefilterRow{
			Config:         pc.name,
			SearchSeconds:  search.Seconds(),
			QueriesPerSec:  float64(prefilterSearchRounds*len(queries)) / search.Seconds(),
			PageReads:      agg.PageReads,
			Candidates:     agg.Candidates,
			SimilarityOps:  agg.SimilarityOps,
			SignatureSkips: agg.SignatureSkips,
		}
		if ci == 0 {
			baseline = row
		}
		report.Rows = append(report.Rows, row)
		table.Rows = append(table.Rows, []string{
			pc.name,
			fmt.Sprintf("%.3f", row.SearchSeconds),
			fmt.Sprintf("%.0f", row.QueriesPerSec),
			fmt.Sprintf("%d", row.PageReads),
			fmt.Sprintf("%d", row.SimilarityOps),
			fmt.Sprintf("%d", row.SignatureSkips),
			fmt.Sprintf("%t", report.Equivalent),
		})
	}

	deflt := report.Rows[len(report.Rows)-1]
	if baseline.PageReads > 0 {
		report.PageReadsRatio = float64(deflt.PageReads) / float64(baseline.PageReads)
	}
	if baseline.SimilarityOps > 0 {
		report.SkipFraction = float64(deflt.SignatureSkips) / float64(baseline.SimilarityOps)
	}
	table.Rows = append(table.Rows, []string{
		"ratio default/baseline", "", "",
		fmt.Sprintf("%.3fx", report.PageReadsRatio),
		fmt.Sprintf("skip %.1f%%", 100*report.SkipFraction), "", "",
	})

	if outPath != "" {
		if err := writeJSONReport(outPath, &report); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{table}, nil
}

// searchReport is the BENCH_search.json schema: the default engine's
// per-query search profile on the fixed corpus.
type searchReport struct {
	Scale             float64 `json:"scale"`
	Videos            int     `json:"videos"`
	Triplets          int     `json:"triplets"`
	Epsilon           float64 `json:"epsilon"`
	K                 int     `json:"k"`
	Queries           int     `json:"queries"`
	Rounds            int     `json:"search_rounds"`
	QueriesPerSec     float64 `json:"queries_per_sec"`
	P50Micros         float64 `json:"p50_us"`
	P99Micros         float64 `json:"p99_us"`
	PageReadsPerQuery float64 `json:"page_reads_per_query"`
	SimOpsPerQuery    float64 `json:"similarity_ops_per_query"`
	SigSkipsPerQuery  float64 `json:"signature_skips_per_query"`
	SkipFraction      float64 `json:"skip_fraction"`
}

// runSearch profiles the default engine: per-query latency percentiles
// and the per-query work counters, BENCH_search.json.
func runSearch(cfg experiments.Config, outPath string) ([]*metrics.Table, error) {
	videos, queries, err := prefilterCorpus(cfg)
	if err != nil {
		return nil, err
	}
	db := vitri.New(vitri.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed})
	if err := prefilterIngest(db, videos, &queries[0], cfg.K); err != nil {
		return nil, err
	}

	var agg vitri.SearchStats
	lat := make([]float64, 0, prefilterSearchRounds*len(queries))
	start := time.Now()
	for round := 0; round < prefilterSearchRounds; round++ {
		for qi := range queries {
			qStart := time.Now()
			_, stats, err := db.SearchSummary(&queries[qi], cfg.K, vitri.Composed)
			if err != nil {
				return nil, fmt.Errorf("query %d: %w", qi, err)
			}
			lat = append(lat, float64(time.Since(qStart).Microseconds()))
			agg.PageReads += stats.PageReads
			agg.Candidates += stats.Candidates
			agg.SimilarityOps += stats.SimilarityOps
			agg.SignatureSkips += stats.SignatureSkips
		}
	}
	total := time.Since(start)
	sort.Float64s(lat)
	n := float64(len(lat))
	report := searchReport{
		Scale:             cfg.Scale,
		Videos:            len(videos),
		Triplets:          db.Triplets(),
		Epsilon:           cfg.Epsilon,
		K:                 cfg.K,
		Queries:           len(queries),
		Rounds:            prefilterSearchRounds,
		QueriesPerSec:     n / total.Seconds(),
		P50Micros:         lat[len(lat)/2],
		P99Micros:         lat[len(lat)*99/100],
		PageReadsPerQuery: float64(agg.PageReads) / n,
		SimOpsPerQuery:    float64(agg.SimilarityOps) / n,
		SigSkipsPerQuery:  float64(agg.SignatureSkips) / n,
	}
	if ops := agg.SimilarityOps + agg.SignatureSkips; ops > 0 {
		report.SkipFraction = float64(agg.SignatureSkips) / float64(ops)
	}

	table := &metrics.Table{
		Title:   "Search profile (default engine: signature tier + quantized pages)",
		Columns: []string{"queries/sec", "p50 µs", "p99 µs", "page reads/q", "sim ops/q", "sig skips/q", "skip %"},
		Rows: [][]string{{
			fmt.Sprintf("%.0f", report.QueriesPerSec),
			fmt.Sprintf("%.0f", report.P50Micros),
			fmt.Sprintf("%.0f", report.P99Micros),
			fmt.Sprintf("%.1f", report.PageReadsPerQuery),
			fmt.Sprintf("%.1f", report.SimOpsPerQuery),
			fmt.Sprintf("%.1f", report.SigSkipsPerQuery),
			fmt.Sprintf("%.1f%%", 100*report.SkipFraction),
		}},
	}
	if outPath != "" {
		if err := writeJSONReport(outPath, &report); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{table}, nil
}

// prefilterCorpus generates the shared corpus and query set.
func prefilterCorpus(cfg experiments.Config) ([]vitri.Video, []vitri.Summary, error) {
	corpus, err := dataset.GenerateHist(dataset.DefaultHistConfig(cfg.Scale, cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	videos := make([]vitri.Video, len(corpus.Videos))
	for i := range corpus.Videos {
		videos[i] = vitri.Video{ID: corpus.Videos[i].ID, Frames: corpus.Videos[i].Frames}
	}
	nq := cfg.Queries
	if nq > len(videos) {
		nq = len(videos)
	}
	queries := make([]vitri.Summary, nq)
	for i := range queries {
		queries[i] = vitri.Summarize(-1, videos[i].Frames, cfg.Epsilon, cfg.Seed)
	}
	return videos, queries, nil
}

// prefilterIngest loads the corpus and forces the lazy bulk build so the
// timed loop measures only searches.
func prefilterIngest(db *vitri.DB, videos []vitri.Video, warm *vitri.Summary, k int) error {
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	for _, e := range itemErrs {
		if e != nil {
			return fmt.Errorf("ingest: %w", e)
		}
	}
	if _, _, err := db.SearchSummary(warm, k, vitri.Composed); err != nil {
		return fmt.Errorf("index build: %w", err)
	}
	return nil
}

// writeJSONReport writes a report with a trailing newline, the format
// the committed BENCH_*.json files use.
func writeJSONReport(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
