// Package shard holds the shard-per-core engine's routing function and
// the cross-shard checkpoint manifest.
//
// Routing is a pure function hash(videoID) % N so a video's home shard is
// stable across processes, restarts and machines — the property the
// durable layout depends on (each shard directory replays only its own
// journal, and recovery can verify every recovered video still routes to
// the shard that holds it).
//
// The manifest is the sharded store's commit record: it pins the shard
// count and, after every checkpoint, the per-shard journal cut sequences
// that together form one consistent cross-shard cut. It is replaced only
// via temp file + fsync + rename + directory sync, and carries a checksum
// so a torn write is detected at open instead of being read as a valid
// (wrong) cut.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"vitri/internal/storefmt"
	"vitri/internal/vfs"
)

// Open flags, named for readability at the call sites.
const (
	readOnly         = os.O_RDONLY
	writeCreateTrunc = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
)

// ManifestFile is the manifest's name inside a sharded durable directory.
// Its presence is what distinguishes the sharded layout from the flat
// single-shard snapshot + journal layout.
const ManifestFile = "MANIFEST"

// DirName returns shard i's subdirectory name inside a sharded durable
// directory.
func DirName(i int) string {
	return fmt.Sprintf("shard-%03d", i)
}

// Route returns the home shard of videoID among n shards. It is a stable
// pure function: the same id routes to the same shard in every process
// and on every platform. The id is mixed through the splitmix64 finalizer
// first so dense sequential ids (the common case) spread evenly instead
// of striping by id % n.
func Route(videoID, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(int64(videoID))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Manifest is the sharded store's commit record.
type Manifest struct {
	// Shards is the store's shard count, fixed at creation.
	Shards int
	// Epoch counts committed cross-shard checkpoints. Recovery does not
	// interpret it (each shard's snapshot LastSeq filter is
	// self-describing); it exists so operators and tests can tell which
	// checkpoint a directory reflects.
	Epoch uint64
	// Cuts holds, per shard, the journal sequence folded into that
	// shard's snapshot at the last committed checkpoint (0 before any).
	Cuts []uint64
}

// Manifest wire layout: magic, version, shard count, epoch, one cut per
// shard, then a CRC-32C over everything before it.
const (
	manifestMagic   = "VITRISHD"
	manifestVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encode renders the manifest's wire bytes.
func (m *Manifest) encode() []byte {
	buf := make([]byte, 0, len(manifestMagic)+4+4+8+8*len(m.Cuts)+4)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Shards))
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	for _, c := range m.Cuts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decode parses and verifies manifest bytes.
func decode(data []byte) (*Manifest, error) {
	header := len(manifestMagic) + 4 + 4 + 8
	if len(data) < header+4 {
		return nil, fmt.Errorf("shard: manifest truncated (%d bytes)", len(data))
	}
	if string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("shard: bad manifest magic %q", data[:len(manifestMagic)])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != sum {
		return nil, fmt.Errorf("shard: manifest checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	off := len(manifestMagic)
	if v := binary.LittleEndian.Uint32(data[off:]); v != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", v)
	}
	off += 4
	m := &Manifest{Shards: int(binary.LittleEndian.Uint32(data[off:]))}
	off += 4
	m.Epoch = binary.LittleEndian.Uint64(data[off:])
	off += 8
	if m.Shards <= 0 {
		return nil, fmt.Errorf("shard: manifest shard count %d", m.Shards)
	}
	if want := off + 8*m.Shards; len(body) != want {
		return nil, fmt.Errorf("shard: manifest holds %d bytes of cuts, want %d shards", len(body)-off, m.Shards)
	}
	m.Cuts = make([]uint64, m.Shards)
	for i := range m.Cuts {
		m.Cuts[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	return m, nil
}

// ReadManifest loads and verifies the manifest at path. A missing file
// reports through storefmt.IsNotExist; any other failure (truncation,
// torn write, checksum mismatch) is an error — a sharded store without a
// readable manifest must not be opened with guessed parameters.
func ReadManifest(fsys vfs.FS, path string) (*Manifest, error) {
	f, err := fsys.OpenFile(path, readOnly, 0)
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("shard: read manifest %s: %w", path, rerr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("shard: read manifest %s: %w", path, cerr)
	}
	m, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteManifest atomically replaces the manifest at path: temp file,
// fsync, rename, directory sync. This is the commit point of a sharded
// checkpoint — until the rename lands, recovery sees the previous
// manifest and the previous per-shard cuts, which the retained journal
// suffixes still satisfy.
func WriteManifest(fsys vfs.FS, path string, m *Manifest) error {
	data := m.encode()
	return storefmt.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteManifestUnsafe overwrites the manifest in place — truncate, two
// raw writes, no sync, no rename. It exists only so the crash suite can
// prove WriteManifest's atomicity is load-bearing: with this version, a
// power cut between the truncate and the final write leaves a torn
// manifest and recovery of the whole store fails.
func WriteManifestUnsafe(fsys vfs.FS, path string, m *Manifest) error {
	data := m.encode()
	f, err := fsys.OpenFile(path, writeCreateTrunc, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data[:len(data)/2]); err == nil {
		_, err = f.Write(data[len(data)/2:])
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
