package vitri

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vitri/internal/core"
)

// Differential suite for the query-by-image workload: SearchImage must be
// bit-identical to a brute-force per-triplet scan, at every shard count
// and under every pre-filter knob, and its stats must obey the same
// ops+skips accounting invariant as whole-video search. The oracle shares
// no machinery with the index path — it summarizes each video directly
// and takes the max SharedFrames over all of its triplets — so agreement
// here covers the range radius (no false dismissals for a zero-radius-
// class probe), the signature gate, the quantized leaf decode and the
// scatter-gather merge at once.

// imageOracle ranks a corpus against one frame by brute force: each
// video's score is the maximum estimated shared-frame count between the
// probe's single triplet and any triplet of the video's summary
// (summarized exactly as Add does). Videos with no positive cell are
// omitted, ties break by id, the list truncates at k.
func imageOracle(t *testing.T, db *DB, videos []Video, frame Vector, k int) []Match {
	t.Helper()
	q, err := db.ImageSummary(frame)
	if err != nil {
		t.Fatalf("ImageSummary: %v", err)
	}
	if len(q.Triplets) != 1 {
		t.Fatalf("image probe summarized to %d triplets, want 1", len(q.Triplets))
	}
	qt := &q.Triplets[0]
	var out []Match
	for i := range videos {
		v := &videos[i]
		s := Summarize(v.ID, v.Frames, db.Epsilon(), db.Seed()+int64(v.ID))
		best := 0.0
		for ti := range s.Triplets {
			if sh := core.SharedFrames(qt, &s.Triplets[ti]); sh > best {
				best = sh
			}
		}
		if best > 0 {
			out = append(out, Match{VideoID: v.ID, Similarity: best, Shared: best})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].VideoID < out[j].VideoID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// overlapClusterVideo builds a video of two gaussian frame clusters whose
// summarized hyperspheres overlap: centers 0.25 apart with radii around
// ε/2, so a probe at the midpoint scores positive SharedFrames against
// BOTH triplets. That is the configuration where the max-cell fold and
// the clamped sum fold provably differ — the corpus member that gives the
// oracle suite its teeth.
func overlapClusterVideo(id, dim int) Video {
	r := rand.New(rand.NewSource(int64(id)*31 + 5))
	frames := make([]Vector, 0, 60)
	for c := 0; c < 2; c++ {
		for i := 0; i < 30; i++ {
			f := make(Vector, dim)
			for j := range f {
				f[j] = 0.5 + r.NormFloat64()*0.04
			}
			f[0] += 0.25 * float64(c)
			frames = append(frames, f)
		}
	}
	return Video{ID: id, Frames: frames}
}

// overlapProbe is the midpoint of overlapClusterVideo's two cluster
// centers.
func overlapProbe(dim int) Vector {
	f := make(Vector, dim)
	for j := range f {
		f[j] = 0.5
	}
	f[0] += 0.125
	return f
}

// imageProbes derives a deterministic probe set from the corpus: frames
// of indexed videos (guaranteed hits), plus jittered copies and one
// uniform histogram (a probe with no planted match).
func imageProbes(videos []Video, n int) []Vector {
	r := rand.New(rand.NewSource(99))
	var probes []Vector
	for len(probes) < n-1 {
		v := &videos[r.Intn(len(videos))]
		f := v.Frames[r.Intn(len(v.Frames))]
		probes = append(probes, f)
		noisy := make(Vector, len(f))
		sum := 0.0
		for i := range f {
			noisy[i] = f[i] + math.Abs(r.NormFloat64())*0.002
			sum += noisy[i]
		}
		for i := range noisy {
			noisy[i] /= sum
		}
		probes = append(probes, noisy)
	}
	dim := len(videos[0].Frames[0])
	flat := make(Vector, dim)
	for i := range flat {
		flat[i] = 1 / float64(dim)
	}
	return append(probes[:n-1], flat)
}

// TestSearchImageEquivalence proves the image workload against the
// brute-force oracle across the full configuration matrix: shard counts
// {1, 2, 3, 8} × signature tier on/off × quantized leaves on/off, both
// query modes. Rankings compare by Float64bits; stats must satisfy
// SimilarityOps + SignatureSkips == the tier-off SimilarityOps at every
// shard count, and the tier must demonstrably fire over the probe set.
func TestSearchImageEquivalence(t *testing.T) {
	videos := ingestCorpus(91, 48)
	videos = append(videos, overlapClusterVideo(len(videos), 8))
	probes := append(imageProbes(videos[:len(videos)-1], 8), overlapProbe(8))
	const k = 10

	type config struct {
		name  string
		noSig bool
		unq   bool
	}
	configs := []config{
		{"default", false, false},
		{"prefilter-off", true, false},
		{"unquantized", false, true},
		{"both-off", true, true},
	}

	// Baseline ops per (probe, mode) from the single-shard tier-off
	// engine, for the cross-configuration accounting invariant.
	baseOps := make(map[int]map[QueryMode]int)
	totalSkips := 0
	for _, shards := range equivShardCounts {
		for _, cfg := range configs {
			db := New(Options{
				Epsilon: 0.3, Seed: 7, Shards: shards,
				DisablePreFilter: cfg.noSig, UnquantizedPages: cfg.unq,
			})
			if _, err := db.AddBatch(videos); err != nil {
				t.Fatalf("shards=%d %s: AddBatch: %v", shards, cfg.name, err)
			}
			if err := db.forceBuild(); err != nil {
				t.Fatalf("shards=%d %s: forceBuild: %v", shards, cfg.name, err)
			}
			for pi, frame := range probes {
				want := imageOracle(t, db, videos, frame, k)
				for _, mode := range []QueryMode{Naive, Composed} {
					got, stats, err := db.SearchImage(frame, k, mode)
					if err != nil {
						t.Fatalf("shards=%d %s probe %d: SearchImage: %v", shards, cfg.name, pi, err)
					}
					if !matchesIdentical(got, want) {
						t.Fatalf("shards=%d %s probe %d mode %v: ranking diverges from oracle\n got: %+v\nwant: %+v",
							shards, cfg.name, pi, mode, got, want)
					}
					if cfg.noSig && stats.SignatureSkips != 0 {
						t.Fatalf("shards=%d %s probe %d: %d skips with the tier disabled", shards, cfg.name, pi, stats.SignatureSkips)
					}
					ops := stats.SimilarityOps + stats.SignatureSkips
					if shards == 1 && cfg.noSig && cfg.unq {
						if baseOps[pi] == nil {
							baseOps[pi] = make(map[QueryMode]int)
						}
						baseOps[pi][mode] = ops
					} else if want, ok := baseOps[pi][mode]; ok && ops != want {
						t.Fatalf("shards=%d %s probe %d mode %v: ops(%d)+skips(%d) = %d, want baseline %d",
							shards, cfg.name, pi, mode, stats.SimilarityOps, stats.SignatureSkips, ops, want)
					}
					if cfg.name == "default" {
						totalSkips += stats.SignatureSkips
					}
				}
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("signature tier never pruned an image candidate; the equivalence claim is vacuous")
	}
}

// TestSearchImageOracleHasTeeth re-runs one configuration against a
// deliberately broken oracle — the clamped *sum* fold whole-video search
// uses instead of the image workload's max-cell fold — and requires a
// divergence. If this ever passes silently, the corpus has degenerated to
// one triplet per video and the suite above stopped proving fold
// correctness.
func TestSearchImageOracleHasTeeth(t *testing.T) {
	videos := ingestCorpus(91, 48)
	videos = append(videos, overlapClusterVideo(len(videos), 8))
	probes := append(imageProbes(videos[:len(videos)-1], 8), overlapProbe(8))
	const k = 10
	db := New(Options{Epsilon: 0.3, Seed: 7})
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	diverged := false
	for _, frame := range probes {
		q, err := db.ImageSummary(frame)
		if err != nil {
			t.Fatalf("ImageSummary: %v", err)
		}
		qt := &q.Triplets[0]
		var wrong []Match
		for i := range videos {
			v := &videos[i]
			s := Summarize(v.ID, v.Frames, db.Epsilon(), db.Seed()+int64(v.ID))
			sum := 0.0
			for ti := range s.Triplets {
				sum += core.SharedFrames(qt, &s.Triplets[ti])
			}
			if c := float64(qt.Count); sum > c {
				sum = c
			}
			if sum > 0 {
				wrong = append(wrong, Match{VideoID: v.ID, Similarity: sum, Shared: sum})
			}
		}
		sort.Slice(wrong, func(i, j int) bool {
			if wrong[i].Similarity != wrong[j].Similarity {
				return wrong[i].Similarity > wrong[j].Similarity
			}
			return wrong[i].VideoID < wrong[j].VideoID
		})
		if len(wrong) > k {
			wrong = wrong[:k]
		}
		got, _, err := db.SearchImage(frame, k, Composed)
		if err != nil {
			t.Fatalf("SearchImage: %v", err)
		}
		if !matchesIdentical(got, wrong) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("sum-fold oracle agreed with SearchImage on every probe; the max-fold equivalence test has no teeth")
	}
}

// TestSearchImageValidation covers the probe-side error paths.
func TestSearchImageValidation(t *testing.T) {
	db := New(Options{Epsilon: 0.3, Seed: 7})
	videos := ingestCorpus(92, 4)
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if _, _, err := db.SearchImage(nil, 5, Composed); err == nil {
		t.Error("empty frame accepted")
	}
	if _, _, err := db.SearchImage(Vector{0.5, math.NaN()}, 5, Composed); err == nil {
		t.Error("NaN frame accepted")
	}
	if _, _, err := db.SearchImage(Vector{0.5, math.Inf(1)}, 5, Composed); err == nil {
		t.Error("Inf frame accepted")
	}
	if _, _, err := db.SearchImage(videos[0].Frames[0], 0, Composed); err == nil {
		t.Error("k=0 accepted")
	}
	empty := New(Options{Epsilon: 0.3, Seed: 7})
	if _, _, err := empty.SearchImage(Vector{1, 0}, 5, Composed); err == nil {
		t.Error("empty database should error")
	}
}
