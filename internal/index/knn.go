package index

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vitri/internal/core"
	"vitri/internal/pager"
	"vitri/internal/refpoint"
	"vitri/internal/sig"
)

// Mode selects the KNN range-processing strategy of §5.2.
type Mode int

const (
	// Naive issues one B+-tree range search per query triplet, re-reading
	// any leaf pages shared by overlapping ranges.
	Naive Mode = iota
	// Composed merges overlapping ranges first so every leaf page is
	// fetched at most once per query (query composition).
	Composed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Naive:
		return "naive"
	case Composed:
		return "composed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Result is one ranked video.
type Result struct {
	VideoID int
	// Similarity is the estimated §3.1 video similarity in [0, 1].
	Similarity float64
	// Shared is the un-normalized estimated shared-frame count.
	Shared float64
}

// SearchStats reports the work a query performed. PageReads counts
// physical page reads attributable to this search; SimilarityOps counts
// ViTri-pair similarity evaluations (the paper's CPU-cost proxy);
// SignatureSkips counts covered candidate evaluations the signature
// pre-filter tier proved zero-shared and discarded before the exact
// geometry — SimilarityOps + SignatureSkips is invariant under the tier
// being on or off. Every counter is accumulated per query — PageReads in
// particular is exact even with any number of concurrent searches on the
// same index, because each scan carries its own pager.ScanStats instead
// of diffing the pager's shared counters.
type SearchStats struct {
	Ranges         int
	Candidates     int
	SimilarityOps  int
	SignatureSkips int
	PageReads      uint64
}

// add folds another query-part's counters in.
func (s *SearchStats) add(o *SearchStats) {
	s.Ranges += o.Ranges
	s.Candidates += o.Candidates
	s.SimilarityOps += o.SimilarityOps
	s.SignatureSkips += o.SignatureSkips
	s.PageReads += o.PageReads
}

// queryTriplet is a prepared query-side triplet with its 1-D search
// ranges (one for single-reference mappers, up to one per partition for
// the iDistance mapper) and, when the signature tier is on, its point
// signature for the pre-filter gate.
type queryTriplet struct {
	vt     *core.ViTri
	ranges []refpoint.KeyRange
	psig   *sig.Signature
}

// covers reports whether any of the triplet's ranges contains key.
func (qt *queryTriplet) covers(key float64) bool {
	for _, r := range qt.ranges {
		if key >= r.Lo && key <= r.Hi {
			return true
		}
	}
	return false
}

// videoScore accumulates per-video similarity evidence as canonical
// (query triplet, db cluster) cells. Each cell is written by exactly one
// (query triplet, record) evaluation — scan ranges for one triplet are
// disjoint, and a video's cluster ordinal names one record — so the cell
// map is a pure function of (query, video contents), independent of scan
// order, task split, parallelism, or how the key space was mapped. That
// independence is what lets a sharded database reproduce the single-index
// engine's similarities bit for bit: rankLocked folds the cells in a
// canonical order of its own choosing.
type videoScore struct {
	cells  map[int64]float64 // cellKey(qi, cn) -> shared frames
	dbCnts map[int32]int32   // db cluster ordinal -> |C|
}

// cellKey packs a query triplet index and a db cluster ordinal into one
// map key: qi in the high 32 bits, cn (as unsigned) in the low 32.
func cellKey(qi int, cn int32) int64 {
	return int64(qi)<<32 | int64(uint32(cn))
}

// merge folds another score for the same video in. Cells are keyed by
// (query triplet, cluster), each set by exactly one evaluation, so the
// union is order-independent — merge order across tasks cannot change
// the ranked output.
func (vs *videoScore) merge(o *videoScore) {
	for k, s := range o.cells {
		vs.cells[k] += s
	}
	for cn, c := range o.dbCnts {
		vs.dbCnts[cn] = c
	}
}

// scanTask is one disjoint B+-tree range scan: the 1-D interval plus the
// query triplets to evaluate candidates against. Naive mode emits one
// task per triplet range; composed mode emits one task per merged
// interval. Tasks are independent, which is what the worker pool
// exploits.
type scanTask struct {
	lo, hi  float64
	members []int
}

// taskResult is one scanTask's private output: a lock-free score map and
// the task's own counters, merged by the caller after the pool barrier.
type taskResult struct {
	stats  SearchStats
	scores map[int32]*videoScore
}

// Search returns the top-k most similar videos to the summarized query.
// The query's own video id, if indexed, participates like any other video.
// Disjoint range scans run on a bounded worker pool sized by
// Options.SearchParallelism.
func (ix *Index) Search(q *core.Summary, k int, mode Mode) ([]Result, SearchStats, error) {
	return ix.SearchParallel(q, k, mode, 0)
}

// SearchParallel is Search with an explicit intra-query parallelism
// override: the number of goroutines scanning this query's disjoint
// ranges. 0 uses the index's configured SearchParallelism (which itself
// defaults to GOMAXPROCS); 1 forces a fully sequential search. Results
// and stats are identical at every setting.
func (ix *Index) SearchParallel(q *core.Summary, k int, mode Mode, parallelism int) ([]Result, SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, errors.New("index: k must be positive")
	}
	if parallelism <= 0 {
		parallelism = ix.opts.SearchParallelism
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	if len(q.Triplets) == 0 {
		return nil, SearchStats{}, nil
	}
	qts, scores, stats, err := ix.scanQueryLocked(q, mode, parallelism)
	if err != nil {
		return nil, SearchStats{}, err
	}
	return ix.rankLocked(q, qts, scores, k), stats, nil
}

// scanQueryLocked is the scan pipeline every query shape shares: prepare
// the query triplets (1-D ranges plus, when the tier is on, point
// signatures), build the mode's disjoint scan tasks, run them on the
// worker pool and merge the per-task score maps into one canonical cell
// map per video. Only the final ranking differs between whole-video KNN
// (rankLocked's clamped two-sided fold) and the image probe (rankImage's
// best-cell fold) — both consume this function's output, so the stats
// contract (exact per-query PageReads, SimilarityOps + SignatureSkips
// invariant under the tier) holds for every workload by construction.
// Caller holds at least a read lock and has checked q is non-empty.
func (ix *Index) scanQueryLocked(q *core.Summary, mode Mode, parallelism int) ([]queryTriplet, map[int32]*videoScore, SearchStats, error) {
	var stats SearchStats
	cellW := sig.CellWidth(ix.opts.Epsilon)
	qts := make([]queryTriplet, len(q.Triplets))
	for i := range q.Triplets {
		vt := &q.Triplets[i]
		if len(vt.Position) != ix.dim {
			return nil, nil, stats, fmt.Errorf("index: query dimensionality %d, index is %d", len(vt.Position), ix.dim)
		}
		qts[i] = queryTriplet{
			vt:     vt,
			ranges: ix.tr.Ranges(vt.Position, vt.Radius+ix.opts.Epsilon/2),
		}
		if !ix.opts.DisableSignatures {
			qts[i].psig = sig.FromTriplet(vt.Position, vt.Radius, cellW)
		}
	}

	var tasks []scanTask
	switch mode {
	case Naive:
		for qi := range qts {
			for _, kr := range qts[qi].ranges {
				tasks = append(tasks, scanTask{lo: kr.Lo, hi: kr.Hi, members: []int{qi}})
			}
		}
	case Composed:
		for _, iv := range composeRanges(qts) {
			tasks = append(tasks, scanTask{lo: iv.lo, hi: iv.hi, members: iv.members})
		}
	default:
		return nil, nil, stats, fmt.Errorf("index: unknown mode %v", mode)
	}

	results, err := ix.runTasks(qts, tasks, parallelism)
	if err != nil {
		return nil, nil, stats, err
	}

	// Merge per-task score maps. Scores are canonical (qi, cluster) cells
	// — see videoScore — so the merge is an order-independent union and
	// parallel, sequential, and sharded searches all return byte-identical
	// results.
	scores := make(map[int32]*videoScore)
	for i := range results {
		stats.add(&results[i].stats)
		for vid, vs := range results[i].scores {
			if dst := scores[vid]; dst != nil {
				dst.merge(vs)
			} else {
				scores[vid] = vs
			}
		}
	}

	return qts, scores, stats, nil
}

// runTasks executes every scan task, fanning out across min(parallelism,
// len(tasks)) workers when parallelism permits. Workers pull task indices
// from an atomic cursor (work stealing balances uneven interval sizes)
// and write into their task's private slot, so the accumulate path needs
// no locks; the first error wins.
func (ix *Index) runTasks(qts []queryTriplet, tasks []scanTask, parallelism int) ([]taskResult, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	out := make([]taskResult, len(tasks))
	if parallelism <= 1 {
		for i := range tasks {
			if err := ix.runTask(qts, &tasks[i], &out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		cursor   int64 = -1
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= len(tasks) {
					return
				}
				if err := ix.runTask(qts, &tasks[i], &out[i]); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runTask scans one disjoint range and accumulates candidate evidence
// into the task's private score map. Page reads are attributed to this
// task via a scan-local counter, never the pager's shared one.
//
// The exact triplet for a record comes from the catalog, not the leaf
// bytes: leaf records may be float32-quantized (Options.UnquantizedLeaves
// unset), and similarity must fold full-precision float64 values to stay
// byte-identical across encodings, parallelism, and sharding. A record
// with no catalog entry (the orphan residue of a doubly-failed insert)
// is skipped — with no entry it could never be ranked anyway.
//
// Between range coverage and the exact geometry sits the signature gate:
// first the video-level signature (union planes, max radius), then the
// per-triplet one. A prune at either level is a proof that this (query
// triplet, record) pair shares zero frames (sig.Prune), so skipping it
// leaves every score cell — and therefore every returned result — exactly
// as the ungated engine would produce. Skips are counted so
// SimilarityOps + SignatureSkips stays invariant under the gate.
func (ix *Index) runTask(qts []queryTriplet, tk *scanTask, res *taskResult) error {
	res.scores = make(map[int32]*videoScore)
	res.stats.Ranges = 1
	var (
		rec Record
		sc  pager.ScanStats
	)
	cellW := sig.CellWidth(ix.opts.Epsilon)
	err := ix.tree.RangeScanStats(tk.lo, tk.hi, &sc, func(key float64, val []byte) bool {
		if ix.decodeRec(val, &rec) != nil {
			return false
		}
		res.stats.Candidates++
		info := ix.catalog[rec.VideoID]
		if info == nil || rec.ClusterN < 0 || int(rec.ClusterN) >= len(info.trips) {
			return true
		}
		trip := &info.trips[rec.ClusterN]
		for _, qi := range tk.members {
			qt := &qts[qi]
			if !qt.covers(key) {
				continue
			}
			if qt.psig != nil && info.vsig != nil {
				if sig.Prune(sig.GapScore(qt.psig, info.vsig), qt.vt.Radius+info.vsig.MaxRadius, cellW) ||
					sig.Prune(sig.GapScore(qt.psig, info.tsigs[rec.ClusterN]), qt.vt.Radius+trip.Radius, cellW) {
					res.stats.SignatureSkips++
					continue
				}
			}
			res.stats.SimilarityOps++
			if shared := core.SharedFrames(qt.vt, trip); shared > 0 {
				vs := res.scores[rec.VideoID]
				if vs == nil {
					vs = &videoScore{
						cells:  make(map[int64]float64),
						dbCnts: make(map[int32]int32),
					}
					res.scores[rec.VideoID] = vs
				}
				vs.cells[cellKey(qi, rec.ClusterN)] += shared
				vs.dbCnts[rec.ClusterN] = rec.Count
			}
		}
		return true
	})
	res.stats.PageReads = sc.Reads
	return err
}

// scoreCell is one unpacked (query triplet, db cluster) evidence cell,
// the unit rankLocked's canonical fold sorts and sums.
type scoreCell struct {
	qi, cn int32
	v      float64
}

// rankLocked turns accumulated scores into the sorted top-k result list.
// Caller holds at least a read lock. Every float summation runs in a
// canonical order derived from the cells themselves — query-side sums
// fold each triplet's cells in ascending cluster order, db-side sums fold
// each cluster's cells in ascending triplet order — so the returned
// similarities are a pure function of (query, matching video contents):
// identical run to run, at every parallelism, and across any sharding of
// the database.
func (ix *Index) rankLocked(q *core.Summary, qts []queryTriplet, scores map[int32]*videoScore, k int) []Result {
	results := make([]Result, 0, len(scores))
	var cells []scoreCell
	for vid, vs := range scores {
		info := ix.catalog[vid]
		cells = cells[:0]
		for key, v := range vs.cells {
			cells = append(cells, scoreCell{qi: int32(key >> 32), cn: int32(uint32(key)), v: v})
		}
		var total float64
		// Query side: per triplet (ascending), clamp Σ shared at the
		// triplet's own frame count.
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].qi != cells[j].qi {
				return cells[i].qi < cells[j].qi
			}
			return cells[i].cn < cells[j].cn
		})
		for i := 0; i < len(cells); {
			j := i
			var s float64
			for ; j < len(cells) && cells[j].qi == cells[i].qi; j++ {
				s += cells[j].v
			}
			if c := float64(qts[cells[i].qi].vt.Count); s > c {
				s = c
			}
			total += s
			i = j
		}
		// DB side: per cluster (ascending), clamp at the cluster's |C|.
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].cn != cells[j].cn {
				return cells[i].cn < cells[j].cn
			}
			return cells[i].qi < cells[j].qi
		})
		for i := 0; i < len(cells); {
			j := i
			var s float64
			for ; j < len(cells) && cells[j].cn == cells[i].cn; j++ {
				s += cells[j].v
			}
			if c := float64(vs.dbCnts[cells[i].cn]); s > c {
				s = c
			}
			total += s
			i = j
		}
		if total <= 0 {
			continue
		}
		sim := total / float64(q.FrameCount+info.frameCount)
		if sim > 1 {
			sim = 1
		}
		results = append(results, Result{VideoID: int(vid), Similarity: sim, Shared: total})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].VideoID < results[j].VideoID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// interval is one composed 1-D search range with the query triplets whose
// ranges it absorbed.
type interval struct {
	lo, hi  float64
	members []int
}

// composeRanges merges overlapping per-triplet ranges (§5.2 query
// composition). Returned intervals are disjoint and sorted.
func composeRanges(qts []queryTriplet) []interval {
	var ivs []interval
	for i := range qts {
		for _, kr := range qts[i].ranges {
			ivs = append(ivs, interval{lo: kr.Lo, hi: kr.Hi, members: []int{i}})
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			last.members = append(last.members, iv.members...)
			continue
		}
		out = append(out, iv)
	}
	return out
}
