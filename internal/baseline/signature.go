package baseline

import (
	"errors"
	"math/rand"

	"vitri/internal/vec"
)

// SignatureScheme is the randomized summarization of Cheung & Zakhor [6]:
// m seed vectors are drawn once for the whole database; a video's
// signature assigns to every seed the video frame closest to it. Two
// videos are similar to the extent their signatures agree seed-by-seed.
// The paper notes its weakness — seeds may sample non-matching frames from
// two almost-identical sequences — which is visible in the precision
// experiments.
type SignatureScheme struct {
	Seeds   []vec.Vector
	epsilon float64
}

// Signature is one video's signature under a scheme.
type Signature struct {
	VideoID int
	Nearest []vec.Vector // Nearest[i] = the frame closest to scheme seed i
}

// NewSignatureScheme draws m seeds by sampling random frames from the
// provided corpus sample (the usual construction: seeds live where data
// lives).
func NewSignatureScheme(sample []vec.Vector, m int, epsilon float64, seed int64) (*SignatureScheme, error) {
	if m <= 0 {
		return nil, errors.New("baseline: signature seed count must be positive")
	}
	if len(sample) == 0 {
		return nil, errors.New("baseline: empty sample for signature seeds")
	}
	if epsilon <= 0 {
		return nil, errors.New("baseline: epsilon must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SignatureScheme{epsilon: epsilon}
	for i := 0; i < m; i++ {
		s.Seeds = append(s.Seeds, vec.Clone(sample[rng.Intn(len(sample))]))
	}
	return s, nil
}

// Summarize computes a video's signature.
func (s *SignatureScheme) Summarize(videoID int, frames []vec.Vector) Signature {
	sig := Signature{VideoID: videoID, Nearest: make([]vec.Vector, len(s.Seeds))}
	if len(frames) == 0 {
		return sig
	}
	for i, seed := range s.Seeds {
		best, bestD := 0, vec.Dist2(frames[0], seed)
		for fi := 1; fi < len(frames); fi++ {
			if d := vec.Dist2(frames[fi], seed); d < bestD {
				best, bestD = fi, d
			}
		}
		sig.Nearest[i] = frames[best]
	}
	return sig
}

// Similarity is the fraction of seeds whose assigned frames from the two
// videos are within ε of each other.
func (s *SignatureScheme) Similarity(a, b *Signature) float64 {
	if len(a.Nearest) != len(s.Seeds) || len(b.Nearest) != len(s.Seeds) {
		return 0
	}
	eps2 := s.epsilon * s.epsilon
	hits := 0
	total := 0
	for i := range s.Seeds {
		if a.Nearest[i] == nil || b.Nearest[i] == nil {
			continue
		}
		total++
		if vec.Dist2(a.Nearest[i], b.Nearest[i]) <= eps2 {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// KNN ranks corpus signatures against the query signature.
func (s *SignatureScheme) KNN(q *Signature, corpus []Signature, k int) []Ranked {
	scores := make([]Ranked, len(corpus))
	for i := range corpus {
		scores[i] = Ranked{VideoID: corpus[i].VideoID, Similarity: s.Similarity(q, &corpus[i])}
	}
	return rankTopK(scores, k)
}
