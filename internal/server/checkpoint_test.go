package server

import (
	"errors"
	"io/fs"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vitri"
	"vitri/internal/vfs"
)

// durableCorpus opens a durable DB in a temp dir and loads n synthetic
// videos through the journaled path.
func durableCorpus(t *testing.T, n int) (*vitri.DB, [][]vitri.Vector) {
	t.Helper()
	db, err := vitri.OpenDurable(t.TempDir(), vitri.Options{Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	videos := make([][]vitri.Vector, n)
	for i := range videos {
		videos[i] = synthVideo(r, 8, 2, 15, 0.2, 0.8)
		if err := db.Add(i, videos[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, videos
}

func TestCheckpointEndpoint(t *testing.T) {
	db, videos := durableCorpus(t, 6)
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	// The six adds sit in the journal; /stats should say so.
	var stats statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stats)
	if stats.Durability == nil {
		t.Fatal("durable DB reported no durability stats")
	}
	if stats.Durability.JournalDepth != 6 {
		t.Fatalf("journal depth = %d, want 6", stats.Durability.JournalDepth)
	}

	// Folding the journal empties it and bumps the snapshot position.
	var ck checkpointResponse
	resp = postJSON(t, ts.URL+"/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &ck)
	if ck.JournalDepth != 0 || ck.SnapshotSeq != 6 || ck.Checkpoints != 1 {
		t.Fatalf("checkpoint response = %+v, want depth 0, seq 6, count 1", ck)
	}

	// The checkpointed store still answers searches.
	var sr searchResponse
	resp = postJSON(t, ts.URL+"/search", searchRequest{Frames: framesJSON(videos[2]), K: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after checkpoint: status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &sr)
	if len(sr.Matches) != 1 || sr.Matches[0].VideoID != 2 {
		t.Fatalf("search after checkpoint: matches %+v, want video 2", sr.Matches)
	}
}

func TestCheckpointNotDurable(t *testing.T) {
	db, _ := testCorpus(t, 3, vitri.Options{})
	srv := New(db, Config{ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	resp := postJSON(t, ts.URL+"/checkpoint", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on non-durable DB: status %d, want 409", resp.StatusCode)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	db, _ := durableCorpus(t, 0)
	srv := New(db, Config{CheckpointEvery: 3, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/insert", insertRequest{ID: i, Frames: framesJSON(synthVideo(r, 8, 2, 10, 0.2, 0.8))})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
	}
	// The third insert crosses the threshold; the checkpoint runs detached
	// from the request, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for db.DurabilityStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 4 inserts with CheckpointEvery=3 (stats %+v)", db.DurabilityStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ds := db.DurabilityStats(); ds.SnapshotSeq < 3 {
		t.Fatalf("snapshot seq = %d after auto checkpoint, want >= 3", ds.SnapshotSeq)
	}
}

// failSnapshotFS fails creating the snapshot's temp file while armed and
// counts every attempt. Journal appends keep working, so inserts still
// succeed — only checkpoints fail, the retry-storm scenario.
type failSnapshotFS struct {
	vfs.FS
	fail     atomic.Bool
	attempts atomic.Int64
}

func (f *failSnapshotFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	if strings.HasSuffix(name, "snapshot.vitri.tmp") {
		f.attempts.Add(1)
		if f.fail.Load() {
			return nil, errors.New("injected snapshot write failure")
		}
	}
	return f.FS.OpenFile(name, flag, perm)
}

// TestAutoCheckpointFailureCooldown: one failed automatic checkpoint
// must start the cooldown — later mutations over the depth threshold do
// NOT relaunch it — and the failure must be visible in /stats until a
// successful checkpoint clears it.
func TestAutoCheckpointFailureCooldown(t *testing.T) {
	fsys := &failSnapshotFS{FS: vfs.NewMemFS()}
	db, err := vitri.OpenDurable("db", vitri.Options{Epsilon: 0.3, Seed: 1, Durable: &vitri.DurableOptions{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{CheckpointEvery: 2, CheckpointCooldown: time.Hour, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close(t.Context())

	fsys.fail.Store(true)
	base := fsys.attempts.Load()
	r := rand.New(rand.NewSource(9))
	insert := func(id int) {
		t.Helper()
		resp := postJSON(t, ts.URL+"/insert", insertRequest{ID: id, Frames: framesJSON(synthVideo(r, 8, 2, 10, 0.2, 0.8))})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d", id, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		insert(i)
	}
	// The detached checkpoint fails; wait for the failure to be recorded.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lastErr, _, _ := srv.checkpointHealth(); lastErr != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failed automatic checkpoint never recorded its error")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := fsys.attempts.Load(); got != base+1 {
		t.Fatalf("checkpoint attempts = %d, want exactly 1 past baseline %d", got, base)
	}
	// The journal is still over the threshold; without the cooldown each
	// of these would relaunch the doomed checkpoint.
	for i := 3; i < 8; i++ {
		insert(i)
	}
	if got := fsys.attempts.Load(); got != base+1 {
		t.Fatalf("cooldown did not hold: %d checkpoint attempts past baseline, want 1", got-base)
	}

	// /stats surfaces the standing failure.
	var stats statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stats)
	if stats.Durability == nil || !strings.Contains(stats.Durability.LastCheckpointError, "injected snapshot write failure") {
		t.Fatalf("stats durability = %+v, want last_checkpoint_error with the injected failure", stats.Durability)
	}
	if stats.Durability.LastCheckpointErrorT == "" {
		t.Fatal("stats missing last_checkpoint_error_time")
	}

	// A successful manual checkpoint clears the failure and the cooldown.
	fsys.fail.Store(false)
	cp := postJSON(t, ts.URL+"/checkpoint", struct{}{})
	cp.Body.Close()
	if cp.StatusCode != http.StatusOK {
		t.Fatalf("manual checkpoint: status %d", cp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats = statsResponse{} // omitempty fields would otherwise keep stale values
	decodeBody(t, resp, &stats)
	if stats.Durability.LastCheckpointError != "" {
		t.Fatalf("last_checkpoint_error = %q after successful checkpoint, want cleared", stats.Durability.LastCheckpointError)
	}
	if stats.Durability.LastCheckpointTime == "" {
		t.Fatal("stats missing last_checkpoint_time after successful checkpoint")
	}

	// Automatic checkpoints resume now that the cooldown is cleared.
	before := db.DurabilityStats().Checkpoints
	for i := 8; i < 11; i++ {
		insert(i)
	}
	deadline = time.Now().Add(5 * time.Second)
	for db.DurabilityStats().Checkpoints == before {
		if time.Now().After(deadline) {
			t.Fatal("automatic checkpoints did not resume after the cooldown cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
