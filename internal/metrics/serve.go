package metrics

// Serving-side instrumentation: lock-free monotone counters and a
// fixed-bucket latency histogram. Both are safe for concurrent use and
// cheap enough to sit on every request path of the HTTP server
// (internal/server); the histogram takes one short mutex hold per
// observation, the counters are single atomic adds.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations (for the
// server: request latencies in seconds). Bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last = overflow
	count  uint64
	sum    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
// It panics on an empty or unsorted bounds slice — histogram shape is a
// compile-time decision, not an input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// LatencyBounds returns the server's default latency bucket bounds in
// seconds: 100µs to ~13s, doubling per bucket (18 buckets).
func LatencyBounds() []float64 {
	out := make([]float64, 18)
	b := 100e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count  uint64
	Sum    float64
	Max    float64
	Bounds []float64
	Counts []uint64
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Max:    h.max,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
	}
}

// Merge folds another snapshot into a copy of this one: counts and sums
// add, Max takes the larger. It exists to aggregate per-shard histograms
// recorded against identical bucket bounds into one distribution.
// Snapshots with mismatched bounds cannot be meaningfully merged; the
// one with more observations wins (defensive — every fsync histogram in
// the module shares LatencyBounds).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		if o.Count > s.Count {
			return o
		}
		return s
	}
	out := HistogramSnapshot{
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    s.Max,
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]uint64(nil), s.Counts...),
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out
}

// MeanValue returns the mean observation (0 when empty).
func (s *HistogramSnapshot) MeanValue() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// within the bucket holding the target rank. Observations beyond the last
// bound are reported as the recorded maximum. Returns 0 when empty and
// NaN for p outside (0, 1].
func (s *HistogramSnapshot) Quantile(p float64) float64 {
	if p <= 0 || p > 1 {
		return math.NaN()
	}
	if s.Count == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next {
			if i == len(s.Bounds) {
				return s.Max
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			return lo + (hi-lo)*(rank-seen)/float64(c)
		}
		seen = next
	}
	return s.Max
}
