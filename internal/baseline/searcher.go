package baseline

import (
	"runtime"
	"sort"
	"sync"

	"vitri/internal/vec"
)

// ExactSearcher accelerates the exact §3.1 measure without changing its
// result: frames of every video are ordered by their distance to a fixed
// reference point, so the "∃ similar frame" test only examines candidates
// whose key lies within ε of the probe's key (the same triangle-inequality
// pruning the paper's index uses, applied at frame granularity). Results
// are bit-identical to ExactSimilarity.
type ExactSearcher struct {
	ref    vec.Vector
	videos map[int]*sortedFrames
}

// sortedFrames holds one video's frames ordered by key.
type sortedFrames struct {
	frames []vec.Vector // sorted by key
	keys   []float64
}

// newSortedFrames indexes one frame sequence against the reference.
func newSortedFrames(frames []vec.Vector, ref vec.Vector) *sortedFrames {
	sf := &sortedFrames{
		frames: make([]vec.Vector, len(frames)),
		keys:   make([]float64, len(frames)),
	}
	type kf struct {
		k float64
		f vec.Vector
	}
	tmp := make([]kf, len(frames))
	for i, f := range frames {
		tmp[i] = kf{vec.Dist(f, ref), f}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].k < tmp[j].k })
	for i, t := range tmp {
		sf.frames[i], sf.keys[i] = t.f, t.k
	}
	return sf
}

// hasMatch reports whether some frame lies within eps of probe, scanning
// only the key window [key-eps, key+eps].
func (sf *sortedFrames) hasMatch(probe vec.Vector, key, eps float64) bool {
	eps2 := eps * eps
	lo := sort.SearchFloat64s(sf.keys, key-eps)
	for i := lo; i < len(sf.keys) && sf.keys[i] <= key+eps; i++ {
		if vec.Dist2(probe, sf.frames[i]) <= eps2 {
			return true
		}
	}
	return false
}

// countMatched returns how many of the probe frames (with precomputed
// keys) have a match in sf.
func (sf *sortedFrames) countMatched(probes []vec.Vector, keys []float64, eps float64) int {
	n := 0
	for i, p := range probes {
		if sf.hasMatch(p, keys[i], eps) {
			n++
		}
	}
	return n
}

// NewExactSearcher indexes a corpus for repeated exact-measure queries.
// The reference point is the centroid of a frame sample (any fixed point
// is correct; the centroid keeps key windows tight).
func NewExactSearcher(corpus map[int][]vec.Vector) *ExactSearcher {
	var sample []vec.Vector
	for _, frames := range corpus {
		for i := 0; i < len(frames); i += 1 + len(frames)/32 {
			sample = append(sample, frames[i])
		}
	}
	if len(sample) == 0 {
		return &ExactSearcher{videos: map[int]*sortedFrames{}}
	}
	ref := vec.Mean(sample)
	s := &ExactSearcher{ref: ref, videos: make(map[int]*sortedFrames, len(corpus))}
	for id, frames := range corpus {
		s.videos[id] = newSortedFrames(frames, ref)
	}
	return s
}

// Similarity computes ExactSimilarity(query, corpus[videoID], eps).
func (s *ExactSearcher) Similarity(query []vec.Vector, videoID int, eps float64) float64 {
	sf := s.videos[videoID]
	if sf == nil || len(query) == 0 || len(sf.frames) == 0 {
		return 0
	}
	qk := make([]float64, len(query))
	for i, q := range query {
		qk[i] = vec.Dist(q, s.ref)
	}
	qsf := newSortedFrames(query, s.ref)
	matched := sf.countMatched(query, qk, eps) +
		qsf.countMatched(sf.frames, sf.keys, eps)
	return float64(matched) / float64(len(query)+len(sf.frames))
}

// KNN ranks the whole corpus against the query with the exact measure,
// spread across CPUs, and returns the top k.
func (s *ExactSearcher) KNN(query []vec.Vector, eps float64, k int) []Ranked {
	if len(query) == 0 {
		return nil
	}
	qk := make([]float64, len(query))
	for i, q := range query {
		qk[i] = vec.Dist(q, s.ref)
	}
	qsf := newSortedFrames(query, s.ref)

	ids := make([]int, 0, len(s.videos))
	for id := range s.videos {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	scores := make([]Ranked, len(ids))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				sf := s.videos[ids[i]]
				matched := sf.countMatched(query, qk, eps) +
					qsf.countMatched(sf.frames, sf.keys, eps)
				scores[i] = Ranked{
					VideoID:    ids[i],
					Similarity: float64(matched) / float64(len(query)+len(sf.frames)),
				}
			}
		}()
	}
	for i := range ids {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return rankTopK(scores, k)
}
