// Package experiments regenerates every table and figure of the paper's
// performance study (§6) on the synthetic corpus. Each runner returns
// metrics.Table values whose rows mirror what the paper reports; RunAll
// prints them in order. Absolute numbers differ from the paper's Sun E420
// testbed — the reproduction target is the shape of each result (who wins,
// by what factor, and how costs scale).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/dataset"
	"vitri/internal/index"
	"vitri/internal/metrics"
)

// Config sizes the experiments. The defaults run the full suite in
// minutes on a laptop; the paper-scale settings are reachable by raising
// Scale and the ViTri counts.
type Config struct {
	// Scale is the corpus size relative to the paper's 6,587 clips, used
	// by the precision experiments (Tables 2–3, Figures 14–15).
	Scale float64
	// Queries is the number of near-duplicate queries averaged over
	// (the paper uses 50).
	Queries int
	// K is the KNN result size (the paper uses 50).
	K int
	// Epsilon is the default frame similarity threshold (0.3 in §6.2).
	Epsilon float64
	// Seed makes the whole suite deterministic.
	Seed int64

	// ViTriCounts is the database-size sweep for Figures 16–17.
	ViTriCounts []int
	// Dims is the dimensionality sweep for Figure 18.
	Dims []int
	// FixedViTris is the database size for Figure 18.
	FixedViTris int
	// InsertBatches are the dynamic-insertion batch sizes for Figure 19
	// (the paper uses 20000, 20000, 20000, 9477).
	InsertBatches []int
	// IndexQueries is the number of query videos averaged over in the
	// index experiments (Figures 16–19).
	IndexQueries int
	// SearchParallelism is the worker-pool width the parallel-search
	// experiment compares against sequential execution (<= 0 selects
	// GOMAXPROCS).
	SearchParallelism int

	// Progress, when non-nil, receives one line per experiment stage.
	Progress io.Writer
}

// DefaultConfig returns a laptop-sized configuration that preserves every
// reported trend.
func DefaultConfig() Config {
	return Config{
		Scale:         0.05,
		Queries:       20,
		K:             50,
		Epsilon:       0.3,
		Seed:          1,
		ViTriCounts:   []int{10000, 20000, 40000, 80000},
		Dims:          []int{8, 16, 32, 64},
		FixedViTris:   20000,
		InsertBatches: []int{10000, 10000, 10000, 5000},
		IndexQueries:  10,
	}
}

// PaperConfig returns the paper-scale configuration (slow: the full
// 6,587-video corpus and 20k–90k ViTri sweeps).
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 1.0
	cfg.Queries = 50
	cfg.ViTriCounts = []int{20000, 40000, 60000, 90000}
	cfg.InsertBatches = []int{20000, 20000, 20000, 9477}
	cfg.IndexQueries = 20
	return cfg
}

// logf emits progress when configured.
func (cfg *Config) logf(format string, args ...interface{}) {
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, format+"\n", args...)
	}
}

// epsilonSweep is the ε axis of Table 3 and Figure 14.
var epsilonSweep = []float64{0.2, 0.3, 0.4, 0.5, 0.6}

// corpus generates the precision-experiment corpus for this config.
func (cfg *Config) corpus() (*dataset.Corpus, error) {
	return dataset.GenerateHist(dataset.DefaultHistConfig(cfg.Scale, cfg.Seed))
}

// summarizeCorpus summarizes every corpus video at the given ε, spreading
// videos across CPUs (summarization dominates the precision experiments'
// runtime and is embarrassingly parallel across videos).
func summarizeCorpus(c *dataset.Corpus, eps float64, seed int64) []core.Summary {
	out := make([]core.Summary, len(c.Videos))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				v := &c.Videos[i]
				out[i] = core.Summarize(v.ID, v.Frames, core.Options{Epsilon: eps, Seed: seed + int64(v.ID)})
			}
		}()
	}
	for i := range c.Videos {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// keyframesFromSummaries reuses ViTri cluster centers as the keyframe
// baseline's representatives (equal summarization budget, §6.2).
func keyframesFromSummaries(sums []core.Summary) []baseline.KeyframeSummary {
	out := make([]baseline.KeyframeSummary, len(sums))
	for i := range sums {
		ks := baseline.KeyframeSummary{VideoID: sums[i].VideoID}
		for j := range sums[i].Triplets {
			ks.Keyframes = append(ks.Keyframes, sums[i].Triplets[j].Position)
		}
		out[i] = ks
	}
	return out
}

// rankViTri scores every summary against the query summary with the core
// measure and returns the top-k video ids.
func rankViTri(q *core.Summary, sums []core.Summary, k int) []int {
	type scored struct {
		id  int
		sim float64
	}
	var ss []scored
	for i := range sums {
		if sim := core.VideoSimilarity(q, &sums[i]); sim > 0 {
			ss = append(ss, scored{sums[i].VideoID, sim})
		}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].sim != ss[j].sim {
			return ss[i].sim > ss[j].sim
		}
		return ss[i].id < ss[j].id
	})
	if len(ss) > k {
		ss = ss[:k]
	}
	ids := make([]int, len(ss))
	for i, s := range ss {
		ids[i] = s.id
	}
	return ids
}

// rankedIDs projects baseline.Ranked to ids.
func rankedIDs(rs []baseline.Ranked) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.VideoID
	}
	return ids
}

// resultIDs projects index.Result to ids.
func resultIDs(rs []index.Result) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.VideoID
	}
	return ids
}

// queryRng returns the RNG used for query derivation.
func (cfg *Config) queryRng() *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed + 777))
}

// timeIt runs f and returns its duration in microseconds.
func timeIt(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return float64(time.Since(start).Microseconds()), err
}

// RunAll executes every experiment and prints the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	type runner struct {
		name string
		fn   func(Config) ([]*metrics.Table, error)
	}
	runners := []runner{
		{"Table 2", Table2},
		{"Table 3", Table3},
		{"Figure 14", Figure14},
		{"Figure 15", Figure15},
		{"Figure 16", Figure16},
		{"Figure 17", Figure17},
		{"Figure 18", Figure18},
		{"Figure 19", Figure19},
		{"Parallel", ParallelSearch},
		{"Extension", ExtensionSummaries},
	}
	for _, r := range runners {
		cfg.logf("running %s ...", r.name)
		tables, err := r.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
