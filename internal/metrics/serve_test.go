package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000+8*10 {
		t.Fatalf("Counter = %d, want %d", got, 8*1000+8*10)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (≤1)=2, (≤2)=2, (≤4)=2, overflow=1
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 7 || s.Max != 9 {
		t.Fatalf("Count=%d Max=%v", s.Count, s.Max)
	}
	if m := s.MeanValue(); math.Abs(m-21.0/7) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	h.Observe(7) // one in (4, 8]
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want within (0, 1]", q)
	}
	if q := s.Quantile(1.0); math.Abs(q-8) > 4 {
		t.Fatalf("p100 = %v, want in the last occupied bucket", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %v", q)
	}
	if q := s.Quantile(0); !math.IsNaN(q) {
		t.Fatalf("p0 = %v, want NaN", q)
	}
}

func TestHistogramOverflowQuantileIsMax(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(40)
	h.Observe(50)
	s := h.Snapshot()
	if q := s.Quantile(0.99); q != 50 {
		t.Fatalf("overflow quantile = %v, want recorded max 50", q)
	}
}

func TestLatencyBounds(t *testing.T) {
	b := LatencyBounds()
	if len(b) == 0 || b[0] != 100e-6 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	NewHistogram(b) // must not panic
}
