package index

import (
	"bytes"
	"math"
	"testing"

	"vitri/internal/vec"
)

func TestRecordV3RoundTrip(t *testing.T) {
	// Values chosen to be exactly representable in float32, so the
	// quantize-then-widen cycle is the identity.
	rec := Record{
		VideoID:  42,
		ClusterN: 7,
		Count:    99,
		Radius:   0.125,
		Position: vec.Vector{0.5, -0.25, 0.75, 1.5},
	}
	buf := make([]byte, RecordSizeV3(4))
	if err := EncodeRecordV3(&rec, buf); err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := DecodeRecordV3(buf, 4, &got); err != nil {
		t.Fatal(err)
	}
	if got.VideoID != rec.VideoID || got.ClusterN != rec.ClusterN ||
		got.Count != rec.Count || got.Radius != rec.Radius ||
		!vec.Equal(got.Position, rec.Position) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

// TestRecordV3Quantization: values that are not float32-exact come back
// as the nearest float32 widened to float64 — the defined quantization —
// and a second encode of the decoded record reproduces the bytes
// (quantization is idempotent).
func TestRecordV3Quantization(t *testing.T) {
	rec := Record{
		VideoID:  1,
		ClusterN: 0,
		Count:    3,
		Radius:   0.1,
		Position: vec.Vector{0.3, -0.7, 1.0 / 3.0},
	}
	buf := make([]byte, RecordSizeV3(3))
	if err := EncodeRecordV3(&rec, buf); err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := DecodeRecordV3(buf, 3, &got); err != nil {
		t.Fatal(err)
	}
	if got.Radius != float64(float32(rec.Radius)) {
		t.Fatalf("radius %v, want %v", got.Radius, float64(float32(rec.Radius)))
	}
	for i, v := range rec.Position {
		if got.Position[i] != float64(float32(v)) {
			t.Fatalf("position[%d] = %v, want %v", i, got.Position[i], float64(float32(v)))
		}
	}
	buf2 := make([]byte, RecordSizeV3(3))
	if err := EncodeRecordV3(&got, buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoding the decoded record changed the bytes")
	}
}

func TestRecordV3Errors(t *testing.T) {
	rec := Record{Position: vec.Vector{1, 2}, Radius: 1, Count: 1}
	if err := EncodeRecordV3(&rec, make([]byte, 10)); err == nil {
		t.Fatal("expected encode size error")
	}
	var got Record
	if err := DecodeRecordV3(make([]byte, 10), 2, &got); err == nil {
		t.Fatal("expected decode size error")
	}

	// Values that do not survive narrowing are rejected at encode.
	for _, bad := range []Record{
		{Position: vec.Vector{1}, Radius: math.MaxFloat64, Count: 1},
		{Position: vec.Vector{1}, Radius: math.NaN(), Count: 1},
		{Position: vec.Vector{math.MaxFloat64}, Radius: 1, Count: 1},
		{Position: vec.Vector{math.Inf(1)}, Radius: 1, Count: 1},
	} {
		if err := EncodeRecordV3(&bad, make([]byte, RecordSizeV3(1))); err == nil {
			t.Fatalf("encode accepted unquantizable record %+v", bad)
		}
	}

	// Non-finite float32 bits are rejected at decode.
	mk := func(radBits, posBits uint32) []byte {
		b := make([]byte, RecordSizeV3(1))
		b[12] = byte(radBits)
		b[13] = byte(radBits >> 8)
		b[14] = byte(radBits >> 16)
		b[15] = byte(radBits >> 24)
		b[16] = byte(posBits)
		b[17] = byte(posBits >> 8)
		b[18] = byte(posBits >> 16)
		b[19] = byte(posBits >> 24)
		return b
	}
	nan32 := math.Float32bits(float32(math.NaN()))
	inf32 := math.Float32bits(float32(math.Inf(1)))
	if err := DecodeRecordV3(mk(nan32, 0), 1, &got); err == nil {
		t.Fatal("decode accepted NaN radius")
	}
	if err := DecodeRecordV3(mk(0, inf32), 1, &got); err == nil {
		t.Fatal("decode accepted Inf position")
	}
}

// TestRecordV3HalvesLeafPayload pins the size claim the fanout argument
// rests on: 16-byte header (the v2 pad is gone) + 4 bytes per dimension.
func TestRecordV3HalvesLeafPayload(t *testing.T) {
	if RecordSizeV3(64) != 272 || RecordSize(64) != 536 {
		t.Fatalf("record sizes at dim 64: v3 %d (want 272), v2 %d (want 536)", RecordSizeV3(64), RecordSize(64))
	}
	if RecordSizeV3(0) != 16 {
		t.Fatalf("v3 header = %d, want 16", RecordSizeV3(0))
	}
}
