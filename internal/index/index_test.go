package index

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/core"
	"vitri/internal/refpoint"
	"vitri/internal/vec"
)

// makeVideo synthesizes a video as a few gaussian "shots" in [0,1]^dim and
// returns its frames.
func makeVideo(r *rand.Rand, dim, shots, framesPerShot int) []vec.Vector {
	var frames []vec.Vector
	for s := 0; s < shots; s++ {
		center := make(vec.Vector, dim)
		for j := range center {
			center[j] = 0.2 + 0.6*r.Float64()
		}
		for f := 0; f < framesPerShot; f++ {
			p := make(vec.Vector, dim)
			for j := range p {
				p[j] = center[j] + r.NormFloat64()*0.02
			}
			frames = append(frames, p)
		}
	}
	return frames
}

// perturb returns a noisy near-duplicate of the given frames.
func perturb(r *rand.Rand, frames []vec.Vector, noise float64) []vec.Vector {
	out := make([]vec.Vector, len(frames))
	for i, f := range frames {
		p := vec.Clone(f)
		for j := range p {
			p[j] += r.NormFloat64() * noise
		}
		out[i] = p
	}
	return out
}

const testEps = 0.3

func summarizeAll(videos [][]vec.Vector) []core.Summary {
	out := make([]core.Summary, len(videos))
	for i, v := range videos {
		out[i] = core.Summarize(i, v, core.Options{Epsilon: testEps, Seed: int64(i + 1)})
	}
	return out
}

func buildCorpus(t *testing.T, r *rand.Rand, numVideos, dim int) ([][]vec.Vector, []core.Summary, *Index) {
	t.Helper()
	videos := make([][]vec.Vector, numVideos)
	for i := range videos {
		videos[i] = makeVideo(r, dim, 3, 30)
	}
	sums := summarizeAll(videos)
	ix, err := Build(sums, Options{Epsilon: testEps, RefKind: refpoint.Optimal})
	if err != nil {
		t.Fatal(err)
	}
	return videos, sums, ix
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{
		VideoID:  42,
		ClusterN: 7,
		Count:    99,
		Radius:   0.123456789,
		Position: vec.Vector{0.1, -0.2, 0.3, 1e-9},
	}
	buf := make([]byte, RecordSize(4))
	if err := EncodeRecord(&rec, buf); err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := DecodeRecord(buf, 4, &got); err != nil {
		t.Fatal(err)
	}
	if got.VideoID != rec.VideoID || got.ClusterN != rec.ClusterN ||
		got.Count != rec.Count || got.Radius != rec.Radius ||
		!vec.Equal(got.Position, rec.Position) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestRecordSizeErrors(t *testing.T) {
	rec := Record{Position: vec.Vector{1, 2}, Radius: 1, Count: 1}
	if err := EncodeRecord(&rec, make([]byte, 10)); err == nil {
		t.Fatal("expected encode size error")
	}
	var got Record
	if err := DecodeRecord(make([]byte, 10), 2, &got); err == nil {
		t.Fatal("expected decode size error")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{Epsilon: 0.3}); err == nil {
		t.Fatal("expected error for no summaries")
	}
	s := core.Summary{VideoID: 1, FrameCount: 1, Triplets: []core.ViTri{core.NewViTri(vec.Vector{1}, 0.1, 1)}}
	if _, err := Build([]core.Summary{s}, Options{Epsilon: 0}); err == nil {
		t.Fatal("expected error for zero epsilon")
	}
	if _, err := Build([]core.Summary{s, s}, Options{Epsilon: 0.3}); err == nil {
		t.Fatal("expected error for duplicate video ids")
	}
}

func TestSearchFindsNearDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	videos, _, ix := buildCorpus(t, r, 30, 8)
	// Query = perturbed copy of video 13.
	q := core.Summarize(1000, perturb(r, videos[13], 0.01), core.Options{Epsilon: testEps, Seed: 99})
	for _, mode := range []Mode{Naive, Composed} {
		res, stats, err := ix.Search(&q, 5, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].VideoID != 13 {
			t.Fatalf("mode %v: top result %+v, want video 13", mode, res)
		}
		// The volume-intersection estimate is conservative in higher
		// dimensions; the rank matters, plus a sanity floor.
		if res[0].Similarity < 0.2 {
			t.Fatalf("mode %v: near-duplicate similarity %v too low", mode, res[0].Similarity)
		}
		if len(res) > 1 && res[0].Similarity <= res[1].Similarity {
			t.Fatalf("mode %v: duplicate not separated: %+v", mode, res[:2])
		}
		if stats.Ranges == 0 || stats.SimilarityOps == 0 {
			t.Fatalf("mode %v: empty stats %+v", mode, stats)
		}
	}
}

// bruteForceScores computes, for every indexed video, the similarity via
// the core measure — the reference the index search must reproduce exactly
// (key pruning only removes provably-zero pairs).
func bruteForceScores(q *core.Summary, sums []core.Summary) map[int]float64 {
	out := make(map[int]float64)
	for i := range sums {
		if sim := core.VideoSimilarity(q, &sums[i]); sim > 0 {
			out[sums[i].VideoID] = sim
		}
	}
	return out
}

func TestSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	videos, sums, ix := buildCorpus(t, r, 40, 8)
	for trial := 0; trial < 5; trial++ {
		src := videos[r.Intn(len(videos))]
		q := core.Summarize(5000+trial, perturb(r, src, 0.02), core.Options{Epsilon: testEps, Seed: int64(trial)})
		want := bruteForceScores(&q, sums)
		for _, mode := range []Mode{Naive, Composed} {
			res, _, err := ix.Search(&q, len(sums), mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(want) {
				t.Fatalf("mode %v: %d results, brute force has %d", mode, len(res), len(want))
			}
			for _, rr := range res {
				w, ok := want[rr.VideoID]
				if !ok {
					t.Fatalf("mode %v: unexpected video %d", mode, rr.VideoID)
				}
				if math.Abs(rr.Similarity-w) > 1e-9 {
					t.Fatalf("mode %v: video %d similarity %v, brute force %v", mode, rr.VideoID, rr.Similarity, w)
				}
			}
		}
	}
}

func TestNaiveAndComposedAgree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	videos, _, ix := buildCorpus(t, r, 50, 8)
	q := core.Summarize(9000, perturb(r, videos[7], 0.02), core.Options{Epsilon: testEps, Seed: 1})
	rn, sn, err := ix.Search(&q, 10, Naive)
	if err != nil {
		t.Fatal(err)
	}
	rc, sc, err := ix.Search(&q, 10, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rn) != len(rc) {
		t.Fatalf("result counts differ: %d vs %d", len(rn), len(rc))
	}
	for i := range rn {
		if rn[i].VideoID != rc[i].VideoID || math.Abs(rn[i].Similarity-rc[i].Similarity) > 1e-12 {
			t.Fatalf("result %d differs: %+v vs %+v", i, rn[i], rc[i])
		}
	}
	if sc.Ranges > sn.Ranges {
		t.Fatalf("composed issued more ranges (%d) than naive (%d)", sc.Ranges, sn.Ranges)
	}
	if sc.PageReads > sn.PageReads {
		t.Fatalf("composed read more pages (%d) than naive (%d)", sc.PageReads, sn.PageReads)
	}
}

func TestComposeRanges(t *testing.T) {
	mk := func(key, radius float64) queryTriplet {
		return queryTriplet{ranges: []refpoint.KeyRange{{Lo: key - radius, Hi: key + radius}}}
	}
	qts := []queryTriplet{mk(5, 1), mk(5.5, 1), mk(10, 0.5), mk(2, 0.5)}
	ivs := composeRanges(qts)
	if len(ivs) != 3 {
		t.Fatalf("expected 3 merged intervals, got %d: %+v", len(ivs), ivs)
	}
	// First: [1.5, 2.5]; second: [4, 6.5]; third: [9.5, 10.5].
	if ivs[0].lo != 1.5 || ivs[0].hi != 2.5 {
		t.Fatalf("interval 0 = %+v", ivs[0])
	}
	if ivs[1].lo != 4 || ivs[1].hi != 6.5 || len(ivs[1].members) != 2 {
		t.Fatalf("interval 1 = %+v", ivs[1])
	}
	if ivs[2].lo != 9.5 || ivs[2].hi != 10.5 {
		t.Fatalf("interval 2 = %+v", ivs[2])
	}
}

func TestSearchValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	_, _, ix := buildCorpus(t, r, 5, 8)
	q := core.Summary{VideoID: 1, FrameCount: 10}
	if _, _, err := ix.Search(&q, 0, Naive); err == nil {
		t.Fatal("expected error for k=0")
	}
	// Empty query: no results, no error.
	res, _, err := ix.Search(&q, 5, Composed)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty query: res=%v err=%v", res, err)
	}
	// Wrong dimensionality.
	bad := core.Summary{VideoID: 2, FrameCount: 1,
		Triplets: []core.ViTri{core.NewViTri(vec.Vector{1, 2}, 0.1, 1)}}
	if _, _, err := ix.Search(&bad, 5, Naive); err == nil {
		t.Fatal("expected dimensionality error")
	}
}

func TestDynamicInsertMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	videos := make([][]vec.Vector, 30)
	for i := range videos {
		videos[i] = makeVideo(r, 8, 2, 25)
	}
	sums := summarizeAll(videos)
	full, err := Build(sums, Options{Epsilon: testEps})
	if err != nil {
		t.Fatal(err)
	}
	// Build from half, insert the rest dynamically.
	dyn, err := Build(sums[:15], Options{Epsilon: testEps})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums[15:] {
		if err := dyn.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if dyn.Len() != full.Len() || dyn.Videos() != full.Videos() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", dyn.Len(), dyn.Videos(), full.Len(), full.Videos())
	}
	q := core.Summarize(7777, perturb(r, videos[20], 0.02), core.Options{Epsilon: testEps, Seed: 9})
	rFull, _, err := full.Search(&q, 30, Composed)
	if err != nil {
		t.Fatal(err)
	}
	rDyn, _, err := dyn.Search(&q, 30, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rFull) != len(rDyn) {
		t.Fatalf("result counts differ: %d vs %d", len(rFull), len(rDyn))
	}
	for i := range rFull {
		if rFull[i].VideoID != rDyn[i].VideoID || math.Abs(rFull[i].Similarity-rDyn[i].Similarity) > 1e-9 {
			t.Fatalf("result %d differs: %+v vs %+v", i, rFull[i], rDyn[i])
		}
	}
}

func TestInsertValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	_, sums, ix := buildCorpus(t, r, 5, 8)
	if err := ix.Insert(sums[0]); err == nil {
		t.Fatal("expected duplicate id error")
	}
	if err := ix.Insert(core.Summary{VideoID: 999}); err == nil {
		t.Fatal("expected empty summary error")
	}
}

func TestDriftDetectionAndRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dim := 6
	// Initial data dominant along axis 0.
	mk := func(axis int, n int, base int) []core.Summary {
		var sums []core.Summary
		for v := 0; v < n; v++ {
			var frames []vec.Vector
			for f := 0; f < 30; f++ {
				p := make(vec.Vector, dim)
				for j := range p {
					p[j] = 0.5 + r.NormFloat64()*0.01
				}
				p[axis] += r.NormFloat64() * 0.3
				frames = append(frames, p)
			}
			sums = append(sums, core.Summarize(base+v, frames, core.Options{Epsilon: testEps, Seed: int64(v)}))
		}
		return sums
	}
	ix, err := Build(mk(0, 10, 0), Options{Epsilon: testEps, RefKind: refpoint.Optimal})
	if err != nil {
		t.Fatal(err)
	}
	if a := ix.DriftAngle(); a > 0.15 {
		t.Fatalf("initial drift angle %v", a)
	}
	// Flood with data dominant along axis 1: drift grows.
	for _, s := range mk(1, 40, 100) {
		if err := ix.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	drift := ix.DriftAngle()
	if drift < 0.3 {
		t.Fatalf("drift angle %v too small after correlated insertions", drift)
	}
	rebuilt, err := ix.RebuildIfDrifted(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("expected a rebuild")
	}
	if a := ix.DriftAngle(); a > 0.15 {
		t.Fatalf("drift after rebuild = %v", a)
	}
	// The rebuilt index still answers correctly.
	res, _, err := ix.Search(&[]core.Summary{mk(1, 1, 9000)[0]}[0], 5, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results after rebuild")
	}
}

func TestRebuildPreservesContent(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	videos, _, ix := buildCorpus(t, r, 20, 8)
	q := core.Summarize(8888, perturb(r, videos[3], 0.02), core.Options{Epsilon: testEps, Seed: 2})
	before, _, err := ix.Search(&q, 20, Composed)
	if err != nil {
		t.Fatal(err)
	}
	lenBefore := ix.Len()
	if err := ix.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != lenBefore {
		t.Fatalf("rebuild changed record count: %d vs %d", ix.Len(), lenBefore)
	}
	after, _, err := ix.Search(&q, 20, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result counts differ after rebuild")
	}
	for i := range before {
		if before[i].VideoID != after[i].VideoID || math.Abs(before[i].Similarity-after[i].Similarity) > 1e-9 {
			t.Fatalf("result %d differs after rebuild: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestSearchPruningUsesIndex(t *testing.T) {
	// With many videos spread out, one query's search should read far
	// fewer pages than the whole tree occupies.
	// Correlated data (shot centers spread along one direction) is the
	// regime where the PCA-optimal reference point gives strong pruning.
	r := rand.New(rand.NewSource(9))
	dim := 16
	dir := make(vec.Vector, dim)
	for j := range dir {
		dir[j] = r.NormFloat64()
	}
	vec.Normalize(dir)
	videos := make([][]vec.Vector, 400)
	for v := range videos {
		tpos := r.Float64()*4 - 2 // position along the dominant direction
		var frames []vec.Vector
		for f := 0; f < 30; f++ {
			p := make(vec.Vector, dim)
			for j := range p {
				p[j] = 0.5 + r.NormFloat64()*0.01
			}
			vec.AXPY(p, tpos, dir)
			frames = append(frames, p)
		}
		videos[v] = frames
	}
	sums := summarizeAll(videos)
	ix, err := Build(sums, Options{Epsilon: testEps, RefKind: refpoint.Optimal})
	if err != nil {
		t.Fatal(err)
	}
	totalPages := ix.pg.NumPages()
	q := core.Summarize(4242, perturb(r, videos[50], 0.005), core.Options{Epsilon: testEps, Seed: 3})
	_, stats, err := ix.Search(&q, 10, Composed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PageReads == 0 {
		t.Fatal("no page reads recorded")
	}
	if int(stats.PageReads) >= totalPages/2 {
		t.Fatalf("search read %d pages of a %d-page tree: no pruning", stats.PageReads, totalPages)
	}
}

func TestMultiRefIndexMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	videos := make([][]vec.Vector, 40)
	for i := range videos {
		videos[i] = makeVideo(r, 8, 3, 30)
	}
	sums := summarizeAll(videos)
	ix, err := Build(sums, Options{Epsilon: testEps, RefKind: refpoint.MultiRef, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		src := videos[r.Intn(len(videos))]
		q := core.Summarize(6000+trial, perturb(r, src, 0.02), core.Options{Epsilon: testEps, Seed: int64(trial)})
		want := bruteForceScores(&q, sums)
		for _, mode := range []Mode{Naive, Composed} {
			res, _, err := ix.Search(&q, len(sums), mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(want) {
				t.Fatalf("mode %v: %d results, brute force has %d", mode, len(res), len(want))
			}
			for _, rr := range res {
				w, ok := want[rr.VideoID]
				if !ok || math.Abs(rr.Similarity-w) > 1e-9 {
					t.Fatalf("mode %v: video %d similarity %v, brute force %v (ok=%v)", mode, rr.VideoID, rr.Similarity, w, ok)
				}
			}
		}
	}
	// Dynamic insert + remove keep working under the multi mapper.
	extra := core.Summarize(5555, makeVideo(r, 8, 2, 20), core.Options{Epsilon: testEps, Seed: 5})
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove(5555); err != nil {
		t.Fatal(err)
	}
	// Rebuild re-derives the partitions.
	if err := ix.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if ix.DriftAngle() != 0 {
		t.Fatalf("multi mapper should report zero drift, got %v", ix.DriftAngle())
	}
}
