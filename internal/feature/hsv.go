package feature

import (
	"fmt"
	"math"

	"vitri/internal/vec"
)

// HSV histograms are the classic alternative to RGB for retrieval: hue is
// robust to brightness changes (the weakness the copydetect example
// exposes for RGB), at the cost of instability for unsaturated pixels.
// HistogramHSV quantizes hue/saturation/value independently, giving
// hBins·sBins·vBins dimensions; HSVDefault (16·2·2 = 64) matches the RGB
// extractor's dimensionality so the two spaces are drop-in comparable.

// HSVBins configures the per-channel quantization.
type HSVBins struct {
	H, S, V int
}

// HSVDefault matches the 64-d RGB histogram's dimensionality.
var HSVDefault = HSVBins{H: 16, S: 2, V: 2}

// Dims returns the histogram dimensionality.
func (b HSVBins) Dims() int { return b.H * b.S * b.V }

func (b HSVBins) validate() error {
	if b.H < 1 || b.S < 1 || b.V < 1 {
		return fmt.Errorf("feature: invalid HSV bins %+v", b)
	}
	if b.Dims() > 1<<16 {
		return fmt.Errorf("feature: HSV bins %+v too fine (%d dims)", b, b.Dims())
	}
	return nil
}

// HistogramHSV computes the normalized HSV color histogram of a frame.
func HistogramHSV(f *Frame, bins HSVBins) (vec.Vector, error) {
	if err := bins.validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	hist := make(vec.Vector, bins.Dims())
	for i := 0; i < len(f.Pix); i += 3 {
		h, s, v := rgbToHSV(f.Pix[i], f.Pix[i+1], f.Pix[i+2])
		hi := int(h / 360 * float64(bins.H))
		if hi >= bins.H {
			hi = bins.H - 1
		}
		si := int(s * float64(bins.S))
		if si >= bins.S {
			si = bins.S - 1
		}
		vi := int(v * float64(bins.V))
		if vi >= bins.V {
			vi = bins.V - 1
		}
		hist[(hi*bins.S+si)*bins.V+vi]++
	}
	vec.ScaleInPlace(hist, 1/float64(f.W*f.H))
	return hist, nil
}

// HistogramHSVSeq extracts HSV histograms for a whole frame sequence.
func HistogramHSVSeq(frames []*Frame, bins HSVBins) ([]vec.Vector, error) {
	out := make([]vec.Vector, len(frames))
	for i, f := range frames {
		h, err := HistogramHSV(f, bins)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}

// rgbToHSV converts 8-bit RGB to (hue in [0,360), saturation and value in
// [0,1]). Grey pixels (max==min) have hue 0 by convention.
func rgbToHSV(r8, g8, b8 byte) (h, s, v float64) {
	r := float64(r8) / 255
	g := float64(g8) / 255
	b := float64(b8) / 255
	max := math.Max(r, math.Max(g, b))
	min := math.Min(r, math.Min(g, b))
	v = max
	d := max - min
	if max > 0 {
		s = d / max
	}
	if d == 0 {
		return 0, s, v
	}
	switch max {
	case r:
		h = math.Mod((g-b)/d, 6)
	case g:
		h = (b-r)/d + 2
	default:
		h = (r-g)/d + 4
	}
	h *= 60
	if h < 0 {
		h += 360
	}
	return h, s, v
}
