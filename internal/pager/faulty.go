package pager

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrInjected is the error surfaced by the Faulty wrapper when a fault
// fires. Callers can match it with errors.Is.
var ErrInjected = errors.New("pager: injected fault")

// Faulty wraps a Pager and injects failures for testing the error paths of
// everything built on top. Faults are driven by a deterministic RNG plus
// optional per-operation countdowns.
type Faulty struct {
	mu    sync.Mutex
	under Pager      // immutable after NewFaulty
	rng   *rand.Rand // guarded by mu

	// ReadFailEvery / WriteFailEvery fail every k-th operation (0 = off).
	// Fault knobs are immutable once traffic flows: tests set them
	// between construction and first use.
	ReadFailEvery  int // immutable once in use
	WriteFailEvery int // immutable once in use
	// ReadFailProb / WriteFailProb fail with this probability (0 = off).
	ReadFailProb  float64 // immutable once in use
	WriteFailProb float64 // immutable once in use
	// CorruptReads flips a byte in the page instead of failing the read.
	CorruptReads bool // immutable once in use

	reads, writes int // guarded by mu
}

// NewFaulty wraps under; seed makes the probabilistic faults reproducible.
func NewFaulty(under Pager, seed int64) *Faulty {
	return &Faulty{under: under, rng: rand.New(rand.NewSource(seed))}
}

// Alloc implements Pager.
func (f *Faulty) Alloc() (PageID, error) { return f.under.Alloc() }

// Read implements Pager, possibly failing or corrupting the result.
func (f *Faulty) Read(id PageID, p *Page) error { return f.ReadTracked(id, p, nil) }

// ReadTracked implements TrackedReader, forwarding attribution to the
// wrapped pager (which decides what counts as physical I/O).
func (f *Faulty) ReadTracked(id PageID, p *Page, st *ScanStats) error {
	f.mu.Lock()
	f.reads++
	fail := (f.ReadFailEvery > 0 && f.reads%f.ReadFailEvery == 0) ||
		(f.ReadFailProb > 0 && f.rng.Float64() < f.ReadFailProb)
	corrupt := fail && f.CorruptReads
	var corruptAt int
	if corrupt {
		corruptAt = f.rng.Intn(PageSize)
	}
	f.mu.Unlock()
	if fail && !corrupt {
		return ErrInjected
	}
	if err := ReadTracked(f.under, id, p, st); err != nil {
		return err
	}
	if corrupt {
		p[corruptAt] ^= 0xFF
	}
	return nil
}

// Write implements Pager, possibly failing.
func (f *Faulty) Write(id PageID, p *Page) error {
	f.mu.Lock()
	f.writes++
	fail := (f.WriteFailEvery > 0 && f.writes%f.WriteFailEvery == 0) ||
		(f.WriteFailProb > 0 && f.rng.Float64() < f.WriteFailProb)
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.under.Write(id, p)
}

// NumPages implements Pager.
func (f *Faulty) NumPages() int { return f.under.NumPages() }

// Stats implements Pager.
func (f *Faulty) Stats() Stats { return f.under.Stats() }

// ResetStats implements Pager.
func (f *Faulty) ResetStats() { f.under.ResetStats() }

// Close implements Pager.
func (f *Faulty) Close() error { return f.under.Close() }
