package journal

import (
	"bufio"
	"hash/crc32"
	"io"
)

// ScanResult describes one pass over a journal's bytes.
type ScanResult struct {
	// HeaderOK reports a well-formed, checksum-valid header.
	HeaderOK bool
	// StartSeq is the header's starting sequence number (0 if !HeaderOK).
	StartSeq uint64
	// Valid is the byte length of the valid prefix: header plus every
	// record that passed its checksum. Everything beyond it is a torn or
	// corrupt tail.
	Valid int64
	// Records counts the valid records surfaced.
	Records int
	// LastSeq is the highest sequence number surfaced (0 when none).
	LastSeq uint64
}

// scanResult is the internal alias (kept distinct so recover() reads
// naturally).
type scanResult struct {
	headerOK bool
	startSeq uint64
	valid    int64
	records  int
	lastSeq  uint64
}

// Scan reads journal bytes from r, calling apply for every record whose
// checksum verifies, in order. It never panics on hostile input and
// never surfaces a record whose checksum fails: scanning stops — without
// error — at the first torn, corrupt, misordered or undecodable record,
// and the result reports how many bytes were valid. apply's error aborts
// the scan and is returned.
func Scan(r io.Reader, apply func(Entry) error) (ScanResult, error) {
	res, err := scan(bufio.NewReader(r), apply)
	return ScanResult{
		HeaderOK: res.headerOK,
		StartSeq: res.startSeq,
		Valid:    res.valid,
		Records:  res.records,
		LastSeq:  res.lastSeq,
	}, err
}

func scan(br *bufio.Reader, apply func(Entry) error) (scanResult, error) {
	var res scanResult
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return res, nil // empty or shorter than a header: no valid prefix
	}
	if string(hdr[:8]) != magic || le32get(hdr[8:12]) != version {
		return res, nil
	}
	if crc32.Checksum(hdr[:20], castagnoli) != le32get(hdr[20:24]) {
		return res, nil
	}
	res.headerOK = true
	res.startSeq = le64get(hdr[12:20])
	res.valid = headerSize

	var rechdr [13]byte // payloadLen + kind + seq
	var tail [4]byte
	prevSeq := res.startSeq - 1
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, rechdr[:]); err != nil {
			return res, nil // clean end of journal, or torn record header
		}
		plen := le32get(rechdr[0:4])
		kind := Kind(rechdr[4])
		seq := le64get(rechdr[5:13])
		if plen > maxPayload {
			return res, nil
		}
		// Read the payload in bounded chunks so a hostile length prefix
		// allocates only as fast as bytes are actually consumed.
		payload = payload[:0]
		for remaining := int(plen); remaining > 0; {
			chunk := remaining
			if chunk > 1<<16 {
				chunk = 1 << 16
			}
			off := len(payload)
			payload = append(payload, make([]byte, chunk)...)
			if _, err := io.ReadFull(br, payload[off:]); err != nil {
				return res, nil
			}
			remaining -= chunk
		}
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return res, nil
		}
		crc := crc32.New(castagnoli)
		crc.Write(rechdr[4:13])
		crc.Write(payload)
		if crc.Sum32() != le32get(tail[:]) {
			return res, nil
		}
		// Sequence numbers are strictly increasing within one journal; a
		// CRC-valid record that breaks monotonicity is stale or replayed
		// garbage and ends the valid prefix.
		if seq <= prevSeq {
			return res, nil
		}
		e, err := decodePayload(kind, payload)
		if err != nil {
			return res, nil
		}
		e.Seq = seq
		if apply != nil {
			if err := apply(e); err != nil {
				return res, err
			}
		}
		prevSeq = seq
		res.valid += int64(plen) + recOverhead
		res.records++
		res.lastSeq = seq
	}
}
