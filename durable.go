package vitri

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"vitri/internal/core"
	"vitri/internal/journal"
	"vitri/internal/shard"
	"vitri/internal/storefmt"
	"vitri/internal/vfs"
)

// Durability: a durable DB pairs an atomic snapshot with an append-only
// delta journal, so a power cut at any write boundary loses nothing that
// was acknowledged.
//
//   - The snapshot (<dir>/snapshot.vitri, store format v2) is only ever
//     replaced via temp-file + fsync + rename + directory sync; the
//     previous snapshot is never damaged.
//   - Every Add/Remove/AddBatch appends a checksummed record to the
//     journal (<dir>/journal.wal) and returns only after fsync; batches
//     and concurrent mutators share fsyncs (group commit).
//   - Checkpoint folds the journal into a fresh snapshot and rotates the
//     journal, bounding recovery time and disk growth.
//   - OpenDurable verifies snapshot checksums, replays the journal
//     (skipping records the snapshot already contains, by sequence
//     number) and truncates a torn journal tail at the first invalid
//     record instead of failing.
//
// The recovery invariant — every acknowledged operation survives, every
// unacknowledged one is absent or applied atomically, never partially —
// is enforced by the exhaustive crash-simulation suite in crash_test.go,
// which enumerates a simulated power cut at every write/sync boundary.

// ErrNotDurable reports a durability operation (Checkpoint) on a DB that
// was not opened with OpenDurable.
var ErrNotDurable = errors.New("vitri: database is not durable (use OpenDurable)")

// Snapshot and journal file names inside a durable directory.
const (
	snapshotFile = "snapshot.vitri"
	journalFile  = "journal.wal"
)

// DurableOptions configures the durable store.
type DurableOptions struct {
	// Dir is the directory holding the snapshot and journal. Created if
	// absent. Set by OpenDurable's dir argument.
	Dir string
	// FS overrides the filesystem — the crash-simulation harness
	// substitutes its recorder here. Nil selects the real disk.
	FS vfs.FS
	// keepCorruptTail disables torn-tail truncation at recovery. It is
	// settable only from this package's tests: the crash suite uses it
	// to prove the truncation has teeth.
	keepCorruptTail bool
}

// durableState is the open journal plus snapshot bookkeeping.
type durableState struct {
	fs       vfs.FS          // immutable after OpenDurable
	dir      string          // immutable after OpenDurable
	snapPath string          // immutable after OpenDurable
	wal      *journal.Writer // immutable after OpenDurable; internally synchronized
	// snapLastSeq is the journal seq folded into the on-disk snapshot.
	// guarded by db.mu
	snapLastSeq uint64
	snapVersion uint32 // on-disk snapshot format (0 = none). guarded by db.mu
	checkpoints atomic.Uint64
}

// OpenDurable opens (creating if needed) a durable database in dir:
// the snapshot is loaded and checksum-verified, the journal is replayed
// on top of it, and any torn journal tail is truncated. opts.Epsilon
// must match a non-empty store's epsilon (or be zero to adopt it), the
// same contract as Load. The returned DB persists every mutation; see
// Checkpoint for folding the journal down.
//
// With opts.Shards > 1 a fresh directory becomes a sharded store: a
// manifest records the shard count and each shard keeps its own snapshot
// + journal in a subdirectory. An existing store's layout wins — its
// manifest (or its absence, for the classic flat layout) decides, and
// opts.Shards must agree with it or be 0 to adopt. A flat store can
// never be reopened sharded or vice versa; the shard count is fixed at
// creation because routing is baked into which journal holds which video.
func OpenDurable(dir string, opts Options) (*DB, error) {
	d := DurableOptions{Dir: dir}
	if opts.Durable != nil {
		d = *opts.Durable
		d.Dir = dir
	}
	fsys := d.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vitri: open durable: %w", err)
	}
	manPath := filepath.Join(dir, shard.ManifestFile)
	//lint:ignore droppederr best-effort cleanup of a never-read temp file
	fsys.Remove(manPath + ".tmp")
	man, merr := shard.ReadManifest(fsys, manPath)
	switch {
	case merr == nil:
		if opts.Shards > 1 && opts.Shards != man.Shards {
			return nil, fmt.Errorf("vitri: open durable: store has %d shards; Options.Shards requests %d (pass 0 to adopt)", man.Shards, opts.Shards)
		}
		return openDurableSharded(dir, man, fsys, d, opts)
	case storefmt.IsNotExist(merr):
		if opts.Shards > 1 {
			if flatStoreExists(fsys, dir) {
				return nil, fmt.Errorf("vitri: open durable: %s holds a single-shard store, which cannot be reopened with Options.Shards = %d", dir, opts.Shards)
			}
			fresh := &shard.Manifest{Shards: opts.Shards, Cuts: make([]uint64, opts.Shards)}
			if err := shard.WriteManifest(fsys, manPath, fresh); err != nil {
				return nil, fmt.Errorf("vitri: open durable: manifest: %w", err)
			}
			return openDurableSharded(dir, fresh, fsys, d, opts)
		}
		return openDurableFlat(dir, fsys, d, opts)
	default:
		return nil, fmt.Errorf("vitri: open durable: %w", merr)
	}
}

// flatStoreExists reports whether dir already holds a classic
// single-shard snapshot or journal.
func flatStoreExists(fsys vfs.FS, dir string) bool {
	for _, name := range []string{snapshotFile, journalFile} {
		if _, err := fsys.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// openDurableFlat opens the classic single-shard snapshot + journal
// layout in dir.
func openDurableFlat(dir string, fsys vfs.FS, d DurableOptions, opts Options) (*DB, error) {
	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, journalFile)
	// A crash can leave stale temp files behind; they are dead weight
	// (never read) and are cleared so a later checkpoint starts clean.
	for _, stale := range []string{snapPath + ".tmp", walPath + ".tmp"} {
		//lint:ignore droppederr best-effort cleanup of a never-read temp file
		fsys.Remove(stale)
	}

	snap, err := storefmt.ReadSnapshotFile(fsys, snapPath)
	switch {
	case storefmt.IsNotExist(err):
		snap = nil
	case err != nil:
		return nil, fmt.Errorf("vitri: open durable %s: %w", snapPath, err)
	}

	var lastSeq uint64
	var snapVersion uint32
	if snap != nil {
		if opts.Epsilon != 0 && opts.Epsilon != snap.Epsilon {
			return nil, fmt.Errorf("vitri: open durable: store epsilon %v conflicts with requested %v", snap.Epsilon, opts.Epsilon)
		}
		opts.Epsilon = snap.Epsilon
		lastSeq = snap.LastSeq
		snapVersion = snap.Version
	}
	if opts.Epsilon <= 0 {
		return nil, errors.New("vitri: open durable: empty store needs a positive Options.Epsilon")
	}
	if snap == nil {
		// Seed a fresh store with an empty v3 snapshot so the directory
		// always carries its epsilon — later opens may pass Epsilon 0 and
		// adopt it, exactly as with a checkpointed store.
		seeded := &storefmt.Snapshot{Version: storefmt.Version3, Epsilon: opts.Epsilon}
		if err := storefmt.WriteSnapshotFile(fsys, snapPath, seeded); err != nil {
			return nil, fmt.Errorf("vitri: open durable: seed snapshot: %w", err)
		}
		snapVersion = storefmt.Version3
	}
	opts.Durable = &d
	db := New(opts)
	if snap != nil {
		db.mu.Lock()
		for i := range snap.Summaries {
			if err := db.addSummaryLocked(snap.Summaries[i]); err != nil {
				db.mu.Unlock()
				return nil, fmt.Errorf("vitri: open durable: snapshot: %w", err)
			}
		}
		db.mu.Unlock()
	}

	// Replay the journal over the snapshot. Records the snapshot already
	// folded in are skipped by sequence number; duplicate adds and
	// missing removes are tolerated (they can only arise from the benign
	// crash window between snapshot rename and journal rotation).
	db.mu.Lock()
	//lint:ignore lockorder open-time replay: the DB is unpublished, so no waiter exists for the journal's recovery fsync to stall
	wal, err := journal.Open(fsys, walPath, journal.Config{
		StartSeq:        lastSeq + 1,
		KeepCorruptTail: d.keepCorruptTail,
	}, func(e journal.Entry) error {
		if e.Seq <= lastSeq {
			return nil
		}
		switch e.Kind {
		case journal.KindAdd:
			if aerr := db.addSummaryLocked(e.Summary); aerr != nil && !errors.Is(aerr, ErrDuplicateID) {
				return aerr
			}
		case journal.KindRemove:
			if rerr := db.removeLocked(e.VideoID); rerr != nil && !errors.Is(rerr, ErrNotFound) {
				return rerr
			}
		}
		return nil
	})
	db.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("vitri: open durable %s: %w", walPath, err)
	}
	db.mu.Lock()
	db.dur = &durableState{
		fs:          fsys,
		dir:         dir,
		snapPath:    snapPath,
		wal:         wal,
		snapLastSeq: lastSeq,
		snapVersion: snapVersion,
	}
	db.mu.Unlock()
	return db, nil
}

// openDurableSharded opens a sharded store: each shard is a complete
// flat durable store in its own subdirectory, recovered independently
// (own snapshot, own journal replay, own torn-tail handling), and the
// router wraps them with the manifest bookkeeping. Recovery then
// verifies every recovered video still routes to the shard holding it.
func openDurableSharded(dir string, man *shard.Manifest, fsys vfs.FS, d DurableOptions, opts Options) (*DB, error) {
	n := man.Shards
	if n < 2 {
		return nil, fmt.Errorf("vitri: open durable: manifest shard count %d (a sharded store has at least 2)", n)
	}
	children := make([]*DB, 0, n)
	closeAll := func() {
		for _, sh := range children {
			//lint:ignore droppederr open failed; best-effort release of the shards already opened
			sh.Close()
		}
	}
	copts := opts
	copts.Shards = 0
	for i := 0; i < n; i++ {
		cd := d
		cd.FS = fsys
		co := copts
		co.Durable = &cd
		sh, err := OpenDurable(filepath.Join(dir, shard.DirName(i)), co)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("vitri: open durable shard %d: %w", i, err)
		}
		children = append(children, sh)
		// Later shards must agree with the epsilon the first shard
		// resolved (possibly adopted from its snapshot); each shard's own
		// open enforces the match, turning divergence into an error.
		copts.Epsilon = sh.opts.Epsilon
	}
	for i, sh := range children {
		if err := sh.checkRouting(i, n); err != nil {
			closeAll()
			return nil, err
		}
	}
	popts := opts
	popts.Epsilon = copts.Epsilon
	popts.Shards = n
	return &DB{
		opts: popts,
		sub:  children,
		shdur: &shardDur{
			fs:           fsys,
			dir:          dir,
			manifestPath: filepath.Join(dir, shard.ManifestFile),
			epoch:        man.Epoch,
		},
	}, nil
}

// Durable reports whether the database persists mutations.
func (db *DB) Durable() bool {
	if db.sub != nil {
		return db.shdur != nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dur != nil
}

// Checkpoint folds the journal into a fresh snapshot without stopping
// the world. The protocol is two-phase:
//
//  1. Capture — a short db.mu read hold pins a consistent cut: the
//     store's summaries plus the journal's position (journal.Cut) taken
//     under the same hold. Mutators (which need the write lock) are
//     excluded only for this copy, proportional to store size in memory,
//     not to any disk work.
//  2. Write + rotate — entirely outside db.mu: the captured summaries
//     are encoded and atomically renamed into place as a v2 snapshot
//     (the old snapshot survives any crash), then the journal is rotated
//     with journal.Writer.RotateRetain, which preserves byte-for-byte
//     every record mutators appended after the cut (seq > cut.LastSeq).
//     A brief db.mu re-acquire publishes the new snapshot bookkeeping.
//
// Concurrent Adds/Removes/Searches proceed during the disk work; they
// block only on the capture, the suffix copy inside RotateRetain
// (proportional to mutations since the cut), and the finish. ckptMu
// serializes overlapping Checkpoint calls. Opening a v1 legacy store
// durably upgrades it to v2 here. Recovery cost and journal size are
// proportional to operations since the last checkpoint, so long-running
// services checkpoint periodically (vitriserve's -checkpoint-every).
//
// On a sharded database the same two phases run per shard — every
// capture under one exclusive view-lock hold, so the per-shard cuts form
// a single consistent cross-shard cut — and a third phase commits the
// cut by atomically replacing the manifest. See checkpointSharded.
func (db *DB) Checkpoint() error {
	if db.sub != nil {
		return db.checkpointSharded()
	}
	// ckptMu is level 0 in the lock hierarchy: always acquired before
	// db.mu, never while holding it (vitrilint's lockorder enforces
	// this). Serializing here keeps the capture→rotate window of one
	// checkpoint from interleaving with another's.
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	c, err := db.checkpointCapture()
	if err != nil {
		return err
	}
	return db.checkpointCommit(c)
}

// ckptCapture is checkpointCapture's output: the consistent (summaries,
// journal cut) pair pinned under db.mu, encoded as the snapshot to
// write, plus the durable state it was captured against.
type ckptCapture struct {
	dur  *durableState
	snap *storefmt.Snapshot
	cut  journal.Cut
}

// checkpointCapture is Checkpoint's phase 1 — capture. A read hold
// suffices: mutators take the write lock, so summaries and cut are a
// consistent pair, while searches stay unblocked. The summary copies own
// their memory — later mutations touch the live structures, never these.
// Callers serialize via ckptMu (a shard router serializes on its own
// ckptMu; per-shard engines are not independently reachable).
func (db *DB) checkpointCapture() (*ckptCapture, error) {
	db.mu.RLock()
	dur := db.dur
	if dur == nil {
		db.mu.RUnlock()
		return nil, ErrNotDurable
	}
	var sums []core.Summary
	var err error
	if db.ix == nil {
		sums = append([]core.Summary(nil), db.pending...)
	} else {
		sums, err = db.ix.Summaries()
	}
	var cut journal.Cut
	if err == nil {
		cut, err = dur.wal.CutPoint()
	}
	db.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("vitri: checkpoint: %w", err)
	}
	storefmt.SortSummaries(sums)
	return &ckptCapture{
		dur: dur,
		snap: &storefmt.Snapshot{
			Version:   storefmt.Version3,
			Epsilon:   db.opts.Epsilon,
			LastSeq:   cut.LastSeq,
			Summaries: sums,
		},
		cut: cut,
	}, nil
}

// checkpointCommit is Checkpoint's phase 2 — write and rotate, with
// mutations in flight, then publish the bookkeeping under a brief write
// hold.
func (db *DB) checkpointCommit(c *ckptCapture) error {
	dur := c.dur
	if hook := db.testBeforeSnapshotWrite; hook != nil {
		hook()
	}
	// The snapshot's storage syncs take the WAL's fsync slot so they
	// never run concurrently with a mutation's group commit: on one
	// journaling filesystem the two fsync streams would entangle in the
	// filesystem journal and stall acknowledged mutations for tens of
	// milliseconds. Through the gate, a commit waits at most one chunk.
	if err := storefmt.WriteSnapshotFileGated(dur.fs, dur.snapPath, c.snap, dur.wal.WithSyncSlot); err != nil {
		return fmt.Errorf("vitri: checkpoint: %w", err)
	}
	if hook := db.testBeforeRotate; hook != nil {
		hook()
	}
	// Crash window: snapshot renamed, journal not yet rotated. Harmless —
	// records with seq <= cut.LastSeq are skipped at the next open by the
	// snapshot's LastSeq filter; records past the cut replay on top.
	// RotateRetain excludes appends on the journal's own mutex while it
	// copies the post-cut suffix into the replacement journal, so no
	// acknowledged record is lost however the rotation lands.
	var err error
	if db.testDropRetainedSuffix {
		err = dur.wal.Rotate(c.cut.LastSeq + 1)
	} else {
		err = dur.wal.RotateRetain(c.cut)
	}
	if err != nil {
		return fmt.Errorf("vitri: checkpoint: rotate journal: %w", err)
	}

	// Finish — publish the snapshot bookkeeping under a brief write hold.
	// Close may have swapped db.dur out mid-checkpoint; dur's own fields
	// are then dead state and the counters don't matter, but never write
	// through db.dur without re-checking it.
	db.mu.Lock()
	if db.dur == dur {
		dur.snapLastSeq = c.cut.LastSeq
		dur.snapVersion = storefmt.Version3
	}
	db.mu.Unlock()
	dur.checkpoints.Add(1)
	return nil
}

// DurabilityStats reports the durable store's health for /stats: journal
// depth (operations not yet checkpointed), bytes, fsync count and
// latency distribution, and snapshot bookkeeping. The zero value (with
// Enabled false) is returned for non-durable databases.
type DurabilityStats struct {
	Enabled bool
	// Dir is the durable directory.
	Dir string
	// SnapshotSeq is the journal sequence folded into the on-disk
	// snapshot; SnapshotVersion its format (0 before any checkpoint on a
	// fresh store, 1 for a not-yet-upgraded legacy store).
	SnapshotSeq     uint64
	SnapshotVersion uint32
	// Checkpoints counts successful Checkpoint calls this process.
	Checkpoints uint64
	// Journal is the live journal's depth, size and fsync telemetry.
	Journal journal.Stats
}

// DurabilityStats snapshots the durable store's counters. A sharded
// database aggregates its shards: counts (journal depth, bytes, fsyncs)
// and the per-shard sequence spaces (LastSeq, DurableSeq, SnapshotSeq —
// together the total operations journaled, durable and checkpointed) are
// summed, fsync latency histograms are merged, SnapshotVersion is the
// lowest across shards, and Checkpoints counts committed cross-shard
// checkpoints (manifest replacements).
func (db *DB) DurabilityStats() DurabilityStats {
	if db.sub != nil {
		return db.durabilityStatsSharded()
	}
	// Snapshot db.dur once under the lock: Close nils the field under the
	// write lock, so re-reading it after RUnlock could dereference nil.
	db.mu.RLock()
	dur := db.dur
	var snapSeq uint64
	var snapVer uint32
	if dur != nil {
		snapSeq = dur.snapLastSeq
		snapVer = dur.snapVersion
	}
	db.mu.RUnlock()
	if dur == nil {
		return DurabilityStats{}
	}
	return DurabilityStats{
		Enabled:         true,
		Dir:             dur.dir,
		SnapshotSeq:     snapSeq,
		SnapshotVersion: snapVer,
		Checkpoints:     dur.checkpoints.Load(),
		Journal:         dur.wal.Stats(),
	}
}

// journalAddLocked appends an Add record for s. Caller holds the write
// lock and has already applied s in memory; on append failure the caller
// rolls the in-memory apply back. Returns 0 on a non-durable DB.
func (db *DB) journalAddLocked(s *core.Summary) (uint64, error) {
	if db.dur == nil {
		return 0, nil
	}
	return db.dur.wal.AppendAdd(s)
}

// journalRemoveLocked appends a Remove record. Caller holds the write
// lock and appends BEFORE applying: removal has no cheap rollback, and
// a journaled-but-unapplied remove can only arise from an index-internal
// failure that already signals corruption.
func (db *DB) journalRemoveLocked(videoID int) (uint64, error) {
	if db.dur == nil {
		return 0, nil
	}
	return db.dur.wal.AppendRemove(videoID)
}

// commitSeq makes operations up to seq durable (group commit); a no-op
// on a nil receiver (non-durable database) or seq 0. Mutation paths
// snapshot db.dur while still holding db.mu and commit on the snapshot
// after releasing it — re-reading db.dur unsynchronized after unlock
// races Close, which nils the field under the write lock.
func (d *durableState) commitSeq(seq uint64) error {
	if d == nil || seq == 0 {
		return nil
	}
	return d.wal.Commit(seq)
}
