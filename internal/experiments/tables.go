package experiments

import (
	"fmt"

	"vitri/internal/metrics"
)

// Table2 reproduces the dataset-statistics table: videos and frames per
// duration class (the paper's Table 2, scaled by Config.Scale).
func Table2(cfg Config) ([]*metrics.Table, error) {
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	type agg struct {
		videos, frames int
	}
	byDur := map[float64]*agg{}
	var durs []float64
	for i := range c.Videos {
		v := &c.Videos[i]
		a := byDur[v.DurationSec]
		if a == nil {
			a = &agg{}
			byDur[v.DurationSec] = a
			durs = append(durs, v.DurationSec)
		}
		a.videos++
		a.frames += len(v.Frames)
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Table 2: data statistics (scale %.3g of the paper's corpus)", cfg.Scale),
		Columns: []string{"Time Length (s)", "Number of Video", "Number of Frame"},
	}
	for _, d := range durs {
		a := byDur[d]
		t.AddRowf(d, a.videos, a.frames)
	}
	return []*metrics.Table{t}, nil
}

// Table3 reproduces the summary-statistics table: number of clusters and
// average cluster size as ε varies (the paper's Table 3).
func Table3(cfg Config) ([]*metrics.Table, error) {
	c, err := cfg.corpus()
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "Table 3: summary statistics",
		Columns: []string{"Value of eps", "Number of clusters", "Average cluster size"},
	}
	total := c.FrameCount()
	for _, eps := range epsilonSweep {
		cfg.logf("  table 3: summarizing at eps=%.1f", eps)
		sums := summarizeCorpus(c, eps, cfg.Seed)
		clusters := 0
		for i := range sums {
			clusters += len(sums[i].Triplets)
		}
		avg := 0
		if clusters > 0 {
			avg = total / clusters
		}
		t.AddRowf(eps, clusters, avg)
	}
	return []*metrics.Table{t}, nil
}
