package index

import (
	"sort"

	"vitri/internal/btree"
	"vitri/internal/core"
)

// Summaries reconstructs every indexed video's summary from the catalog,
// ordered by video id, triplets in their original cluster-ordinal order.
// This is the export path used for persistence. The catalog holds the
// exact float64 triplets — the B+-tree's leaf copies may be
// float32-quantized, so they are deliberately not consulted here.
func (ix *Index) Summaries() ([]core.Summary, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]core.Summary, 0, len(ix.catalog))
	for vid, info := range ix.catalog {
		s := core.Summary{
			VideoID:    int(vid),
			FrameCount: info.frameCount,
			Triplets:   make([]core.ViTri, len(info.trips)),
		}
		copy(s.Triplets, info.trips)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VideoID < out[j].VideoID })
	return out, nil
}

// TreeStats exposes the physical shape of the underlying B+-tree.
func (ix *Index) TreeStats() (btree.TreeStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Stats()
}

// CheckTree verifies the underlying B+-tree's structural invariants.
func (ix *Index) CheckTree() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Check()
}
