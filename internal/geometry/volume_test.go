package geometry

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSphereVolumeKnown(t *testing.T) {
	cases := []struct {
		n    int
		r    float64
		want float64
	}{
		{1, 1, 2},
		{2, 1, math.Pi},
		{3, 1, 4 * math.Pi / 3},
		{4, 1, math.Pi * math.Pi / 2},
		{5, 1, 8 * math.Pi * math.Pi / 15},
		{2, 2, 4 * math.Pi},
		{3, 0.5, 4 * math.Pi / 3 * 0.125},
	}
	for _, c := range cases {
		if got := SphereVolume(c.n, c.r); !almostEq(got, c.want, 1e-12) {
			t.Errorf("SphereVolume(%d,%v) = %v want %v", c.n, c.r, got, c.want)
		}
	}
}

func TestSphereVolumeZeroRadius(t *testing.T) {
	if v := SphereVolume(7, 0); v != 0 {
		t.Errorf("zero-radius volume = %v", v)
	}
	if lv := LogSphereVolume(7, 0); !math.IsInf(lv, -1) {
		t.Errorf("zero-radius log volume = %v", lv)
	}
}

func TestLogSphereVolumeConsistent(t *testing.T) {
	for n := 1; n <= 40; n++ {
		r := 0.5 + float64(n)/20
		if got, want := math.Exp(LogSphereVolume(n, r)), SphereVolume(n, r); !almostEq(got, want, 1e-12) {
			t.Errorf("n=%d exp(log V)=%v, V=%v", n, got, want)
		}
	}
}

func TestHighDimensionLogVolumeFinite(t *testing.T) {
	// A 64-d sphere of radius 0.15 underflows float64 but its log must be
	// finite and sane; densities are built from these.
	lv := LogSphereVolume(64, 0.15)
	if math.IsInf(lv, 0) || math.IsNaN(lv) {
		t.Fatalf("log volume not finite: %v", lv)
	}
	if lv > -100 || lv < -300 {
		t.Fatalf("log volume out of expected range: %v", lv)
	}
	if SphereVolume(256, 0.1) != 0 {
		t.Log("note: direct volume did not underflow (acceptable)")
	}
}

func TestRegIncompleteBetaKnown(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncompleteBeta(1, 1, x); !almostEq(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1/2,1/2) = (2/π) asin(√x).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := RegIncompleteBeta(0.5, 0.5, x); !almostEq(got, want, 1e-10) {
			t.Errorf("I_%v(.5,.5) = %v want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := 0.5 + 10*r.Float64()
		b := 0.5 + 10*r.Float64()
		x := r.Float64()
		if got, want := RegIncompleteBeta(a, b, x), 1-RegIncompleteBeta(b, a, 1-x); !almostEq(got, want, 1e-9) {
			t.Fatalf("symmetry violated at a=%v b=%v x=%v: %v vs %v", a, b, x, got, want)
		}
	}
}

func TestRegIncompleteBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a <= 0")
		}
	}()
	RegIncompleteBeta(0, 1, 0.5)
}

func TestCapKnown2D(t *testing.T) {
	// Circular segment with half-angle α: area = R²(α − sin α cos α).
	for _, alpha := range []float64{0.2, 0.7, math.Pi / 2, 2.0, 3.0} {
		want := 1 * 1 * (alpha - math.Sin(alpha)*math.Cos(alpha))
		if alpha > math.Pi/2 {
			// Same closed form holds for α in (π/2, π].
			want = alpha - math.Sin(alpha)*math.Cos(alpha)
		}
		if got := CapVolume(2, 1, alpha); !almostEq(got, want, 1e-9) {
			t.Errorf("CapVolume(2,1,%v) = %v want %v", alpha, got, want)
		}
	}
}

func TestCapKnown3D(t *testing.T) {
	// Spherical cap of height h = R(1-cos α): V = π h²(3R-h)/3.
	for _, alpha := range []float64{0.3, 1.0, math.Pi / 2, 2.2} {
		h := 1 - math.Cos(alpha)
		want := math.Pi * h * h * (3 - h) / 3
		if got := CapVolume(3, 1, alpha); !almostEq(got, want, 1e-9) {
			t.Errorf("CapVolume(3,1,%v) = %v want %v", alpha, got, want)
		}
	}
}

func TestCapComplementIdentity(t *testing.T) {
	// cap(α) + cap(π-α) = sphere volume, for all n.
	for n := 1; n <= 32; n++ {
		for _, alpha := range []float64{0.1, 0.8, 1.5, 2.5} {
			sum := CapVolume(n, 1.3, alpha) + CapVolume(n, 1.3, math.Pi-alpha)
			if !almostEq(sum, SphereVolume(n, 1.3), 1e-9) {
				t.Errorf("n=%d α=%v: cap+complement = %v want %v", n, alpha, sum, SphereVolume(n, 1.3))
			}
		}
	}
}

func TestSectorHalfSphereAtRightAngle(t *testing.T) {
	for n := 2; n <= 20; n++ {
		if got, want := SectorVolume(n, 2, math.Pi/2), SphereVolume(n, 2)/2; !almostEq(got, want, 1e-10) {
			t.Errorf("n=%d sector(π/2) = %v want %v", n, got, want)
		}
		if got, want := CapVolume(n, 2, math.Pi/2), SphereVolume(n, 2)/2; !almostEq(got, want, 1e-10) {
			t.Errorf("n=%d cap(π/2) = %v want %v", n, got, want)
		}
	}
}

func TestCapEqualsSectorMinusCone(t *testing.T) {
	for n := 2; n <= 24; n++ {
		for _, alpha := range []float64{0.2, 0.9, 1.4, 2.0, 2.9} {
			cap := CapVolume(n, 1, alpha)
			want := SectorVolume(n, 1, alpha) - ConeVolume(n, 1, alpha)
			if !almostEq(cap, want, 1e-8) {
				t.Errorf("n=%d α=%v: cap=%v sector-cone=%v", n, alpha, cap, want)
			}
		}
	}
}

func TestPaperSeriesMatchesBetaForm(t *testing.T) {
	for n := 2; n <= 30; n++ {
		for _, alpha := range []float64{0.1, 0.5, 1.0, math.Pi / 2} {
			if got, want := CapVolumeSeries(n, 1.1, alpha), CapVolume(n, 1.1, alpha); !almostEq(got, want, 1e-8) {
				t.Errorf("n=%d α=%v: series cap=%v beta cap=%v", n, alpha, got, want)
			}
			if got, want := SectorVolumeSeries(n, 1.1, alpha), SectorVolume(n, 1.1, alpha); !almostEq(got, want, 1e-8) {
				t.Errorf("n=%d α=%v: series sector=%v beta sector=%v", n, alpha, got, want)
			}
		}
	}
}

func TestWallisCoefficients(t *testing.T) {
	// (2i)! / (2^{2i} (i!)^2): 1, 1/2, 3/8, 5/16, ...
	want := []float64{1, 0.5, 0.375, 0.3125}
	for i, w := range want {
		if got := wallis(i); !almostEq(got, w, 1e-14) {
			t.Errorf("wallis(%d) = %v want %v", i, got, w)
		}
	}
	// 2^{2i} (i!)^2 / (2i+1)!: 1, 2/3, 8/15, 16/35, ...
	want = []float64{1, 2.0 / 3, 8.0 / 15, 16.0 / 35}
	for i, w := range want {
		if got := invWallisOdd(i); !almostEq(got, w, 1e-14) {
			t.Errorf("invWallisOdd(%d) = %v want %v", i, got, w)
		}
	}
}

func TestCapFractionMonotone(t *testing.T) {
	for n := 2; n <= 40; n += 3 {
		prev := -1.0
		for alpha := 0.0; alpha <= math.Pi+1e-9; alpha += math.Pi / 50 {
			f := CapFraction(n, alpha)
			if f < prev-1e-12 {
				t.Fatalf("n=%d CapFraction not monotone at α=%v", n, alpha)
			}
			if f < 0 || f > 1 {
				t.Fatalf("n=%d CapFraction out of [0,1]: %v", n, f)
			}
			prev = f
		}
		if !almostEq(CapFraction(n, math.Pi), 1, 1e-12) {
			t.Errorf("n=%d CapFraction(π) = %v", n, CapFraction(n, math.Pi))
		}
	}
}

func TestClassifyCases(t *testing.T) {
	cases := []struct {
		d, r1, r2 float64
		want      IntersectCase
	}{
		{5, 2, 2, Disjoint},
		{4, 2, 2, Disjoint}, // exactly touching
		{3, 2, 2, Lune},
		// α2 > π/2 while the small sphere pokes out: needs
		// r1-r2 <= d and d² < r1²-r2².
		{1.2, 2, 1, MajorOverlap},
		{1.5, 2, 1, MajorOverlap},
		{1.8, 2, 1, Lune}, // d² > r1²-r2² = 3
		{0.9, 2, 1, Contained},
		{0, 2, 2, Contained},
		{1.2, 1, 2, MajorOverlap}, // radii given small-first
	}
	for _, c := range cases {
		if got := Classify(c.d, c.r1, c.r2).Case; got != c.want {
			t.Errorf("Classify(%v,%v,%v) = %v want %v", c.d, c.r1, c.r2, got, c.want)
		}
	}
}

func TestIntersectionVolume2DKnown(t *testing.T) {
	// Two unit circles at distance d: lens area = 2 acos(d/2) − (d/2)√(4−d²).
	for _, d := range []float64{0.2, 0.5, 1.0, 1.5, 1.9} {
		want := 2*math.Acos(d/2) - d/2*math.Sqrt(4-d*d)
		if got := IntersectionVolume(2, d, 1, 1); !almostEq(got, want, 1e-9) {
			t.Errorf("lens(2, d=%v) = %v want %v", d, got, want)
		}
	}
}

func TestIntersectionVolume3DKnown(t *testing.T) {
	// Two spheres radius R1,R2 distance d:
	// V = π (R1+R2−d)² (d² + 2d(R1+R2) − 3(R1−R2)²) / (12 d).
	check := func(d, r1, r2 float64) {
		t.Helper()
		want := math.Pi * math.Pow(r1+r2-d, 2) *
			(d*d + 2*d*(r1+r2) - 3*(r1-r2)*(r1-r2)) / (12 * d)
		if got := IntersectionVolume(3, d, r1, r2); !almostEq(got, want, 1e-9) {
			t.Errorf("lens(3, d=%v, %v, %v) = %v want %v", d, r1, r2, got, want)
		}
	}
	check(1.0, 1, 1)
	check(1.5, 1, 1)
	check(1.2, 1.5, 0.7)
	check(1.0, 1.5, 0.7) // major overlap regime
}

func TestIntersectionVolumeLimits(t *testing.T) {
	if v := IntersectionVolume(8, 3, 1, 1); v != 0 {
		t.Errorf("disjoint volume = %v", v)
	}
	if got, want := IntersectionVolume(8, 0.1, 2, 0.5), SphereVolume(8, 0.5); !almostEq(got, want, 1e-12) {
		t.Errorf("contained volume = %v want %v", got, want)
	}
	// Identical spheres at d=0.
	if got, want := IntersectionVolume(4, 0, 1, 1), SphereVolume(4, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("identical spheres = %v want %v", got, want)
	}
}

func TestIntersectionSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(30)
		r1 := 0.2 + r.Float64()
		r2 := 0.2 + r.Float64()
		d := r.Float64() * (r1 + r2) * 1.2
		a := IntersectionVolume(n, d, r1, r2)
		b := IntersectionVolume(n, d, r2, r1)
		if !almostEq(a, b, 1e-12) {
			t.Fatalf("asymmetric: %v vs %v", a, b)
		}
		if a < 0 {
			t.Fatalf("negative volume %v", a)
		}
		if a > SphereVolume(n, math.Min(r1, r2))+1e-9 {
			t.Fatalf("lens exceeds smaller sphere: %v", a)
		}
	}
}

func TestIntersectionMonotoneInDistance(t *testing.T) {
	for n := 2; n <= 16; n += 7 {
		prev := math.Inf(1)
		for d := 0.0; d <= 2.1; d += 0.05 {
			v := IntersectionVolume(n, d, 1, 1)
			if v > prev+1e-9 {
				t.Fatalf("n=%d lens volume increased with distance at d=%v", n, d)
			}
			prev = v
		}
	}
}

func TestLogIntersectionConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(20)
		r1 := 0.2 + r.Float64()
		r2 := 0.2 + r.Float64()
		d := r.Float64() * (r1 + r2)
		v := IntersectionVolume(n, d, r1, r2)
		lv := LogIntersectionVolume(n, d, r1, r2)
		if v == 0 {
			if !math.IsInf(lv, -1) {
				t.Fatalf("log of zero volume = %v", lv)
			}
			continue
		}
		if !almostEq(math.Exp(lv), v, 1e-9) {
			t.Fatalf("exp(logV)=%v vs V=%v", math.Exp(lv), v)
		}
	}
}

// Monte-Carlo cross-check of the lens volume in dimensions without a simple
// closed form.
func TestIntersectionMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo in -short mode")
	}
	r := rand.New(rand.NewSource(17))
	for _, tc := range []struct {
		n         int
		d, r1, r2 float64
	}{
		{4, 0.9, 1, 1},
		{5, 0.7, 1, 0.8},
		{6, 0.5, 1, 0.6},
		{7, 1.1, 1.2, 0.9},
	} {
		// Sample uniformly in the smaller sphere (centered at distance d
		// along the first axis) and count points also inside the larger.
		small, big := tc.r2, tc.r1
		if small > big {
			small, big = big, small
		}
		const samples = 200000
		hits := 0
		pt := make([]float64, tc.n)
		for s := 0; s < samples; s++ {
			// Rejection-sample the small ball.
			for {
				ok := true
				var norm2 float64
				for i := range pt {
					pt[i] = (2*r.Float64() - 1) * small
					norm2 += pt[i] * pt[i]
				}
				if norm2 <= small*small {
					_ = ok
					break
				}
			}
			// Shift: the small sphere center is at (d, 0, ...); the big at
			// origin. Point sampled relative to small center.
			dx := pt[0] + tc.d
			norm2 := dx * dx
			for i := 1; i < tc.n; i++ {
				norm2 += pt[i] * pt[i]
			}
			if norm2 <= big*big {
				hits++
			}
		}
		mc := float64(hits) / samples * SphereVolume(tc.n, small)
		exact := IntersectionVolume(tc.n, tc.d, tc.r1, tc.r2)
		if math.Abs(mc-exact) > 0.03*exact+1e-6 {
			t.Errorf("n=%d d=%v: MC=%v exact=%v", tc.n, tc.d, mc, exact)
		}
	}
}

func TestConeVolumeKnown(t *testing.T) {
	// n=3: cone volume = (1/3) π (R sinα)² (R cosα).
	alpha := 0.9
	want := math.Pi / 3 * math.Pow(math.Sin(alpha), 2) * math.Cos(alpha)
	if got := ConeVolume(3, 1, alpha); !almostEq(got, want, 1e-12) {
		t.Errorf("ConeVolume(3,1,%v) = %v want %v", alpha, got, want)
	}
	// Negative beyond π/2 by convention.
	if ConeVolume(3, 1, 2.0) >= 0 {
		t.Error("cone volume should be negative for α > π/2")
	}
}

func TestVolumePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SphereVolume(0, 1) },
		func() { SphereVolume(3, -1) },
		func() { CapVolume(3, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
