# Tier-1 verification is `make check`: vet, gofmt, the vitrilint
# analyzer suite, plus the full test suite under the race detector. The
# concurrency stress tests (concurrency_test.go,
# internal/index/parallel_test.go) are only meaningful with -race, so the
# race run gates every PR.

GO ?= go

.PHONY: all build test vet fmtcheck lint lint-stats benchguard race e2e fuzz-smoke crash check bench bench-ingest bench-checkpoint bench-shard bench-prefilter bench-search bench-serve bench-all

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmtcheck fails (listing the offenders) when any tracked Go file is not
# gofmt-clean. Fixture files under testdata are held to the same bar.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the in-tree analyzer suite (see internal/lint and DESIGN.md
# "Machine-checked invariants"); it exits nonzero on any unsuppressed
# finding.
lint:
	$(GO) run ./cmd/vitrilint ./...

# lint-stats runs the suite with the per-analyzer summary (findings,
# suppressions, wall time, call-graph construction cost) and refreshes
# the committed BENCH_lint.json timing entry.
lint-stats:
	$(GO) run ./cmd/vitrilint -stats -bench BENCH_lint.json ./...

# benchguard fails the build when the committed benchmark numbers say a
# contract has regressed: BENCH_checkpoint.json's engine p99 past 2x the
# quiescent baseline (the non-blocking checkpoint; disk co-tenancy is
# informational), BENCH_shard.json recording non-equivalent sharded
# results or collapsed scatter-gather search throughput,
# BENCH_prefilter.json/BENCH_search.json recording non-equivalent
# pre-filter results, page reads above 0.6x the float64 baseline, or a
# signature-skip fraction below 50%, BENCH_serve.json missing one of the
# three HTTP query workloads or recording request errors, or
# BENCH_ingest.json missing a worker count or recording zero throughput.
benchguard:
	$(GO) run ./cmd/benchguard BENCH_checkpoint.json BENCH_shard.json BENCH_prefilter.json BENCH_search.json BENCH_serve.json BENCH_ingest.json

race:
	$(GO) test -race ./...

# e2e runs the server end-to-end suite (httptest clients against the
# full middleware stack, including shutdown-mid-flight and fault
# injection) under the race detector with verbose failure context.
e2e:
	$(GO) test -race -run 'TestE2E' -count 1 ./internal/server/

# fuzz-smoke gives each fuzzer a short budget on every check: enough to
# replay its corpus plus a few thousand fresh mutations. Covers the store
# codec, the journal replayer, the signature codec, the quantized
# leaf-record codec (hostile bytes must never panic or be misread as
# valid records), and temporal signature derivation/alignment (hostile
# frame values — NaN/Inf included — must never panic or produce
# out-of-range similarities).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadSummaries$$' -fuzztime 5s .
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime 5s ./internal/journal/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSignature$$' -fuzztime 5s ./internal/sig/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRecordV3$$' -fuzztime 5s ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzTemporalSignature$$' -fuzztime 5s ./internal/temporal/

# crash runs the crash-simulation suite (crash_test.go): a simulated
# power cut at every write/sync boundary of a snapshot + journal
# workload, recovery checked against an oracle. Verbose, so the verified
# state/boundary counts land in the log.
crash:
	$(GO) test -run 'TestCrash|TestSaveCrash' -count 1 -v .

check: vet fmtcheck lint-stats benchguard race e2e fuzz-smoke crash

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# bench-ingest measures AddBatch throughput and allocations per video by
# worker count, writing BENCH_ingest.json next to the text table.
bench-ingest:
	$(GO) run ./cmd/vitribench ingest

# bench-checkpoint measures per-mutation latency on a durable 50k-triplet
# store with and without checkpoints folding in the background, writing
# BENCH_checkpoint.json. The gated number is the engine measurement (a
# RAM-backed store, isolating the engine's own blocking): the
# non-blocking checkpoint must keep its p99 within 2x of the quiescent
# baseline. A second, ungated section records what disk co-tenancy
# (snapshot syncs and WAL commits sharing one filesystem journal) adds
# on this machine.
bench-checkpoint:
	$(GO) run ./cmd/vitribench checkpoint

# bench-shard measures the shard-per-core engine at 1/2/4/8 shards on a
# fixed-seed corpus — batch ingest and scatter-gather search throughput —
# and records whether every shard count returned results bit-identical to
# the single engine, writing BENCH_shard.json. benchguard gates on the
# equivalence verdict and on search throughput at 8 shards staying above
# 0.35x the single engine.
bench-shard:
	$(GO) run ./cmd/vitribench shard

# bench-prefilter runs the same fixed-seed corpus and query set through
# four engine configurations — exact float64 pages with no signature
# tier, each optimization alone, and the default engine — verifying
# bit-identical rankings before reporting the page-read ratio and the
# fraction of exact similarity evaluations the signature tier pruned,
# writing BENCH_prefilter.json. benchguard gates on equivalence, page
# reads <= 0.6x baseline, and skip fraction >= 50%.
bench-prefilter:
	$(GO) run ./cmd/vitribench prefilter

# bench-search profiles the default engine's per-query search path —
# latency percentiles, page reads, and pre-filter counters per query —
# writing BENCH_search.json. Timings are informational; benchguard only
# validates the profile's shape and the skip-fraction floor.
bench-search:
	$(GO) run ./cmd/vitribench search

# bench-serve drives fixed-seed HTTP load through the full middleware
# stack over all three query workloads — whole-video /search,
# query-by-image /search/image and temporal /search/temporal — writing
# per-endpoint throughput and latency percentiles to BENCH_serve.json.
# benchguard gates on the report's shape (every workload present, zero
# errors); the timings are informational.
bench-serve:
	$(GO) run ./cmd/vitribench serve

# bench-all regenerates every committed BENCH_*.json with fixed seeds.
bench-all: bench-ingest bench-checkpoint bench-shard bench-prefilter bench-search bench-serve
