package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"vitri"
	"vitri/internal/core"
	"vitri/internal/metrics"
	"vitri/internal/vec"
)

// The checkpoint experiment measures what a snapshot fold costs the
// mutation path: per-operation AddSummary/Remove latency on a durable
// store, with and without checkpoints folding a 50k-triplet snapshot in
// the background. It runs twice:
//
//   - engine: the store on a RAM-backed filesystem, where storage syncs
//     are free. This isolates the engine's own blocking — the thing the
//     non-blocking checkpoint exists to remove. The old stop-the-world
//     fold fails this measurement by three orders of magnitude (every
//     mutation issued during a fold waited for the entire snapshot
//     write); the two-phase checkpoint keeps the distributions equal.
//   - disk co-tenancy: the same measurement on the OS temp directory.
//     On a journaling filesystem the snapshot's syncs and the WAL's
//     group commits share one filesystem journal, so some tail
//     inflation is physics, not engine blocking — the sync gate (see
//     storefmt.SyncGate) bounds it to one chunk per commit. These
//     numbers are environment-dependent; they are reported for honesty,
//     not gated on.
//
// Like the ingest experiment it lives in package main because it
// exercises the public vitri API.

const (
	ckptSeedVideos     = 800 // seeded store: 800 × 64 = 51,200 triplets
	ckptSeedTriplets   = 64
	ckptBenchTriplets  = 2 // per benchmark mutation, like a live insert
	ckptDim            = 8
	ckptWarmup         = 100 // untimed mutations before measurement starts
	ckptSeedWorkers    = 8   // group commit amortizes the seeding fsyncs
	ckptFirstBenchID   = 1 << 20
	ckptRemoveInterval = 2 // every 2nd mutation removes an earlier add: adds and removes balance, so the store holds its seeded size and every fold writes the same-sized snapshot
	// Pacing: sleep ckptPaceSleep after every ckptPaceEvery mutations, an
	// offered load of a few thousand mutations/sec rather than a
	// saturation loop that would turn the benchmark into a CPU-contention
	// measurement. Batched because a per-mutation sleep is dominated by
	// timer granularity (~1ms), which would starve the sampler.
	ckptPaceEvery  = 8
	ckptPaceSleep  = time.Millisecond
	ckptWindows    = 40                     // measured checkpoints
	ckptSettle     = 120 * time.Millisecond // inter-checkpoint gap; its tail feeds the baseline
	ckptMargin     = 30 * time.Millisecond  // post-fold backlog exclusion before baseline samples resume
	ckptMinSamples = 200                    // fewer samples than this in either class is a measurement failure
)

// latencyStats summarizes one phase's per-mutation latency distribution.
type latencyStats struct {
	Mutations  int     `json:"mutations"`
	MeanMicros float64 `json:"mean_micros"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	MaxMicros  float64 `json:"max_micros"`
}

// checkpointMeasurement is one full store-seed-and-measure cycle on one
// filesystem.
type checkpointMeasurement struct {
	Filesystem            string       `json:"filesystem"`
	Triplets              int          `json:"triplets"`
	Videos                int          `json:"videos"`
	Checkpoints           int          `json:"checkpoints_completed"`
	MeanCheckpointSeconds float64      `json:"mean_checkpoint_seconds"`
	NoCheckpoint          latencyStats `json:"no_checkpoint"`
	DuringCheckpoint      latencyStats `json:"during_checkpoint"`
	P99Ratio              float64      `json:"p99_ratio"`
	P99Within2x           bool         `json:"p99_within_2x"`
}

// checkpointReport is the BENCH_checkpoint.json schema. The top-level
// ratio fields mirror the engine measurement: that is the bound the
// non-blocking checkpoint is accountable for. The disk section records
// what shared-filesystem-journal co-tenancy costs on this machine.
type checkpointReport struct {
	Engine        checkpointMeasurement `json:"engine"`
	DiskCotenancy checkpointMeasurement `json:"disk_cotenancy"`
	P99Ratio      float64               `json:"p99_ratio"`
	P99Within2x   bool                  `json:"p99_within_2x"`
}

// ramdiskBase returns a RAM-backed directory to host the engine
// measurement's store, or "" when the platform offers none.
func ramdiskBase() string {
	const shm = "/dev/shm"
	if st, err := os.Stat(shm); err == nil && st.IsDir() {
		probe, err := os.MkdirTemp(shm, "vitribench-probe-")
		if err == nil {
			os.RemoveAll(probe)
			return shm
		}
	}
	return ""
}

// runCheckpoint runs the engine measurement (RAM-backed store) and the
// disk co-tenancy measurement (OS temp directory) and reports both.
func runCheckpoint(outPath string) ([]*metrics.Table, error) {
	engineBase, engineFS := ramdiskBase(), "tmpfs (/dev/shm)"
	if engineBase == "" {
		// No ramdisk: the engine section degrades to a second disk run.
		engineBase, engineFS = os.TempDir(), "os temp dir (no ramdisk available)"
	}
	engine, err := measureOn(engineBase, engineFS)
	if err != nil {
		return nil, fmt.Errorf("engine measurement: %w", err)
	}
	disk, err := measureOn(os.TempDir(), "os temp dir")
	if err != nil {
		return nil, fmt.Errorf("disk measurement: %w", err)
	}

	report := checkpointReport{
		Engine:        engine,
		DiskCotenancy: disk,
		P99Ratio:      engine.P99Ratio,
		P99Within2x:   engine.P99Within2x,
	}

	var tables []*metrics.Table
	for _, part := range []struct {
		title string
		m     checkpointMeasurement
	}{
		{"Engine blocking during checkpoint", engine},
		{"Disk co-tenancy during checkpoint", disk},
	} {
		table := &metrics.Table{
			Title:   fmt.Sprintf("%s — %s, %d triplets, %d folds", part.title, part.m.Filesystem, part.m.Triplets, part.m.Checkpoints),
			Columns: []string{"phase", "mean µs", "p50 µs", "p99 µs", "max µs"},
		}
		for _, row := range []struct {
			name string
			s    latencyStats
		}{{"no checkpoint", part.m.NoCheckpoint}, {"during checkpoint", part.m.DuringCheckpoint}} {
			table.AddRow(
				row.name,
				fmt.Sprintf("%.0f", row.s.MeanMicros),
				fmt.Sprintf("%.0f", row.s.P50Micros),
				fmt.Sprintf("%.0f", row.s.P99Micros),
				fmt.Sprintf("%.0f", row.s.MaxMicros),
			)
		}
		table.AddRow("p99 ratio", fmt.Sprintf("%.2fx", part.m.P99Ratio), "", "", "")
		tables = append(tables, table)
	}

	if outPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// measureOn seeds a durable store past 50k triplets under base, folds
// the seed into a snapshot, then runs the paced mutation loop while
// ckptWindows separate checkpoints fold the full store with settle gaps
// between them. Each mutation is classified by when it ran: overlapping
// a fold's [start, end) is "during"; clear of every fold (plus a
// post-fold margin for writeback backlog) is the "no checkpoint"
// baseline. One mutator measured over one timeline means both classes
// see the same device, so the ratio isolates what a concurrent fold
// adds. Every mutation is synced before it returns, in both classes —
// the baseline already carries the device's commit latency.
func measureOn(base, fsLabel string) (checkpointMeasurement, error) {
	dir, err := os.MkdirTemp(base, "vitribench-ckpt-")
	if err != nil {
		return checkpointMeasurement{}, err
	}
	defer os.RemoveAll(dir)

	db, err := vitri.OpenDurable(dir, vitri.Options{Epsilon: 0.3, Seed: 1})
	if err != nil {
		return checkpointMeasurement{}, err
	}
	defer db.Close()
	if err := seedCheckpointStore(db); err != nil {
		return checkpointMeasurement{}, err
	}
	// Fold the seed immediately: the measured checkpoints then rewrite
	// the full 50k-triplet snapshot instead of an empty one.
	if err := db.Checkpoint(); err != nil {
		return checkpointMeasurement{}, fmt.Errorf("seed checkpoint: %w", err)
	}

	baseline, during, ckptMean, err := measureCheckpointImpact(db)
	if err != nil {
		return checkpointMeasurement{}, err
	}
	return checkpointMeasurement{
		Filesystem:            fsLabel,
		Triplets:              db.Triplets(),
		Videos:                db.Len(),
		Checkpoints:           ckptWindows,
		MeanCheckpointSeconds: ckptMean.Seconds(),
		NoCheckpoint:          baseline,
		DuringCheckpoint:      during,
		P99Ratio:              during.P99Micros / baseline.P99Micros,
		P99Within2x:           during.P99Micros <= 2*baseline.P99Micros,
	}, nil
}

// seedCheckpointStore journals ckptSeedVideos synthetic summaries from
// ckptSeedWorkers goroutines; concurrent appends ride the journal's
// group commit, so seeding pays ~one fsync per batch instead of one per
// video.
func seedCheckpointStore(db *vitri.DB) error {
	errs := make([]error, ckptSeedWorkers)
	var wg sync.WaitGroup
	for w := 0; w < ckptSeedWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + w)))
			for id := w; id < ckptSeedVideos; id += ckptSeedWorkers {
				if err := db.AddSummary(benchSummary(r, id, ckptSeedTriplets)); err != nil {
					errs[w] = fmt.Errorf("seed %d: %w", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mutLoop generates the benchmark's mutation stream: mostly adds of
// small summaries, every ckptRemoveInterval-th a remove of an earlier
// add. Fresh ids start at firstID so phases never collide with each
// other or the seed. One goroutine owns a mutLoop at a time.
type mutLoop struct {
	r     *rand.Rand
	i     int
	added []int
}

func newMutLoop(firstID int) *mutLoop {
	return &mutLoop{r: rand.New(rand.NewSource(int64(firstID))), i: firstID}
}

// step performs one journaled mutation and returns its latency.
func (m *mutLoop) step(db *vitri.DB) (time.Duration, error) {
	m.i++
	if m.i%ckptRemoveInterval == 0 && len(m.added) > 0 {
		id := m.added[0]
		m.added = m.added[1:]
		start := time.Now()
		if err := db.Remove(id); err != nil {
			return 0, fmt.Errorf("remove %d: %w", id, err)
		}
		return time.Since(start), nil
	}
	s := benchSummary(m.r, m.i, ckptBenchTriplets)
	start := time.Now()
	if err := db.AddSummary(s); err != nil {
		return 0, fmt.Errorf("add %d: %w", m.i, err)
	}
	m.added = append(m.added, m.i)
	return time.Since(start), nil
}

// measureCheckpointImpact runs one paced mutation loop over one
// timeline with ckptWindows checkpoints spaced ckptSettle apart (the
// pacing sleep sits between mutations and is never counted as latency),
// then classifies
// every mutation against the fold windows. A ckptWarmup prefix is
// dropped so page-cache and allocator warmup never skews either class.
// Returns the baseline distribution, the during-distribution, and the
// mean fold duration.
func measureCheckpointImpact(db *vitri.DB) (baseline, during latencyStats, ckptMean time.Duration, err error) {
	type sample struct {
		start time.Time
		dur   time.Duration
	}
	type window struct{ start, end time.Time }

	stop := make(chan struct{})
	var (
		samples []sample
		mutErr  error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := newMutLoop(ckptFirstBenchID)
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			if n%ckptPaceEvery == 0 {
				time.Sleep(ckptPaceSleep)
			}
			start := time.Now()
			d, serr := m.step(db)
			if serr != nil {
				mutErr = serr
				return
			}
			if n >= ckptWarmup {
				samples = append(samples, sample{start, d})
			}
		}
	}()

	var (
		windows   []window
		ckptSpent time.Duration
		ckptErr   error
	)
	for i := 0; i < ckptWindows; i++ {
		time.Sleep(ckptSettle)
		start := time.Now()
		if ckptErr = db.Checkpoint(); ckptErr != nil {
			break
		}
		end := time.Now()
		windows = append(windows, window{start, end})
		ckptSpent += end.Sub(start)
	}
	time.Sleep(ckptSettle) // trailing baseline gap after the last fold
	close(stop)
	wg.Wait()
	if mutErr != nil {
		return latencyStats{}, latencyStats{}, 0, mutErr
	}
	if ckptErr != nil {
		return latencyStats{}, latencyStats{}, 0, fmt.Errorf("checkpoint: %w", ckptErr)
	}

	// Classify. "During" overlaps a fold; "baseline" is clear of every
	// fold and of the ckptMargin writeback tail after each one —
	// anything in a margin is neither and is dropped.
	var durLat, baseLat []time.Duration
	var durTime, baseTime time.Duration
	for _, s := range samples {
		end := s.start.Add(s.dur)
		class := "baseline"
		for _, w := range windows {
			if s.start.Before(w.end) && end.After(w.start) {
				class = "during"
				break
			}
			if s.start.Before(w.end.Add(ckptMargin)) && end.After(w.end) {
				class = "margin"
				break
			}
		}
		switch class {
		case "during":
			durLat = append(durLat, s.dur)
			durTime += s.dur
		case "baseline":
			baseLat = append(baseLat, s.dur)
			baseTime += s.dur
		}
	}
	if len(durLat) < ckptMinSamples || len(baseLat) < ckptMinSamples {
		return latencyStats{}, latencyStats{}, 0,
			fmt.Errorf("thin measurement: %d during / %d baseline samples, want >= %d each (folds too fast for this store size?)",
				len(durLat), len(baseLat), ckptMinSamples)
	}
	return summarizeLatencies(baseLat, baseTime),
		summarizeLatencies(durLat, durTime),
		ckptSpent / ckptWindows, nil
}

// summarizeLatencies sorts (destructively) and folds a latency slice
// into the report's distribution row; total is the sum of the samples,
// which the mean divides.
func summarizeLatencies(lat []time.Duration, total time.Duration) latencyStats {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return latencyStats{
		Mutations:  len(lat),
		MeanMicros: micros(total) / float64(len(lat)),
		P50Micros:  micros(percentile(lat, 0.50)),
		P99Micros:  micros(percentile(lat, 0.99)),
		MaxMicros:  micros(lat[len(lat)-1]),
	}
}

// benchSummary builds a synthetic n-triplet summary with positions in
// the unit cube, the same shape a live ingest would journal.
func benchSummary(r *rand.Rand, id, n int) core.Summary {
	s := core.Summary{VideoID: id, FrameCount: n * 5}
	for i := 0; i < n; i++ {
		p := make(vec.Vector, ckptDim)
		for j := range p {
			p[j] = r.Float64()
		}
		s.Triplets = append(s.Triplets, core.NewViTri(p, 0.05+0.1*r.Float64(), 3+r.Intn(5)))
	}
	return s
}

// percentile returns the nearest-rank q-th percentile of sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
