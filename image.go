package vitri

import (
	"errors"
	"fmt"
	"math"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// Query-by-image: a single frame histogram probed against every indexed
// triplet. The frame is summarized exactly like a one-frame video —
// core.Summarize floors the cluster radius at ε·MinRadiusFraction, so
// the probe is a genuine ViTri and rides the B+-tree range machinery,
// the signature pre-filter and the quantized leaf pages unchanged —
// and each video is ranked by its best-matching triplet (see
// index.SearchImage). imagequery_equiv_test.go proves the ranking
// bit-identical to a brute-force per-triplet scan at shard counts
// {1,2,3,8} and under every pre-filter knob.

// ImageSummary summarizes one frame the way SearchImage does: a
// one-frame video under the database's ε and seed, yielding a single
// triplet centered on the frame. Exposed so oracles and offline
// pipelines can reproduce the probe's query side exactly.
func (db *DB) ImageSummary(frame Vector) (Summary, error) {
	if len(frame) == 0 {
		return Summary{}, errors.New("vitri: empty image query")
	}
	for i, v := range frame {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Summary{}, fmt.Errorf("vitri: image query value %d is not finite", i)
		}
	}
	return core.Summarize(-1, []vec.Vector{vec.Vector(frame)}, core.Options{
		Epsilon: db.opts.Epsilon,
		Seed:    db.opts.Seed,
	}), nil
}

// SearchImage returns the k videos whose summaries best explain a single
// frame: each video is scored by its best-matching triplet's estimated
// shared-frame count against the frame's one-frame summary, a value in
// (0, 1]. Results are byte-identical at every shard count and with the
// pre-filter on or off; Stats carries the probe's exact per-query work,
// including PageReads and SignatureSkips.
func (db *DB) SearchImage(frame Vector, k int, mode QueryMode) ([]Match, SearchStats, error) {
	q, err := db.ImageSummary(frame)
	if err != nil {
		return nil, SearchStats{}, err
	}
	if db.sub != nil {
		return db.scatter(k, true, func(sh *DB) ([]Match, SearchStats, error) {
			return sh.searchImageP(&q, k, mode, 0)
		})
	}
	return db.searchImageP(&q, k, mode, 0)
}

// searchImageP runs one image probe on this engine with an explicit
// intra-query parallelism override (0 = the configured default).
func (db *DB) searchImageP(q *Summary, k int, mode QueryMode, parallelism int) ([]Match, SearchStats, error) {
	ix, err := db.index()
	if err != nil {
		return nil, SearchStats{}, err
	}
	return ix.SearchImage(q, k, mode, parallelism)
}
