package vitri

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vitri/internal/core"
)

// Video pairs a video id with its frame feature vectors, the unit of work
// of the batch ingest pipeline.
type Video struct {
	ID     int
	Frames []Vector
}

// AddBatch summarizes many videos concurrently and adds them to the
// database in input order. Summarization — the CPU-bound phase — fans out
// over Options.IngestParallelism workers, each owning a reusable
// allocation-free clustering scratch; the merge then takes the database
// lock exactly once and applies every summary in input order.
//
// The result is byte-identical to calling Add for each video in the same
// order, at every parallelism: each video's summary is seeded from
// (Options.Seed, video id) alone, scratch reuse never leaks into results,
// and the ordered merge replays the sequential insertion sequence. The
// only intentional difference is the index-drift policy, which is
// evaluated once per batch instead of once per video (identical when
// Options.MaxDriftAngle is zero, the default).
//
// The returned slice has one entry per input video: nil for success, or
// the same error the corresponding Add would have returned (no frames,
// negative id, duplicate id — including duplicates within the batch, of
// which the first wins). The second return value reports batch-level
// failures (the drift-triggered rebuild, or a failed durable group
// commit); per-item failures never abort the rest of the batch. If the
// group commit fails, every item it covered gets the commit error in its
// slot too — a nil item error always means the insert is durable.
func (db *DB) AddBatch(videos []Video) ([]error, error) {
	if len(videos) == 0 {
		return nil, nil
	}
	summaries, itemErrs := db.summarizeBatch(videos)
	if db.sub != nil {
		itemErrs, batchErr := db.addBatchSharded(summaries, itemErrs)
		db.registerBatchTemporal(videos, summaries, itemErrs)
		return itemErrs, batchErr
	}
	all := make([]int, len(videos))
	for i := range all {
		all[i] = i
	}
	dur, maxSeq, batchErr := db.applyBatch(summaries, all, itemErrs)
	if cerr := dur.commitSeq(maxSeq); cerr != nil {
		// The single group commit covers every journaled item: none of
		// them is durable, so the failure must surface in each item's
		// slot, not just the batch-level error — callers inspecting
		// itemErrs per item would otherwise treat non-durable inserts as
		// acknowledged.
		for i := range itemErrs {
			if itemErrs[i] == nil {
				itemErrs[i] = cerr
			}
		}
		if batchErr == nil {
			batchErr = cerr
		}
	}
	db.registerBatchTemporal(videos, summaries, itemErrs)
	return itemErrs, batchErr
}

// registerBatchTemporal records the temporal signature of every video the
// batch durably inserted (nil item error), mirroring what Add does for
// single inserts. Runs after every database lock is released; the
// temporal registry is a leaf lock.
func (db *DB) registerBatchTemporal(videos []Video, summaries []core.Summary, itemErrs []error) {
	for i := range videos {
		if itemErrs[i] == nil {
			db.registerTemporal(videos[i].Frames, &summaries[i])
		}
	}
}

// summarizeBatch is AddBatch's CPU-bound phase: one summary per video,
// computed by the worker pool, with per-item validation errors in the
// matching itemErrs slots. It touches no database state beyond the
// immutable options, so a shard router runs it once for all shards.
func (db *DB) summarizeBatch(videos []Video) ([]core.Summary, []error) {
	summaries := make([]core.Summary, len(videos))
	itemErrs := make([]error, len(videos))
	workers := db.ingestParallelism()
	if workers > len(videos) {
		workers = len(videos)
	}
	// Workers claim videos from an atomic cursor. Which worker summarizes
	// which video is racy, but irrelevant to the output: a summary depends
	// only on (frames, epsilon, per-video seed), never on the worker's
	// scratch history.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sz core.Summarizer
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(videos) {
					return
				}
				v := videos[i]
				if len(v.Frames) == 0 {
					itemErrs[i] = fmt.Errorf("vitri: video %d has no frames", v.ID)
					continue
				}
				summaries[i] = sz.Summarize(v.ID, v.Frames, core.Options{
					Epsilon: db.opts.Epsilon,
					Seed:    db.opts.Seed + int64(v.ID),
				})
			}
		}()
	}
	wg.Wait()
	return summaries, itemErrs
}

// applyBatch is AddBatch's apply phase on one engine: the summaries at
// indices mine (ascending, preserving input order) are validated,
// applied and journaled under a single db.mu hold, skipping slots whose
// itemErrs entry is already set and writing failures into their slots.
// Returns the commit ticket for the caller's group commit; a shard
// router calls this concurrently on different shards with disjoint index
// sets, so the shared slices are written race-free.
func (db *DB) applyBatch(summaries []core.Summary, mine []int, itemErrs []error) (*durableState, uint64, error) {
	db.mu.Lock()
	var maxSeq uint64
	// A failed journal append poisons the writer: every later append can
	// only return the same sticky error. Once one item hits it, the
	// remaining items short-circuit to that error instead of churning
	// through apply → append → rollback each, which at batch scale is
	// thousands of pointless index mutations against a store that can no
	// longer acknowledge anything.
	var poisoned error
	for _, i := range mine {
		if itemErrs[i] != nil {
			continue
		}
		if poisoned != nil {
			itemErrs[i] = poisoned
			continue
		}
		if itemErrs[i] = db.addSummaryLocked(summaries[i]); itemErrs[i] != nil {
			continue
		}
		// Journal each accepted summary under the batch's single lock
		// acquisition; one Commit below fsyncs the whole batch (group
		// commit), so durability costs one fsync per batch, not per video.
		seq, jerr := db.journalAddLocked(&summaries[i])
		if jerr != nil {
			db.rollbackAddLocked(summaries[i].VideoID)
			itemErrs[i] = jerr
			// Append failures poison the writer; pick up the sticky error
			// (ErrPoisoned-wrapped) so the remaining slots report what a
			// real append attempt would have.
			if serr := db.dur.wal.Err(); serr != nil {
				poisoned = serr
			}
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	batchErr := db.maybeRebuildLocked()
	dur := db.dur // snapshotted under the lock; see commitSeq
	db.mu.Unlock()
	return dur, maxSeq, batchErr
}

// BuildParallel summarizes videos across a worker pool, bulk-loads them
// and builds the index, returning a database ready to search. It is the
// batch counterpart of New + an Add loop + a first Search, and produces a
// byte-identical database. Any per-video or build failure fails the whole
// construction; partial loads are reported via errors.Join.
func BuildParallel(videos []Video, opts Options) (*DB, error) {
	db := New(opts)
	itemErrs, err := db.AddBatch(videos)
	if err != nil {
		return nil, err
	}
	if err := errors.Join(itemErrs...); err != nil {
		return nil, err
	}
	if len(videos) > 0 {
		// Force the bulk index build now so the first search doesn't pay
		// for it.
		if err := db.forceBuild(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ingestParallelism resolves Options.IngestParallelism (<= 0 selects
// GOMAXPROCS).
func (db *DB) ingestParallelism() int {
	if p := db.opts.IngestParallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}
