// Command vitrigen generates a synthetic video corpus and writes it to a
// file for later indexing and querying with vitriquery.
//
// Two generation paths are available:
//
//	-mode hist   histogram-space synthesis (fast, scales to paper size)
//	-mode pixel  full pixel pipeline: procedural video rendering plus
//	             RGB-histogram feature extraction (slow, small corpora)
//
// Example:
//
//	vitrigen -scale 0.05 -o corpus.gob
//	vitrigen -mode pixel -videos 20 -seconds 10 -o small.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"vitri/internal/dataset"
)

func main() {
	var (
		out     = flag.String("o", "corpus.gob", "output file")
		mode    = flag.String("mode", "hist", "generation mode: hist or pixel")
		scale   = flag.Float64("scale", 0.05, "hist mode: corpus scale relative to the paper's 6,587 clips")
		seed    = flag.Int64("seed", 1, "random seed")
		videos  = flag.Int("videos", 12, "pixel mode: number of videos")
		seconds = flag.Float64("seconds", 10, "pixel mode: video duration")
		width   = flag.Int("width", 192, "pixel mode: frame width")
		height  = flag.Int("height", 144, "pixel mode: frame height")
		fps     = flag.Int("fps", 25, "pixel mode: frames per second")
	)
	flag.Parse()

	var (
		c   *dataset.Corpus
		err error
	)
	switch *mode {
	case "hist":
		c, err = dataset.GenerateHist(dataset.DefaultHistConfig(*scale, *seed))
	case "pixel":
		c, err = dataset.GeneratePixel(dataset.PixelConfig{
			W: *width, H: *height, FPS: *fps, Bits: 2, AvgShotSec: 2.0, Seed: *seed,
			Durations: []dataset.DurationSpec{{Seconds: *seconds, Count: *videos}},
		})
	default:
		fatalf("unknown mode %q (hist or pixel)", *mode)
	}
	if err != nil {
		fatalf("generate: %v", err)
	}
	if err := c.Save(*out); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s: %d videos, %d frames, %d dims\n",
		*out, len(c.Videos), c.FrameCount(), c.Dim)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitrigen: "+format+"\n", args...)
	os.Exit(1)
}
