package btree

import (
	"sync"
	"testing"

	"vitri/internal/pager"
)

// buildTrackedTree inserts n sequential entries over the given pager.
func buildTrackedTree(t *testing.T, pg pager.Pager, n int) *Tree {
	t.Helper()
	tr, err := Create(pg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(float64(i), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestRangeScanStatsMatchesPagerDiff: when a scan runs alone, the
// per-scan counter must equal the pager's own physical-read delta —
// the attribution changes ownership of the count, not its meaning.
func TestRangeScanStatsMatchesPagerDiff(t *testing.T) {
	pg := pager.NewMem()
	tr := buildTrackedTree(t, pg, 5000)
	for _, rng := range [][2]float64{{0, 4999}, {100, 250}, {4000, 4000}, {6000, 7000}} {
		before := pg.Stats().Reads
		var st pager.ScanStats
		visited := 0
		if err := tr.RangeScanStats(rng[0], rng[1], &st, func(float64, []byte) bool {
			visited++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		diff := pg.Stats().Reads - before
		if st.Reads != diff {
			t.Fatalf("range [%v,%v]: tracked %d reads, pager diff %d", rng[0], rng[1], st.Reads, diff)
		}
		if visited > 0 && st.Reads == 0 {
			t.Fatalf("range [%v,%v]: visited %d entries with zero tracked reads", rng[0], rng[1], visited)
		}
	}
	// Full scan attribution, same contract.
	before := pg.Stats().Reads
	var st pager.ScanStats
	if err := tr.ScanStats(&st, func(float64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if diff := pg.Stats().Reads - before; st.Reads != diff {
		t.Fatalf("scan: tracked %d reads, pager diff %d", st.Reads, diff)
	}
}

// TestRangeScanStatsExactUnderConcurrency: overlapping scans on one tree
// must each report exactly the reads they would perform alone — the bug
// this API exists to fix is counter theft via shared-counter diffing.
func TestRangeScanStatsExactUnderConcurrency(t *testing.T) {
	tr := buildTrackedTree(t, pager.NewMem(), 5000)
	ranges := [][2]float64{{0, 1500}, {1000, 3000}, {2500, 4999}, {0, 4999}}
	solo := make([]uint64, len(ranges))
	for i, rng := range ranges {
		var st pager.ScanStats
		if err := tr.RangeScanStats(rng[0], rng[1], &st, func(float64, []byte) bool { return true }); err != nil {
			t.Fatal(err)
		}
		solo[i] = st.Reads
	}
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan string, len(ranges)*rounds)
	for i, rng := range ranges {
		wg.Add(1)
		go func(i int, lo, hi float64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var st pager.ScanStats
				if err := tr.RangeScanStats(lo, hi, &st, func(float64, []byte) bool { return true }); err != nil {
					errs <- err.Error()
					return
				}
				if st.Reads != solo[i] {
					errs <- "concurrent scan read count diverged from solo run"
					return
				}
			}
		}(i, rng[0], rng[1])
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
