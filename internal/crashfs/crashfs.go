// Package crashfs is a deterministic crash-simulation harness for the
// durable store. A Recorder implements vfs.FS while logging every
// mutation — file writes, truncates, fsyncs, creations, renames,
// removals and directory syncs — as one operation each. After a workload
// runs, CrashStates enumerates a simulated power cut at EVERY operation
// boundary, and for each boundary materializes the set of disk images a
// real filesystem could expose after the cut:
//
//   - flushed: everything issued so far made it to disk (lucky timing);
//   - strict: only explicitly synced data and explicitly dir-synced
//     names survive — unsynced writes vanish, unsynced renames never
//     happened;
//   - metadata-first: directory entries are current but file data is
//     only what was fsynced — the ext4-style reordering that exposes
//     rename-before-sync bugs ("All File Systems Are Not Created
//     Equal", OSDI 2014);
//   - prefix / torn-cut / torn-zero: some prefix of a file's unsynced
//     writes hit disk, with the next write torn mid-way (shorter file,
//     or full-length with the tail as zeros — a partial sector write);
//   - reorder: only the last unsynced write hit disk, earlier ones
//     vanished (block-level write reordering), holes reading as zeros.
//
// Each state is materialized into an independent vfs.MemFS, so recovery
// code runs against the post-crash image exactly as it would against a
// real disk, and the test asserts the recovery invariant on every one.
package crashfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"sync"
	"time"

	"vitri/internal/vfs"
)

// opKind enumerates logged operations.
type opKind uint8

const (
	opCreate opKind = iota + 1
	opWrite
	opTruncate
	opSync
	opRename
	opRemove
	opSyncDir
)

func (k opKind) String() string {
	switch k {
	case opCreate:
		return "create"
	case opWrite:
		return "write"
	case opTruncate:
		return "truncate"
	case opSync:
		return "sync"
	case opRename:
		return "rename"
	case opRemove:
		return "remove"
	case opSyncDir:
		return "syncdir"
	}
	return "?"
}

// op is one logged mutation.
type op struct {
	kind  opKind
	name  string // create/remove/syncdir, rename old name
	name2 string // rename new name
	inode int    // write/truncate/sync/create
	off   int64  // write
	data  []byte // write (copied)
	size  int64  // truncate
}

// Recorder is a vfs.FS that logs every mutation for later crash
// enumeration. Reads serve from the live (fully applied) view, so the
// workload behaves exactly as on a real disk. Safe for concurrent use,
// though crash enumeration assumes the workload itself issues mutations
// in a deterministic order.
type Recorder struct {
	mu     sync.Mutex
	live   map[int][]byte // inode id → fully-applied content
	names  map[string]int // volatile namespace
	nextID int
	log    []op
}

// NewRecorder returns an empty recording filesystem.
func NewRecorder() *Recorder {
	return &Recorder{live: make(map[int][]byte), names: make(map[string]int)}
}

// Ops returns the number of logged mutations — the number of crash
// boundaries CrashStates will enumerate.
func (r *Recorder) Ops() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.log)
}

// OpTrace renders the log for debugging failed crash points.
func (r *Recorder) OpTrace() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.log))
	for i, o := range r.log {
		switch o.kind {
		case opWrite:
			out[i] = fmt.Sprintf("%d: write inode=%d off=%d len=%d", i, o.inode, o.off, len(o.data))
		case opTruncate:
			out[i] = fmt.Sprintf("%d: truncate inode=%d size=%d", i, o.inode, o.size)
		case opSync:
			out[i] = fmt.Sprintf("%d: sync inode=%d", i, o.inode)
		case opCreate:
			out[i] = fmt.Sprintf("%d: create %q inode=%d", i, o.name, o.inode)
		case opRename:
			out[i] = fmt.Sprintf("%d: rename %q -> %q", i, o.name, o.name2)
		case opRemove:
			out[i] = fmt.Sprintf("%d: remove %q", i, o.name)
		case opSyncDir:
			out[i] = fmt.Sprintf("%d: syncdir %q", i, o.name)
		}
	}
	return out
}

// OpenFile implements vfs.FS.
func (r *Recorder) OpenFile(name string, flag int, _ fs.FileMode) (vfs.File, error) {
	name = path.Clean(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.names[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		r.nextID++
		id = r.nextID
		r.names[name] = id
		r.live[id] = nil
		r.log = append(r.log, op{kind: opCreate, name: name, inode: id})
	case flag&os.O_TRUNC != 0:
		r.live[id] = nil
		r.log = append(r.log, op{kind: opTruncate, inode: id, size: 0})
	}
	f := &recFile{rec: r, id: id, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}
	if flag&os.O_APPEND != 0 {
		f.off = int64(len(r.live[id]))
	}
	return f, nil
}

// Rename implements vfs.FS.
func (r *Recorder) Rename(oldname, newname string) error {
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.names[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	r.names[newname] = id
	delete(r.names, oldname)
	r.log = append(r.log, op{kind: opRename, name: oldname, name2: newname})
	return nil
}

// Remove implements vfs.FS.
func (r *Recorder) Remove(name string) error {
	name = path.Clean(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.names[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(r.names, name)
	r.log = append(r.log, op{kind: opRemove, name: name})
	return nil
}

// Stat implements vfs.FS over the live view.
func (r *Recorder) Stat(name string) (fs.FileInfo, error) {
	name = path.Clean(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.names[name]; ok {
		return recInfo{name: path.Base(name), size: int64(len(r.live[id]))}, nil
	}
	for p := range r.names {
		if len(p) > len(name) && p[:len(name)] == name && p[len(name)] == '/' {
			return recInfo{name: path.Base(name), dir: true}, nil
		}
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// MkdirAll implements vfs.FS (directories are implicit).
func (r *Recorder) MkdirAll(string, fs.FileMode) error { return nil }

// SyncDir implements vfs.FS: directory entries become durable.
func (r *Recorder) SyncDir(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, op{kind: opSyncDir, name: path.Clean(name)})
	return nil
}

// recFile is one open handle on a Recorder.
type recFile struct {
	rec      *Recorder
	id       int
	off      int64
	writable bool
	closed   bool
}

func (f *recFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.rec.mu.Lock()
	defer f.rec.mu.Unlock()
	data := f.rec.live[f.id]
	if f.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *recFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	if !f.writable {
		return 0, &fs.PathError{Op: "write", Path: fmt.Sprint(f.id), Err: fs.ErrPermission}
	}
	f.rec.mu.Lock()
	defer f.rec.mu.Unlock()
	data := f.rec.live[f.id]
	if grow := f.off + int64(len(p)) - int64(len(data)); grow > 0 {
		data = append(data, make([]byte, grow)...)
	}
	copy(data[f.off:], p)
	f.rec.live[f.id] = data
	f.rec.log = append(f.rec.log, op{kind: opWrite, inode: f.id, off: f.off, data: append([]byte(nil), p...)})
	f.off += int64(len(p))
	return len(p), nil
}

func (f *recFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.rec.mu.Lock()
	defer f.rec.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.rec.live[f.id])) + offset
	}
	if f.off < 0 {
		f.off = 0
		return 0, &fs.PathError{Op: "seek", Path: fmt.Sprint(f.id), Err: fs.ErrInvalid}
	}
	return f.off, nil
}

func (f *recFile) Truncate(size int64) error {
	if f.closed {
		return fs.ErrClosed
	}
	if !f.writable || size < 0 {
		return &fs.PathError{Op: "truncate", Path: fmt.Sprint(f.id), Err: fs.ErrInvalid}
	}
	f.rec.mu.Lock()
	defer f.rec.mu.Unlock()
	data := f.rec.live[f.id]
	if size <= int64(len(data)) {
		f.rec.live[f.id] = data[:size]
	} else {
		f.rec.live[f.id] = append(data, make([]byte, size-int64(len(data)))...)
	}
	f.rec.log = append(f.rec.log, op{kind: opTruncate, inode: f.id, size: size})
	return nil
}

func (f *recFile) Sync() error {
	if f.closed {
		return fs.ErrClosed
	}
	f.rec.mu.Lock()
	defer f.rec.mu.Unlock()
	f.rec.log = append(f.rec.log, op{kind: opSync, inode: f.id})
	return nil
}

func (f *recFile) Close() error {
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

// recInfo is Recorder's fs.FileInfo.
type recInfo struct {
	name string
	size int64
	dir  bool
}

func (i recInfo) Name() string { return i.name }
func (i recInfo) Size() int64  { return i.size }
func (i recInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i recInfo) ModTime() time.Time { return time.Time{} }
func (i recInfo) IsDir() bool        { return i.dir }
func (i recInfo) Sys() interface{}   { return nil }

// sortedKeys returns m's keys in ascending order (deterministic
// enumeration regardless of map iteration).
func sortedKeys(m map[int][]pendOp) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
