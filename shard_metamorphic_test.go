package vitri

import (
	"bytes"
	"math/rand"
	"testing"
)

// Metamorphic search tests: the set of videos a database holds — not the
// order they arrived in — determines every search observable. The engine
// earns this through canonical construction (bulk builds sort summaries
// by id first, so the mapper's reference point and the packed tree
// depend only on the set) and the canonical similarity fold; the tests
// here drive permuted insertion orders and mixed ingest paths through
// single-shard and sharded databases and require bit-identical rankings
// AND identical PageReads — the paper's headline I/O metric must not
// wobble with ingest history.

// permuted returns videos reordered by the permutation seed.
func permuted(videos []Video, seed int64) []Video {
	out := append([]Video(nil), videos...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// buildVariant loads videos into a fresh database via the given ingest
// path ("batch": one AddBatch; "singles": an Add loop; "halves": two
// AddBatches) and forces the bulk index build.
func buildVariant(t *testing.T, videos []Video, shards int, path string) *DB {
	t.Helper()
	db := New(Options{Epsilon: 0.3, Seed: 7, Shards: shards})
	switch path {
	case "singles":
		for _, v := range videos {
			if err := db.Add(v.ID, v.Frames); err != nil {
				t.Fatalf("Add(%d): %v", v.ID, err)
			}
		}
	case "halves":
		for _, half := range [][]Video{videos[:len(videos)/2], videos[len(videos)/2:]} {
			if _, err := db.AddBatch(half); err != nil {
				t.Fatalf("AddBatch half: %v", err)
			}
		}
	default:
		if _, err := db.AddBatch(videos); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
	if err := db.forceBuild(); err != nil {
		t.Fatalf("forceBuild: %v", err)
	}
	return db
}

// TestShardMetamorphicInsertionOrder: at shard counts 1 and 3, every
// permutation of the ingest order and every ingest path yields a
// database whose searches are bit-identical to the reference build —
// matches, similarities, and the full SearchStats including PageReads.
func TestShardMetamorphicInsertionOrder(t *testing.T) {
	videos := ingestCorpus(90, 32)
	queries := equivQueries(6)
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(shardName(shards), func(t *testing.T) {
			ref := buildVariant(t, videos, shards, "batch")
			refBytes := storeBytes(t, ref)
			type variant struct {
				name   string
				videos []Video
				path   string
			}
			variants := []variant{
				{"reversed-singles", permuted(videos, 1), "singles"},
				{"shuffled-batch", permuted(videos, 2), "batch"},
				{"shuffled-halves", permuted(videos, 3), "halves"},
			}
			for _, v := range variants {
				db := buildVariant(t, v.videos, shards, v.path)
				if got := storeBytes(t, db); !bytes.Equal(got, refBytes) {
					t.Fatalf("%s: contents diverge from reference build", v.name)
				}
				for qi := range queries {
					for _, mode := range []QueryMode{Naive, Composed} {
						wantRes, wantStats, err := ref.SearchSummary(&queries[qi], 8, mode)
						if err != nil {
							t.Fatalf("reference search: %v", err)
						}
						gotRes, gotStats, err := db.SearchSummary(&queries[qi], 8, mode)
						if err != nil {
							t.Fatalf("%s: search: %v", v.name, err)
						}
						if !matchesIdentical(gotRes, wantRes) {
							t.Fatalf("%s query %d mode %v: permuted ingest changed the ranking", v.name, qi, mode)
						}
						if gotStats != wantStats {
							t.Fatalf("%s query %d mode %v: permuted ingest changed SearchStats: %+v vs %+v",
								v.name, qi, mode, gotStats, wantStats)
						}
					}
				}
			}
		})
	}
}

// TestShardMetamorphicPreFilterNeutral: the insertion-order metamorphic
// property must hold regardless of the signature tier — permuted ingest
// into a tier-off engine yields the same bit-identical ranking as the
// canonical tier-on build, and the tier-on build's pruning accounting
// (ops + skips) equals the tier-off build's op count query by query.
func TestShardMetamorphicPreFilterNeutral(t *testing.T) {
	videos := ingestCorpus(90, 32)
	queries := equivQueries(6)
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(shardName(shards), func(t *testing.T) {
			ref := buildVariant(t, videos, shards, "batch")
			off := New(Options{Epsilon: 0.3, Seed: 7, Shards: shards, DisablePreFilter: true, UnquantizedPages: true})
			for _, v := range permuted(videos, 4) {
				if err := off.Add(v.ID, v.Frames); err != nil {
					t.Fatalf("Add(%d): %v", v.ID, err)
				}
			}
			if err := off.forceBuild(); err != nil {
				t.Fatalf("forceBuild: %v", err)
			}
			if got, want := storeBytes(t, off), storeBytes(t, ref); !bytes.Equal(got, want) {
				t.Fatal("tier-off permuted build diverges from canonical contents")
			}
			for qi := range queries {
				for _, mode := range []QueryMode{Naive, Composed} {
					wantRes, wantStats, err := off.SearchSummary(&queries[qi], 8, mode)
					if err != nil {
						t.Fatalf("tier-off search: %v", err)
					}
					gotRes, gotStats, err := ref.SearchSummary(&queries[qi], 8, mode)
					if err != nil {
						t.Fatalf("tier-on search: %v", err)
					}
					if !matchesIdentical(gotRes, wantRes) {
						t.Fatalf("query %d mode %v: tier on/off builds disagree on the ranking", qi, mode)
					}
					if gotStats.Candidates != wantStats.Candidates ||
						gotStats.SimilarityOps+gotStats.SignatureSkips != wantStats.SimilarityOps {
						t.Fatalf("query %d mode %v: pruning accounting diverges: on %+v, off %+v",
							qi, mode, gotStats, wantStats)
					}
				}
			}
		})
	}
}

// TestShardMetamorphicRemovalNeutral: adding videos and removing them
// again leaves search observables identical to a build that never saw
// them, at both shard counts. (The removed set must not shift the bulk
// build, so the extra videos are inserted after the index is built —
// the incremental path — and removed again.)
func TestShardMetamorphicRemovalNeutral(t *testing.T) {
	videos := ingestCorpus(91, 24)
	extra := make([]Video, 6)
	r := rand.New(rand.NewSource(92))
	for i := range extra {
		extra[i] = Video{ID: 500 + i, Frames: synthVideo(r, 8, 2, 5)}
	}
	queries := equivQueries(4)
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(shardName(shards), func(t *testing.T) {
			ref := buildVariant(t, videos, shards, "batch")
			churned := buildVariant(t, videos, shards, "batch")
			for _, v := range extra {
				if err := churned.Add(v.ID, v.Frames); err != nil {
					t.Fatalf("churn Add(%d): %v", v.ID, err)
				}
			}
			for _, v := range extra {
				if err := churned.Remove(v.ID); err != nil {
					t.Fatalf("churn Remove(%d): %v", v.ID, err)
				}
			}
			if got, want := storeBytes(t, churned), storeBytes(t, ref); !bytes.Equal(got, want) {
				t.Fatal("add-then-remove churn changed the contents")
			}
			for qi := range queries {
				wantRes, _, err := ref.SearchSummary(&queries[qi], 8, Composed)
				if err != nil {
					t.Fatalf("reference search: %v", err)
				}
				gotRes, _, err := churned.SearchSummary(&queries[qi], 8, Composed)
				if err != nil {
					t.Fatalf("churned search: %v", err)
				}
				if !matchesIdentical(gotRes, wantRes) {
					t.Fatalf("query %d: add-then-remove churn changed the ranking", qi)
				}
			}
		})
	}
}
