// Package lockio seeds ranked locks held across fsync and locks held
// across blocking channel sends — the lock graph's I/O-latency
// findings — next to the leaf and try-send shapes it must accept.
package lockio

import (
	"sync"

	"fixture/vfs"
)

// DB carries a level-1 lock, ranked by type name exactly like the real
// tree's DB.
type DB struct {
	mu sync.Mutex
}

// SyncUnderLock fsyncs with the DB lock held: every waiter stalls on
// disk latency.
func (db *DB) SyncUnderLock(f vfs.File) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return f.Sync() // want "DB lock db.mu is held across vfs.File.Sync, which fsyncs"
}

// flush is the helper the interprocedural pass must see through.
func flush(f vfs.File) error {
	return f.Sync()
}

// SyncViaHelper reaches the fsync through a callee.
func (db *DB) SyncViaHelper(f vfs.File) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return flush(f) // want "DB lock db.mu is held across a call that can fsync (lockio.DB.SyncViaHelper → lockio.flush fsyncs via vfs.File.Sync"
}

// SendUnderLock blocks on a channel send with the DB lock held.
func (db *DB) SendUnderLock(ch chan int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ch <- 1 // want "lock db.mu is held across a blocking channel send"
}

// push is the sending helper behind SendViaHelper.
func push(ch chan int) {
	ch <- 1
}

// SendViaHelper reaches the blocking send through a callee.
func (db *DB) SendViaHelper(ch chan int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	push(ch) // want "lock db.mu is held across a call that can block on a channel send"
}

// TrySend never blocks — the default case makes the send conditional:
// clean.
func (db *DB) TrySend(ch chan int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// journalish is unranked: holding its lock across the fsync is the leaf
// flush-primitive pattern the check deliberately permits.
type journalish struct {
	mu sync.Mutex
}

// Flush is the permitted leaf shape: the lock IS the flush serialization.
func (j *journalish) Flush(f vfs.File) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return f.Sync()
}
