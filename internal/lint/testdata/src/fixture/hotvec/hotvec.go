// Package vec mirrors the real vector package's allocating helpers and
// their in-place counterparts, seeding hot-loop calls the hotalloc
// analyzer must flag (package-name matching makes this fixture exercise
// the same rule as the real tree).
package vec

// Vector is a dense point.
type Vector = []float64

// Add returns a new vector a+b (allocates).
func Add(a, b Vector) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b (allocates).
func Sub(a, b Vector) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns a new vector a*s (allocates).
func Scale(a Vector, s float64) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// Clone returns a copy of a (allocates).
func Clone(a Vector) Vector {
	out := make(Vector, len(a))
	copy(out, a)
	return out
}

// AddInPlace accumulates b into dst without allocating.
func AddInPlace(dst, b Vector) {
	for i := range dst {
		dst[i] += b[i]
	}
}

// Centroid folds points with the allocating helper inside a range loop.
func Centroid(points []Vector) Vector {
	sum := make(Vector, len(points[0]))
	for _, p := range points {
		sum = Add(sum, p) // want "vec.Add allocates on every iteration"
	}
	return Scale(sum, 1/float64(len(points))) // outside any loop: fine
}

// CentroidInPlace is the blessed idiom: accumulate into one buffer.
func CentroidInPlace(points []Vector) Vector {
	sum := make(Vector, len(points[0]))
	for _, p := range points {
		AddInPlace(sum, p)
	}
	return Scale(sum, 1/float64(len(points)))
}

// SnapshotCold keeps a deliberate per-iteration copy, suppressed with a
// reason: the loop runs once per run, not per Lloyd iteration.
func SnapshotCold(points []Vector) []Vector {
	out := make([]Vector, 0, len(points))
	for _, p := range points {
		//lint:ignore hotalloc diagnostics snapshot runs once per build
		out = append(out, Clone(p))
	}
	return out
}
