package experiments

import (
	"fmt"
	"math/rand"

	"vitri/internal/baseline"
	"vitri/internal/core"
	"vitri/internal/dataset"
	"vitri/internal/index"
	"vitri/internal/metrics"
	"vitri/internal/refpoint"
)

// indexEnv is one database instance for the index experiments.
type indexEnv struct {
	sums    []core.Summary
	queries []core.Summary
}

// newIndexEnv generates n ViTris (dim-dimensional) plus near-duplicate
// query summaries derived from random database videos.
func (cfg *Config) newIndexEnv(n, dim int, seed int64) (*indexEnv, error) {
	sc := dataset.DefaultSummaryConfig(n, seed)
	sc.Dim = dim
	sc.Epsilon = cfg.Epsilon
	if sc.ActiveBins > dim {
		sc.ActiveBins = dim / 2
	}
	sums, err := dataset.GenerateSummaries(sc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 5))
	queries := make([]core.Summary, cfg.IndexQueries)
	for i := range queries {
		src := &sums[rng.Intn(len(sums))]
		queries[i] = dataset.QuerySummary(src, 2_000_000+i, 0.01, rng)
	}
	return &indexEnv{sums: sums, queries: queries}, nil
}

// costRow aggregates per-query costs for one method at one configuration.
type costRow struct {
	pages float64 // avg physical page reads per query
	sims  float64 // avg ViTri similarity computations per query
	us    float64 // avg wall microseconds per query
}

// measureIndex runs all queries through an index in the given mode.
func (cfg *Config) measureIndex(ix *index.Index, queries []core.Summary, mode index.Mode) (costRow, error) {
	var row costRow
	for qi := range queries {
		ix.ResetPagerStats()
		var stats index.SearchStats
		us, err := timeIt(func() error {
			var e error
			_, stats, e = ix.Search(&queries[qi], cfg.K, mode)
			return e
		})
		if err != nil {
			return row, err
		}
		row.pages += float64(stats.PageReads)
		row.sims += float64(stats.SimilarityOps)
		row.us += us
	}
	n := float64(len(queries))
	row.pages /= n
	row.sims /= n
	row.us /= n
	return row, nil
}

// measureSeq runs all queries through a sequential-scan store.
func (cfg *Config) measureSeq(store *baseline.SeqStore, queries []core.Summary) (costRow, error) {
	var row costRow
	for qi := range queries {
		store.ResetPagerStats()
		var stats index.SearchStats
		us, err := timeIt(func() error {
			var e error
			_, stats, e = store.Search(&queries[qi], cfg.K)
			return e
		})
		if err != nil {
			return row, err
		}
		row.pages += float64(stats.PageReads)
		row.sims += float64(stats.SimilarityOps)
		row.us += us
	}
	n := float64(len(queries))
	row.pages /= n
	row.sims /= n
	row.us /= n
	return row, nil
}

// buildIndex constructs an index over the summaries with the given
// reference-point strategy.
func (cfg *Config) buildIndex(sums []core.Summary, kind refpoint.Kind) (*index.Index, error) {
	return index.Build(sums, index.Options{
		Epsilon: cfg.Epsilon,
		RefKind: kind,
		SpaceLo: 0,
		SpaceHi: 1,
	})
}

// Figure16 reproduces the query-composition comparison: page accesses of
// naive vs composed KNN processing as the database grows.
func Figure16(cfg Config) ([]*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Figure 16: KNN processing methods (page accesses per query)",
		Columns: []string{"ViTris", "Naive I/O", "Composed I/O", "Naive ranges", "Composed ranges"},
	}
	for _, n := range cfg.ViTriCounts {
		cfg.logf("  figure 16: %d ViTris", n)
		env, err := cfg.newIndexEnv(n, 64, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		ix, err := cfg.buildIndex(env.sums, refpoint.Optimal)
		if err != nil {
			return nil, err
		}
		naive, err := cfg.measureIndex(ix, env.queries, index.Naive)
		if err != nil {
			return nil, err
		}
		composed, err := cfg.measureIndex(ix, env.queries, index.Composed)
		if err != nil {
			return nil, err
		}
		// Ranges per query for context: count once on the first query.
		var sn, sc index.SearchStats
		if len(env.queries) > 0 {
			if _, sn, err = ix.Search(&env.queries[0], cfg.K, index.Naive); err != nil {
				return nil, err
			}
			if _, sc, err = ix.Search(&env.queries[0], cfg.K, index.Composed); err != nil {
				return nil, err
			}
		}
		t.AddRowf(n, naive.pages, composed.pages, sn.Ranges, sc.Ranges)
	}
	return []*metrics.Table{t}, nil
}

// methodSweep runs seqscan plus the three reference-point indexes over a
// summary population and returns one row per method.
func (cfg *Config) methodSweep(sums []core.Summary, queries []core.Summary) (map[string]costRow, error) {
	out := make(map[string]costRow)
	store, err := baseline.NewSeqStore(sums, cfg.Epsilon, nil)
	if err != nil {
		return nil, err
	}
	if out["seqscan"], err = cfg.measureSeq(store, queries); err != nil {
		return nil, err
	}
	for _, kind := range []refpoint.Kind{refpoint.SpaceCenter, refpoint.DataCenter, refpoint.Optimal, refpoint.MultiRef} {
		ix, err := cfg.buildIndex(sums, kind)
		if err != nil {
			return nil, err
		}
		row, err := cfg.measureIndex(ix, queries, index.Composed)
		if err != nil {
			return nil, err
		}
		out[kind.String()] = row
	}
	return out, nil
}

// methodOrder lists the paper's four methods plus the full multi-partition
// iDistance scheme (an extension column: the paper's [15] comparator used
// single reference points).
var methodOrder = []string{"seqscan", "space-center", "data-center", "optimal", "idistance-multi"}

// Figure17 reproduces the effect of database size: I/O and CPU cost for
// sequential scan and the three reference-point transformations.
func Figure17(cfg Config) ([]*metrics.Table, error) {
	io := &metrics.Table{
		Title:   "Figure 17 (I/O): page accesses per query vs number of ViTris",
		Columns: append([]string{"ViTris"}, methodOrder...),
	}
	cpu := &metrics.Table{
		Title:   "Figure 17 (CPU): similarity computations per query vs number of ViTris",
		Columns: append([]string{"ViTris"}, methodOrder...),
	}
	wall := &metrics.Table{
		Title:   "Figure 17 (CPU time): microseconds per query vs number of ViTris",
		Columns: append([]string{"ViTris"}, methodOrder...),
	}
	for _, n := range cfg.ViTriCounts {
		cfg.logf("  figure 17: %d ViTris", n)
		env, err := cfg.newIndexEnv(n, 64, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		rows, err := cfg.methodSweep(env.sums, env.queries)
		if err != nil {
			return nil, err
		}
		addSweepRows(io, cpu, wall, fmt.Sprintf("%d", n), rows)
	}
	return []*metrics.Table{io, cpu, wall}, nil
}

// Figure18 reproduces the effect of dimensionality at a fixed database
// size.
func Figure18(cfg Config) ([]*metrics.Table, error) {
	io := &metrics.Table{
		Title:   fmt.Sprintf("Figure 18 (I/O): page accesses per query vs dimensionality (%d ViTris)", cfg.FixedViTris),
		Columns: append([]string{"dim"}, methodOrder...),
	}
	cpu := &metrics.Table{
		Title:   "Figure 18 (CPU): similarity computations per query vs dimensionality",
		Columns: append([]string{"dim"}, methodOrder...),
	}
	wall := &metrics.Table{
		Title:   "Figure 18 (CPU time): microseconds per query vs dimensionality",
		Columns: append([]string{"dim"}, methodOrder...),
	}
	for _, dim := range cfg.Dims {
		cfg.logf("  figure 18: dim=%d", dim)
		env, err := cfg.newIndexEnv(cfg.FixedViTris, dim, cfg.Seed+int64(dim)*31)
		if err != nil {
			return nil, err
		}
		rows, err := cfg.methodSweep(env.sums, env.queries)
		if err != nil {
			return nil, err
		}
		addSweepRows(io, cpu, wall, fmt.Sprintf("%d", dim), rows)
	}
	return []*metrics.Table{io, cpu, wall}, nil
}

func addSweepRows(io, cpu, wall *metrics.Table, label string, rows map[string]costRow) {
	ioRow := []interface{}{label}
	cpuRow := []interface{}{label}
	wallRow := []interface{}{label}
	for _, m := range methodOrder {
		ioRow = append(ioRow, rows[m].pages)
		cpuRow = append(cpuRow, rows[m].sims)
		wallRow = append(wallRow, rows[m].us)
	}
	io.AddRowf(ioRow...)
	cpu.AddRowf(cpuRow...)
	wall.AddRowf(wallRow...)
}

// Figure19 reproduces the dynamic-insertion experiment: the index is
// built on the first batch; further batches (with mildly drifting
// correlation) are inserted dynamically, measuring KNN cost after each,
// against sequential scan and a one-off rebuilt index.
func Figure19(cfg Config) ([]*metrics.Table, error) {
	io := &metrics.Table{
		Title:   "Figure 19 (I/O): page accesses per query after each insertion batch",
		Columns: []string{"ViTris", "seqscan", "dynamic", "one-off rebuild", "drift (rad)"},
	}
	cpu := &metrics.Table{
		Title:   "Figure 19 (CPU): similarity computations per query after each insertion batch",
		Columns: []string{"ViTris", "seqscan", "dynamic", "one-off rebuild"},
	}
	if len(cfg.InsertBatches) == 0 {
		return nil, fmt.Errorf("no insertion batches configured")
	}

	// Generate each batch with a growing gradient tilt so the dataset's
	// principal direction drifts as the paper describes.
	var batches [][]core.Summary
	firstID := 0
	total := 0
	for bi, n := range cfg.InsertBatches {
		sc := dataset.DefaultSummaryConfig(n, cfg.Seed+int64(bi)*917)
		sc.Epsilon = cfg.Epsilon
		sc.FirstVideoID = firstID
		sc.GradientTilt = 0.25 * float64(bi)
		if sc.GradientTilt > 0.9 {
			sc.GradientTilt = 0.9
		}
		sums, err := dataset.GenerateSummaries(sc)
		if err != nil {
			return nil, err
		}
		batches = append(batches, sums)
		firstID += len(sums) + 1000
		total += n
	}

	// Queries drawn from the first batch (stable targets across steps).
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	queries := make([]core.Summary, cfg.IndexQueries)
	for i := range queries {
		src := &batches[0][rng.Intn(len(batches[0]))]
		queries[i] = dataset.QuerySummary(src, 3_000_000+i, 0.01, rng)
	}

	dyn, err := cfg.buildIndex(batches[0], refpoint.Optimal)
	if err != nil {
		return nil, err
	}
	var all []core.Summary
	for bi, batch := range batches {
		cfg.logf("  figure 19: batch %d (%d ViTris)", bi+1, len(batch))
		if bi > 0 {
			for _, s := range batch {
				if err := dyn.Insert(s); err != nil {
					return nil, err
				}
			}
		}
		all = append(all, batch...)

		store, err := baseline.NewSeqStore(all, cfg.Epsilon, nil)
		if err != nil {
			return nil, err
		}
		seqRow, err := cfg.measureSeq(store, queries)
		if err != nil {
			return nil, err
		}
		dynRow, err := cfg.measureIndex(dyn, queries, index.Composed)
		if err != nil {
			return nil, err
		}
		oneOff, err := cfg.buildIndex(all, refpoint.Optimal)
		if err != nil {
			return nil, err
		}
		oneRow, err := cfg.measureIndex(oneOff, queries, index.Composed)
		if err != nil {
			return nil, err
		}
		io.AddRowf(dyn.Len(), seqRow.pages, dynRow.pages, oneRow.pages, dyn.DriftAngle())
		cpu.AddRowf(dyn.Len(), seqRow.sims, dynRow.sims, oneRow.sims)
	}
	return []*metrics.Table{io, cpu}, nil
}
