package geometry

import (
	"fmt"
	"math"
)

// checkDim panics unless n is a supported dimensionality (>= 1).
func checkDim(n int) {
	if n < 1 {
		panic(fmt.Sprintf("geometry: invalid dimensionality %d", n))
	}
}

// checkRadius panics on negative radii; zero is allowed (empty sphere).
func checkRadius(r float64) {
	if r < 0 || math.IsNaN(r) {
		panic(fmt.Sprintf("geometry: invalid radius %v", r))
	}
}

// LogUnitSphereVolume returns ln of the volume of the n-dimensional unit
// hypersphere: (n/2)·ln(π) − lnΓ(n/2 + 1).
func LogUnitSphereVolume(n int) float64 {
	checkDim(n)
	nf := float64(n)
	return nf/2*math.Log(math.Pi) - lgamma(nf/2+1)
}

// SphereVolume returns the volume of an n-dimensional hypersphere of
// radius r. Overflows/underflows to ±Inf/0 in extreme regimes; use
// LogSphereVolume when ratios of volumes are needed.
func SphereVolume(n int, r float64) float64 {
	checkRadius(r)
	if r == 0 {
		return 0
	}
	return math.Exp(LogSphereVolume(n, r))
}

// LogSphereVolume returns ln(SphereVolume(n, r)). r must be positive.
func LogSphereVolume(n int, r float64) float64 {
	checkDim(n)
	checkRadius(r)
	if r == 0 {
		return math.Inf(-1)
	}
	return LogUnitSphereVolume(n) + float64(n)*math.Log(r)
}

// clampAngle normalizes α into [0, π]; volume formulas are defined on that
// range (α is the angle at the sphere center, Figure 1 of the paper).
func clampAngle(alpha float64) float64 {
	switch {
	case math.IsNaN(alpha):
		panic("geometry: NaN angle")
	case alpha < 0:
		return 0
	case alpha > math.Pi:
		return math.Pi
	}
	return alpha
}

// CapFraction returns the fraction of an n-sphere's volume contained in the
// hypercap of half-angle α (the angle between the cap axis and the cone to
// the cap rim, measured at the center). α in [0, π/2] gives at most half
// the sphere; α in (π/2, π] gives the complement.
func CapFraction(n int, alpha float64) float64 {
	checkDim(n)
	alpha = clampAngle(alpha)
	s := math.Sin(alpha)
	x := s * s
	half := 0.5 * RegIncompleteBeta((float64(n)+1)/2, 0.5, x)
	if alpha <= math.Pi/2 {
		return half
	}
	return 1 - half
}

// SurfaceCapFraction returns the fraction of the n-sphere's *surface area*
// within angle α of a pole. A hypersector's volume is the sphere volume
// times this fraction (the sector is the radial extrusion of the surface
// cap).
func SurfaceCapFraction(n int, alpha float64) float64 {
	checkDim(n)
	if n == 1 {
		// The 1-sphere "surface" is two points; any α < π covers one of
		// them, α = π covers both.
		if clampAngle(alpha) < math.Pi {
			return 0.5
		}
		return 1
	}
	alpha = clampAngle(alpha)
	s := math.Sin(alpha)
	x := s * s
	half := 0.5 * RegIncompleteBeta((float64(n)-1)/2, 0.5, x)
	if alpha <= math.Pi/2 {
		return half
	}
	return 1 - half
}

// CapVolume returns the volume of the hypercap of an n-sphere of radius r
// with half-angle α, V_hypercap(O, R, α) in the paper's notation.
func CapVolume(n int, r, alpha float64) float64 {
	checkRadius(r)
	if r == 0 {
		return 0
	}
	return SphereVolume(n, r) * CapFraction(n, alpha)
}

// LogCapVolume returns ln(CapVolume). Returns -Inf when the cap is empty.
func LogCapVolume(n int, r, alpha float64) float64 {
	f := CapFraction(n, alpha)
	if r == 0 || f == 0 {
		return math.Inf(-1)
	}
	return LogSphereVolume(n, r) + math.Log(f)
}

// SectorVolume returns the volume of the hypersector of half-angle α.
func SectorVolume(n int, r, alpha float64) float64 {
	checkRadius(r)
	if r == 0 {
		return 0
	}
	return SphereVolume(n, r) * SurfaceCapFraction(n, alpha)
}

// ConeVolume returns the volume of the hypercone inscribed in the sector of
// half-angle α: an (n−1)-ball base of radius r·sin(α) at height r·cos(α),
// with volume V_{n-1}(r sin α) · r cos α / n. For α > π/2 the cone volume
// is negative (the apex lies beyond the base plane), matching the
// convention under which cap = sector − cone for all α.
func ConeVolume(n int, r, alpha float64) float64 {
	checkDim(n)
	checkRadius(r)
	alpha = clampAngle(alpha)
	if r == 0 {
		return 0
	}
	if n == 1 {
		return 0
	}
	base := SphereVolume(n-1, r*math.Sin(alpha))
	return base * r * math.Cos(alpha) / float64(n)
}

// wallis returns the coefficient (2i)! / (2^{2i} (i!)^2) = C(2i, i) / 4^i
// appearing in the paper's odd-dimension series.
func wallis(i int) float64 {
	v := 1.0
	for k := 1; k <= i; k++ {
		v *= float64(2*k-1) / float64(2*k)
	}
	return v
}

// invWallisOdd returns the coefficient 2^{2i} (i!)^2 / (2i+1)! appearing in
// the paper's even-dimension series.
func invWallisOdd(i int) float64 {
	v := 1.0
	for k := 1; k <= i; k++ {
		v *= float64(2*k) / float64(2*k+1)
	}
	return v / float64(1) // i=0 term is 1
}

// SectorVolumeSeries evaluates the paper's §3.2 finite-series formula for
// the hypersector volume (upper series term count differs from the cap by
// one). It is retained for fidelity and cross-checked against SectorVolume
// in tests; prefer SectorVolume in production code.
func SectorVolumeSeries(n int, r, alpha float64) float64 {
	return paperSeries(n, r, alpha, false)
}

// CapVolumeSeries evaluates the paper's §3.2 finite-series formula for the
// hypercap volume ("identical to that of the hypersector, except the number
// appearing in the top of sigma").
func CapVolumeSeries(n int, r, alpha float64) float64 {
	return paperSeries(n, r, alpha, true)
}

// paperSeries implements both series. For even n the sum runs to
// (n-4)/2 (sector) or (n-2)/2 (cap); for odd n to (n-3)/2 or (n-1)/2.
func paperSeries(n int, r, alpha float64, cap bool) float64 {
	checkDim(n)
	checkRadius(r)
	alpha = clampAngle(alpha)
	if r == 0 {
		return 0
	}
	sin, cos := math.Sin(alpha), math.Cos(alpha)
	if n%2 == 0 {
		upper := (n - 4) / 2
		if cap {
			upper = (n - 2) / 2
		}
		var sum float64
		sp := sin // sin^(2i+1)
		ci := 1.0 // 2^{2i} (i!)^2 / (2i+1)!, updated incrementally
		for i := 0; i <= upper; i++ {
			sum += ci * sp
			sp *= sin * sin
			ci *= float64(2*(i+1)) / float64(2*(i+1)+1)
		}
		// Coefficient R^n * pi^{(n-2)/2} / (n/2)!.
		lc := float64(n)*math.Log(r) + float64(n-2)/2*math.Log(math.Pi) - lgamma(float64(n)/2+1)
		return math.Exp(lc) * (alpha - cos*sum)
	}
	upper := (n - 3) / 2
	if cap {
		upper = (n - 1) / 2
	}
	var sum float64
	sp := 1.0 // sin^(2i)
	ci := 1.0 // (2i)! / (2^{2i} (i!)^2), updated incrementally
	for i := 0; i <= upper; i++ {
		sum += ci * sp
		sp *= sin * sin
		ci *= float64(2*(i+1)-1) / float64(2*(i+1))
	}
	// Coefficient is half the sphere volume: V_sphere(n, r) / 2.
	return SphereVolume(n, r) / 2 * (1 - cos*sum)
}
