package baseline

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/vec"
)

// The blocked kernel must agree with the naive reference everywhere,
// including sizes that are not multiples of the tile edge and the empty /
// single-frame degenerate shapes.
func TestExactSimilarityBlockedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	mk := func(n, dim int) []vec.Vector {
		out := make([]vec.Vector, n)
		for i := range out {
			p := make(vec.Vector, dim)
			for j := range p {
				p[j] = r.Float64()
			}
			out[i] = p
		}
		return out
	}
	sizes := []struct{ nx, ny int }{
		{0, 10}, {10, 0}, {1, 1}, {3, 5},
		{simBlock, simBlock}, {simBlock - 1, simBlock + 1},
		{2*simBlock + 7, simBlock / 2}, {5, 3 * simBlock},
	}
	for _, eps := range []float64{0.05, 0.3, 1.2} {
		for _, sz := range sizes {
			x, y := mk(sz.nx, 8), mk(sz.ny, 8)
			got := ExactSimilarity(x, y, eps)
			want := ExactSimilarityNaive(x, y, eps)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("eps=%v |x|=%d |y|=%d: blocked %v, naive %v", eps, sz.nx, sz.ny, got, want)
			}
		}
	}
}

// Dense all-similar and sparse none-similar inputs exercise the
// both-marked skip path and the never-marked path respectively.
func TestExactSimilarityBlockedExtremes(t *testing.T) {
	n := simBlock + 9
	same := make([]vec.Vector, n)
	far := make([]vec.Vector, n)
	for i := range same {
		same[i] = vec.Vector{0.5, 0.5}
		far[i] = vec.Vector{100 + float64(i)*10, 0}
	}
	if got := ExactSimilarity(same, same, 0.1); got != 1 {
		t.Fatalf("all-similar: %v, want 1", got)
	}
	if got := ExactSimilarity(same, far, 0.1); got != 0 {
		t.Fatalf("none-similar: %v, want 0", got)
	}
}
