package feature

import (
	"math"
	"testing"

	"vitri/internal/vec"
)

func TestRGBToHSVKnown(t *testing.T) {
	cases := []struct {
		r, g, b byte
		h, s, v float64
	}{
		{255, 0, 0, 0, 1, 1},     // red
		{0, 255, 0, 120, 1, 1},   // green
		{0, 0, 255, 240, 1, 1},   // blue
		{255, 255, 0, 60, 1, 1},  // yellow
		{0, 255, 255, 180, 1, 1}, // cyan
		{255, 0, 255, 300, 1, 1}, // magenta
		{0, 0, 0, 0, 0, 0},       // black
		{255, 255, 255, 0, 0, 1}, // white
		{128, 128, 128, 0, 0, 128.0 / 255},
	}
	for _, c := range cases {
		h, s, v := rgbToHSV(c.r, c.g, c.b)
		if math.Abs(h-c.h) > 1e-9 || math.Abs(s-c.s) > 1e-9 || math.Abs(v-c.v) > 1e-9 {
			t.Errorf("rgbToHSV(%d,%d,%d) = %v,%v,%v want %v,%v,%v",
				c.r, c.g, c.b, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestHistogramHSVSumsToOne(t *testing.T) {
	f := NewFrame(7, 5)
	for i := range f.Pix {
		f.Pix[i] = byte((i * 53) % 256)
	}
	h, err := HistogramHSV(f, HSVDefault)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 64 {
		t.Fatalf("dims = %d", len(h))
	}
	if s := vec.Sum(h); math.Abs(s-1) > 1e-9 {
		t.Fatalf("sums to %v", s)
	}
}

func TestHistogramHSVSolidRed(t *testing.T) {
	f := NewFrame(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			f.Set(x, y, 255, 0, 0)
		}
	}
	h, err := HistogramHSV(f, HSVDefault)
	if err != nil {
		t.Fatal(err)
	}
	// Hue 0 -> bin 0; s=1 -> top s bin; v=1 -> top v bin.
	bin := (0*HSVDefault.S+(HSVDefault.S-1))*HSVDefault.V + (HSVDefault.V - 1)
	if h[bin] != 1 {
		t.Fatalf("red mass not in bin %d: %v", bin, h)
	}
}

// HSV hue is brightness-invariant: scaling V must keep the hue bin.
func TestHistogramHSVBrightnessRobust(t *testing.T) {
	dark := NewFrame(4, 4)
	bright := NewFrame(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			dark.Set(x, y, 120, 30, 30)   // dark red
			bright.Set(x, y, 240, 60, 60) // the same hue, doubled value
		}
	}
	bins := HSVBins{H: 16, S: 1, V: 1} // hue only
	hd, err := HistogramHSV(dark, bins)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HistogramHSV(bright, bins)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(hd, hb) {
		t.Fatalf("hue histogram changed under brightness scaling: %v vs %v", hd, hb)
	}
	// The RGB histogram, by contrast, moves.
	rd, _ := Histogram(dark, 2)
	rb, _ := Histogram(bright, 2)
	if vec.Equal(rd, rb) {
		t.Fatal("RGB histogram unexpectedly brightness-invariant")
	}
}

func TestHistogramHSVValidation(t *testing.T) {
	f := NewFrame(2, 2)
	if _, err := HistogramHSV(f, HSVBins{H: 0, S: 1, V: 1}); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := HistogramHSV(f, HSVBins{H: 1 << 9, S: 1 << 9, V: 1}); err == nil {
		t.Fatal("expected error for oversized bins")
	}
	f.Pix = f.Pix[:3]
	if _, err := HistogramHSV(f, HSVDefault); err == nil {
		t.Fatal("expected error for invalid frame")
	}
}

func TestHistogramHSVSeq(t *testing.T) {
	frames := []*Frame{NewFrame(3, 3), NewFrame(3, 3)}
	hs, err := HistogramHSVSeq(frames, HSVDefault)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || len(hs[0]) != 64 {
		t.Fatalf("seq shape %d x %d", len(hs), len(hs[0]))
	}
	frames[0].Pix = frames[0].Pix[:1]
	if _, err := HistogramHSVSeq(frames, HSVDefault); err == nil {
		t.Fatal("expected error for bad frame in sequence")
	}
}
