package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"vitri"
	"vitri/internal/dataset"
	"vitri/internal/experiments"
	"vitri/internal/metrics"
)

// The shard experiment measures the shard-per-core engine against the
// single engine it must be indistinguishable from: batch ingest
// throughput (routed group commits) and scatter-gather search throughput
// at increasing shard counts, on the same corpus and query set. Before
// any shard count's timing is reported, its search results are compared
// bit-for-bit against the single engine's — a fast sharded engine that
// ranks differently would be worthless, so BENCH_shard.json records the
// equivalence verdict and benchguard refuses a file where it is false.
// Like the ingest and checkpoint experiments it lives in package main
// because it exercises the public vitri API.

// shardSearchRounds is how many passes over the query set each shard
// count's search timing averages.
const shardSearchRounds = 3

// shardRow is one shard-count measurement in BENCH_shard.json.
type shardRow struct {
	Shards        int     `json:"shards"`
	IngestSeconds float64 `json:"ingest_seconds"`
	VideosPerSec  float64 `json:"videos_per_sec"`
	SearchSeconds float64 `json:"search_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SearchSpeedup float64 `json:"search_speedup_vs_single"`
	IngestSpeedup float64 `json:"ingest_speedup_vs_single"`
}

// shardReport is the BENCH_shard.json schema.
type shardReport struct {
	Scale      float64    `json:"scale"`
	Videos     int        `json:"videos"`
	Triplets   int        `json:"triplets"`
	Epsilon    float64    `json:"epsilon"`
	K          int        `json:"k"`
	Queries    int        `json:"queries"`
	Rounds     int        `json:"search_rounds"`
	Equivalent bool       `json:"equivalent"`
	Rows       []shardRow `json:"rows"`
}

// runShard builds the experiment corpus once, then ingests and queries
// it at each shard count. The ingest timing covers AddBatch plus the
// bulk index build; the search timing covers shardSearchRounds passes
// over the query set through the scatter-gather path.
func runShard(cfg experiments.Config, outPath string) ([]*metrics.Table, error) {
	corpus, err := dataset.GenerateHist(dataset.DefaultHistConfig(cfg.Scale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	videos := make([]vitri.Video, len(corpus.Videos))
	for i := range corpus.Videos {
		videos[i] = vitri.Video{ID: corpus.Videos[i].ID, Frames: corpus.Videos[i].Frames}
	}
	nq := cfg.Queries
	if nq > len(videos) {
		nq = len(videos)
	}
	queries := make([]vitri.Summary, nq)
	for i := range queries {
		queries[i] = vitri.Summarize(-1, videos[i].Frames, cfg.Epsilon, cfg.Seed)
	}

	report := shardReport{
		Scale:      cfg.Scale,
		Videos:     len(videos),
		Epsilon:    cfg.Epsilon,
		K:          cfg.K,
		Queries:    nq,
		Rounds:     shardSearchRounds,
		Equivalent: true,
	}
	table := &metrics.Table{
		Title:   "Shard-per-core engine (ingest and scatter-gather search by shard count)",
		Columns: []string{"shards", "ingest s", "videos/sec", "search s", "queries/sec", "search speedup", "equivalent"},
	}

	// reference holds the single engine's matches per query; every other
	// shard count must reproduce them bit-for-bit.
	var reference [][]vitri.Match
	var single shardRow
	for i, shards := range []int{1, 2, 4, 8} {
		db := vitri.New(vitri.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, Shards: shards})
		start := time.Now()
		itemErrs, err := db.AddBatch(videos)
		if err != nil {
			return nil, fmt.Errorf("shards %d: ingest: %w", shards, err)
		}
		for _, e := range itemErrs {
			if e != nil {
				return nil, fmt.Errorf("shards %d: ingest: %w", shards, e)
			}
		}
		// The bulk index build is lazy; the first search pays for it, so it
		// belongs to the ingest measurement, not the search loop.
		if _, _, err := db.SearchSummary(&queries[0], cfg.K, vitri.Composed); err != nil {
			return nil, fmt.Errorf("shards %d: index build: %w", shards, err)
		}
		ingest := time.Since(start)

		matches := make([][]vitri.Match, nq)
		start = time.Now()
		for round := 0; round < shardSearchRounds; round++ {
			for qi := range queries {
				res, _, err := db.SearchSummary(&queries[qi], cfg.K, vitri.Composed)
				if err != nil {
					return nil, fmt.Errorf("shards %d: query %d: %w", shards, qi, err)
				}
				matches[qi] = res
			}
		}
		search := time.Since(start)

		if i == 0 {
			reference = matches
			report.Triplets = db.Triplets()
		} else if !shardMatchesEqual(matches, reference) {
			report.Equivalent = false
		}

		row := shardRow{
			Shards:        shards,
			IngestSeconds: ingest.Seconds(),
			VideosPerSec:  float64(len(videos)) / ingest.Seconds(),
			SearchSeconds: search.Seconds(),
			QueriesPerSec: float64(shardSearchRounds*nq) / search.Seconds(),
		}
		if i == 0 {
			single = row
		}
		row.SearchSpeedup = row.QueriesPerSec / single.QueriesPerSec
		row.IngestSpeedup = row.VideosPerSec / single.VideosPerSec
		report.Rows = append(report.Rows, row)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.3f", row.IngestSeconds),
			fmt.Sprintf("%.0f", row.VideosPerSec),
			fmt.Sprintf("%.3f", row.SearchSeconds),
			fmt.Sprintf("%.0f", row.QueriesPerSec),
			fmt.Sprintf("%.2fx", row.SearchSpeedup),
			fmt.Sprintf("%t", report.Equivalent),
		})
	}

	if outPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{table}, nil
}

// shardMatchesEqual reports whether two per-query match sets are
// bit-identical: same videos, same similarity and shared-footage values
// down to the float bits, in the same order.
func shardMatchesEqual(got, want [][]vitri.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for qi := range got {
		if len(got[qi]) != len(want[qi]) {
			return false
		}
		for j := range got[qi] {
			g, w := got[qi][j], want[qi][j]
			if g.VideoID != w.VideoID ||
				math.Float64bits(g.Similarity) != math.Float64bits(w.Similarity) ||
				math.Float64bits(g.Shared) != math.Float64bits(w.Shared) {
				return false
			}
		}
	}
	return true
}
