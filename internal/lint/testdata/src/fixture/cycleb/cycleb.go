// Package cycleb closes the lock-order cycle that cyclea opens: Peer
// implements cyclea.Notifier by taking its own lock, and WithRegistry
// calls back into the registry with that lock held. The module-wide
// lock graph reports the cycle once, in cyclea, with both edges'
// acquisition chains.
package cycleb

import (
	"sync"

	"fixture/cyclea"
)

// Peer implements cyclea.Notifier.
type Peer struct {
	mu sync.Mutex
}

// Notify takes the peer lock, so cyclea.Registry.WithNotifier holds
// Registry.mu → Peer.mu.
func (p *Peer) Notify() {
	p.mu.Lock()
	defer p.mu.Unlock()
}

// WithRegistry holds p.mu across Poke, which acquires Registry.mu:
// Peer.mu → Registry.mu, the second half of the cycle.
func (p *Peer) WithRegistry(r *cyclea.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.Poke()
}
