package server

// End-to-end matrix for the two query workloads added in PR 10 —
// POST /search/image and POST /search/temporal — run against a durable
// shard-per-core engine at -shards 1, 2 and 8. The bars mirror the
// whole-video suite: byte-identical responses at every shard count (the
// shards=1 run is the oracle), exact cumulative /stats attribution for
// the per-workload image_*/temporal_* counters, structured 400s on every
// malformed body, 429 admission, 504 deadline expiry and a clean drain
// with a query mid-flight. These run under `make e2e` (and `make check`,
// with -race) via the TestE2E name prefix.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vitri"
)

// TestE2EQueryShardMatrix drives concurrent image and temporal queries
// over a durable sharded corpus: every request completes with the
// planted source video on top, the per-query stats carry real
// accounting, the /stats image_* and temporal_* counters equal the sums
// of per-response attributions, and a sequential verification pass must
// return byte-identical bodies at every shard count. Temporal scores are
// additionally re-checked against the blend formula after the JSON
// round-trip (Go's float64 encoding is shortest-round-trip, so the
// bitwise claim survives the wire).
func TestE2EQueryShardMatrix(t *testing.T) {
	const nVideos, nBodies, repeats = 16, 6, 2
	var (
		refImage    [][]matchJSON         // shards=1 image rankings: the oracle
		refTemporal [][]temporalMatchJSON // shards=1 temporal rankings
	)
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db, videos := shardedDurableCorpus(t, nVideos, shards, vitri.Options{})
			srv := New(db, Config{MaxInFlight: 64, RequestTimeout: time.Minute, ErrorLog: quietLog()})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Identical fixed-seed bodies at every shard count: image probes
			// are exact corpus frames (their source must rank first),
			// temporal queries are noisy copies of whole videos at the three
			// interesting blend weights.
			r := rand.New(rand.NewSource(43))
			imageBodies := make([][]byte, nBodies)
			temporalBodies := make([][]byte, nBodies)
			weights := make([]float64, nBodies)
			sources := make([]int, nBodies)
			for i := 0; i < nBodies; i++ {
				src := i % len(videos)
				sources[i] = src
				frame := videos[src][r.Intn(len(videos[src]))]
				imageBodies[i] = mustMarshal(map[string]interface{}{"frame": []float64(frame), "k": 5})
				weights[i] = []float64{0, 0.5, 1}[i%3]
				temporalBodies[i] = mustMarshal(map[string]interface{}{
					"frames": framesJSON(noisyCopy(r, videos[src], 0.005)),
					"k":      5,
					"weight": weights[i],
				})
			}

			var (
				wg                 sync.WaitGroup
				imgReads, tmpReads atomic.Uint64
				imgOps, imgSkips   atomic.Int64
				tmpOps, tmpSkips   atomic.Int64
				failures           atomic.Int64
				firstFail          atomic.Value
			)
			fail := func(msg string) {
				failures.Add(1)
				firstFail.CompareAndSwap(nil, msg)
			}
			postImage := func(i int) (searchResponse, bool) {
				var sr searchResponse
				resp, err := http.Post(ts.URL+epSearchImage, "application/json", bytesReader(imageBodies[i]))
				if err != nil {
					fail(fmt.Sprintf("image %d: %v", i, err))
					return sr, false
				}
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Sprintf("image %d: status %d, decode %v", i, resp.StatusCode, err))
					return sr, false
				}
				if len(sr.Matches) == 0 || sr.Matches[0].VideoID != sources[i] {
					fail(fmt.Sprintf("image %d: top match %+v, want video %d", i, sr.Matches, sources[i]))
					return sr, false
				}
				if sr.Stats.SimilarityOps+sr.Stats.SignatureSkips == 0 {
					fail(fmt.Sprintf("image %d: response carries no scan accounting: %+v", i, sr.Stats))
					return sr, false
				}
				imgReads.Add(sr.Stats.PageReads)
				imgOps.Add(int64(sr.Stats.SimilarityOps))
				imgSkips.Add(int64(sr.Stats.SignatureSkips))
				return sr, true
			}
			postTemporal := func(i int) (temporalSearchResponse, bool) {
				var tr temporalSearchResponse
				resp, err := http.Post(ts.URL+epSearchTemporal, "application/json", bytesReader(temporalBodies[i]))
				if err != nil {
					fail(fmt.Sprintf("temporal %d: %v", i, err))
					return tr, false
				}
				err = json.NewDecoder(resp.Body).Decode(&tr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Sprintf("temporal %d: status %d, decode %v", i, resp.StatusCode, err))
					return tr, false
				}
				if len(tr.Matches) == 0 || tr.Matches[0].VideoID != sources[i] {
					fail(fmt.Sprintf("temporal %d: top match %+v, want video %d", i, tr.Matches, sources[i]))
					return tr, false
				}
				for _, m := range tr.Matches {
					w := weights[i]
					if blend := (1-w)*m.Bag + w*m.Temporal; math.Float64bits(m.Score) != math.Float64bits(blend) {
						fail(fmt.Sprintf("temporal %d: video %d score %v is not the weight-%v blend of bag %v and temporal %v",
							i, m.VideoID, m.Score, w, m.Bag, m.Temporal))
						return tr, false
					}
				}
				tmpReads.Add(tr.Stats.PageReads)
				tmpOps.Add(int64(tr.Stats.SimilarityOps))
				tmpSkips.Add(int64(tr.Stats.SignatureSkips))
				return tr, true
			}

			// Concurrent load phase: both workloads interleaved.
			for i := 0; i < nBodies; i++ {
				for rep := 0; rep < repeats; rep++ {
					wg.Add(2)
					go func(i int) { defer wg.Done(); postImage(i) }(i)
					go func(i int) { defer wg.Done(); postTemporal(i) }(i)
				}
			}
			wg.Wait()
			if n := failures.Load(); n > 0 {
				t.Fatalf("%d request failures; first: %v", n, firstFail.Load())
			}

			// Sequential verification pass, recorded for the cross-shard
			// comparison (and counted toward the cumulative stats).
			gotImage := make([][]matchJSON, nBodies)
			gotTemporal := make([][]temporalMatchJSON, nBodies)
			for i := 0; i < nBodies; i++ {
				sr, ok := postImage(i)
				tr, ok2 := postTemporal(i)
				if !ok || !ok2 {
					t.Fatalf("verification pass failed: %v", firstFail.Load())
				}
				gotImage[i] = sr.Matches
				gotTemporal[i] = tr.Matches
			}

			// Exact cumulative attribution for both workloads.
			const perEndpoint = nBodies * (repeats + 1)
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st statsResponse
			decodeBody(t, resp, &st)
			if st.ImageQueries != perEndpoint || st.TemporalQueries != perEndpoint {
				t.Fatalf("image_queries = %d, temporal_queries = %d, want %d each",
					st.ImageQueries, st.TemporalQueries, perEndpoint)
			}
			if st.ImagePageReads != imgReads.Load() || st.TemporalPageReads != tmpReads.Load() {
				t.Fatalf("stats page reads (image %d, temporal %d) != client sums (%d, %d)",
					st.ImagePageReads, st.TemporalPageReads, imgReads.Load(), tmpReads.Load())
			}
			if st.ImageSimilarityOps != uint64(imgOps.Load()) || st.ImageSignatureSkips != uint64(imgSkips.Load()) {
				t.Fatalf("image ops/skips (%d/%d) != client sums (%d/%d)",
					st.ImageSimilarityOps, st.ImageSignatureSkips, imgOps.Load(), imgSkips.Load())
			}
			if st.TemporalSimilarityOps != uint64(tmpOps.Load()) || st.TemporalSignatureSkips != uint64(tmpSkips.Load()) {
				t.Fatalf("temporal ops/skips (%d/%d) != client sums (%d/%d)",
					st.TemporalSimilarityOps, st.TemporalSignatureSkips, tmpOps.Load(), tmpSkips.Load())
			}
			if st.ImagePageReads == 0 || st.TemporalPageReads == 0 {
				t.Fatal("a workload reported zero page reads over the whole run; the attribution claim is vacuous")
			}
			for _, ep := range []string{epSearchImage, epSearchTemporal} {
				es, ok := st.Endpoints[ep]
				if !ok {
					t.Fatalf("/stats has no endpoint entry for %s", ep)
				}
				if es.Requests != perEndpoint || es.Errors5xx != 0 {
					t.Fatalf("%s endpoint stats %+v, want %d requests and no 5xx", ep, es, perEndpoint)
				}
			}

			// The sharding bar: byte-identical bodies at every shard count.
			if shards == 1 {
				refImage, refTemporal = gotImage, gotTemporal
			} else {
				for i := 0; i < nBodies; i++ {
					if len(gotImage[i]) != len(refImage[i]) {
						t.Fatalf("image query %d: %d matches at %d shards, oracle has %d",
							i, len(gotImage[i]), shards, len(refImage[i]))
					}
					for j, m := range gotImage[i] {
						if m != refImage[i][j] {
							t.Fatalf("image query %d match %d at %d shards: got %+v, single-engine oracle %+v",
								i, j, shards, m, refImage[i][j])
						}
					}
					if len(gotTemporal[i]) != len(refTemporal[i]) {
						t.Fatalf("temporal query %d: %d matches at %d shards, oracle has %d",
							i, len(gotTemporal[i]), shards, len(refTemporal[i]))
					}
					for j, m := range gotTemporal[i] {
						if m != refTemporal[i][j] {
							t.Fatalf("temporal query %d match %d at %d shards: got %+v, single-engine oracle %+v",
								i, j, shards, m, refTemporal[i][j])
						}
					}
				}
			}
			if err := srv.Close(context.Background()); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

// TestE2EQueryValidation sends every malformed body shape at the two
// endpoints: each must answer 400 with a structured error message, none
// may reach the engine (the cumulative query counters stay zero), and a
// well-formed request must still succeed afterwards.
func TestE2EQueryValidation(t *testing.T) {
	db, videos := testCorpus(t, 6, vitri.Options{})
	srv := New(db, Config{MaxK: 50, ErrorLog: quietLog()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct{ name, path, body string }{
		{"image-malformed", epSearchImage, `{"frame": [0.5`},
		{"image-unknown-field", epSearchImage, `{"frame": [0.5], "frames": [[0.5]]}`},
		{"image-empty-frame", epSearchImage, `{"frame": []}`},
		{"image-missing-frame", epSearchImage, `{"k": 3}`},
		{"image-bad-value-type", epSearchImage, `{"frame": [0.5, "x"]}`},
		{"image-k-over-max", epSearchImage, `{"frame": [0.5], "k": 51}`},
		{"image-k-negative", epSearchImage, `{"frame": [0.5], "k": -1}`},
		{"image-bad-mode", epSearchImage, `{"frame": [0.5], "mode": "fast"}`},
		{"temporal-malformed", epSearchTemporal, `{"frames": [[0.5]`},
		{"temporal-unknown-field", epSearchTemporal, `{"frames": [[0.5]], "frame": [0.5]}`},
		{"temporal-no-frames", epSearchTemporal, `{"frames": [], "k": 3}`},
		{"temporal-missing-frames", epSearchTemporal, `{"weight": 0.5}`},
		{"temporal-empty-frame", epSearchTemporal, `{"frames": [[]]}`},
		{"temporal-ragged-dims", epSearchTemporal, `{"frames": [[0.5], [0.5, 0.5]]}`},
		{"temporal-weight-high", epSearchTemporal, `{"frames": [[0.5]], "weight": 1.5}`},
		{"temporal-weight-negative", epSearchTemporal, `{"frames": [[0.5]], "weight": -0.25}`},
		{"temporal-bad-mode", epSearchTemporal, `{"frames": [[0.5]], "mode": "bm25"}`},
		{"temporal-k-over-max", epSearchTemporal, `{"frames": [[0.5]], "k": 9000}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e errorResponse
		decodeBody(t, resp, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (error %q), want 400", tc.name, resp.StatusCode, e.Error)
		}
		if e.Error == "" {
			t.Fatalf("%s: 400 with no error message", tc.name)
		}
	}

	// None of the rejects may have counted as a served query.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decodeBody(t, resp, &st)
	if st.ImageQueries != 0 || st.TemporalQueries != 0 {
		t.Fatalf("rejected bodies were counted as queries: image %d, temporal %d", st.ImageQueries, st.TemporalQueries)
	}
	for _, ep := range []string{epSearchImage, epSearchTemporal} {
		if st.Endpoints[ep].Errors5xx != 0 {
			t.Fatalf("%s reported 5xx on validation traffic: %+v", ep, st.Endpoints[ep])
		}
	}

	// The endpoints still serve well-formed requests.
	var sr searchResponse
	resp = postJSON(t, ts.URL+epSearchImage, map[string]interface{}{"frame": []float64(videos[0][0])})
	decodeBody(t, resp, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Matches) == 0 {
		t.Fatalf("image after rejects: status %d, %d matches", resp.StatusCode, len(sr.Matches))
	}
	var tr temporalSearchResponse
	resp = postJSON(t, ts.URL+epSearchTemporal, map[string]interface{}{"frames": framesJSON(videos[0]), "weight": 1.0})
	decodeBody(t, resp, &tr)
	if resp.StatusCode != http.StatusOK || len(tr.Matches) == 0 {
		t.Fatalf("temporal after rejects: status %d, %d matches", resp.StatusCode, len(tr.Matches))
	}
}

// TestE2EQueryFailureModes exercises the serving-contract edges on the
// new endpoints: load shedding (429 + Retry-After with the slots held
// inside a query), deadline expiry (504 with the work hook stalled
// beyond RequestTimeout), and a graceful drain begun while a temporal
// query is mid-flight (the in-flight request completes, later requests
// are gated).
func TestE2EQueryFailureModes(t *testing.T) {
	t.Run("admission", func(t *testing.T) {
		db, videos := testCorpus(t, 4, vitri.Options{Shards: 2})
		srv := New(db, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second, ErrorLog: quietLog()})
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		srv.testHookAdmitted = func() {
			entered <- struct{}{}
			<-release
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		held := make(chan int, 1)
		go func() {
			resp := postJSON(t, ts.URL+epSearchImage, map[string]interface{}{"frame": []float64(videos[0][0])})
			resp.Body.Close()
			held <- resp.StatusCode
		}()
		<-entered // the only slot is provably held

		for _, tc := range []struct {
			path string
			body interface{}
		}{
			{epSearchImage, map[string]interface{}{"frame": []float64(videos[0][0])}},
			{epSearchTemporal, map[string]interface{}{"frames": framesJSON(videos[0])}},
		} {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			var e errorResponse
			decodeBody(t, resp, &e)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("%s under load: status %d, want 429", tc.path, resp.StatusCode)
			}
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Fatalf("%s Retry-After = %q, want \"2\"", tc.path, ra)
			}
			if e.Error == "" {
				t.Fatalf("%s: 429 body has no error message", tc.path)
			}
		}
		close(release)
		if code := <-held; code != http.StatusOK {
			t.Fatalf("held request finished with %d", code)
		}
		if got := srv.met.shed.Value(); got != 2 {
			t.Fatalf("shed counter = %d, want 2", got)
		}
		if err := srv.Close(context.Background()); err != nil {
			t.Fatalf("close: %v", err)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		db, videos := testCorpus(t, 4, vitri.Options{})
		srv := New(db, Config{RequestTimeout: 30 * time.Millisecond, ErrorLog: quietLog()})
		release := make(chan struct{})
		srv.testHookWork = func() { <-release }
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		for _, tc := range []struct {
			path string
			body interface{}
		}{
			{epSearchImage, map[string]interface{}{"frame": []float64(videos[0][0])}},
			{epSearchTemporal, map[string]interface{}{"frames": framesJSON(videos[0])}},
		} {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			var e errorResponse
			decodeBody(t, resp, &e)
			if resp.StatusCode != http.StatusGatewayTimeout || e.Error == "" {
				t.Fatalf("%s past deadline: status %d, error %q; want structured 504", tc.path, resp.StatusCode, e.Error)
			}
		}
		if got := srv.met.timeouts.Value(); got != 2 {
			t.Fatalf("timeouts counter = %d, want 2", got)
		}
		close(release) // let the abandoned work goroutines finish
		if err := srv.Close(context.Background()); err != nil {
			t.Fatalf("close: %v", err)
		}
	})

	t.Run("drain-during-query", func(t *testing.T) {
		db, videos := testCorpus(t, 4, vitri.Options{Shards: 2})
		srv := New(db, Config{RequestTimeout: time.Minute, ErrorLog: quietLog()})
		started := make(chan struct{}, 1)
		release := make(chan struct{})
		var stalled atomic.Bool // only the first query stalls; the drain probes run free
		srv.testHookWork = func() {
			if stalled.CompareAndSwap(false, true) {
				started <- struct{}{}
				<-release
			}
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		inFlight := make(chan int, 1)
		go func() {
			resp := postJSON(t, ts.URL+epSearchTemporal, map[string]interface{}{"frames": framesJSON(videos[1]), "weight": 0.5})
			resp.Body.Close()
			inFlight <- resp.StatusCode
		}()
		<-started // the temporal query is provably mid-work

		closeErr := make(chan error, 1)
		go func() { closeErr <- srv.Close(context.Background()) }()

		// The drain gate must turn away new queries with a structured
		// response while the old one is still running. Close is
		// asynchronous, so poll until the gate flips.
		deadline := time.After(5 * time.Second)
		for {
			resp := postJSON(t, ts.URL+epSearchImage, map[string]interface{}{"frame": []float64(videos[0][0])})
			var e errorResponse
			decodeBody(t, resp, &e)
			if resp.StatusCode == http.StatusServiceUnavailable {
				if e.Error == "" {
					t.Fatal("drain gate answered 503 with no error message")
				}
				break
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("during drain: status %d, error %q; want 200 or 503", resp.StatusCode, e.Error)
			}
			select {
			case <-deadline:
				t.Fatal("drain gate never rejected a new query")
			case <-time.After(time.Millisecond):
			}
		}

		close(release)
		if code := <-inFlight; code != http.StatusOK {
			t.Fatalf("mid-flight temporal query finished with %d during drain, want 200", code)
		}
		if err := <-closeErr; err != nil {
			t.Fatalf("close with a query in flight: %v", err)
		}
	})
}
