package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vitri"
	"vitri/internal/experiments"
	"vitri/internal/metrics"
	"vitri/internal/server"
)

// The serve experiment measures the HTTP serving layer end to end: a
// fixed-seed corpus behind the full middleware stack (admission,
// deadline, per-workload stats), driven by concurrent clients over the
// three query workloads — whole-video /search, query-by-image
// /search/image and temporal subsequence /search/temporal — writing
// per-endpoint throughput and latency percentiles to BENCH_serve.json.
// benchguard validates the report's shape: every workload present with a
// positive request count, zero errors, and p99 >= p50. Timings
// themselves are informational (machine-dependent).

// serveRequests is how many requests each workload issues; serveClients
// is the client concurrency per workload.
const (
	serveRequests = 180
	serveClients  = 6
)

// serveWorkload is one endpoint's row in BENCH_serve.json.
type serveWorkload struct {
	Endpoint      string  `json:"endpoint"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	Scale       float64         `json:"scale"`
	Videos      int             `json:"videos"`
	Triplets    int             `json:"triplets"`
	Epsilon     float64         `json:"epsilon"`
	K           int             `json:"k"`
	Concurrency int             `json:"concurrency"`
	Workloads   []serveWorkload `json:"workloads"`
}

// runServe loads the shared fixed-seed corpus into a default engine,
// serves it over HTTP, and drives each workload with concurrent clients.
func runServe(cfg experiments.Config, outPath string) ([]*metrics.Table, error) {
	videos, queries, err := prefilterCorpus(cfg)
	if err != nil {
		return nil, err
	}
	db := vitri.New(vitri.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed})
	if err := prefilterIngest(db, videos, &queries[0], cfg.K); err != nil {
		return nil, err
	}
	srv := server.New(db, server.Config{MaxInFlight: 4 * serveClients, RequestTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fixed-seed request bodies, one pool per workload: whole videos
	// (lightly perturbed), single frames, and frame sequences with the
	// default blend weight.
	r := rand.New(rand.NewSource(cfg.Seed + 17))
	nBodies := len(videos)
	if nBodies > 64 {
		nBodies = 64
	}
	perturb := func(frames []vitri.Vector) [][]float64 {
		out := make([][]float64, len(frames))
		for i, f := range frames {
			p := make([]float64, len(f))
			for j := range f {
				p[j] = f[j] + r.NormFloat64()*0.002
			}
			out[i] = p
		}
		return out
	}
	bodies := map[string][][]byte{}
	for i := 0; i < nBodies; i++ {
		frames := videos[i%len(videos)].Frames
		seq := perturb(frames)
		bodies["/search"] = append(bodies["/search"], mustMarshalServe(map[string]interface{}{
			"frames": seq, "k": cfg.K,
		}))
		// The image probe is an exact corpus frame verified to have a hit.
		// Not every frame does — a frame on a shot boundary can score a
		// shared-frame estimate that rounds to zero against every triplet,
		// a correct empty result — and the benchmark gates on zero errors,
		// so pick a frame the engine demonstrably ranks.
		for off := 0; off < len(frames); off++ {
			frame := frames[(len(frames)/2+off)%len(frames)]
			if m, _, err := db.SearchImage(frame, cfg.K, vitri.Composed); err == nil && len(m) > 0 {
				bodies["/search/image"] = append(bodies["/search/image"], mustMarshalServe(map[string]interface{}{
					"frame": frame, "k": cfg.K,
				}))
				break
			}
		}
		bodies["/search/temporal"] = append(bodies["/search/temporal"], mustMarshalServe(map[string]interface{}{
			"frames": seq, "k": cfg.K, "weight": 0.5,
		}))
	}

	report := serveReport{
		Scale:       cfg.Scale,
		Videos:      len(videos),
		Triplets:    db.Triplets(),
		Epsilon:     cfg.Epsilon,
		K:           cfg.K,
		Concurrency: serveClients,
	}
	table := &metrics.Table{
		Title:   "HTTP serving throughput by workload (full middleware stack)",
		Columns: []string{"endpoint", "requests", "errors", "queries/sec", "p50 µs", "p99 µs"},
	}
	for _, endpoint := range []string{"/search", "/search/image", "/search/temporal"} {
		if len(bodies[endpoint]) == 0 {
			return nil, fmt.Errorf("serve: no usable request bodies for %s", endpoint)
		}
		w, err := driveServeWorkload(ts.URL, endpoint, bodies[endpoint], cfg.Progress)
		if err != nil {
			return nil, err
		}
		report.Workloads = append(report.Workloads, w)
		table.Rows = append(table.Rows, []string{
			w.Endpoint,
			fmt.Sprintf("%d", w.Requests),
			fmt.Sprintf("%d", w.Errors),
			fmt.Sprintf("%.0f", w.QueriesPerSec),
			fmt.Sprintf("%.0f", w.P50Micros),
			fmt.Sprintf("%.0f", w.P99Micros),
		})
	}
	if err := srv.Close(context.Background()); err != nil {
		return nil, fmt.Errorf("server close: %w", err)
	}

	if outPath != "" {
		if err := writeJSONReport(outPath, &report); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{table}, nil
}

// driveServeWorkload issues serveRequests POSTs against one endpoint
// from serveClients concurrent clients, cycling through the body pool.
func driveServeWorkload(baseURL, endpoint string, bodies [][]byte, progress io.Writer) (serveWorkload, error) {
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		errors  atomic.Int64
		latMu   sync.Mutex
		latency []float64
	)
	client := &http.Client{Timeout: time.Minute}
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= serveRequests {
					return
				}
				reqStart := time.Now()
				resp, err := client.Post(baseURL+endpoint, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					errors.Add(1)
					continue
				}
				var decoded struct {
					Matches []json.RawMessage `json:"matches"`
				}
				decodeErr := json.NewDecoder(resp.Body).Decode(&decoded)
				resp.Body.Close()
				if decodeErr != nil || resp.StatusCode != http.StatusOK || len(decoded.Matches) == 0 {
					errors.Add(1)
					continue
				}
				latMu.Lock()
				latency = append(latency, float64(time.Since(reqStart).Microseconds()))
				latMu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)

	if len(latency) == 0 {
		return serveWorkload{}, fmt.Errorf("serve: every %s request failed", endpoint)
	}
	sort.Float64s(latency)
	w := serveWorkload{
		Endpoint:      endpoint,
		Requests:      serveRequests,
		Errors:        int(errors.Load()),
		QueriesPerSec: float64(serveRequests) / total.Seconds(),
		P50Micros:     latency[len(latency)/2],
		P99Micros:     latency[len(latency)*99/100],
	}
	if progress != nil {
		fmt.Fprintf(progress, "serve %s: %d requests, %d errors, %.0f q/s\n", endpoint, w.Requests, w.Errors, w.QueriesPerSec)
	}
	return w, nil
}

// mustMarshalServe marshals a request body built from plain maps and
// slices; a failure is a programming error in the benchmark itself.
func mustMarshalServe(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
