package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the documented lock hierarchy and structural locking
// hygiene. The hierarchy, outermost first, is
//
//	checkpoint (level 0) → shard-view (level 1) → DB (level 2) → Index (level 3) → Tree (level 4) → pager (level 5)
//
// where a mutex's level comes first from its field name (a field named
// ckptMu is the checkpoint serialization lock, above everything — it is
// taken before the short db.mu holds inside DB.Checkpoint and must never
// be acquired while db.mu is held; a field named viewMu is the shard
// router's cross-shard view lock, taken before any per-shard db.mu),
// then from the type that owns it (a type named DB, Index or Tree) or,
// failing that, from the owning type's package (btree → 4, pager → 5).
// Within one function body the analyzer flags:
//
//   - acquiring a mutex at the same or an earlier level while holding a
//     later one (a DB lock taken under a pager lock inverts the
//     hierarchy and can deadlock against the normal descent) — checked
//     both where the acquisition is spelled out and, through the
//     module-wide lock graph, at every call that can transitively reach
//     one (the diagnostic carries the acquisition chain);
//   - re-acquiring a mutex already held, including the RLock-then-Lock
//     upgrade, both of which self-deadlock under sync;
//   - a Lock/RLock with a return path (or function end) that neither
//     unlocks nor defers the unlock;
//   - lock-order cycles among lock classes, including unranked ones,
//     anywhere in the module (reported once per strongly connected
//     component, with the full acquisition chain);
//   - a ranked lock held across an fsync (directly or through callees):
//     fsync latency under the engine hierarchy stalls every waiter;
//   - a classed lock held across a blocking channel send, which couples
//     lock hold time to an arbitrary receiver.
//
// The per-function pass (Run) handles the structural checks; the
// interprocedural ones run once per module on the shared lock graph
// (RunModule, see lockorder_module.go).
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "check checkpoint → shard-view → DB → Index → Tree → pager lock ordering (intra- and interprocedural), double-acquires, upgrades, unlock-on-every-path, cycles, and locks held across fsync or blocking sends",
	Run:       runLockOrder,
	RunModule: runLockOrderModule,
}

// Hierarchy levels by mutex field name, by owning type name, and by
// owning package name — consulted in that order: the field name is the
// most specific signal (ckptMu on DB must rank above DB's own mu).
var (
	lockLevelByField = map[string]int{"ckptMu": 0, "viewMu": 1}
	lockLevelByType  = map[string]int{"DB": 2, "Index": 3, "Tree": 4}
	lockLevelByPkg   = map[string]int{"btree": 4, "pager": 5}
	lockLevelLabel   = []string{"checkpoint", "shard-view", "DB", "Index", "Tree", "pager"}
)

// lockCall is one recognized sync.Mutex/RWMutex (un)lock call site.
type lockCall struct {
	name  string // Lock, RLock, Unlock, RUnlock
	key   string // rendered mutex expression, e.g. "ix.mu"
	level int    // hierarchy level, -1 if unknown
	pos   token.Pos
}

func (lc *lockCall) locks() bool   { return lc.name == "Lock" || lc.name == "RLock" }
func (lc *lockCall) unlocks() bool { return lc.name == "Unlock" || lc.name == "RUnlock" }

// heldLock is one acquisition not yet released on the current path.
type heldLock struct {
	key   string
	name  string // Lock or RLock
	level int
	pos   token.Pos
}

// lockState is the per-path analysis state.
type lockState struct {
	held     []heldLock
	deferred map[string]bool // mutex keys released by a defer
}

func newLockState() *lockState {
	return &lockState{deferred: make(map[string]bool)}
}

func (s *lockState) clone() *lockState {
	c := &lockState{
		held:     append([]heldLock(nil), s.held...),
		deferred: make(map[string]bool, len(s.deferred)),
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge unions another surviving path's state in (conservative: a lock
// held on any incoming path is treated as held).
func (s *lockState) merge(o *lockState) {
	for _, h := range o.held {
		found := false
		for _, have := range s.held {
			if have.pos == h.pos {
				found = true
				break
			}
		}
		if !found {
			s.held = append(s.held, h)
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

type lockChecker struct {
	pass *Pass
	// reportedLeak dedupes missing-unlock reports per acquisition site
	// (one lock before a loop of returns should report once).
	reportedLeak map[token.Pos]bool
}

func runLockOrder(pass *Pass) {
	lc := &lockChecker{pass: pass, reportedLeak: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				st := newLockState()
				terminated := lc.scanStmts(body.List, st)
				if !terminated {
					// Falling off the end of the function is a return path
					// too (only possible for functions without results).
					lc.reportLeaks(st)
				}
			}
			return true // descend: nested FuncLits are analyzed separately
		})
	}
}

// scanStmts walks one statement list, updating the path state. It returns
// true when every path through the list terminates (return, panic, or a
// branch out), meaning control never falls through to the caller's next
// statement.
func (lc *lockChecker) scanStmts(stmts []ast.Stmt, st *lockState) bool {
	for _, stmt := range stmts {
		if lc.scanStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (lc *lockChecker) scanStmt(stmt ast.Stmt, st *lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if c := lc.asLockCall(call); c != nil {
			lc.apply(c, st)
			return false
		}
		return isTerminalCall(lc.pass.Info, call)

	case *ast.DeferStmt:
		lc.registerDefer(s.Call, st)
		return false

	case *ast.ReturnStmt:
		lc.reportLeaks(st)
		return true

	case *ast.BlockStmt:
		return lc.scanStmts(s.List, st)

	case *ast.LabeledStmt:
		return lc.scanStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			lc.scanStmt(s.Init, st)
		}
		bodySt := st.clone()
		bodyTerm := lc.scanStmts(s.Body.List, bodySt)
		if s.Else == nil {
			// Fallthrough joins the pre-if path with the body path.
			if !bodyTerm {
				st.merge(bodySt)
			} else {
				st.merge(&lockState{deferred: bodySt.deferred})
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := lc.scanStmt(s.Else, elseSt)
		st.held = nil
		if !bodyTerm {
			st.merge(bodySt)
		}
		if !elseTerm {
			st.merge(elseSt)
		}
		for k := range bodySt.deferred {
			st.deferred[k] = true
		}
		for k := range elseSt.deferred {
			st.deferred[k] = true
		}
		return bodyTerm && elseTerm

	case *ast.ForStmt:
		if s.Init != nil {
			lc.scanStmt(s.Init, st)
		}
		bodySt := st.clone()
		lc.scanStmts(s.Body.List, bodySt)
		st.merge(bodySt) // zero or more iterations: union the states
		return false

	case *ast.RangeStmt:
		bodySt := st.clone()
		lc.scanStmts(s.Body.List, bodySt)
		st.merge(bodySt)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return lc.scanClauses(s, st)

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat the path
		// as terminated here (held state inside loops is already unioned
		// by the enclosing For/Range handling).
		return true

	case *ast.GoStmt:
		// The goroutine's body is analyzed as its own function.
		return false
	}
	return false
}

// scanClauses handles switch/type-switch/select uniformly.
func (lc *lockChecker) scanClauses(stmt ast.Stmt, st *lockState) bool {
	var clauses []ast.Stmt
	hasDefault := false
	exhaustive := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.scanStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.scanStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		exhaustive = true // a select only leaves through one of its cases
	}
	merged := &lockState{deferred: st.deferred}
	allTerm := true
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			body = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = c.Body
		}
		cSt := st.clone()
		if lc.scanStmts(body, cSt) {
			for k := range cSt.deferred {
				st.deferred[k] = true
			}
			continue
		}
		allTerm = false
		merged.merge(cSt)
	}
	if !allTerm {
		st.held = merged.held
	}
	return allTerm && (exhaustive || hasDefault) && len(clauses) > 0
}

// apply folds one lock/unlock call into the path state, reporting
// hierarchy and re-acquisition violations at acquisition sites.
func (lc *lockChecker) apply(c *lockCall, st *lockState) {
	if c.unlocks() {
		for i := len(st.held) - 1; i >= 0; i-- {
			if st.held[i].key == c.key {
				st.held = append(st.held[:i:i], st.held[i+1:]...)
				return
			}
		}
		return // unlock of something not held here (e.g. Cursor.Close)
	}
	for _, h := range st.held {
		if h.key == c.key {
			if h.name == "RLock" && c.name == "Lock" {
				lc.pass.Reportf(c.pos,
					"read-to-write upgrade: %s.Lock() while %s.RLock() is held self-deadlocks", c.key, c.key)
			} else {
				lc.pass.Reportf(c.pos,
					"%s.%s() while %s is already held (acquired at %s) self-deadlocks",
					c.key, c.name, c.key, lc.pass.Fset.Position(h.pos))
			}
		}
		// Hierarchy violations are the lock graph's job (RunModule):
		// it sees the same local acquisitions plus everything callees do.
	}
	st.held = append(st.held, heldLock{key: c.key, name: c.name, level: c.level, pos: c.pos})
}

// registerDefer records deferred unlocks, including the common
// "defer func() { mu.Unlock() }()" form.
func (lc *lockChecker) registerDefer(call *ast.CallExpr, st *lockState) {
	if c := lc.asLockCall(call); c != nil && c.unlocks() {
		st.deferred[c.key] = true
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if c := lc.asLockCall(inner); c != nil && c.unlocks() {
					st.deferred[c.key] = true
				}
			}
			return true
		})
	}
}

// reportLeaks reports every held, non-deferred lock at its acquisition
// site, once per site.
func (lc *lockChecker) reportLeaks(st *lockState) {
	for _, h := range st.held {
		if st.deferred[h.key] || lc.reportedLeak[h.pos] {
			continue
		}
		lc.reportedLeak[h.pos] = true
		release := "Unlock"
		if h.name == "RLock" {
			release = "RUnlock"
		}
		lc.pass.Reportf(h.pos,
			"%s.%s() is not released on every return path (missing %s.%s() or defer)",
			h.key, h.name, h.key, release)
	}
}

// asLockCall recognizes sync.Mutex / sync.RWMutex method calls and
// resolves the mutex's identity and hierarchy level.
func (lc *lockChecker) asLockCall(call *ast.CallExpr) *lockCall {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil
	}
	fn, ok := lc.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	return &lockCall{
		name:  sel.Sel.Name,
		key:   exprString(sel.X),
		level: lockLevelOf(lc.pass.Info, sel.X),
		pos:   call.Pos(),
	}
}

// lockLevelOf derives the hierarchy level of mutex expression x: the
// mutex's own field name first ("db.ckptMu" → checkpoint level,
// whatever type holds it), then the owning type ("owner.mu" → owner's
// type; a bare receiver with an embedded mutex → the receiver's type).
func lockLevelOf(info *types.Info, x ast.Expr) int {
	var ownerT types.Type
	switch e := unparen(x).(type) {
	case *ast.SelectorExpr:
		if lvl, ok := lockLevelByField[e.Sel.Name]; ok {
			return lvl
		}
		ownerT = typeOfExpr(info, e.X)
	case *ast.Ident:
		if lvl, ok := lockLevelByField[e.Name]; ok {
			return lvl
		}
		ownerT = typeOfExpr(info, x)
	default:
		ownerT = typeOfExpr(info, x)
	}
	n := namedOf(ownerT)
	if n == nil {
		return -1
	}
	obj := n.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
		// A bare mutex variable: fall back to the package declaring it.
		if id, ok := unparen(x).(*ast.Ident); ok {
			if vo := info.ObjectOf(id); vo != nil && vo.Pkg() != nil {
				if lvl, ok := lockLevelByPkg[vo.Pkg().Name()]; ok {
					return lvl
				}
			}
		}
		return -1
	}
	if lvl, ok := lockLevelByType[obj.Name()]; ok {
		return lvl
	}
	if obj.Pkg() != nil {
		if lvl, ok := lockLevelByPkg[obj.Pkg().Name()]; ok {
			return lvl
		}
	}
	return -1
}

// isTerminalCall reports calls that never return: panic and os.Exit-like
// fatals. Used to avoid leak reports on paths that abort the process.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok && fun.Name == "panic" {
			return true
		}
		// Locally defined fatalf helpers (the cmds' idiom).
		if fun.Name == "fatalf" || fun.Name == "fatal" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}
