package journal

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vitri/internal/core"
	"vitri/internal/vec"
	"vitri/internal/vfs"
)

func testSummary(id int) core.Summary {
	return core.Summary{
		VideoID:    id,
		FrameCount: 5 + id,
		Triplets: []core.ViTri{
			core.NewViTri(vec.Vector{float64(id), 0.5, -1.25}, 0.25, 2),
			core.NewViTri(vec.Vector{float64(id) * 2, 1.5, 0.75}, 0.5, 3),
		},
	}
}

// collect returns an apply func recording entries into dst.
func collect(dst *[]Entry) func(Entry) error {
	return func(e Entry) error {
		*dst = append(*dst, e)
		return nil
	}
}

func TestAppendCommitReplay(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s1, s2 := testSummary(1), testSummary(2)
	seq1, err := w.AppendAdd(&s1)
	if err != nil {
		t.Fatalf("AppendAdd: %v", err)
	}
	seq2, err := w.AppendAdd(&s2)
	if err != nil {
		t.Fatalf("AppendAdd: %v", err)
	}
	seq3, err := w.AppendRemove(1)
	if err != nil {
		t.Fatalf("AppendRemove: %v", err)
	}
	if seq1 != 1 || seq2 != 2 || seq3 != 3 {
		t.Fatalf("seqs = %d,%d,%d", seq1, seq2, seq3)
	}
	if err := w.Commit(seq3); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	st := w.Stats()
	if st.Depth != 3 || st.LastSeq != 3 || st.DurableSeq != 3 || st.Fsyncs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 1}, collect(&got))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(got))
	}
	if got[0].Kind != KindAdd || got[0].Summary.VideoID != 1 ||
		got[1].Kind != KindAdd || got[1].Summary.VideoID != 2 ||
		got[2].Kind != KindRemove || got[2].VideoID != 1 {
		t.Fatalf("entries = %+v", got)
	}
	if got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("seqs = %d..%d", got[0].Seq, got[2].Seq)
	}
	if w2.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", w2.LastSeq())
	}
	// New appends continue the sequence.
	if seq, err := w2.AppendRemove(2); err != nil || seq != 4 {
		t.Fatalf("append after replay: seq=%d err=%v", seq, err)
	}
}

// TestTornTailTruncated verifies recovery chops a torn final record and
// that subsequent appends are visible to the next replay.
func TestTornTailTruncated(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(7)
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: garbage beyond the valid prefix.
	img := fsys.Snapshot()["j.wal"]
	torn := append(append([]byte(nil), img...), 0x99, 0x01, 0x00, 0x00, 0x55)
	fsys.SetFile("j.wal", torn)

	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 1}, collect(&got))
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d, want 1", len(got))
	}
	// The tail must be gone from disk and a fresh append must be durable
	// and visible on the next replay.
	if _, err := w2.AppendRemove(7); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got = nil
	w3, err := Open(fsys, "j.wal", Config{StartSeq: 1}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if len(got) != 2 || got[1].Kind != KindRemove || got[1].VideoID != 7 {
		t.Fatalf("after truncate+append: %+v", got)
	}
}

// TestKeepCorruptTail proves the torn-tail truncation matters: with it
// disabled, appends after a torn tail land beyond garbage and the next
// replay never sees them.
func TestKeepCorruptTail(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(7)
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	img := fsys.Snapshot()["j.wal"]
	fsys.SetFile("j.wal", append(append([]byte(nil), img...), 0xde, 0xad, 0xbe, 0xef, 0x01))

	w2, err := Open(fsys, "j.wal", Config{StartSeq: 1, KeepCorruptTail: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.AppendRemove(7); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Entry
	w3, err := Open(fsys, "j.wal", Config{StartSeq: 1}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	for _, e := range got {
		if e.Kind == KindRemove {
			t.Fatal("append beyond a kept corrupt tail was visible to replay — truncation would not matter")
		}
	}
}

func TestRotate(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(3)
	for i := 0; i < 4; i++ {
		s.VideoID = i
		if _, err := w.AppendAdd(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(4); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(5); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	st := w.Stats()
	if st.Depth != 0 || st.LastSeq != 4 {
		t.Fatalf("stats after rotate = %+v", st)
	}
	// Appends continue after rotation and survive reopen; pre-rotation
	// records are gone.
	if seq, err := w.AppendRemove(0); err != nil || seq != 5 {
		t.Fatalf("append after rotate: seq=%d err=%v", seq, err)
	}
	if err := w.Commit(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 5}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 1 || got[0].Seq != 5 || got[0].Kind != KindRemove {
		t.Fatalf("after rotate replay: %+v", got)
	}
	if _, err := fsys.Stat("j.wal.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("rotation temp file leaked")
	}
}

// gatedSyncFS blocks the next file Sync after arm: it signals entered,
// then waits for release before delegating. It freezes a Commit leader
// exactly between capturing the descriptor and fsyncing it — the window
// the Rotate descriptor-swap race lives in.
type gatedSyncFS struct {
	vfs.FS
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (f *gatedSyncFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gatedSyncFile{File: file, fs: f}, nil
}

type gatedSyncFile struct {
	vfs.File
	fs *gatedSyncFS
}

func (f *gatedSyncFile) Sync() error {
	if f.fs.armed.CompareAndSwap(true, false) {
		close(f.fs.entered)
		<-f.fs.release
	}
	return f.File.Sync()
}

// TestRotateWaitsForInflightCommit is a deterministic regression test for
// the descriptor-swap race: a Commit leader syncs w.f after releasing
// w.mu, and Rotate used to take only w.mu, so a rotation concurrent with
// the in-flight fsync swapped and closed the descriptor mid-sync — the
// sync hit a closed fd and permanently poisoned the writer. Rotate must
// instead wait for the leader (on syncMu) and leave the writer healthy.
func TestRotateWaitsForInflightCommit(t *testing.T) {
	fsys := &gatedSyncFS{FS: vfs.NewMemFS(), entered: make(chan struct{}), release: make(chan struct{})}
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(1)
	seq, err := w.AppendAdd(&s)
	if err != nil {
		t.Fatal(err)
	}
	fsys.armed.Store(true)
	commitDone := make(chan error, 1)
	go func() { commitDone <- w.Commit(seq) }()
	<-fsys.entered // the leader holds the old descriptor, mid-fsync
	rotateDone := make(chan error, 1)
	go func() { rotateDone <- w.Rotate(seq + 1) }()
	select {
	case rerr := <-rotateDone:
		t.Fatalf("Rotate completed while a commit fsync was in flight (err=%v); it would have closed the descriptor under the sync", rerr)
	case <-time.After(50 * time.Millisecond):
	}
	close(fsys.release)
	if err := <-commitDone; err != nil {
		t.Fatalf("Commit poisoned by concurrent rotation: %v", err)
	}
	if err := <-rotateDone; err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// The writer must still be usable end to end.
	if seq, err = w.AppendAdd(&s); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatalf("commit after rotation: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRotateDuringCommit stress-tests the same interleaving under -race,
// mirroring vitri.DB's real locking — Append and Rotate serialize on an
// outer lock (db.mu), Commit runs outside it.
func TestRotateDuringCommit(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dbMu sync.Mutex // stands in for vitri.DB's write lock
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := testSummary(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				dbMu.Lock()
				seq, aerr := w.AppendAdd(&s)
				dbMu.Unlock()
				if aerr != nil {
					errCh <- aerr
					return
				}
				if cerr := w.Commit(seq); cerr != nil {
					errCh <- cerr
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		dbMu.Lock()
		last := w.LastSeq()
		rerr := w.Rotate(last + 1)
		dbMu.Unlock()
		if rerr != nil {
			t.Errorf("Rotate #%d: %v", i, rerr)
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent append/commit failed: %v", err)
	default:
	}
	// The writer must still be usable end to end.
	s := testSummary(99)
	seq, err := w.AppendAdd(&s)
	if err != nil {
		t.Fatalf("append after rotations: %v", err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatalf("commit after rotations: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// failReopenFS fails any OpenFile without O_CREATE once armed — exactly
// the reopen of the live journal name inside Rotate.
type failReopenFS struct {
	vfs.FS
	armed bool
}

func (f *failReopenFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	if f.armed && flag&os.O_CREATE == 0 {
		return nil, errors.New("injected reopen failure")
	}
	return f.FS.OpenFile(name, flag, perm)
}

// TestRotateFailureAfterRenamePoisons: once Rotate has renamed the fresh
// journal over the live name, a failure to reopen it leaves the writer
// holding the replaced, unlinked inode. The writer must poison itself so
// later appends fail loudly instead of being acknowledged against a file
// recovery will never read.
func TestRotateFailureAfterRenamePoisons(t *testing.T) {
	fsys := &failReopenFS{FS: vfs.NewMemFS()}
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(1)
	seq, err := w.AppendAdd(&s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	fsys.armed = true
	if err := w.Rotate(seq + 1); err == nil {
		t.Fatal("Rotate succeeded despite injected reopen failure")
	}
	if _, err := w.AppendAdd(&s); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed rotation: %v, want ErrPoisoned", err)
	}
	if err := w.Commit(seq + 1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after failed rotation: %v, want ErrPoisoned", err)
	}
}

// failAfterFS injects an fsync failure after a set number of Sync calls.
type failAfterFS struct {
	vfs.FS
	remaining int
}

func (f *failAfterFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failAfterFile{File: file, fs: f}, nil
}

type failAfterFile struct {
	vfs.File
	fs *failAfterFS
}

func (f *failAfterFile) Sync() error {
	if f.fs.remaining <= 0 {
		return errors.New("injected fsync failure")
	}
	f.fs.remaining--
	return f.File.Sync()
}

// TestFsyncFailurePoisons verifies a failed Commit disables the writer:
// no later append or commit can succeed, so nothing is ever acknowledged
// on top of an unknowable durable prefix.
func TestFsyncFailurePoisons(t *testing.T) {
	fsys := &failAfterFS{FS: vfs.NewMemFS(), remaining: 1} // one sync for Open's header
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(1)
	seq, err := w.AppendAdd(&s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err == nil {
		t.Fatal("Commit succeeded despite fsync failure")
	}
	if _, err := w.AppendAdd(&s); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failure: %v, want ErrPoisoned", err)
	}
	if err := w.Commit(seq); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after failure: %v, want ErrPoisoned", err)
	}
}

// TestScanStopsAtNonMonotonicSeq builds a journal whose tail record
// repeats an earlier sequence number; the scan must end before it.
func TestScanStopsAtNonMonotonicSeq(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(encodeHeader(1))
	encodeRecord(&buf, KindRemove, 1, removePayload(10))
	encodeRecord(&buf, KindRemove, 2, removePayload(11))
	encodeRecord(&buf, KindRemove, 2, removePayload(12)) // stale duplicate
	res, err := Scan(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.LastSeq != 2 {
		t.Fatalf("res = %+v, want 2 records", res)
	}
}

func TestOpenEmptyAndHeaderCorrupt(t *testing.T) {
	fsys := vfs.NewMemFS()
	// Fresh file.
	w, err := Open(fsys, "j.wal", Config{StartSeq: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 8 {
		t.Fatalf("LastSeq on fresh journal = %d, want 8", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the header: open must rewrite it, not fail.
	img := fsys.Snapshot()["j.wal"]
	img[3] ^= 0xff
	fsys.SetFile("j.wal", img)
	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 9}, collect(&got))
	if err != nil {
		t.Fatalf("open over corrupt header: %v", err)
	}
	defer w2.Close()
	if len(got) != 0 || w2.LastSeq() != 8 {
		t.Fatalf("replayed %d, LastSeq %d", len(got), w2.LastSeq())
	}
}

// TestRotateRetain: records appended after the cut must survive the
// rotation byte-for-byte and replay with their original sequence
// numbers — the invariant the non-blocking checkpoint leans on.
func TestRotateRetain(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(0)
	for i := 0; i < 4; i++ {
		s.VideoID = i
		if _, err := w.AppendAdd(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(4); err != nil {
		t.Fatal(err)
	}
	cut, err := w.CutPoint()
	if err != nil {
		t.Fatalf("CutPoint: %v", err)
	}
	if cut.LastSeq != 4 || cut.Depth != 4 {
		t.Fatalf("cut = %+v", cut)
	}
	// Mutations land while the checkpoint writes its snapshot.
	for i := 10; i < 12; i++ {
		s.VideoID = i
		if _, err := w.AppendAdd(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(6); err != nil {
		t.Fatal(err)
	}
	if err := w.RotateRetain(cut); err != nil {
		t.Fatalf("RotateRetain: %v", err)
	}
	st := w.Stats()
	if st.Depth != 2 || st.LastSeq != 6 || st.DurableSeq != 6 {
		t.Fatalf("stats after retained rotation = %+v", st)
	}
	if _, err := fsys.Stat("j.wal.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("rotation temp file leaked")
	}
	// Appends continue the sequence on the rotated journal.
	if seq, err := w.AppendRemove(10); err != nil || seq != 7 {
		t.Fatalf("append after retained rotation: seq=%d err=%v", seq, err)
	}
	if err := w.Commit(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: cut.LastSeq + 1}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3: %+v", len(got), got)
	}
	if got[0].Seq != 5 || got[0].Summary.VideoID != 10 ||
		got[1].Seq != 6 || got[1].Summary.VideoID != 11 ||
		got[2].Seq != 7 || got[2].Kind != KindRemove {
		t.Fatalf("retained replay = %+v", got)
	}
}

// TestRotateRetainEmptySuffix: with no appends past the cut a retained
// rotation degenerates to the plain rotate-to-empty.
func TestRotateRetainEmptySuffix(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(1)
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(1); err != nil {
		t.Fatal(err)
	}
	cut, err := w.CutPoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RotateRetain(cut); err != nil {
		t.Fatalf("RotateRetain: %v", err)
	}
	st := w.Stats()
	if st.Depth != 0 || st.LastSeq != 1 {
		t.Fatalf("stats = %+v", st)
	}
	var got []Entry
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 2}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d entries from an empty rotation, want 0", len(got))
	}
}

// TestRotateRetainUncommitted: records appended after the cut but not
// yet committed must still be carried across the rotation — the flush
// inside RotateRetain makes them part of the suffix, and the pre-rename
// fsync makes them durable.
func TestRotateRetainUncommitted(t *testing.T) {
	fsys := vfs.NewMemFS()
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := w.CutPoint()
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(5)
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatal(err)
	}
	// No Commit: the record sits in the bufio layer.
	if err := w.RotateRetain(cut); err != nil {
		t.Fatalf("RotateRetain: %v", err)
	}
	st := w.Stats()
	if st.Depth != 1 || st.DurableSeq != 1 {
		t.Fatalf("stats = %+v; the retained record must be durable after rotation", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	w2, err := Open(fsys, "j.wal", Config{StartSeq: 1}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 1 || got[0].Seq != 1 || got[0].Summary.VideoID != 5 {
		t.Fatalf("replay = %+v", got)
	}
}

// TestRotateTmpRemovedOnError: a rotation that fails before the rename
// (here: the temp file's fsync) must not leave journal.wal.tmp behind,
// and must not poison the writer — the live journal is untouched.
func TestRotateTmpRemovedOnError(t *testing.T) {
	fsys := &failAfterFS{FS: vfs.NewMemFS(), remaining: 1} // one sync for Open's header
	w, err := Open(fsys, "j.wal", Config{StartSeq: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSummary(1)
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(2); err == nil {
		t.Fatal("Rotate succeeded despite injected tmp fsync failure")
	}
	if _, err := fsys.Stat("j.wal.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("failed rotation leaked its temp file")
	}
	// The failure happened before the rename; the writer must stay usable.
	if _, err := w.AppendAdd(&s); err != nil {
		t.Fatalf("append after pre-rename rotation failure: %v", err)
	}
}
