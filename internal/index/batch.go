package index

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vitri/internal/core"
)

// BatchItem is one query's outcome in a SearchBatch call.
type BatchItem struct {
	Results []Result
	Stats   SearchStats
	Err     error
}

// SearchBatch pipelines many query summaries through a bounded worker
// pool for throughput workloads: queries[i]'s outcome lands in slot i.
// The pool is sized by Options.SearchParallelism (GOMAXPROCS when <= 0)
// and each query runs sequentially inside its worker — inter-query
// parallelism already saturates the pool, and nesting intra-query fan-out
// on top would only oversubscribe it. Per-query Stats remain exact: each
// query accumulates its own counters.
func (ix *Index) SearchBatch(queries []core.Summary, k int, mode Mode) []BatchItem {
	out := make([]BatchItem, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := ix.opts.SearchParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var (
		cursor int64 = -1
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= len(queries) {
					return
				}
				out[i].Results, out[i].Stats, out[i].Err = ix.SearchParallel(&queries[i], k, mode, 1)
			}
		}()
	}
	wg.Wait()
	return out
}
