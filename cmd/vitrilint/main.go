// Command vitrilint runs this module's static-analysis suite: four
// stdlib-only analyzers that machine-check the invariants the
// concurrent engine depends on (see internal/lint).
//
// Usage:
//
//	vitrilint [package pattern ...]
//
// Patterns are module-relative ("./...", "./internal/...",
// "./internal/btree"); the default is "./...". Diagnostics print as
//
//	file:line: [analyzer] message
//
// and the process exits 1 when any unsuppressed finding exists (2 on
// load/type-check failure). Intentional violations are suppressed in
// place with "//lint:ignore <analyzer> <reason>" on the flagged line or
// the line above; the summary line counts them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vitri/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vitrilint [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := lint.Run(root, patterns, lint.All())
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range res.Diagnostics {
		rel, rerr := filepath.Rel(cwd, d.Pos.Filename)
		if rerr != nil || strings.HasPrefix(rel, "..") {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d: [%s] %s\n", rel, d.Pos.Line, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "vitrilint: %d packages, %d findings, %d suppressed\n",
		res.Packages, len(res.Diagnostics), res.Suppressed)
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vitrilint: "+format+"\n", args...)
	os.Exit(2)
}
