package pager

import "os"

// truncate resizes a file; separated for test readability.
func truncate(path string, size int64) error {
	return os.Truncate(path, size)
}
