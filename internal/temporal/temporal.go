// Package temporal implements the paper's stated future work (§7):
// bringing temporal order back into ViTri retrieval. The bag-of-clusters
// measure is deliberately order-blind; two videos composed of the same
// shots in a different order score identically. This package aligns the
// *cluster label sequences* of two videos and scores how much of the
// similarity is order-preserving, so callers can re-rank candidate sets
// returned by the index.
//
// A video's temporal signature is the sequence of its frames' cluster
// assignments, run-length compressed (one symbol per maximal run — i.e.
// one symbol per shot occurrence). Two symbols match when their triplets'
// hyperspheres intersect (the same notion of "similar" the index uses).
// The alignment is a weighted longest-common-subsequence over the two
// symbol sequences, with each matched pair contributing the smaller of
// the two run lengths — an order-preserving analogue of the shared-frame
// estimate.
package temporal

import (
	"fmt"

	"vitri/internal/core"
	"vitri/internal/vec"
)

// Signature is a video's temporal signature: the sequence of shot
// occurrences, each referring to one triplet of the video's summary.
type Signature struct {
	VideoID int
	// Runs[i] is one maximal run of frames assigned to one cluster.
	Runs []Run
	// Triplets aliases the summary's triplets for matching.
	Triplets []core.ViTri
	// FrameCount is the total number of frames.
	FrameCount int
}

// Run is one maximal run of consecutive frames in the same cluster.
type Run struct {
	Triplet int // index into Triplets
	Length  int // number of frames in the run
}

// NewSignature derives the temporal signature of a video from its frames
// and its summary: every frame is assigned to the summary triplet whose
// center is nearest, and consecutive equal assignments are merged into
// runs. The summary need not have been produced from exactly these frames
// (e.g. the frames may be a distorted copy); assignment is by proximity.
func NewSignature(frames []vec.Vector, s *core.Summary) (*Signature, error) {
	if len(s.Triplets) == 0 {
		return nil, fmt.Errorf("temporal: summary of video %d has no triplets", s.VideoID)
	}
	sig := &Signature{VideoID: s.VideoID, Triplets: s.Triplets, FrameCount: len(frames)}
	prev := -1
	for _, f := range frames {
		if len(f) != s.Triplets[0].Dim() {
			return nil, fmt.Errorf("temporal: frame dimensionality %d, summary is %d", len(f), s.Triplets[0].Dim())
		}
		best, bestD := 0, vec.Dist2(f, s.Triplets[0].Position)
		for t := 1; t < len(s.Triplets); t++ {
			if d := vec.Dist2(f, s.Triplets[t].Position); d < bestD {
				best, bestD = t, d
			}
		}
		if best == prev {
			sig.Runs[len(sig.Runs)-1].Length++
			continue
		}
		sig.Runs = append(sig.Runs, Run{Triplet: best, Length: 1})
		prev = best
	}
	return sig, nil
}

// symbolsMatch reports whether two runs' triplets are similar: their
// hyperspheres intersect (same criterion as the index's zero-similarity
// pruning, §4.2 case 1).
func symbolsMatch(a, b *core.ViTri) bool {
	d := vec.Dist(a.Position, b.Position)
	return d < a.Radius+b.Radius
}

// Alignment is the result of aligning two signatures.
type Alignment struct {
	// SharedFrames is the order-preserving shared-frame count: the sum of
	// min(run lengths) over the aligned run pairs.
	SharedFrames int
	// Pairs are the aligned run indices (i in a, j in b), in order.
	Pairs [][2]int
}

// Align computes the maximum-weight order-preserving matching of two
// signatures' runs (a weighted LCS): matched run pairs must appear in the
// same relative order in both videos, and each matched pair contributes
// min(lenA, lenB) frames. O(len(a.Runs)·len(b.Runs)).
func Align(a, b *Signature) Alignment {
	n, m := len(a.Runs), len(b.Runs)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	// dp[i][j] = best weight using runs a[:i], b[:j].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		ra := &a.Runs[i-1]
		ta := &a.Triplets[ra.Triplet]
		for j := 1; j <= m; j++ {
			best := dp[i-1][j]
			if dp[i][j-1] > best {
				best = dp[i][j-1]
			}
			rb := &b.Runs[j-1]
			if symbolsMatch(ta, &b.Triplets[rb.Triplet]) {
				w := ra.Length
				if rb.Length < w {
					w = rb.Length
				}
				if v := dp[i-1][j-1] + w; v > best {
					best = v
				}
			}
			dp[i][j] = best
		}
	}
	// Traceback.
	var pairs [][2]int
	i, j := n, m
	for i > 0 && j > 0 {
		switch {
		case dp[i][j] == dp[i-1][j]:
			i--
		case dp[i][j] == dp[i][j-1]:
			j--
		default:
			pairs = append(pairs, [2]int{i - 1, j - 1})
			i--
			j--
		}
	}
	// Reverse into forward order.
	for l, r := 0, len(pairs)-1; l < r; l, r = l+1, r-1 {
		pairs[l], pairs[r] = pairs[r], pairs[l]
	}
	return Alignment{SharedFrames: dp[n][m], Pairs: pairs}
}

// Similarity is the order-preserving analogue of the §3.1 measure: twice
// the aligned shared-frame count over the total frames, in [0, 1].
func Similarity(a, b *Signature) float64 {
	if a.FrameCount == 0 || b.FrameCount == 0 {
		return 0
	}
	al := Align(a, b)
	sim := 2 * float64(al.SharedFrames) / float64(a.FrameCount+b.FrameCount)
	if sim > 1 {
		return 1
	}
	return sim
}

// Rerank reorders candidate video ids by blending the index's order-blind
// similarity with the temporal similarity: score = (1-w)·bag + w·temporal.
// Candidates missing from sigs keep their bag score (w is not applied).
// It returns a new slice sorted by blended score descending.
func Rerank(query *Signature, candidates []Scored, sigs map[int]*Signature, w float64) []Scored {
	if w < 0 {
		w = 0
	} else if w > 1 {
		w = 1
	}
	out := make([]Scored, len(candidates))
	copy(out, candidates)
	for i := range out {
		sig := sigs[out[i].VideoID]
		if sig == nil {
			continue
		}
		t := Similarity(query, sig)
		out[i].Score = (1-w)*out[i].Score + w*t
		out[i].Temporal = t
	}
	sortScored(out)
	return out
}

// Scored is one candidate with its (possibly blended) score.
type Scored struct {
	VideoID  int
	Score    float64
	Temporal float64 // the temporal similarity component, set by Rerank
}

// sortScored orders by score descending, id ascending on ties (insertion
// sort: candidate lists are K-sized).
func sortScored(s []Scored) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && (s[j].Score < v.Score || (s[j].Score == v.Score && s[j].VideoID > v.VideoID)) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
