package vitri

import (
	"math"
	"math/rand"
	"testing"

	"vitri/internal/dataset"
)

// Metamorphic suite for the temporal subsequence workload, on the planted
// corpus whose ground truth is known by construction (see
// internal/dataset/planted.go): re-ranked results must be bitwise
// invariant under ingestion order and shard count, the blend must follow
// its formula exactly, and a re-cut — indistinguishable from its source
// by the order-blind measure — must rank strictly below it whenever
// order carries any weight.

// plantedVideos loads the default planted corpus as ingestable videos.
func plantedVideos(t *testing.T, seed int64) ([]Video, []dataset.PlantedVideo) {
	t.Helper()
	planted, err := dataset.GeneratePlanted(dataset.DefaultPlantedConfig(seed))
	if err != nil {
		t.Fatalf("GeneratePlanted: %v", err)
	}
	videos := make([]Video, len(planted))
	for i := range planted {
		videos[i] = Video{ID: planted[i].ID, Frames: planted[i].Frames}
	}
	return videos, planted
}

// temporalIdentical compares two temporal rankings bit-for-bit across all
// three score components.
func temporalIdentical(a, b []TemporalMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].VideoID != b[i].VideoID ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Bag) != math.Float64bits(b[i].Bag) ||
			math.Float64bits(a[i].Temporal) != math.Float64bits(b[i].Temporal) {
			return false
		}
	}
	return true
}

// TestSearchTemporalMetamorphic: for every shard count in {1, 2, 3, 8}
// and three ingestion orders (natural, reversed, shuffled; mixed between
// AddBatch and an Add loop), SearchTemporal over the planted corpus must
// return bitwise-identical rankings to the single-shard natural-order
// reference, at several blend weights. Summaries are seeded per video id
// and the candidate fold is canonical, so nothing observable may depend
// on how the database was assembled.
func TestSearchTemporalMetamorphic(t *testing.T) {
	videos, planted := plantedVideos(t, 3)
	k := len(videos) + 4
	weights := []float64{0, 0.5, 1}

	// Queries: one original's frames, one re-cut's frames, one near-dup's.
	var queries [][]Vector
	for _, kind := range []dataset.PlantedKind{dataset.PlantedOriginal, dataset.PlantedRecut, dataset.PlantedNearDup} {
		for i := range planted {
			if planted[i].Kind == kind {
				queries = append(queries, videos[planted[i].ID].Frames)
				break
			}
		}
	}
	if len(queries) != 3 {
		t.Fatalf("planted corpus missing a query kind: %d", len(queries))
	}

	reference := New(Options{Epsilon: 0.3, Seed: 7})
	if _, err := reference.AddBatch(videos); err != nil {
		t.Fatalf("reference AddBatch: %v", err)
	}
	want := make(map[[2]int][]TemporalMatch)
	for qi, q := range queries {
		for wi, w := range weights {
			res, _, err := reference.SearchTemporal(q, k, w, Composed)
			if err != nil {
				t.Fatalf("reference SearchTemporal: %v", err)
			}
			want[[2]int{qi, wi}] = res
		}
	}

	r := rand.New(rand.NewSource(41))
	orders := map[string][]Video{
		"natural":  videos,
		"reversed": make([]Video, len(videos)),
		"shuffled": make([]Video, len(videos)),
	}
	copy(orders["reversed"], videos)
	for i, j := 0, len(videos)-1; i < j; i, j = i+1, j-1 {
		orders["reversed"][i], orders["reversed"][j] = orders["reversed"][j], orders["reversed"][i]
	}
	copy(orders["shuffled"], videos)
	r.Shuffle(len(videos), func(i, j int) {
		orders["shuffled"][i], orders["shuffled"][j] = orders["shuffled"][j], orders["shuffled"][i]
	})

	for _, shards := range equivShardCounts {
		for name, order := range orders {
			db := New(Options{Epsilon: 0.3, Seed: 7, Shards: shards})
			// Mixed ingest paths: first half batched, second half one by
			// one — both register temporal signatures.
			half := len(order) / 2
			if _, err := db.AddBatch(order[:half]); err != nil {
				t.Fatalf("shards=%d %s: AddBatch: %v", shards, name, err)
			}
			for _, v := range order[half:] {
				if err := db.Add(v.ID, v.Frames); err != nil {
					t.Fatalf("shards=%d %s: Add(%d): %v", shards, name, v.ID, err)
				}
			}
			for qi, q := range queries {
				for wi, w := range weights {
					got, _, err := db.SearchTemporal(q, k, w, Composed)
					if err != nil {
						t.Fatalf("shards=%d %s: SearchTemporal: %v", shards, name, err)
					}
					if !temporalIdentical(got, want[[2]int{qi, wi}]) {
						t.Fatalf("shards=%d order=%s query=%d weight=%v: temporal ranking diverges from reference",
							shards, name, qi, w)
					}
				}
			}
		}
	}
}

// TestSearchTemporalRecutRanksBelow is the planted ground-truth claim:
// with any positive order weight, an original strictly outranks its
// re-cut against a query of the original's own frames — while at weight
// zero the two are bag-score ties the order measure cannot create. Also
// pins the blend arithmetic: every returned score must equal
// (1-w)·bag + w·temporal bitwise.
func TestSearchTemporalRecutRanksBelow(t *testing.T) {
	videos, planted := plantedVideos(t, 3)
	db := New(Options{Epsilon: 0.3, Seed: 7})
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	k := len(videos) + 4

	checked := 0
	for i := range planted {
		if planted[i].Kind != dataset.PlantedRecut {
			continue
		}
		recut := &planted[i]
		query := videos[recut.SourceID].Frames

		for _, w := range []float64{0.25, 0.5, 1} {
			res, _, err := db.SearchTemporal(query, k, w, Composed)
			if err != nil {
				t.Fatalf("SearchTemporal: %v", err)
			}
			var srcScore, cutScore float64
			srcAt, cutAt := -1, -1
			for pos, m := range res {
				if gotScore := (1-w)*m.Bag + w*m.Temporal; math.Float64bits(m.Score) != math.Float64bits(gotScore) {
					t.Fatalf("weight %v: video %d score %v != blend of bag %v and temporal %v",
						w, m.VideoID, m.Score, m.Bag, m.Temporal)
				}
				switch m.VideoID {
				case recut.SourceID:
					srcScore, srcAt = m.Score, pos
				case recut.ID:
					cutScore, cutAt = m.Score, pos
				}
			}
			if srcAt < 0 || cutAt < 0 {
				t.Fatalf("weight %v: source %d or recut %d missing from results", w, recut.SourceID, recut.ID)
			}
			if cutScore >= srcScore || cutAt < srcAt {
				t.Errorf("weight %v: recut %d (score %.6f at #%d) does not rank strictly below source %d (score %.6f at #%d)",
					w, recut.ID, cutScore, cutAt, recut.SourceID, srcScore, srcAt)
			}
		}

		// Weight zero: order-blind. The recut's same-frame bag score must
		// be what keeps the pair inseparable — a strict gap here would
		// mean the corpus stopped exercising the order-only distinction.
		res, _, err := db.SearchTemporal(query, k, 0, Composed)
		if err != nil {
			t.Fatalf("SearchTemporal: %v", err)
		}
		var srcBag, cutBag float64
		for _, m := range res {
			if m.VideoID == recut.SourceID {
				srcBag = m.Bag
			}
			if m.VideoID == recut.ID {
				cutBag = m.Bag
			}
			if math.Float64bits(m.Score) != math.Float64bits(m.Bag) {
				t.Fatalf("weight 0: video %d score %v != bag %v", m.VideoID, m.Score, m.Bag)
			}
		}
		if math.Abs(srcBag-cutBag) > 0.05 {
			t.Errorf("bag scores separate source (%.4f) from recut (%.4f); the order-only planting is broken", srcBag, cutBag)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("planted corpus contains no re-cuts")
	}
}

// TestSearchTemporalBlendHasTeeth re-ranks with a deliberately broken
// blend — the weight applied to the bag component instead of the temporal
// one — and requires the result to diverge from SearchTemporal's. If the
// two ever agree across the whole query set, the metamorphic suite above
// has stopped constraining the blend.
func TestSearchTemporalBlendHasTeeth(t *testing.T) {
	videos, planted := plantedVideos(t, 3)
	db := New(Options{Epsilon: 0.3, Seed: 7})
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	k := len(videos) + 4
	const w = 0.25

	diverged := false
	for i := range planted {
		if planted[i].Kind != dataset.PlantedOriginal {
			continue
		}
		res, _, err := db.SearchTemporal(videos[planted[i].ID].Frames, k, w, Composed)
		if err != nil {
			t.Fatalf("SearchTemporal: %v", err)
		}
		for _, m := range res {
			broken := w*m.Bag + (1-w)*m.Temporal
			if math.Float64bits(m.Score) != math.Float64bits(broken) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("swapped-weight blend is indistinguishable on every query; the blend assertions have no teeth")
	}
}

// TestSearchTemporalNoSignatures: videos ingested as bare summaries have
// no recorded shot order; SearchTemporal must keep their bag score and
// report zero temporal similarity instead of guessing.
func TestSearchTemporalNoSignatures(t *testing.T) {
	videos, _ := plantedVideos(t, 5)
	db := New(Options{Epsilon: 0.3, Seed: 7})
	for _, v := range videos {
		s := Summarize(v.ID, v.Frames, 0.3, 7+int64(v.ID))
		if err := db.AddSummary(s); err != nil {
			t.Fatalf("AddSummary(%d): %v", v.ID, err)
		}
	}
	res, _, err := db.SearchTemporal(videos[0].Frames, 10, 0.9, Composed)
	if err != nil {
		t.Fatalf("SearchTemporal: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, m := range res {
		if math.Float64bits(m.Score) != math.Float64bits(m.Bag) || m.Temporal != 0 {
			t.Errorf("video %d without a signature got score %v (bag %v, temporal %v); want the bag score kept",
				m.VideoID, m.Score, m.Bag, m.Temporal)
		}
	}
}

// TestSearchTemporalValidation covers the query-side error paths.
func TestSearchTemporalValidation(t *testing.T) {
	videos, _ := plantedVideos(t, 5)
	db := New(Options{Epsilon: 0.3, Seed: 7})
	if _, err := db.AddBatch(videos); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	q := videos[0].Frames
	if _, _, err := db.SearchTemporal(nil, 5, 0.5, Composed); err == nil {
		t.Error("empty query accepted")
	}
	for _, w := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1)} {
		if _, _, err := db.SearchTemporal(q, 5, w, Composed); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	// Removal drops the signature: the removed video must not reappear,
	// and a re-added one must rank again.
	if err := db.Remove(videos[0].ID); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	res, _, err := db.SearchTemporal(q, len(videos), 0.5, Composed)
	if err != nil {
		t.Fatalf("SearchTemporal after Remove: %v", err)
	}
	for _, m := range res {
		if m.VideoID == videos[0].ID {
			t.Fatal("removed video still ranked")
		}
	}
}
