// Package server turns a vitri.DB into a long-lived HTTP/JSON KNN query
// service (stdlib net/http only). It is the serving layer the ROADMAP's
// "heavy traffic" goal asks for, and robustness is its design center:
//
//   - admission control: the heavy endpoints (/search, /insert, /remove)
//     share a bounded semaphore; requests beyond Config.MaxInFlight are
//     shed immediately with 429 + Retry-After instead of queueing
//     unboundedly, so memory under overload is bounded by
//     MaxInFlight × per-request footprint;
//   - per-request deadlines: search work runs under a context timeout
//     and reports 504 when it expires;
//   - panic containment: a handler panic becomes a 500 JSON error and a
//     log line, never a dead process;
//   - graceful shutdown: Close stops admitting work, drains every
//     in-flight request (including searches abandoned by a timed-out
//     handler) and only then closes the database's page store.
//
// The server holds no locks of its own around DB calls — it always enters
// the DB → Index → Tree → pager hierarchy from the top via exported DB
// methods, which is what keeps vitrilint's lockorder analyzer happy.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vitri"
	"vitri/internal/metrics"
	"vitri/internal/pager"
)

// Config tunes the service. The zero value is usable: every field has a
// serving-quality default.
type Config struct {
	// DefaultK is the result count when a search request omits k.
	DefaultK int
	// MaxK bounds requested k (guards per-request allocation).
	MaxK int
	// MaxInFlight is the admission limit shared by /search, /insert and
	// /remove. Requests arriving with all slots held are shed with 429.
	MaxInFlight int
	// RequestTimeout bounds the work phase of one request; expired
	// requests answer 504. Zero means no deadline.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses.
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (413 beyond it).
	MaxBodyBytes int64
	// CacheStats, when set, surfaces the page cache hit rate in /stats
	// (see CachedPager).
	CacheStats func() (accesses, hits uint64, rate float64)
	// CheckpointEvery, on a durable database, folds the journal into a
	// fresh snapshot whenever its depth reaches this many operations.
	// The checkpoint runs detached from the triggering request (it joins
	// the drain group, so graceful shutdown still waits for it). Zero
	// disables automatic checkpoints; POST /checkpoint always works.
	CheckpointEvery int
	// CheckpointCooldown suppresses automatic checkpoints for this long
	// after one fails. Without it a failed checkpoint is a retry storm:
	// the journal stays over CheckpointEvery, so every subsequent
	// mutation immediately relaunches the same doomed snapshot write.
	// A successful checkpoint (automatic or via POST /checkpoint) clears
	// the cooldown. Zero selects 30s; negative disables the cooldown.
	CheckpointCooldown time.Duration
	// ErrorLog receives panic reports; log.Default() when nil.
	ErrorLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.CheckpointCooldown == 0 {
		c.CheckpointCooldown = 30 * time.Second
	}
	if c.ErrorLog == nil {
		c.ErrorLog = log.Default()
	}
	return c
}

// Server serves KNN queries over one vitri.DB. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	db  *vitri.DB      // immutable after New
	cfg Config         // immutable after New
	adm *admission     // immutable after New; internally synchronized
	met *serverMetrics // immutable after New; internally synchronized
	mux http.Handler   // immutable after New

	mu       sync.Mutex
	draining bool           // guarded by mu
	wg       sync.WaitGroup // in-flight requests + detached search work
	inflight atomic.Int64   // requests inside the lifecycle gate

	// checkpointing dedupes automatic checkpoints: while one runs, later
	// mutations skip triggering another instead of queueing on db.mu.
	checkpointing atomic.Bool

	// Checkpoint health, surfaced in /stats and consulted by the failure
	// cooldown. Guarded by ckptHealthMu (leaf lock: never held across a
	// DB call).
	ckptHealthMu    sync.Mutex
	lastCkptErr     error     // guarded by ckptHealthMu
	lastCkptErrTime time.Time // guarded by ckptHealthMu
	// lastCkptTime is the last successful checkpoint through this
	// server. guarded by ckptHealthMu
	lastCkptTime time.Time

	// Test hooks, called when non-nil; must be set before the first
	// request (they are read without synchronization).
	testHookAdmitted func() // immutable once serving; holds an admission slot
	testHookWork     func() // immutable once serving; runs in the work goroutine
}

// New builds a Server over db. The db should be fully loaded; the index
// itself may still build lazily on the first search.
func New(db *vitri.DB, cfg Config) *Server {
	s := &Server{
		db:  db,
		cfg: cfg.withDefaults(),
	}
	s.adm = newAdmission(s.cfg.MaxInFlight)
	s.met = newServerMetrics(epSearch, epSearchImage, epSearchTemporal, epInsert, epRemove, epCheckpoint, epHealthz, epStats)
	s.mux = s.routes()
	return s
}

// Handler returns the service's root handler (mount it on an
// http.Server or httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close gracefully shuts the service down: new requests are rejected
// with 503, every admitted request — and any search a timed-out handler
// abandoned — is drained, and only then is the database's page store
// closed. ctx bounds the drain; when it expires the store is left open
// (in-flight work may still be using it) and ctx's error is returned.
// Close is idempotent.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.db.Close()
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted, page store left open: %w", ctx.Err())
	}
}

// enter registers one request with the drain group; it fails once Close
// has begun. Every enter is paired with exit.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	s.inflight.Add(1)
	return true
}

func (s *Server) exit() {
	s.inflight.Add(-1)
	s.wg.Done()
}

// callWithDeadline runs f on its own goroutine and waits for its result
// or the context, whichever comes first. The goroutine joins the drain
// group, so a graceful Close waits for work its handler abandoned on
// timeout before closing the pager. The caller must itself be inside the
// drain group (wg.Add while the counter is positive is what makes the
// Add/Wait race benign).
func (s *Server) callWithDeadline(ctx context.Context, f func() (interface{}, error)) (interface{}, error) {
	type outcome struct {
		v   interface{}
		err error
	}
	ch := make(chan outcome, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if hook := s.testHookWork; hook != nil {
			hook()
		}
		v, err := f()
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-ctx.Done():
		s.met.timeouts.Inc()
		return nil, ctx.Err()
	}
}

// statusFor maps an error onto its HTTP response status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, vitri.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, vitri.ErrNotDurable):
		return http.StatusConflict
	case errors.Is(err, vitri.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, vitri.ErrEmptyDB), errors.Is(err, pager.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// CachedPager returns a NewPager function for vitri.Options that wraps
// every store the database creates in an LRU page cache of the given
// capacity, plus a stats function reporting the aggregate hit rate — the
// /stats plumbing for a server whose DB is built with it. A database
// creates one pager per tree build, and a sharded database one per shard
// per build, so the stats sum over every cache created: the counters are
// monotone across rebuilds and cover all shards.
func CachedPager(newUnder func() pager.Pager, capacity int) (newPager func() pager.Pager, stats func() (accesses, hits uint64, rate float64)) {
	var mu sync.Mutex
	var caches []*pager.Cache
	newPager = func() pager.Pager {
		c := pager.NewCache(newUnder(), capacity)
		mu.Lock()
		caches = append(caches, c)
		mu.Unlock()
		return c
	}
	stats = func() (uint64, uint64, float64) {
		mu.Lock()
		all := append([]*pager.Cache(nil), caches...)
		mu.Unlock()
		var accesses, hits uint64
		for _, c := range all {
			a, h, _ := c.HitRate()
			accesses += a
			hits += h
		}
		if accesses == 0 {
			return 0, 0, 0
		}
		return accesses, hits, float64(hits) / float64(accesses)
	}
	return newPager, stats
}

// Endpoint names (also the /stats keys).
const (
	epSearch         = "/search"
	epSearchImage    = "/search/image"
	epSearchTemporal = "/search/temporal"
	epInsert         = "/insert"
	epRemove         = "/remove"
	epCheckpoint     = "/checkpoint"
	epHealthz        = "/healthz"
	epStats          = "/stats"
)

// maybeCheckpoint triggers an automatic checkpoint when the journal has
// grown past Config.CheckpointEvery. Called after a successful mutation,
// from inside the drain group; the checkpoint itself runs detached so
// the triggering request doesn't wait for the snapshot write. At most
// one automatic checkpoint runs at a time, and a failed one starts the
// Config.CheckpointCooldown clock — the journal is still over the
// threshold after a failure, so without the cooldown every subsequent
// mutation would immediately relaunch the same doomed snapshot write.
func (s *Server) maybeCheckpoint() {
	if s.cfg.CheckpointEvery <= 0 || !s.db.Durable() {
		return
	}
	if s.db.DurabilityStats().Journal.Depth < s.cfg.CheckpointEvery {
		return
	}
	if s.inCheckpointCooldown() {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.checkpointing.Store(false)
		if err := s.runCheckpoint(); err != nil {
			s.cfg.ErrorLog.Printf("server: automatic checkpoint: %v (next attempt after %v)", err, s.cfg.CheckpointCooldown)
		}
	}()
}

// inCheckpointCooldown reports whether a recent checkpoint failure is
// still suppressing automatic checkpoints.
func (s *Server) inCheckpointCooldown() bool {
	if s.cfg.CheckpointCooldown <= 0 {
		return false
	}
	s.ckptHealthMu.Lock()
	defer s.ckptHealthMu.Unlock()
	return s.lastCkptErr != nil && time.Since(s.lastCkptErrTime) < s.cfg.CheckpointCooldown
}

// runCheckpoint folds the journal and records the outcome in the
// checkpoint-health fields /stats surfaces. Both the automatic trigger
// and POST /checkpoint go through it, so a successful manual checkpoint
// also clears the failure cooldown.
func (s *Server) runCheckpoint() error {
	err := s.db.Checkpoint()
	s.ckptHealthMu.Lock()
	if err != nil {
		s.lastCkptErr = err
		s.lastCkptErrTime = time.Now()
	} else {
		s.lastCkptErr = nil
		s.lastCkptTime = time.Now()
	}
	s.ckptHealthMu.Unlock()
	return err
}

// checkpointHealth snapshots the health fields for /stats.
func (s *Server) checkpointHealth() (lastErr error, lastErrTime, lastOK time.Time) {
	s.ckptHealthMu.Lock()
	defer s.ckptHealthMu.Unlock()
	return s.lastCkptErr, s.lastCkptErrTime, s.lastCkptTime
}

// serverMetrics aggregates the service's counters and latency histograms.
// Each query workload (whole-video /search, query-by-image /search/image,
// temporal /search/temporal) gets its own query/work counters so /stats
// attributes page reads and pre-filter skips per workload.
type serverMetrics struct {
	shed, panics, timeouts                 metrics.Counter
	searchQueries, searchPageReads         metrics.Counter
	searchSimOps, searchSignatureSkips     metrics.Counter
	imageQueries, imagePageReads           metrics.Counter
	imageSimOps, imageSignatureSkips       metrics.Counter
	temporalQueries, temporalPageReads     metrics.Counter
	temporalSimOps, temporalSignatureSkips metrics.Counter
	endpoints                              map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests  metrics.Counter
	errors5xx metrics.Counter
	latency   *metrics.Histogram
}

func newServerMetrics(names ...string) *serverMetrics {
	m := &serverMetrics{endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.endpoints[n] = &endpointMetrics{latency: metrics.NewHistogram(metrics.LatencyBounds())}
	}
	return m
}

func (m *serverMetrics) observe(name string, code int, d time.Duration) {
	ep := m.endpoints[name]
	if ep == nil {
		return
	}
	ep.requests.Inc()
	if code >= 500 {
		ep.errors5xx.Inc()
	}
	ep.latency.Observe(d.Seconds())
}
