package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the whole-program lock facts shared by the
// interprocedural analyzers. A branch-aware walker (the flow semantics
// mirror lockorder's intra-procedural checker) records, per function:
//
//   - every mutex acquisition with the locks already held there,
//   - every call with the held set, the must-held set and how the call
//     runs (normal, deferred, go),
//   - every fsync-like call, blocking channel send and module-struct
//     field access,
//
// then two fixpoints over the call graph derive:
//
//   - mayAcquire/maySync/maySend: the lock classes, fsyncs and blocking
//     sends a call into each function can transitively reach, with a
//     witness chain for diagnostics;
//   - entryMust: the locks every caller provably holds at a function's
//     entry (intersection over call sites), which atomicmix uses to
//     discharge // guarded by obligations in *Locked-style helpers.
//
// Lock identity is the declaring *types.Var: a struct field (db.mu and
// other.mu share a class — instance-insensitive by design) or a
// package-level mutex. Function-local mutexes get a nil class: they are
// tracked for intra-procedural state but never escape into summaries.

// heldMu is one acquisition live on the current path.
type heldMu struct {
	class *types.Var // nil for function-local mutexes
	key   string     // rendered mutex expression (local identity)
	rlock bool
	level int // hierarchy level, -1 if unranked
	pos   token.Pos
}

// muOp is one recognized sync.(RW)Mutex method call.
type muOp struct {
	name  string // Lock, RLock, Unlock, RUnlock
	key   string
	class *types.Var
	level int
	pos   token.Pos
}

func (op *muOp) locks() bool { return op.name == "Lock" || op.name == "RLock" }

// witness is one link in an acquisition chain: either a leaf fact
// (callee == nil: fn acquires/syncs/sends at pos) or a call link (fn
// calls callee at pos, and tail explains the callee).
type witness struct {
	fn     *types.Func
	pos    token.Pos
	callee *types.Func
	tail   *witness
}

// Event records with pre-state snapshots.
type acqEvent struct {
	op   muOp
	held []heldMu
	inGo bool
}

type callEvent struct {
	callee    *types.Func
	pos       token.Pos
	kind      CallKind
	inGo      bool
	freshRecv bool // receiver is a local, unpublished allocation
	held      []heldMu
	must      map[*types.Var]int
}

type syncEvent struct {
	callee *types.Func
	pos    token.Pos
	inGo   bool
	held   []heldMu
}

type sendEvent struct {
	pos  token.Pos
	inGo bool
	held []heldMu
}

type accessEvent struct {
	field *types.Var
	pos   token.Pos
	write bool
	inGo  bool
	fresh bool // base object is a local, unpublished allocation
	must  map[*types.Var]int
}

// lifeFlags summarize a function's join/cancel evidence for
// goroutinelife: does calling it (transitively) signal a WaitGroup,
// send on or close a channel, or block receiving from one.
type lifeFlags struct {
	wgDone    bool
	chanSend  bool
	chanClose bool
	chanRecv  bool
}

func (l *lifeFlags) merge(o lifeFlags) bool {
	changed := false
	if o.wgDone && !l.wgDone {
		l.wgDone, changed = true, true
	}
	if o.chanSend && !l.chanSend {
		l.chanSend, changed = true, true
	}
	if o.chanClose && !l.chanClose {
		l.chanClose, changed = true, true
	}
	if o.chanRecv && !l.chanRecv {
		l.chanRecv, changed = true, true
	}
	return changed
}

func (l lifeFlags) any() bool { return l.wgDone || l.chanSend || l.chanClose || l.chanRecv }

// fnFacts is everything the engine knows about one module function.
type fnFacts struct {
	fi       *FuncInfo
	acquires []acqEvent
	calls    []callEvent
	syncs    []syncEvent
	sends    []sendEvent
	accesses []accessEvent
	// atomicFields are module struct fields whose address this function
	// passes to a sync/atomic operation.
	atomicFields map[*types.Var][]token.Pos
	// wgAdds are positions of sync.WaitGroup Add calls (goroutinelife
	// requires one before a Done-joined spawn).
	wgAdds []token.Pos
	life   lifeFlags

	mayAcquire map[*types.Var]*witness
	maySync    *witness
	maySend    *witness

	// entryMust: lock classes (→ 1 R / 2 W) held at entry on every
	// counted call path. entryTop means "no call path seen yet" (⊤).
	entryTop  bool
	entryMust map[*types.Var]int
	// prePub: every call site invokes the function on a fresh, not yet
	// published receiver (constructor/recovery helpers) — guarded-field
	// obligations do not apply.
	prePub bool
}

// classMeta is per-lock-class display data.
type classMeta struct {
	display string
	level   int
}

// modFacts is the engine's output, shared by every RunModule analyzer.
type modFacts struct {
	mod     *Module
	cg      *CallGraph
	fns     map[*types.Func]*fnFacts
	classes map[*types.Var]*classMeta
}

func (mf *modFacts) classDisplay(v *types.Var) string {
	if m := mf.classes[v]; m != nil {
		return m.display
	}
	return v.Name()
}

func (mf *modFacts) classLevel(v *types.Var) int {
	if m := mf.classes[v]; m != nil {
		return m.level
	}
	return -1
}

// buildLockFacts walks every module function and runs the fixpoints.
func buildLockFacts(mod *Module, cg *CallGraph) *modFacts {
	mf := &modFacts{
		mod:     mod,
		cg:      cg,
		fns:     make(map[*types.Func]*fnFacts),
		classes: make(map[*types.Var]*classMeta),
	}
	for _, fi := range cg.Order {
		w := &flowWalker{
			mf:    mf,
			info:  fi.Pkg.Info,
			facts: &fnFacts{fi: fi, atomicFields: make(map[*types.Var][]token.Pos), entryTop: true},
			fresh: make(map[types.Object]bool),
		}
		st := newFlowState()
		w.scanStmts(fi.Decl.Body.List, st)
		mf.fns[fi.Fn] = w.facts
	}
	mf.propagateSummaries()
	mf.computeEntryMust()
	return mf
}

// ---------------------------------------------------------------------
// Flow state

type flowState struct {
	held []heldMu
	must map[*types.Var]int
}

func newFlowState() *flowState {
	return &flowState{must: make(map[*types.Var]int)}
}

func (s *flowState) clone() *flowState {
	c := &flowState{
		held: append([]heldMu(nil), s.held...),
		must: make(map[*types.Var]int, len(s.must)),
	}
	for k, v := range s.must {
		c.must[k] = v
	}
	return c
}

// mergeHeld unions another surviving path's held set in (a lock held on
// any incoming path is treated as held).
func (s *flowState) mergeHeld(o *flowState) {
	for _, h := range o.held {
		found := false
		for _, have := range s.held {
			if have.pos == h.pos {
				found = true
				break
			}
		}
		if !found {
			s.held = append(s.held, h)
		}
	}
}

func intersectMust(a, b map[*types.Var]int) map[*types.Var]int {
	out := make(map[*types.Var]int)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

func copyMust(m map[*types.Var]int) map[*types.Var]int {
	out := make(map[*types.Var]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func snapshotHeld(s *flowState) []heldMu {
	return append([]heldMu(nil), s.held...)
}

// ---------------------------------------------------------------------
// Walker

type flowWalker struct {
	mf    *modFacts
	info  *types.Info
	facts *fnFacts
	inGo  bool
	// fresh tracks locals assigned from &T{}, T{} composites or new(T):
	// objects that are not yet published, so locking disciplines do not
	// apply to them.
	fresh map[types.Object]bool
}

func (w *flowWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := w.info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func (w *flowWalker) scanStmts(stmts []ast.Stmt, st *flowState) bool {
	for _, stmt := range stmts {
		if w.scanStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) scanStmt(stmt ast.Stmt, st *flowState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			w.scanExpr(s.X, st)
			return false
		}
		if op := w.asMuOp(call); op != nil {
			w.applyMuOp(op, st)
			return false
		}
		w.scanExpr(s.X, st)
		return isTerminalCall(w.info, call)

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scanExpr(rhs, st)
		}
		for i, lhs := range s.Lhs {
			w.recordWrite(lhs, st)
			w.trackFresh(s, i, lhs)
		}
		return false

	case *ast.IncDecStmt:
		w.recordWrite(s.X, st)
		return false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.scanExpr(v, st)
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						if isFreshAlloc(vs.Values[i]) {
							w.fresh[w.info.ObjectOf(name)] = true
						}
					}
				}
			}
		}
		return false

	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
		w.recordSend(s.Pos(), st)
		return false

	case *ast.DeferStmt:
		w.scanDefer(s.Call, st)
		return false

	case *ast.GoStmt:
		w.scanGo(s.Call, st)
		return false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st)
		}
		return true

	case *ast.BlockStmt:
		return w.scanStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.scanStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := w.scanStmts(s.Body.List, bodySt)
		if s.Else == nil {
			if !bodyTerm {
				st.mergeHeld(bodySt)
				st.must = intersectMust(st.must, bodySt.must)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.scanStmt(s.Else, elseSt)
		switch {
		case !bodyTerm && !elseTerm:
			st.held = nil
			st.mergeHeld(bodySt)
			st.mergeHeld(elseSt)
			st.must = intersectMust(bodySt.must, elseSt.must)
		case !bodyTerm:
			st.held = bodySt.held
			st.must = bodySt.must
		case !elseTerm:
			st.held = elseSt.held
			st.must = elseSt.must
		}
		return bodyTerm && elseTerm

	case *ast.ForStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		bodySt := st.clone()
		if !w.scanStmts(s.Body.List, bodySt) {
			st.mergeHeld(bodySt)
			st.must = intersectMust(st.must, bodySt.must)
		}
		return false

	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		if t := w.typeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok && !w.inGo {
				w.facts.life.chanRecv = true
			}
		}
		bodySt := st.clone()
		if !w.scanStmts(s.Body.List, bodySt) {
			st.mergeHeld(bodySt)
			st.must = intersectMust(st.must, bodySt.must)
		}
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.scanClauses(s, st)

	case *ast.BranchStmt:
		return true
	}
	return false
}

// scanClauses handles switch/type-switch/select uniformly, mirroring the
// intra-procedural checker's join semantics.
func (w *flowWalker) scanClauses(stmt ast.Stmt, st *flowState) bool {
	var clauses []ast.Stmt
	hasDefault := false
	exhaustive := false
	isSelect := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, st)
		}
		w.scanStmt(s.Assign, st)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		exhaustive = true // a select only leaves through one of its cases
		isSelect = true
		for _, cl := range clauses {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	merged := &flowState{}
	var mergedMust map[*types.Var]int
	survivors := 0
	allTerm := true
	for _, cl := range clauses {
		var body []ast.Stmt
		cSt := st.clone()
		switch c := cl.(type) {
		case *ast.CaseClause:
			body = c.Body
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanExpr(e, cSt)
			}
		case *ast.CommClause:
			body = c.Body
			if c.Comm != nil {
				w.scanSelectComm(c.Comm, cSt, hasDefault)
			}
		}
		if w.scanStmts(body, cSt) {
			continue
		}
		allTerm = false
		merged.mergeHeld(cSt)
		if survivors == 0 {
			mergedMust = copyMust(cSt.must)
		} else {
			mergedMust = intersectMust(mergedMust, cSt.must)
		}
		survivors++
	}
	if !allTerm {
		st.held = merged.held
		if !(isSelect || hasDefault) || len(clauses) == 0 {
			// Control can skip every clause: keep the pre-state in the join.
			mergedMust = intersectMust(mergedMust, st.must)
		}
		st.must = mergedMust
	}
	return allTerm && (exhaustive || hasDefault) && len(clauses) > 0
}

// scanSelectComm handles one select communication: a send there blocks
// unless the select has a default (polling idiom: try-send, else move
// on), a receive is join/cancel evidence for goroutinelife.
func (w *flowWalker) scanSelectComm(comm ast.Stmt, st *flowState, hasDefault bool) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		w.scanExpr(c.Chan, st)
		w.scanExpr(c.Value, st)
		if !hasDefault {
			w.recordSend(c.Pos(), st)
		} else if !w.inGo {
			w.facts.life.chanSend = true
		}
	case *ast.ExprStmt:
		w.scanExpr(c.X, st)
	case *ast.AssignStmt:
		w.scanStmt(c, st)
	}
}

func (w *flowWalker) scanDefer(call *ast.CallExpr, st *flowState) {
	for _, arg := range call.Args {
		w.scanExpr(arg, st)
	}
	if op := w.asMuOp(call); op != nil {
		return // deferred unlocks release at return; held state is unchanged mid-body
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkLit(lit, st.clone(), w.inGo)
		return
	}
	if callee := staticCallee(w.info, call); callee != nil {
		w.recordCall(callee, call, CallDefer, st)
	}
}

func (w *flowWalker) scanGo(call *ast.CallExpr, st *flowState) {
	for _, arg := range call.Args {
		w.scanExpr(arg, st)
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		// The goroutine starts with no locks: fresh state, events tagged
		// inGo so they stay local to the spawned body.
		w.walkLit(lit, newFlowState(), true)
		return
	}
	if callee := staticCallee(w.info, call); callee != nil {
		w.recordCall(callee, call, CallGo, st)
	}
}

// walkLit analyzes a function literal's body inline: events are recorded
// against the enclosing function (tagged per inGo), state changes are
// discarded (the literal may run later, or not at all).
func (w *flowWalker) walkLit(lit *ast.FuncLit, st *flowState, inGo bool) {
	sub := &flowWalker{mf: w.mf, info: w.info, facts: w.facts, inGo: inGo, fresh: w.fresh}
	sub.scanStmts(lit.Body.List, st)
}

// scanExpr records calls, field accesses, atomic uses and channel
// receives inside one expression. Nested function literals are walked
// inline on a cloned state.
func (w *flowWalker) scanExpr(e ast.Expr, st *flowState) {
	if e == nil {
		return
	}
	skip := make(map[ast.Node]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkLit(x, st.clone(), w.inGo)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !w.inGo {
				w.facts.life.chanRecv = true
			}
			if x.Op == token.AND {
				// Taking a field's address hands out mutable access.
				if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok && !skip[sel] {
					w.recordAccessChain(sel, true, st)
					skip[sel] = true
				}
			}
		case *ast.CallExpr:
			w.scanCall(x, st, skip)
		case *ast.SelectorExpr:
			w.recordAccessChain(x, false, st)
			return false // recordAccessChain covers the whole chain
		}
		return true
	})
}

// scanCall classifies one call expression inside scanExpr.
func (w *flowWalker) scanCall(call *ast.CallExpr, st *flowState, skip map[ast.Node]bool) {
	// close(ch) is join evidence.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "close" && !w.inGo {
				w.facts.life.chanClose = true
			}
			return
		}
	}
	callee := staticCallee(w.info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "sync":
		if recvNamed(callee) == "WaitGroup" {
			switch callee.Name() {
			case "Done":
				if !w.inGo {
					w.facts.life.wgDone = true
				}
			case "Add":
				if !w.inGo {
					w.facts.wgAdds = append(w.facts.wgAdds, call.Pos())
				}
			}
		}
		// Lock/Unlock in expression position is not a statement-level
		// acquisition; ignore it like the intra-procedural checker does.
		return
	case "sync/atomic":
		// atomic.AddUint64(&s.n, 1): s.n is atomically accessed; the
		// address-of argument itself must not count as a plain access.
		for _, arg := range call.Args {
			ue, ok := unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			sel, ok := unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if f := w.fieldOf(sel); f != nil {
				w.facts.atomicFields[f] = append(w.facts.atomicFields[f], sel.Pos())
				skip[ue] = true
				skip[sel] = true
			}
		}
		return
	}
	if isSyncRoot(callee) {
		w.facts.syncs = append(w.facts.syncs, syncEvent{
			callee: callee, pos: call.Pos(), inGo: w.inGo, held: snapshotHeld(st),
		})
		return
	}
	w.recordCall(callee, call, CallNormal, st)
}

func (w *flowWalker) recordCall(callee *types.Func, call *ast.CallExpr, kind CallKind, st *flowState) {
	fresh := false
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			fresh = w.fresh[w.info.ObjectOf(id)]
		}
	}
	w.facts.calls = append(w.facts.calls, callEvent{
		callee: callee, pos: call.Pos(), kind: kind, inGo: w.inGo,
		freshRecv: fresh, held: snapshotHeld(st), must: copyMust(st.must),
	})
}

func (w *flowWalker) recordSend(pos token.Pos, st *flowState) {
	if !w.inGo {
		w.facts.life.chanSend = true
	}
	w.facts.sends = append(w.facts.sends, sendEvent{pos: pos, inGo: w.inGo, held: snapshotHeld(st)})
}

// recordWrite records the fields an assignment target mutates: every
// field in a selector chain (writing x.a.b mutates state reachable
// through both a and b), the chain behind an index expression (map and
// slice element writes mutate the container), and nothing for plain
// locals.
func (w *flowWalker) recordWrite(lhs ast.Expr, st *flowState) {
	switch x := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		w.recordAccessChain(x, true, st)
	case *ast.IndexExpr:
		w.scanExpr(x.Index, st)
		w.recordWrite(x.X, st)
	case *ast.StarExpr:
		w.scanExpr(x.X, st)
	}
}

// recordAccessChain records one access event per module struct field in
// a selector chain (w.stats.count touches both stats and count).
func (w *flowWalker) recordAccessChain(sel *ast.SelectorExpr, write bool, st *flowState) {
	fresh := false
	if id, ok := unparen(baseExpr(sel)).(*ast.Ident); ok {
		fresh = w.fresh[w.info.ObjectOf(id)]
	}
	for {
		if f := w.fieldOf(sel); f != nil && w.mf.isModuleObj(f) {
			w.facts.accesses = append(w.facts.accesses, accessEvent{
				field: f, pos: sel.Sel.Pos(), write: write, inGo: w.inGo,
				fresh: fresh, must: copyMust(st.must),
			})
		}
		inner, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			w.scanExpr(sel.X, st)
			return
		}
		sel = inner
	}
}

// fieldOf resolves a selector to the struct field it reads, or nil.
func (w *flowWalker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s := w.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// baseExpr returns the leftmost operand of a selector chain.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return x
		default:
			return x
		}
	}
}

func (w *flowWalker) trackFresh(s *ast.AssignStmt, i int, lhs ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.info.ObjectOf(id)
	if obj == nil {
		return
	}
	if len(s.Rhs) == len(s.Lhs) && isFreshAlloc(s.Rhs[i]) {
		w.fresh[obj] = true
		return
	}
	delete(w.fresh, obj)
}

// isFreshAlloc recognizes &T{...}, T{...} and new(T): allocations no
// other goroutine can reference yet.
func isFreshAlloc(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := unparen(x.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// applyMuOp folds one (un)lock into the path state and records acquire
// events.
func (w *flowWalker) applyMuOp(op *muOp, st *flowState) {
	if !op.locks() {
		for i := len(st.held) - 1; i >= 0; i-- {
			if st.held[i].key != op.key {
				continue
			}
			cls := st.held[i].class
			st.held = append(st.held[:i:i], st.held[i+1:]...)
			if cls != nil {
				still := false
				for _, h := range st.held {
					if h.class == cls {
						still = true
						break
					}
				}
				if !still {
					delete(st.must, cls)
				}
			}
			return
		}
		return
	}
	w.facts.acquires = append(w.facts.acquires, acqEvent{op: *op, held: snapshotHeld(st), inGo: w.inGo})
	st.held = append(st.held, heldMu{
		class: op.class, key: op.key, rlock: op.name == "RLock", level: op.level, pos: op.pos,
	})
	if op.class != nil {
		lvl := 2
		if op.name == "RLock" {
			lvl = 1
		}
		if cur, ok := st.must[op.class]; !ok || lvl > cur {
			st.must[op.class] = lvl
		}
	}
}

// asMuOp recognizes sync.Mutex / sync.RWMutex method calls, resolving
// the mutex's class, key and hierarchy level.
func (w *flowWalker) asMuOp(call *ast.CallExpr) *muOp {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil
	}
	fn, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	class, display := w.mf.resolveClass(w.info, sel.X)
	level := lockLevelOf(w.info, sel.X)
	if class != nil {
		if meta := w.mf.classes[class]; meta == nil {
			w.mf.classes[class] = &classMeta{display: display, level: level}
		}
	}
	return &muOp{name: sel.Sel.Name, key: exprString(sel.X), class: class, level: level, pos: call.Pos()}
}

// resolveClass maps a mutex expression to its lock class: the declaring
// struct-field or package-level *types.Var. Function-local mutexes have
// no class.
func (mf *modFacts) resolveClass(info *types.Info, x ast.Expr) (*types.Var, string) {
	switch e := unparen(x).(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			v, ok := s.Obj().(*types.Var)
			if !ok || !mf.isModuleObj(v) {
				return nil, ""
			}
			disp := v.Name()
			if n := namedOf(typeOfExpr(info, e.X)); n != nil {
				disp = n.Obj().Name() + "." + disp
			}
			if v.Pkg() != nil {
				disp = v.Pkg().Name() + "." + disp
			}
			return v, disp
		}
		if vo, ok := info.Uses[e.Sel].(*types.Var); ok && !vo.IsField() && vo.Pkg() != nil &&
			vo.Parent() == vo.Pkg().Scope() && mf.isModuleObj(vo) {
			return vo, vo.Pkg().Name() + "." + vo.Name()
		}
	case *ast.Ident:
		if vo, ok := info.ObjectOf(e).(*types.Var); ok && !vo.IsField() && vo.Pkg() != nil &&
			vo.Parent() == vo.Pkg().Scope() && mf.isModuleObj(vo) {
			return vo, vo.Pkg().Name() + "." + vo.Name()
		}
	}
	return nil, ""
}

// isModuleObj reports whether obj is declared in a package of the
// analyzed module.
func (mf *modFacts) isModuleObj(obj types.Object) bool {
	p := obj.Pkg()
	if p == nil {
		return false
	}
	return p.Path() == mf.mod.Path || strings.HasPrefix(p.Path(), mf.mod.Path+"/")
}

// isSyncRoot recognizes calls that reach fsync: os.File.Sync and the
// Sync/SyncDir methods of any package named vfs (the module's
// filesystem seam; matched by name so fixtures exercise the rule).
func isSyncRoot(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Name() {
	case "Sync", "SyncDir":
	default:
		return false
	}
	return fn.Pkg().Path() == "os" || fn.Pkg().Name() == "vfs"
}

// recvNamed returns the name of fn's receiver type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// ---------------------------------------------------------------------
// Fixpoints

// propagateSummaries computes transitive mayAcquire/maySync/maySend and
// goroutinelife flags over normal and deferred call edges. Events inside
// spawned goroutines stay local: a caller does not hold what a goroutine
// it launches acquires.
func (mf *modFacts) propagateSummaries() {
	for _, fi := range mf.cg.Order {
		f := mf.fns[fi.Fn]
		f.mayAcquire = make(map[*types.Var]*witness)
		for i := range f.acquires {
			acq := &f.acquires[i]
			if acq.inGo || !acq.op.locks() || acq.op.class == nil {
				continue
			}
			if f.mayAcquire[acq.op.class] == nil {
				f.mayAcquire[acq.op.class] = &witness{fn: fi.Fn, pos: acq.op.pos}
			}
		}
		for i := range f.syncs {
			if !f.syncs[i].inGo && f.maySync == nil {
				f.maySync = &witness{fn: fi.Fn, pos: f.syncs[i].pos, callee: f.syncs[i].callee}
			}
		}
		for i := range f.sends {
			if !f.sends[i].inGo && f.maySend == nil {
				f.maySend = &witness{fn: fi.Fn, pos: f.sends[i].pos}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range mf.cg.Order {
			f := mf.fns[fi.Fn]
			for i := range f.calls {
				call := &f.calls[i]
				if call.inGo || call.kind == CallGo {
					continue
				}
				for _, target := range mf.cg.Targets(call.callee) {
					g := mf.fns[target]
					if g == nil || g == f {
						continue
					}
					for class, wt := range g.mayAcquire {
						if f.mayAcquire[class] == nil {
							f.mayAcquire[class] = &witness{fn: fi.Fn, pos: call.pos, callee: target, tail: wt}
							changed = true
						}
					}
					if g.maySync != nil && f.maySync == nil {
						f.maySync = &witness{fn: fi.Fn, pos: call.pos, callee: target, tail: g.maySync}
						changed = true
					}
					if g.maySend != nil && f.maySend == nil {
						f.maySend = &witness{fn: fi.Fn, pos: call.pos, callee: target, tail: g.maySend}
						changed = true
					}
					if f.life.merge(g.life) {
						changed = true
					}
				}
			}
		}
	}
}

// computeEntryMust derives, per function, the locks provably held at
// entry on every counted call path: the intersection over call sites of
// the caller's entry set plus its local must set at the site. go sites
// contribute the empty set (a goroutine starts with nothing); calls on
// fresh receivers are excluded, and a function only ever invoked on
// fresh receivers is pre-publication. Exported and escaping functions
// are pinned to the empty set: the graph cannot see their callers.
func (mf *modFacts) computeEntryMust() {
	type siteInfo struct {
		fromTop bool // caller's entry set still unknown
		must    map[*types.Var]int
	}
	for _, fi := range mf.cg.Order {
		f := mf.fns[fi.Fn]
		if fi.External {
			f.entryTop = false
			f.entryMust = map[*types.Var]int{}
		}
	}
	for changed := true; changed; {
		changed = false
		// Recollect contributions per callee from current entry sets.
		sites := make(map[*types.Func][]siteInfo)
		sawFresh := make(map[*types.Func]bool)
		for _, fi := range mf.cg.Order {
			f := mf.fns[fi.Fn]
			for i := range f.calls {
				call := &f.calls[i]
				for _, target := range mf.cg.Targets(call.callee) {
					if mf.fns[target] == nil {
						continue
					}
					if call.freshRecv {
						sawFresh[target] = true
						continue
					}
					var si siteInfo
					switch {
					case call.kind == CallGo || call.inGo:
						si = siteInfo{must: map[*types.Var]int{}}
					case f.entryTop:
						si = siteInfo{fromTop: true}
					default:
						si = siteInfo{must: unionMust(f.entryMust, call.must)}
					}
					sites[target] = append(sites[target], si)
				}
			}
		}
		for _, fi := range mf.cg.Order {
			f := mf.fns[fi.Fn]
			if fi.External {
				continue
			}
			ss := sites[fi.Fn]
			if len(ss) == 0 {
				if sawFresh[fi.Fn] && !f.prePub {
					// Only ever invoked on unpublished receivers.
					f.prePub = true
					changed = true
				}
				if f.entryTop {
					// Never called in the graph: no guarantee.
					f.entryTop = false
					f.entryMust = map[*types.Var]int{}
					changed = true
				}
				continue
			}
			var acc map[*types.Var]int
			allTop := true
			for _, si := range ss {
				if si.fromTop {
					continue
				}
				allTop = false
				if acc == nil {
					acc = copyMust(si.must)
				} else {
					acc = intersectMust(acc, si.must)
				}
			}
			if allTop {
				continue // every caller still unknown; try next round
			}
			if f.entryTop || !sameMust(f.entryMust, acc) {
				f.entryTop = false
				f.entryMust = acc
				changed = true
			}
		}
	}
	// Anything still ⊤ sits on an unreachable call cycle: no guarantee.
	for _, fi := range mf.cg.Order {
		f := mf.fns[fi.Fn]
		if f.entryTop {
			f.entryTop = false
			f.entryMust = map[*types.Var]int{}
		}
	}
}

func unionMust(a, b map[*types.Var]int) map[*types.Var]int {
	out := copyMust(a)
	for k, v := range b {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

func sameMust(a, b map[*types.Var]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// typeOfExpr is Pass.typeOf without the Pass.
func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// staticCallee resolves the statically-known function or method a call
// invokes, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
