package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vitri/internal/btree"
	"vitri/internal/core"
	"vitri/internal/linalg"
	"vitri/internal/pager"
	"vitri/internal/refpoint"
	"vitri/internal/sig"
	"vitri/internal/vec"
)

// Options configures index construction.
type Options struct {
	// Epsilon is the frame similarity threshold ε used when the indexed
	// summaries were built; it determines the search radius γ = R^Q + ε/2.
	Epsilon float64
	// RefKind selects the reference point strategy (default Optimal).
	RefKind refpoint.Kind
	// SpaceLo/SpaceHi bound the data space for the SpaceCenter strategy.
	// Both zero selects [0, 1].
	SpaceLo, SpaceHi float64
	// OffsetFraction tunes the Optimal reference placement
	// (refpoint.DefaultOffsetFraction when 0).
	OffsetFraction float64
	// Partitions is the partition count for the MultiRef (iDistance)
	// strategy (refpoint.MultiPartitions when 0). Ignored otherwise.
	Partitions int
	// FillFactor for bulk loading (btree.DefaultFillFactor when 0).
	FillFactor float64
	// SearchParallelism bounds the worker pool a single Search fans its
	// disjoint range scans across, and the pool SearchBatch pipelines
	// whole queries through. <= 0 selects GOMAXPROCS; 1 disables
	// intra-query parallelism. Results are identical at every setting.
	SearchParallelism int
	// NewPager supplies page stores for the tree — once at build time and
	// again on every rebuild. Defaults to in-memory pagers.
	NewPager func() pager.Pager
	// DisableSignatures turns off the memory-resident signature
	// pre-filter tier (internal/sig): every covered candidate then pays
	// the exact similarity evaluation, as before the tier existed.
	// Results are byte-identical either way — the tier only skips pairs
	// whose shared-frame estimate is provably zero.
	DisableSignatures bool
	// UnquantizedLeaves keeps the v2 float64 leaf record encoding
	// instead of the v3 float32 one. The default (false) halves the leaf
	// payload and with it the page reads per range scan; similarity math
	// reads exact float64 triplets from the catalog in either mode, so
	// this knob trades I/O, never results.
	UnquantizedLeaves bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SpaceLo == 0 && out.SpaceHi == 0 {
		out.SpaceHi = 1
	}
	if out.NewPager == nil {
		out.NewPager = func() pager.Pager { return pager.NewMem() }
	}
	return out
}

// videoInfo is the per-video catalog entry: the normalization inputs for
// the §3.1 similarity, the exact float64 triplets (the source of truth
// the similarity math reads — leaf records may be float32-quantized),
// and the video's signature tier.
type videoInfo struct {
	frameCount int
	triplets   int
	keys       []float64 // the 1-D keys of this video's triplets (for Remove)
	// trips are the exact triplets in cluster-ordinal order, so
	// trips[rec.ClusterN] is the full-precision twin of a leaf record.
	trips []core.ViTri
	// vsig is the video-level signature (union of triplet cells, max
	// radius); tsigs are the per-triplet point signatures. Both nil when
	// Options.DisableSignatures is set.
	vsig  *sig.Signature
	tsigs []*sig.Signature
}

// Index is the ViTri index: a reference-point transform plus a B+-tree of
// ViTri records keyed by transformed position. Safe for concurrent
// searches; mutations are serialized.
type Index struct {
	mu   sync.RWMutex
	opts Options
	dim  int
	tr   refpoint.Mapper
	tree *btree.Tree
	pg   pager.Pager

	catalog map[int32]*videoInfo

	// Running covariance accumulators over every indexed position, used
	// for principal-direction drift detection (§6.3.3).
	posCount int
	posSum   vec.Vector
	posOuter []float64 // dim×dim row-major Σ x·xᵀ
}

// Build constructs an index over the given summaries with one-off (bulk)
// construction. All summaries must share one dimensionality and contain at
// least one triplet overall.
func Build(summaries []core.Summary, opts Options) (*Index, error) {
	o := opts.withDefaults()
	if o.Epsilon <= 0 {
		return nil, errors.New("index: Epsilon must be positive")
	}
	positions, err := collectPositions(summaries)
	if err != nil {
		return nil, err
	}
	dim := len(positions[0])
	tr, err := newMapper(&o, positions)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		opts:     o,
		dim:      dim,
		tr:       tr,
		catalog:  make(map[int32]*videoInfo),
		posSum:   make(vec.Vector, dim),
		posOuter: make([]float64, dim*dim),
	}
	entries := make([]btree.Entry, 0, len(positions))
	for si := range summaries {
		s := &summaries[si]
		if _, dup := ix.catalog[int32(s.VideoID)]; dup {
			return nil, fmt.Errorf("index: duplicate video id %d", s.VideoID)
		}
		info := ix.newVideoInfo(s)
		for ti := range s.Triplets {
			tpl := &s.Triplets[ti]
			rec := Record{
				VideoID:  int32(s.VideoID),
				ClusterN: int32(ti),
				Count:    int32(tpl.Count),
				Radius:   tpl.Radius,
				Position: tpl.Position,
			}
			buf := make([]byte, ix.recSize())
			if err := ix.encodeRec(&rec, buf); err != nil {
				return nil, err
			}
			key := tr.Key(tpl.Position)
			entries = append(entries, btree.Entry{Key: key, Val: buf})
			info.keys = append(info.keys, key)
			ix.accumulate(tpl.Position)
		}
		ix.catalog[int32(s.VideoID)] = info
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	pg := o.NewPager()
	tree, err := btree.BulkLoad(pg, ix.recSize(), entries, o.FillFactor)
	if err != nil {
		return nil, err
	}
	ix.tree, ix.pg = tree, pg
	return ix, nil
}

// recSize is the leaf record size for this index's encoding mode.
func (ix *Index) recSize() int {
	if ix.opts.UnquantizedLeaves {
		return RecordSize(ix.dim)
	}
	return RecordSizeV3(ix.dim)
}

// encodeRec serializes a record in the index's leaf encoding.
func (ix *Index) encodeRec(r *Record, dst []byte) error {
	if ix.opts.UnquantizedLeaves {
		return EncodeRecord(r, dst)
	}
	return EncodeRecordV3(r, dst)
}

// decodeRec parses a leaf record in the index's encoding. In the default
// (v3) mode positions and radius come back float32-widened; similarity
// math must read the exact values from the catalog instead.
func (ix *Index) decodeRec(src []byte, r *Record) error {
	if ix.opts.UnquantizedLeaves {
		return DecodeRecord(src, ix.dim, r)
	}
	return DecodeRecordV3(src, ix.dim, r)
}

// newVideoInfo builds a summary's catalog entry: the exact triplets
// (via core.NewViTri, the same deterministic constructor the search path
// used when it decoded triplets from leaves, so LogVolume is bit-for-bit
// what it always was) plus the signature tier. The caller has validated
// dimensionality.
func (ix *Index) newVideoInfo(s *core.Summary) *videoInfo {
	info := &videoInfo{
		frameCount: s.FrameCount,
		triplets:   len(s.Triplets),
		trips:      make([]core.ViTri, len(s.Triplets)),
	}
	for ti := range s.Triplets {
		tpl := &s.Triplets[ti]
		info.trips[ti] = core.NewViTri(tpl.Position, tpl.Radius, tpl.Count)
	}
	if !ix.opts.DisableSignatures {
		w := sig.CellWidth(ix.opts.Epsilon)
		info.vsig = sig.New(ix.dim)
		info.tsigs = make([]*sig.Signature, len(info.trips))
		for ti := range info.trips {
			t := &info.trips[ti]
			info.tsigs[ti] = sig.FromTriplet(t.Position, t.Radius, w)
			info.vsig.Add(t.Position, t.Radius, w)
		}
	}
	return info
}

// newMapper constructs the configured key mapping over the build points.
func newMapper(o *Options, positions []vec.Vector) (refpoint.Mapper, error) {
	if o.RefKind == refpoint.MultiRef {
		return refpoint.NewMulti(positions, o.Partitions, 1)
	}
	return refpoint.New(refpoint.Config{
		Kind:           o.RefKind,
		SpaceLo:        o.SpaceLo,
		SpaceHi:        o.SpaceHi,
		OffsetFraction: o.OffsetFraction,
	}, positions)
}

// collectPositions flattens and validates all triplet positions.
func collectPositions(summaries []core.Summary) ([]vec.Vector, error) {
	var out []vec.Vector
	for i := range summaries {
		for j := range summaries[i].Triplets {
			out = append(out, summaries[i].Triplets[j].Position)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("index: no triplets to index")
	}
	dim := len(out[0])
	for _, p := range out {
		if len(p) != dim {
			return nil, fmt.Errorf("index: mixed dimensionality %d vs %d", len(p), dim)
		}
	}
	return out, nil
}

// accumulate folds a position into the running covariance sums.
func (ix *Index) accumulate(p vec.Vector) {
	ix.posCount++
	for i, v := range p {
		ix.posSum[i] += v
		row := ix.posOuter[i*ix.dim : (i+1)*ix.dim]
		for j, w := range p {
			row[j] += v * w
		}
	}
}

// Dim returns the dimensionality of indexed positions.
func (ix *Index) Dim() int { return ix.dim }

// Epsilon returns the frame similarity threshold the index was built for.
func (ix *Index) Epsilon() float64 { return ix.opts.Epsilon }

// Transform exposes the active reference-point mapping.
func (ix *Index) Transform() refpoint.Mapper {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tr
}

// Len returns the number of indexed ViTri records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int(ix.tree.Len())
}

// Videos returns the number of indexed videos.
func (ix *Index) Videos() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.catalog)
}

// PagerStats returns the physical I/O counters of the active page store.
func (ix *Index) PagerStats() pager.Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.pg.Stats()
}

// ResetPagerStats zeroes the I/O counters (between measured runs).
func (ix *Index) ResetPagerStats() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.pg.ResetStats()
}

// Close releases the index's page store. Subsequent tree operations fail
// with pager.ErrClosed; the store's Close is idempotent, so Close may be
// called more than once.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.pg.Close()
}

// Insert adds one summarized video to the index dynamically: each triplet
// is keyed with the *existing* reference point and inserted into the
// B+-tree (§5.1 "dynamic maintenance"). The reference point is not moved;
// use DriftAngle/Rebuild to detect and repair correlation drift.
//
// Insert is atomic with respect to validation: every triplet is validated
// and encoded before the first tree mutation, so a rejected summary
// (wrong dimensionality, unencodable triplet) leaves the tree and catalog
// untouched. If the underlying pager fails mid-insert, the triplets
// already inserted are rolled back best-effort.
func (ix *Index) Insert(s core.Summary) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	vid := int32(s.VideoID)
	if _, dup := ix.catalog[vid]; dup {
		return fmt.Errorf("index: duplicate video id %d", s.VideoID)
	}
	if len(s.Triplets) == 0 {
		return fmt.Errorf("index: video %d has no triplets", s.VideoID)
	}
	// Validate and encode everything before touching the tree: a failure
	// on triplet i must not leave triplets 0..i-1 orphaned in the tree
	// with no catalog entry.
	size := ix.recSize()
	slab := make([]byte, size*len(s.Triplets))
	keys := make([]float64, len(s.Triplets))
	for ti := range s.Triplets {
		tpl := &s.Triplets[ti]
		if len(tpl.Position) != ix.dim {
			return fmt.Errorf("index: triplet dimensionality %d, index is %d", len(tpl.Position), ix.dim)
		}
		rec := Record{
			VideoID:  vid,
			ClusterN: int32(ti),
			Count:    int32(tpl.Count),
			Radius:   tpl.Radius,
			Position: tpl.Position,
		}
		if err := ix.encodeRec(&rec, slab[ti*size:(ti+1)*size]); err != nil {
			return err
		}
		keys[ti] = ix.tr.Key(tpl.Position)
	}
	// Catalog entry (exact triplets + signatures) before the first tree
	// mutation: newVideoInfo inherits NewViTri's panic on invalid
	// geometry, and that must not fire with half a video inserted.
	info := ix.newVideoInfo(&s)
	info.keys = keys
	for ti := range s.Triplets {
		if err := ix.tree.Insert(keys[ti], slab[ti*size:(ti+1)*size]); err != nil {
			ix.rollbackInsertLocked(vid, keys[:ti])
			return err
		}
	}
	for ti := range s.Triplets {
		ix.accumulate(s.Triplets[ti].Position)
	}
	ix.catalog[vid] = info
	return nil
}

// rollbackInsertLocked deletes the given video's records at keys after a
// failed Insert, so a mid-insert pager failure does not leave orphaned
// records for range scans to surface with no catalog entry. Best-effort:
// the pager that failed the insert may fail the deletes too. Caller
// holds mu.
func (ix *Index) rollbackInsertLocked(vid int32, keys []float64) {
	var rec Record
	for _, key := range keys {
		//lint:ignore droppederr best-effort rollback: the pager that failed the insert may fail the deletes too
		_, _ = ix.tree.Delete(key, func(val []byte) bool {
			return ix.decodeRec(val, &rec) == nil && rec.VideoID == vid
		})
	}
}

// currentFirstPC computes Φ1 of all indexed positions from the running
// covariance accumulators. Caller holds at least a read lock.
func (ix *Index) currentFirstPC() vec.Vector {
	if ix.posCount < 2 {
		return nil
	}
	n := float64(ix.posCount)
	cov := linalg.NewSym(ix.dim)
	for i := 0; i < ix.dim; i++ {
		mi := ix.posSum[i] / n
		for j := i; j < ix.dim; j++ {
			mj := ix.posSum[j] / n
			cov.Set(i, j, ix.posOuter[i*ix.dim+j]/n-mi*mj)
		}
	}
	// Only the dominant direction is needed; power iteration is much
	// cheaper than a full eigendecomposition at this call frequency.
	return linalg.FirstEigenvector(cov, 0, 0)
}

// DriftAngle returns the angle in radians between the first principal
// component captured when the reference point was derived and the current
// Φ1 of all indexed positions. Zero for non-Optimal reference points.
func (ix *Index) DriftAngle() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.driftAngleLocked()
}

// driftAngleLocked is DriftAngle under a lock the caller already holds.
func (ix *Index) driftAngleLocked() float64 {
	built := ix.tr.FirstPC()
	if built == nil {
		return 0
	}
	cur := ix.currentFirstPC()
	if cur == nil {
		return 0
	}
	return linalg.AngleBetween(built, cur)
}

// Rebuild re-derives the reference point from the currently indexed
// positions and bulk-loads a fresh tree — the paper's proposed response to
// correlation drift (§6.3.3). The old page store is closed.
func (ix *Index) Rebuild() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.rebuildLocked()
}

// rebuildLocked is Rebuild under the write lock the caller already holds.
//
// The reference point is re-derived from the exact float64 positions in
// the catalog, visited in tree order — the same order (and, with
// unquantized leaves, the same bits) the seed engine fed its PCA, so
// rebuilds stay deterministic and independent of the leaf encoding.
// Records whose catalog entry is gone (orphans left by a failed
// best-effort insert rollback) are dropped here rather than re-encoded:
// they can never score — scoring reads the catalog — so the rebuild is
// the natural point to shed them.
func (ix *Index) rebuildLocked() error {
	refs, err := ix.treeRefsLocked()
	if err != nil {
		return err
	}
	positions := make([]vec.Vector, len(refs))
	for i, ref := range refs {
		positions[i] = ix.catalog[ref.vid].trips[ref.cn].Position
	}
	tr, err := newMapper(&ix.opts, positions)
	if err != nil {
		return err
	}
	entries := make([]btree.Entry, len(refs))
	newKeys := make(map[int32][]float64, len(ix.catalog))
	for i, ref := range refs {
		t := &ix.catalog[ref.vid].trips[ref.cn]
		rec := Record{
			VideoID:  ref.vid,
			ClusterN: ref.cn,
			Count:    int32(t.Count),
			Radius:   t.Radius,
			Position: t.Position,
		}
		buf := make([]byte, ix.recSize())
		if err := ix.encodeRec(&rec, buf); err != nil {
			return err
		}
		key := tr.Key(t.Position)
		entries[i] = btree.Entry{Key: key, Val: buf}
		newKeys[ref.vid] = append(newKeys[ref.vid], key)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	pg := ix.opts.NewPager()
	tree, err := btree.BulkLoad(pg, ix.recSize(), entries, ix.opts.FillFactor)
	if err != nil {
		return errors.Join(err, pg.Close())
	}
	// Refresh the catalog's per-video keys: the new reference point moved
	// every 1-D key.
	for vid, info := range ix.catalog {
		info.keys = newKeys[vid]
	}
	old := ix.pg
	ix.tr, ix.tree, ix.pg = tr, tree, pg
	//lint:ignore droppederr best-effort close of the replaced store; the new pager is already live
	old.Close()
	return nil
}

// recordRef names one indexed triplet: the video and its cluster ordinal
// — enough to find the exact triplet in the catalog.
type recordRef struct {
	vid int32
	cn  int32
}

// treeRefsLocked scans the tree in key order and resolves every record
// to its catalog reference, skipping orphans (records whose video has no
// catalog entry, or whose cluster ordinal is out of range — the residue
// of a doubly-failed insert). Caller holds mu.
func (ix *Index) treeRefsLocked() ([]recordRef, error) {
	out := make([]recordRef, 0, ix.tree.Len())
	var r Record
	err := ix.tree.Scan(func(_ float64, val []byte) bool {
		if ix.decodeRec(val, &r) != nil {
			return false
		}
		info := ix.catalog[r.VideoID]
		if info == nil || r.ClusterN < 0 || int(r.ClusterN) >= len(info.trips) {
			return true
		}
		out = append(out, recordRef{vid: r.VideoID, cn: r.ClusterN})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RebuildIfDrifted rebuilds when DriftAngle exceeds maxAngle (radians) and
// reports whether a rebuild happened. Drift is evaluated under the same
// write lock as the rebuild, so two concurrent callers cannot both see
// stale drift and rebuild back-to-back (the second caller re-evaluates
// drift after the first one's rebuild and finds it repaired).
func (ix *Index) RebuildIfDrifted(maxAngle float64) (bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.driftAngleLocked() <= maxAngle {
		return false, nil
	}
	if err := ix.rebuildLocked(); err != nil {
		return false, err
	}
	return true, nil
}
