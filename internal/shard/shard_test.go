package shard

import (
	"testing"

	"vitri/internal/storefmt"
	"vitri/internal/vfs"
)

// TestRouteStable pins the routing function: the assignment of a video id
// to a shard is part of the durable on-disk contract (each shard replays
// only its own journal), so it must never change.
func TestRouteStable(t *testing.T) {
	got := make([]int, 0, 8)
	for id := 0; id < 8; id++ {
		got = append(got, Route(id, 4))
	}
	want := []int{0, 1, 2, 0, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Route(%d, 4) = %d, want %d (routing function changed — this breaks existing sharded stores)", i, got[i], want[i])
		}
	}
}

// TestRouteProperties checks range validity and a rough balance bound
// over dense sequential ids, the common ingest pattern.
func TestRouteProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		counts := make([]int, n)
		for id := 0; id < 4096; id++ {
			s := Route(id, n)
			if s < 0 || s >= n {
				t.Fatalf("Route(%d, %d) = %d out of range", id, n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if mean := 4096 / n; c < mean/2 || c > mean*2 {
				t.Errorf("n=%d shard %d holds %d of 4096 sequential ids (mean %d) — hash is striping", n, s, c, mean)
			}
		}
	}
	if Route(7, 1) != 0 {
		t.Fatal("Route with one shard must always return 0")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	fsys := vfs.NewMemFS()
	m := &Manifest{Shards: 3, Epoch: 7, Cuts: []uint64{12, 0, 9}}
	if err := WriteManifest(fsys, "db/MANIFEST", m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(fsys, "db/MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != m.Shards || got.Epoch != m.Epoch {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
	for i := range m.Cuts {
		if got.Cuts[i] != m.Cuts[i] {
			t.Fatalf("cut %d: got %d want %d", i, got.Cuts[i], m.Cuts[i])
		}
	}
}

func TestManifestMissing(t *testing.T) {
	_, err := ReadManifest(vfs.NewMemFS(), "db/MANIFEST")
	if !storefmt.IsNotExist(err) {
		t.Fatalf("missing manifest: got %v, want not-exist", err)
	}
}

// TestManifestCorruptionDetected flips, truncates and empties the
// manifest bytes: every damaged form must fail to read, never parse as a
// valid (wrong) cut.
func TestManifestCorruptionDetected(t *testing.T) {
	fsys := vfs.NewMemFS()
	m := &Manifest{Shards: 2, Epoch: 1, Cuts: []uint64{5, 6}}
	if err := WriteManifest(fsys, "MANIFEST", m); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), fsys.Snapshot()["MANIFEST"]...)
	for name, mutate := range map[string]func([]byte) []byte{
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-5] },
		"empty":     func(b []byte) []byte { return nil },
		"magic":     func(b []byte) []byte { b[0] = 'X'; return b },
	} {
		fsys.SetFile("MANIFEST", mutate(append([]byte(nil), orig...)))
		if _, err := ReadManifest(fsys, "MANIFEST"); err == nil {
			t.Errorf("%s: corrupt manifest read back without error", name)
		} else if storefmt.IsNotExist(err) {
			t.Errorf("%s: corruption reported as not-exist", name)
		}
	}
}

// TestManifestUnsafeWriteIsTorn documents why WriteManifestUnsafe exists:
// interrupted after its truncate, the store's commit record is gone. The
// crash suite relies on this to prove the atomic path is load-bearing.
func TestManifestUnsafeWriteIsTorn(t *testing.T) {
	fsys := vfs.NewMemFS()
	if err := WriteManifest(fsys, "MANIFEST", &Manifest{Shards: 2, Epoch: 1, Cuts: []uint64{5, 6}}); err != nil {
		t.Fatal(err)
	}
	// Simulate the unsafe writer's first step (truncate-on-open) landing
	// without the data writes.
	fsys.SetFile("MANIFEST", nil)
	if _, err := ReadManifest(fsys, "MANIFEST"); err == nil {
		t.Fatal("truncated-in-place manifest read back without error")
	}
}
