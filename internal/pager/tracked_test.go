package pager

import (
	"path/filepath"
	"testing"
)

// fillPages allocates n pages in pg with distinct first bytes.
func fillPages(t *testing.T, pg Pager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, err := pg.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		var p Page
		p[0] = byte(i + 1)
		if err := pg.Write(id, &p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadTrackedCountsPhysicalReads(t *testing.T) {
	pagers := map[string]func(t *testing.T) Pager{
		"mem": func(t *testing.T) Pager { return NewMem() },
		"file": func(t *testing.T) Pager {
			fp, err := OpenFile(filepath.Join(t.TempDir(), "pages.db"))
			if err != nil {
				t.Fatal(err)
			}
			return fp
		},
		"faulty": func(t *testing.T) Pager { return NewFaulty(NewMem(), 1) },
	}
	for name, mk := range pagers {
		t.Run(name, func(t *testing.T) {
			pg := mk(t)
			defer pg.Close()
			fillPages(t, pg, 3)
			var st ScanStats
			var p Page
			for i := 0; i < 3; i++ {
				if err := ReadTracked(pg, PageID(i), &p, &st); err != nil {
					t.Fatal(err)
				}
				if p[0] != byte(i+1) {
					t.Fatalf("page %d content %d", i, p[0])
				}
			}
			if st.Reads != 3 {
				t.Fatalf("tracked %d reads, want 3", st.Reads)
			}
			// nil stats must be accepted.
			if err := ReadTracked(pg, 0, &p, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadTrackedCacheCountsOnlyMisses(t *testing.T) {
	under := NewMem()
	c := NewCache(under, 2)
	defer c.Close()
	fillPages(t, c, 3)
	c.Invalidate()
	under.ResetStats()

	var st ScanStats
	var p Page
	// Miss, miss, then a hit on page 1 (still resident).
	for _, id := range []PageID{0, 1, 1} {
		if err := ReadTracked(c, id, &p, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Reads != 2 {
		t.Fatalf("tracked %d reads through cache, want 2 (hit must not count)", st.Reads)
	}
	if got := under.Stats().Reads; got != 2 {
		t.Fatalf("underlying pager saw %d reads, want 2", got)
	}
	// Evict page 0 (capacity 2: reading 2 pushes 0 out), then re-read it.
	if err := ReadTracked(c, 2, &p, &st); err != nil {
		t.Fatal(err)
	}
	if err := ReadTracked(c, 0, &p, &st); err != nil {
		t.Fatal(err)
	}
	if st.Reads != 4 {
		t.Fatalf("tracked %d reads, want 4 after eviction refill", st.Reads)
	}
}

func TestScanStatsAdd(t *testing.T) {
	a := ScanStats{Reads: 3}
	a.Add(ScanStats{Reads: 4})
	if a.Reads != 7 {
		t.Fatalf("Add: got %d, want 7", a.Reads)
	}
}
