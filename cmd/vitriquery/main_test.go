package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"vitri/internal/dataset"
)

// goldenCorpus generates a tiny deterministic corpus and saves it where
// run() can load it.
func goldenCorpus(t *testing.T) string {
	t.Helper()
	cfg := dataset.HistConfig{
		Dim:          16,
		FPS:          10,
		AvgShotSec:   1.0,
		ShotNoise:    0.004,
		ActiveBins:   5,
		LibraryShots: 24,
		Seed:         7,
		Durations:    []dataset.DurationSpec{{Seconds: 3, Count: 5}, {Seconds: 2, Count: 3}},
	}
	c, err := dataset.GenerateHist(cfg)
	if err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	path := filepath.Join(t.TempDir(), "corpus.gob")
	if err := c.Save(path); err != nil {
		t.Fatalf("save corpus: %v", err)
	}
	return path
}

// TestRunGoldenDeterminism runs the full command twice on the same
// corpus with a fixed seed and requires byte-identical output: query
// selection, result ranking, similarity formatting, and the reported
// page-read counts must all be reproducible. Map iteration, goroutine
// scheduling in the parallel search path, or float reassociation would
// each break this.
func TestRunGoldenDeterminism(t *testing.T) {
	corpus := goldenCorpus(t)
	args := []string{"-corpus", corpus, "-k", "5", "-random", "3", "-seed", "7", "-stats"}

	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(args, &second); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}

	// Sanity on shape so a silently empty run can't pass: the header, the
	// index integrity check, and three query blocks must be present.
	out := first.String()
	for _, want := range []string{"corpus: 8 videos", "integrity check: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "query video "); n != 3 {
		t.Fatalf("expected 3 query blocks, found %d:\n%s", n, out)
	}
	// Every query should report its ranked matches; the query video
	// itself must appear as a (near-)perfect match somewhere.
	if !strings.Contains(out, "#1  video") {
		t.Fatalf("no ranked matches in output:\n%s", out)
	}
}

// TestRunErrors exercises the error paths that used to call os.Exit:
// they must now surface as ordinary errors.
func TestRunErrors(t *testing.T) {
	corpus := goldenCorpus(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing corpus", []string{"-corpus", filepath.Join(t.TempDir(), "nope.gob")}, "no such file"},
		{"no queries", []string{"-corpus", corpus}, "no queries"},
		{"bad id", []string{"-corpus", corpus, "banana"}, "bad video id"},
		{"unknown id", []string{"-corpus", corpus, "9999"}, "not in corpus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
